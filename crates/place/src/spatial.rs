//! Grid-bucketed spatial index for radius queries over placed cells.

/// A uniform-grid point index: build once, query neighbourhoods in
/// expected O(1) per point.
///
/// # Examples
///
/// ```
/// use place::GridIndex;
///
/// let points = vec![(0.0, 0.0), (1.0, 0.0), (10.0, 10.0)];
/// let index = GridIndex::new(&points, 2.0);
/// let near_origin = index.within_radius(&points, (0.0, 0.0), 1.5);
/// assert_eq!(near_origin, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell_size: f64,
    buckets: std::collections::HashMap<(i64, i64), Vec<usize>>,
}

impl GridIndex {
    /// Builds an index over `points` with the given bucket size (pick
    /// roughly the query radius).
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not positive and finite.
    #[must_use]
    pub fn new(points: &[(f64, f64)], cell_size: f64) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell size must be positive and finite"
        );
        let mut buckets: std::collections::HashMap<(i64, i64), Vec<usize>> =
            std::collections::HashMap::new();
        for (idx, &(x, y)) in points.iter().enumerate() {
            buckets
                .entry(Self::key(x, y, cell_size))
                .or_default()
                .push(idx);
        }
        Self { cell_size, buckets }
    }

    fn key(x: f64, y: f64, cell_size: f64) -> (i64, i64) {
        (
            (x / cell_size).floor() as i64,
            (y / cell_size).floor() as i64,
        )
    }

    /// Indices of all points within Euclidean `radius` of `center`
    /// (inclusive), in ascending index order. The centre point itself is
    /// included if it is in the point set.
    #[must_use]
    pub fn within_radius(
        &self,
        points: &[(f64, f64)],
        center: (f64, f64),
        radius: f64,
    ) -> Vec<usize> {
        let reach = (radius / self.cell_size).ceil() as i64;
        let (ck, cl) = Self::key(center.0, center.1, self.cell_size);
        let mut out = Vec::new();
        for dk in -reach..=reach {
            for dl in -reach..=reach {
                if let Some(bucket) = self.buckets.get(&(ck + dk, cl + dl)) {
                    for &idx in bucket {
                        let (x, y) = points[idx];
                        let d2 = (x - center.0).powi(2) + (y - center.1).powi(2);
                        if d2 <= radius * radius + 1e-18 {
                            out.push(idx);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_neighbours_across_bucket_borders() {
        let points = vec![(0.9, 0.0), (1.1, 0.0), (5.0, 5.0)];
        let index = GridIndex::new(&points, 1.0);
        let near = index.within_radius(&points, (1.0, 0.0), 0.5);
        assert_eq!(near, vec![0, 1]);
    }

    #[test]
    fn radius_is_inclusive() {
        let points = vec![(0.0, 0.0), (2.0, 0.0)];
        let index = GridIndex::new(&points, 1.0);
        let near = index.within_radius(&points, (0.0, 0.0), 2.0);
        assert_eq!(near, vec![0, 1]);
    }

    #[test]
    fn empty_set() {
        let points: Vec<(f64, f64)> = Vec::new();
        let index = GridIndex::new(&points, 1.0);
        assert!(index.within_radius(&points, (0.0, 0.0), 10.0).is_empty());
    }

    #[test]
    fn matches_brute_force() {
        // Deterministic pseudo-random points.
        let points: Vec<(f64, f64)> = (0..500)
            .map(|k| {
                let x = f64::from((k * 37) % 101);
                let y = f64::from((k * 61) % 97);
                (x, y)
            })
            .collect();
        let index = GridIndex::new(&points, 7.0);
        let center = (50.0, 50.0);
        let radius = 13.0;
        let mut brute: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| {
                (x - center.0).powi(2) + (y - center.1).powi(2) <= radius * radius
            })
            .map(|(i, _)| i)
            .collect();
        brute.sort_unstable();
        assert_eq!(index.within_radius(&points, center, radius), brute);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_panics() {
        let _ = GridIndex::new(&[], 0.0);
    }
}
