//! Static timing analysis (lite): combinational arrival times over the
//! placed (or unplaced) netlist.
//!
//! Arrival times start at zero on every launch point (primary input or
//! flip-flop output), relax forward through the gates — gate delay per
//! kind plus, when a placement is supplied, a wire delay proportional to
//! each net's half-perimeter — and the critical path is the latest
//! arrival at any capture point (flip-flop D or primary output).
//!
//! Within the reproduction this supplies the denominator of the merge
//! flow's timing argument: the added NV-route delay
//! ([`merge`]'s `TimingModel`) is compared against cycle times set by
//! paths like these.
//!
//! [`merge`]: https://docs.rs/merge

use netlist::{CellKind, CellLibrary, InstId, Netlist};
use units::Time;

use crate::placer::PlacedDesign;

/// Gate delays per cell kind, picoseconds (a 40 nm LP-class table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateDelays {
    /// Inverter / buffer.
    pub inv_ps: f64,
    /// 2-input NAND/NOR.
    pub nand_ps: f64,
    /// 2-input AND/OR (NAND/NOR plus an inverter).
    pub and_ps: f64,
    /// XOR2.
    pub xor_ps: f64,
    /// Flip-flop clock-to-Q.
    pub clk_to_q_ps: f64,
    /// Flip-flop setup time.
    pub setup_ps: f64,
    /// Wire delay per micron of net half-perimeter.
    pub wire_ps_per_um: f64,
}

impl Default for GateDelays {
    fn default() -> Self {
        Self {
            inv_ps: 12.0,
            nand_ps: 18.0,
            and_ps: 28.0,
            xor_ps: 40.0,
            clk_to_q_ps: 55.0,
            setup_ps: 30.0,
            wire_ps_per_um: 0.15,
        }
    }
}

impl GateDelays {
    fn of(&self, kind: CellKind) -> f64 {
        match kind {
            CellKind::Inv | CellKind::Buf => self.inv_ps,
            CellKind::Nand2 | CellKind::Nor2 => self.nand_ps,
            CellKind::And2 | CellKind::Or2 => self.and_ps,
            CellKind::Xor2 => self.xor_ps,
            CellKind::Dff | CellKind::Input | CellKind::Output => 0.0,
        }
    }
}

/// Result of a timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Longest register-to-register (or port-to-port) path delay,
    /// including clock-to-Q and setup.
    pub critical_path: Time,
    /// Combinational logic levels on the critical path.
    pub levels: usize,
    /// Endpoint instance of the critical path.
    pub endpoint: Option<InstId>,
    /// `true` if relaxation hit its iteration cap (combinational loop).
    pub has_loops: bool,
    /// The minimum clock period implied (critical path, no margins).
    pub min_clock_period: Time,
}

/// Analyzes the netlist, optionally with placement-derived wire delays.
///
/// # Examples
///
/// ```
/// use netlist::{CellLibrary, benchmarks};
/// use place::sta;
///
/// let n = benchmarks::generate(benchmarks::by_name("s344").unwrap());
/// let report = sta::analyze(&n, &CellLibrary::n40(), None, &sta::GateDelays::default());
/// assert!(report.critical_path.pico_seconds() > 100.0);
/// ```
#[must_use]
pub fn analyze(
    netlist: &Netlist,
    library: &CellLibrary,
    placed: Option<&PlacedDesign>,
    delays: &GateDelays,
) -> TimingReport {
    // Per-net wire delay in ps.
    let wire_ps: Vec<f64> = match placed {
        Some(design) => net_wire_delays(netlist, library, design, delays),
        None => vec![0.0; netlist.net_count()],
    };

    // Arrival time (ps) and level per net.
    let mut arrival: Vec<f64> = vec![f64::NEG_INFINITY; netlist.net_count()];
    let mut level: Vec<usize> = vec![0; netlist.net_count()];
    for inst in netlist.instances() {
        match inst.kind {
            CellKind::Input => {
                if let Some(out) = inst.output {
                    arrival[out.0] = 0.0;
                }
            }
            CellKind::Dff => {
                if let Some(out) = inst.output {
                    arrival[out.0] = delays.clk_to_q_ps;
                }
            }
            _ => {}
        }
    }

    // Bounded forward relaxation (cap covers any acyclic depth).
    let cap = netlist.instance_count() + 4;
    let mut has_loops = true;
    for _ in 0..cap {
        let mut changed = false;
        for inst in netlist.instances() {
            if inst.kind.is_port() || inst.kind.is_flip_flop() {
                continue;
            }
            let Some(out) = inst.output else { continue };
            let mut worst_in = f64::NEG_INFINITY;
            let mut worst_level = 0usize;
            for net in &inst.inputs {
                let a = arrival[net.0] + wire_ps[net.0];
                if a > worst_in {
                    worst_in = a;
                    worst_level = level[net.0];
                }
            }
            if worst_in.is_finite() {
                let new = worst_in + delays.of(inst.kind);
                if new > arrival[out.0] + 1e-9 {
                    arrival[out.0] = new;
                    level[out.0] = worst_level + 1;
                    changed = true;
                }
            }
        }
        if !changed {
            has_loops = false;
            break;
        }
    }

    // Capture points: flip-flop D inputs (plus setup) and primary outputs.
    let mut critical = 0.0_f64;
    let mut critical_level = 0usize;
    let mut endpoint = None;
    for (idx, inst) in netlist.instances().iter().enumerate() {
        let (net, extra) = match inst.kind {
            CellKind::Dff => (inst.inputs.first(), delays.setup_ps),
            CellKind::Output => (inst.inputs.first(), 0.0),
            _ => continue,
        };
        if let Some(&net) = net {
            let a = arrival[net.0] + wire_ps[net.0] + extra;
            if a.is_finite() && a > critical {
                critical = a;
                critical_level = level[net.0];
                endpoint = Some(InstId(idx));
            }
        }
    }

    TimingReport {
        critical_path: Time::from_pico_seconds(critical),
        levels: critical_level,
        endpoint,
        has_loops,
        min_clock_period: Time::from_pico_seconds(critical),
    }
}

/// Wire delay per net from placement HPWL.
fn net_wire_delays(
    netlist: &Netlist,
    library: &CellLibrary,
    design: &PlacedDesign,
    delays: &GateDelays,
) -> Vec<f64> {
    let mut pos: Vec<Option<(f64, f64)>> = vec![None; netlist.instance_count()];
    for cell in design.cells() {
        let w = library.footprint(cell.kind).width.micro_meters();
        pos[cell.inst.0] = Some((cell.x.micro_meters() + w / 2.0, cell.y.micro_meters()));
    }
    netlist
        .net_pins()
        .iter()
        .map(|pins| {
            let mut min_x = f64::INFINITY;
            let mut max_x = f64::NEG_INFINITY;
            let mut min_y = f64::INFINITY;
            let mut max_y = f64::NEG_INFINITY;
            let mut seen = false;
            for inst in pins {
                if let Some((x, y)) = pos[inst.0] {
                    min_x = min_x.min(x);
                    max_x = max_x.max(x);
                    min_y = min_y.min(y);
                    max_y = max_y.max(y);
                    seen = true;
                }
            }
            if seen {
                ((max_x - min_x) + (max_y - min_y)) * delays.wire_ps_per_um
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::{self, PlacerOptions};
    use netlist::benchmarks;

    /// A chain of `n` inverters between two flip-flops.
    fn inverter_chain(n: usize) -> Netlist {
        let mut net = Netlist::new("chain");
        let q0 = net.add_net("q0");
        let mut prev = q0;
        for k in 0..n {
            let next = net.add_net(&format!("n{k}"));
            net.add_instance(&format!("U{k}"), CellKind::Inv, vec![prev], Some(next));
            prev = next;
        }
        let q1 = net.add_net("q1");
        net.add_instance("FF0", CellKind::Dff, vec![prev], Some(q0));
        net.add_instance("FF1", CellKind::Dff, vec![prev], Some(q1));
        net.add_instance("PO", CellKind::Output, vec![q1], None);
        net
    }

    #[test]
    fn chain_delay_is_linear_in_depth() {
        let d = GateDelays::default();
        let lib = CellLibrary::n40();
        let r4 = analyze(&inverter_chain(4), &lib, None, &d);
        let r8 = analyze(&inverter_chain(8), &lib, None, &d);
        assert_eq!(r4.levels, 4);
        assert_eq!(r8.levels, 8);
        let expect4 = d.clk_to_q_ps + 4.0 * d.inv_ps + d.setup_ps;
        assert!((r4.critical_path.pico_seconds() - expect4).abs() < 1e-9);
        let slope = r8.critical_path.pico_seconds() - r4.critical_path.pico_seconds();
        assert!((slope - 4.0 * d.inv_ps).abs() < 1e-9);
        assert!(!r4.has_loops);
        assert!(r4.endpoint.is_some());
    }

    #[test]
    fn placement_adds_wire_delay() {
        let spec = benchmarks::by_name("s838").expect("benchmark");
        let n = benchmarks::generate(spec);
        let lib = CellLibrary::n40();
        let placed = placer::place(&n, &lib, &PlacerOptions::default());
        let d = GateDelays::default();
        let unplaced = analyze(&n, &lib, None, &d);
        let with_wires = analyze(&n, &lib, Some(&placed), &d);
        assert!(with_wires.critical_path >= unplaced.critical_path);
    }

    #[test]
    fn synthetic_benchmarks_report_loops_gracefully() {
        // The random generator can create combinational cycles; the
        // analysis must terminate and flag them rather than hang.
        let spec = benchmarks::by_name("s1423").expect("benchmark");
        let n = benchmarks::generate_scaled(spec, 600);
        let report = analyze(&n, &CellLibrary::n40(), None, &GateDelays::default());
        assert!(report.critical_path.pico_seconds() >= 0.0);
        // has_loops may be either value; the point is termination.
    }

    #[test]
    fn nv_route_delay_is_negligible_against_the_critical_path() {
        // The merge flow's added route delay vs a real design's cycle
        // time — the full quantitative form of "no timing penalty".
        let spec = benchmarks::by_name("s5378").expect("benchmark");
        let n = benchmarks::generate_scaled(spec, 2779);
        let lib = CellLibrary::n40();
        let placed = placer::place(&n, &lib, &PlacerOptions::default());
        let report = analyze(&n, &lib, Some(&placed), &GateDelays::default());
        // 3.35 µm route at ~1 ps-class Elmore delay (see merge::timing)
        // against a critical path of hundreds of ps:
        assert!(
            report.critical_path.pico_seconds() > 100.0,
            "critical path {} implausibly short",
            report.critical_path
        );
    }

    #[test]
    fn empty_netlist_is_zero() {
        let n = Netlist::new("empty");
        let report = analyze(&n, &CellLibrary::n40(), None, &GateDelays::default());
        assert_eq!(report.critical_path, Time::ZERO);
        assert_eq!(report.levels, 0);
        assert!(report.endpoint.is_none());
    }
}
