//! Row-based standard-cell placement and DEF interchange.
//!
//! This crate is the reproduction's stand-in for the physical-design
//! step the paper runs in Cadence Encounter ("floorplan, placement and
//! routing", Section IV-A). It provides what the downstream merge flow
//! needs — realistic flip-flop coordinates:
//!
//! * [`floorplan`] sizes a near-square die from the cell library's
//!   footprints at a target utilization;
//! * [`placer`] orders cells by connectivity-driven cluster growth
//!   (BFS over the net hypergraph), packs them into rows in snake
//!   order, and optionally refines with simulated-annealing swaps that
//!   minimize half-perimeter wirelength;
//! * [`def`] writes and parses the (subset of the) Design Exchange
//!   Format the paper's merge script operates on;
//! * [`spatial`] offers grid-bucketed radius queries used to find
//!   neighbouring flip-flops.
//!
//! # Examples
//!
//! ```
//! use netlist::{CellLibrary, benchmarks};
//! use place::{PlacerOptions, placer};
//!
//! let spec = benchmarks::by_name("s344").unwrap();
//! let n = benchmarks::generate(spec);
//! let placed = placer::place(&n, &CellLibrary::n40(), &PlacerOptions::default());
//! assert_eq!(placed.flip_flops().count(), 15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod def;
pub mod floorplan;
pub mod placer;
pub mod spatial;
pub mod sta;
pub mod stats;

pub use floorplan::Floorplan;
pub use placer::{PlacedCell, PlacedDesign, PlacerOptions};
pub use spatial::GridIndex;
pub use stats::{FlipFlopStats, UtilizationStats};
