//! Die and row planning.

use netlist::{CellLibrary, Netlist};
use units::Length;

/// A row-based floorplan: a near-square die of uniform-height rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    rows: usize,
    sites_per_row: usize,
    site_width: Length,
    row_height: Length,
}

impl Floorplan {
    /// Plans a floorplan for `netlist` at the given `utilization`
    /// (fraction of row capacity occupied by cells; EDA defaults sit
    /// around 0.7).
    ///
    /// The row count is chosen so the die is as square as possible.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < utilization ≤ 1`.
    #[must_use]
    pub fn plan(netlist: &Netlist, library: &CellLibrary, utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1], got {utilization}"
        );
        let total_sites: usize = netlist
            .instances()
            .iter()
            .map(|i| library.sites(i.kind))
            .sum();
        let capacity = ((total_sites.max(1)) as f64 / utilization).ceil();
        // Square die: rows · row_height ≈ sites_per_row · site_width
        // with capacity = rows · sites_per_row.
        let aspect = library.row_height().meters() / library.site_width().meters();
        let rows = (capacity / aspect).sqrt().ceil().max(1.0) as usize;
        let sites_per_row = (capacity / rows as f64).ceil() as usize;
        Self {
            rows,
            sites_per_row,
            site_width: library.site_width(),
            row_height: library.row_height(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Sites per row.
    #[must_use]
    pub fn sites_per_row(&self) -> usize {
        self.sites_per_row
    }

    /// Die width.
    #[must_use]
    pub fn die_width(&self) -> Length {
        self.site_width * self.sites_per_row as f64
    }

    /// Die height.
    #[must_use]
    pub fn die_height(&self) -> Length {
        self.row_height * self.rows as f64
    }

    /// Site width.
    #[must_use]
    pub fn site_width(&self) -> Length {
        self.site_width
    }

    /// Row height.
    #[must_use]
    pub fn row_height(&self) -> Length {
        self.row_height
    }

    /// The y coordinate of a row's bottom edge.
    ///
    /// # Panics
    ///
    /// Panics if `row ≥ rows()`.
    #[must_use]
    pub fn row_y(&self, row: usize) -> Length {
        assert!(row < self.rows, "row {row} out of range");
        self.row_height * row as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::benchmarks;

    #[test]
    fn die_is_roughly_square() {
        let n = benchmarks::generate(benchmarks::by_name("s5378").unwrap());
        let fp = Floorplan::plan(&n, &CellLibrary::n40(), 0.7);
        let ratio = fp.die_width().meters() / fp.die_height().meters();
        assert!((0.5..2.0).contains(&ratio), "aspect = {ratio}");
    }

    #[test]
    fn capacity_covers_cells_at_utilization() {
        let lib = CellLibrary::n40();
        let n = benchmarks::generate(benchmarks::by_name("s344").unwrap());
        let fp = Floorplan::plan(&n, &lib, 0.7);
        let total_sites: usize = n.instances().iter().map(|i| lib.sites(i.kind)).sum();
        assert!(fp.rows() * fp.sites_per_row() >= total_sites);
    }

    #[test]
    fn row_y_is_linear() {
        let n = benchmarks::generate(benchmarks::by_name("s344").unwrap());
        let fp = Floorplan::plan(&n, &CellLibrary::n40(), 0.7);
        assert_eq!(fp.row_y(0), units::Length::from_meters(0.0));
        if fp.rows() > 2 {
            let dy = fp.row_y(2) - fp.row_y(1);
            assert!((dy.meters() - fp.row_height().meters()).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn zero_utilization_panics() {
        let n = Netlist::new("x");
        let _ = Floorplan::plan(&n, &CellLibrary::n40(), 0.0);
    }
}
