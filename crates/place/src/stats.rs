//! Placement statistics: flip-flop clustering and row utilization.
//!
//! The merge flow's yield is entirely a function of how close placed
//! flip-flops end up to each other; these statistics make that
//! distribution observable (and explain per-benchmark merge-coverage
//! differences — see the fig9 report binary).

use netlist::CellLibrary;

use crate::placer::PlacedDesign;
use crate::spatial::GridIndex;

/// Nearest-neighbour statistics of the placed flip-flops.
#[derive(Debug, Clone, PartialEq)]
pub struct FlipFlopStats {
    nn_distances_um: Vec<f64>,
}

impl FlipFlopStats {
    /// Computes nearest-neighbour distances (µm) for every flip-flop of
    /// a placed design.
    #[must_use]
    pub fn of(design: &PlacedDesign) -> Self {
        let points: Vec<(f64, f64)> = design
            .flip_flops()
            .map(|c| (c.x.micro_meters(), c.y.micro_meters()))
            .collect();
        if points.len() < 2 {
            return Self {
                nn_distances_um: Vec::new(),
            };
        }
        // Expand the search radius until every point has a neighbour.
        let mut radius = 5.0;
        let mut nn: Vec<f64> = Vec::with_capacity(points.len());
        'outer: loop {
            nn.clear();
            let index = GridIndex::new(&points, radius);
            for (i, &p) in points.iter().enumerate() {
                let near = index.within_radius(&points, p, radius);
                let best = near
                    .iter()
                    .filter(|&&j| j != i)
                    .map(|&j| {
                        let (x, y) = points[j];
                        ((x - p.0).powi(2) + (y - p.1).powi(2)).sqrt()
                    })
                    .fold(f64::INFINITY, f64::min);
                if best.is_infinite() {
                    radius *= 2.0;
                    continue 'outer;
                }
                nn.push(best);
            }
            break;
        }
        Self {
            nn_distances_um: nn,
        }
    }

    /// Number of flip-flops with a computed neighbour distance.
    #[must_use]
    pub fn count(&self) -> usize {
        self.nn_distances_um.len()
    }

    /// Median nearest-neighbour distance, µm (0 if fewer than 2 FFs).
    #[must_use]
    pub fn median_nn_distance(&self) -> f64 {
        if self.nn_distances_um.is_empty() {
            return 0.0;
        }
        let mut sorted = self.nn_distances_um.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        sorted[sorted.len() / 2]
    }

    /// Fraction of flip-flops whose nearest neighbour lies within
    /// `threshold_um` — an upper bound on merge coverage.
    #[must_use]
    pub fn fraction_within(&self, threshold_um: f64) -> f64 {
        if self.nn_distances_um.is_empty() {
            return 0.0;
        }
        let hits = self
            .nn_distances_um
            .iter()
            .filter(|&&d| d <= threshold_um)
            .count();
        hits as f64 / self.nn_distances_um.len() as f64
    }

    /// Histogram of nearest-neighbour distances over uniform bins of
    /// `bin_um` width; the last bin collects the tail.
    #[must_use]
    pub fn histogram(&self, bin_um: f64, bins: usize) -> Vec<usize> {
        let mut h = vec![0usize; bins.max(1)];
        for &d in &self.nn_distances_um {
            let k = ((d / bin_um) as usize).min(h.len() - 1);
            h[k] += 1;
        }
        h
    }
}

/// Row-utilization summary of a placed design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationStats {
    /// Fraction of total row sites occupied by cells.
    pub occupancy: f64,
    /// Number of rows with at least one cell.
    pub used_rows: usize,
    /// Total rows of the floorplan.
    pub total_rows: usize,
}

/// Computes row utilization against a cell library.
#[must_use]
pub fn utilization(design: &PlacedDesign, library: &CellLibrary) -> UtilizationStats {
    let fp = design.floorplan();
    let total_sites = fp.rows() * fp.sites_per_row();
    let used_sites: usize = design.cells().iter().map(|c| library.sites(c.kind)).sum();
    let mut rows_seen = std::collections::HashSet::new();
    for c in design.cells() {
        rows_seen.insert(c.row);
    }
    UtilizationStats {
        occupancy: used_sites as f64 / total_sites.max(1) as f64,
        used_rows: rows_seen.len(),
        total_rows: fp.rows(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::{self, PlacerOptions};
    use netlist::benchmarks;

    fn placed(name: &str) -> PlacedDesign {
        let n = benchmarks::generate(benchmarks::by_name(name).expect("benchmark"));
        placer::place(&n, &CellLibrary::n40(), &PlacerOptions::default())
    }

    #[test]
    fn every_flip_flop_gets_a_neighbour_distance() {
        let design = placed("s344");
        let stats = FlipFlopStats::of(&design);
        assert_eq!(stats.count(), 15);
        assert!(stats.median_nn_distance() > 0.0);
    }

    #[test]
    fn fraction_within_is_monotone_in_threshold() {
        let stats = FlipFlopStats::of(&placed("s838"));
        let f1 = stats.fraction_within(1.0);
        let f3 = stats.fraction_within(3.35);
        let f100 = stats.fraction_within(100.0);
        assert!(f1 <= f3);
        assert!(f3 <= f100);
        assert!((f100 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_count() {
        let stats = FlipFlopStats::of(&placed("s838"));
        let h = stats.histogram(1.0, 12);
        assert_eq!(h.iter().sum::<usize>(), stats.count());
        assert_eq!(h.len(), 12);
    }

    #[test]
    fn degenerate_inputs() {
        let n = netlist::Netlist::new("empty");
        let design = placer::place(&n, &CellLibrary::n40(), &PlacerOptions::default());
        let stats = FlipFlopStats::of(&design);
        assert_eq!(stats.count(), 0);
        assert_eq!(stats.median_nn_distance(), 0.0);
        assert_eq!(stats.fraction_within(10.0), 0.0);
    }

    #[test]
    fn utilization_is_near_the_target() {
        let design = placed("s5378");
        let u = utilization(&design, &CellLibrary::n40());
        assert!((0.5..0.95).contains(&u.occupancy), "{u:?}");
        assert!(u.used_rows > 0);
        assert!(u.used_rows <= u.total_rows);
    }
}
