//! The placement engine: cluster-growth ordering, snake-order row
//! packing, and annealing refinement.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use netlist::{CellKind, CellLibrary, InstId, Netlist};
use units::Length;

use crate::floorplan::Floorplan;

/// Placement options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacerOptions {
    /// Row utilization target.
    pub utilization: f64,
    /// Simulated-annealing swap refinement passes (0 disables; large
    /// designs default to 0 automatically above
    /// [`PlacerOptions::refine_cell_limit`]).
    pub refine_passes: usize,
    /// Designs larger than this skip refinement.
    pub refine_cell_limit: usize,
    /// RNG seed for the annealer.
    pub seed: u64,
}

impl Default for PlacerOptions {
    fn default() -> Self {
        Self {
            utilization: 0.7,
            refine_passes: 2,
            refine_cell_limit: 20_000,
            seed: 1,
        }
    }
}

/// One placed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedCell {
    /// Instance handle in the source netlist.
    pub inst: InstId,
    /// Instance name.
    pub name: String,
    /// Cell kind.
    pub kind: CellKind,
    /// Left edge.
    pub x: Length,
    /// Row bottom edge.
    pub y: Length,
    /// Row index.
    pub row: usize,
}

impl PlacedCell {
    /// Cell centre abscissa given its width.
    #[must_use]
    pub fn center_x(&self, width: Length) -> Length {
        self.x + width * 0.5
    }
}

/// A placed design: floorplan plus cell coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedDesign {
    design_name: String,
    floorplan: Floorplan,
    cells: Vec<PlacedCell>,
}

impl PlacedDesign {
    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.design_name
    }

    /// The floorplan.
    #[must_use]
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// All placed cells.
    #[must_use]
    pub fn cells(&self) -> &[PlacedCell] {
        &self.cells
    }

    /// The placed flip-flops.
    pub fn flip_flops(&self) -> impl Iterator<Item = &PlacedCell> {
        self.cells.iter().filter(|c| c.kind.is_flip_flop())
    }

    /// Half-perimeter wirelength against the source netlist, in metres
    /// — the placer's optimization objective, exposed for quality
    /// tracking and the placement tests.
    #[must_use]
    pub fn hpwl(&self, netlist: &Netlist, library: &CellLibrary) -> f64 {
        let mut pos: Vec<Option<(f64, f64)>> = vec![None; netlist.instance_count()];
        for cell in &self.cells {
            let w = library.footprint(cell.kind).width.meters();
            pos[cell.inst.0] = Some((cell.x.meters() + w / 2.0, cell.y.meters()));
        }
        let mut total = 0.0;
        for pins in netlist.net_pins() {
            let mut min_x = f64::INFINITY;
            let mut max_x = f64::NEG_INFINITY;
            let mut min_y = f64::INFINITY;
            let mut max_y = f64::NEG_INFINITY;
            let mut seen = false;
            for inst in pins {
                if let Some((x, y)) = pos[inst.0] {
                    min_x = min_x.min(x);
                    max_x = max_x.max(x);
                    min_y = min_y.min(y);
                    max_y = max_y.max(y);
                    seen = true;
                }
            }
            if seen {
                total += (max_x - min_x) + (max_y - min_y);
            }
        }
        total
    }

    pub(crate) fn from_parts(
        design_name: String,
        floorplan: Floorplan,
        cells: Vec<PlacedCell>,
    ) -> Self {
        Self {
            design_name,
            floorplan,
            cells,
        }
    }
}

/// Places a netlist: plans the floorplan, orders cells by cluster
/// growth, packs rows in snake order and optionally refines by
/// annealed swaps.
#[must_use]
pub fn place(netlist: &Netlist, library: &CellLibrary, options: &PlacerOptions) -> PlacedDesign {
    let floorplan = Floorplan::plan(netlist, library, options.utilization);
    let order = cluster_growth_order(netlist);
    let mut cells = pack_rows(netlist, library, &floorplan, &order);
    if options.refine_passes > 0 && cells.len() <= options.refine_cell_limit {
        refine(netlist, library, &mut cells, options);
    }
    PlacedDesign::from_parts(netlist.name().to_owned(), floorplan, cells)
}

/// Orders placeable instances by BFS over the net hypergraph so
/// connected cells are adjacent in the ordering (and therefore in the
/// packed rows).
fn cluster_growth_order(netlist: &Netlist) -> Vec<InstId> {
    let pins = netlist.net_pins();
    let n = netlist.instance_count();
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();

    for seed in 0..n {
        if visited[seed] || netlist.instance(InstId(seed)).kind.is_port() {
            continue;
        }
        visited[seed] = true;
        queue.push_back(InstId(seed));
        while let Some(inst) = queue.pop_front() {
            order.push(inst);
            let instance = netlist.instance(inst);
            for net in instance.inputs.iter().chain(instance.output.iter()) {
                for &other in &pins[net.0] {
                    if !visited[other.0] && !netlist.instance(other).kind.is_port() {
                        visited[other.0] = true;
                        queue.push_back(other);
                    }
                }
            }
        }
    }
    order
}

/// Packs ordered cells into rows boustrophedon-style.
fn pack_rows(
    netlist: &Netlist,
    library: &CellLibrary,
    floorplan: &Floorplan,
    order: &[InstId],
) -> Vec<PlacedCell> {
    let mut cells = Vec::with_capacity(order.len());
    let sites_per_row = floorplan.sites_per_row();
    let mut row = 0usize;
    let mut used_sites = 0usize;
    let mut row_cells: Vec<(InstId, usize)> = Vec::new(); // (inst, sites)

    let flush = |row: usize, row_cells: &mut Vec<(InstId, usize)>, cells: &mut Vec<PlacedCell>| {
        // Even rows fill left→right, odd rows right→left (snake), which
        // keeps order-adjacent cells physically adjacent across row
        // boundaries.
        let total: usize = row_cells.iter().map(|&(_, s)| s).sum();
        let mut site = if row.is_multiple_of(2) {
            0usize
        } else {
            sites_per_row.saturating_sub(total)
        };
        for &(inst, sites) in row_cells.iter() {
            let instance = netlist.instance(inst);
            cells.push(PlacedCell {
                inst,
                name: instance.name.clone(),
                kind: instance.kind,
                x: floorplan.site_width() * site as f64,
                y: floorplan.row_y(row.min(floorplan.rows() - 1)),
                row: row.min(floorplan.rows() - 1),
            });
            site += sites;
        }
        row_cells.clear();
    };

    for &inst in order {
        let sites = library.sites(netlist.instance(inst).kind).max(1);
        if used_sites + sites > sites_per_row && !row_cells.is_empty() {
            flush(row, &mut row_cells, &mut cells);
            row += 1;
            used_sites = 0;
        }
        row_cells.push((inst, sites));
        used_sites += sites;
    }
    flush(row, &mut row_cells, &mut cells);
    cells
}

/// Annealed pairwise swap refinement minimizing HPWL.
fn refine(
    netlist: &Netlist,
    library: &CellLibrary,
    cells: &mut [PlacedCell],
    options: &PlacerOptions,
) {
    if cells.len() < 2 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(options.seed);
    // Instance → cell slot lookup plus per-instance nets for incremental
    // cost evaluation.
    let pins = netlist.net_pins();
    let mut slot_of = vec![usize::MAX; netlist.instance_count()];
    for (slot, cell) in cells.iter().enumerate() {
        slot_of[cell.inst.0] = slot;
    }
    let sweeps = options.refine_passes * cells.len() * 4;
    for _ in 0..sweeps {
        let a = rng.random_range(0..cells.len());
        let b = rng.random_range(0..cells.len());
        if a == b || cells[a].kind != cells[b].kind {
            // Equal-footprint swaps keep the row packing legal.
            continue;
        }
        let (ia, ib) = (cells[a].inst, cells[b].inst);
        let before = local_cost(netlist, library, &pins, &slot_of, cells, ia)
            + local_cost(netlist, library, &pins, &slot_of, cells, ib);
        swap_positions(cells, a, b);
        slot_of.swap(ia.0, ib.0);
        let after = local_cost(netlist, library, &pins, &slot_of, cells, ia)
            + local_cost(netlist, library, &pins, &slot_of, cells, ib);
        // Greedy acceptance: the refinement never worsens the placement
        // (the cluster-growth start is already good; annealed uphill
        // moves were measured to hurt more than help at this scale).
        if after >= before {
            swap_positions(cells, a, b);
            slot_of.swap(ia.0, ib.0);
        }
    }
}

/// HPWL contribution of the nets touching `inst` (the incremental cost
/// the annealer evaluates around a swap).
fn local_cost(
    netlist: &Netlist,
    library: &CellLibrary,
    pins: &[Vec<InstId>],
    slot_of: &[usize],
    cells: &[PlacedCell],
    inst: InstId,
) -> f64 {
    let center = |other: InstId| -> (f64, f64) {
        let cell = &cells[slot_of[other.0]];
        let w = library.footprint(cell.kind).width.meters();
        (cell.x.meters() + w / 2.0, cell.y.meters())
    };
    let mut cost = 0.0;
    let instance = netlist.instance(inst);
    for net in instance.inputs.iter().chain(instance.output.iter()) {
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut seen = false;
        for &other in &pins[net.0] {
            if slot_of[other.0] == usize::MAX {
                continue;
            }
            let (x, y) = center(other);
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
            seen = true;
        }
        if seen {
            cost += (max_x - min_x) + (max_y - min_y);
        }
    }
    cost
}

fn swap_positions(cells: &mut [PlacedCell], a: usize, b: usize) {
    let (xa, ya, ra) = (cells[a].x, cells[a].y, cells[a].row);
    cells[a].x = cells[b].x;
    cells[a].y = cells[b].y;
    cells[a].row = cells[b].row;
    cells[b].x = xa;
    cells[b].y = ya;
    cells[b].row = ra;
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::benchmarks;

    fn s344() -> Netlist {
        benchmarks::generate(benchmarks::by_name("s344").unwrap())
    }

    #[test]
    fn places_every_placeable_cell_once() {
        let n = s344();
        let placed = place(&n, &CellLibrary::n40(), &PlacerOptions::default());
        assert_eq!(placed.cells().len(), n.placeable().len());
        let mut seen: Vec<usize> = placed.cells().iter().map(|c| c.inst.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), placed.cells().len());
        assert_eq!(placed.name(), "s344");
    }

    #[test]
    fn cells_stay_inside_the_die() {
        let n = s344();
        let lib = CellLibrary::n40();
        let placed = place(&n, &lib, &PlacerOptions::default());
        let die_w = placed.floorplan().die_width().meters() + 1e-12;
        for cell in placed.cells() {
            let w = lib.footprint(cell.kind).width.meters();
            assert!(cell.x.meters() >= -1e-12, "{}", cell.name);
            assert!(cell.x.meters() + w <= die_w, "{}", cell.name);
            assert!(cell.row < placed.floorplan().rows());
        }
    }

    #[test]
    fn no_two_cells_overlap_in_a_row() {
        let n = s344();
        let lib = CellLibrary::n40();
        let placed = place(&n, &lib, &PlacerOptions::default());
        let mut by_row: std::collections::HashMap<usize, Vec<(f64, f64)>> =
            std::collections::HashMap::new();
        for cell in placed.cells() {
            let w = lib.footprint(cell.kind).width.meters();
            by_row
                .entry(cell.row)
                .or_default()
                .push((cell.x.meters(), cell.x.meters() + w));
        }
        for (row, mut spans) in by_row {
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            for pair in spans.windows(2) {
                assert!(
                    pair[0].1 <= pair[1].0 + 1e-12,
                    "overlap in row {row}: {pair:?}"
                );
            }
        }
    }

    #[test]
    fn refinement_does_not_worsen_hpwl() {
        let n = s344();
        let lib = CellLibrary::n40();
        let raw = place(
            &n,
            &lib,
            &PlacerOptions {
                refine_passes: 0,
                ..PlacerOptions::default()
            },
        );
        let refined = place(&n, &lib, &PlacerOptions::default());
        let hp_raw = raw.hpwl(&n, &lib);
        let hp_refined = refined.hpwl(&n, &lib);
        // Annealing accepts some uphill moves, so allow a small margin.
        assert!(
            hp_refined <= hp_raw * 1.10,
            "raw {hp_raw}, refined {hp_refined}"
        );
    }

    #[test]
    fn cluster_growth_beats_random_order_on_hpwl() {
        let n = benchmarks::generate(benchmarks::by_name("s838").unwrap());
        let lib = CellLibrary::n40();
        let fp = Floorplan::plan(&n, &lib, 0.7);
        let clustered = pack_rows(&n, &lib, &fp, &cluster_growth_order(&n));
        // Locality-destroying baseline: a coprime-stride permutation
        // separates previously adjacent instances.
        let ids = n.placeable();
        let stride = 101; // coprime to any realistic instance count here
        let random_order: Vec<InstId> = (0..ids.len())
            .map(|k| ids[(k * stride) % ids.len()])
            .collect();
        let shuffled = pack_rows(&n, &lib, &fp, &random_order);
        let as_design =
            |cells: Vec<PlacedCell>| PlacedDesign::from_parts("x".into(), fp.clone(), cells);
        let hp_clustered = as_design(clustered).hpwl(&n, &lib);
        let hp_shuffled = as_design(shuffled).hpwl(&n, &lib);
        assert!(
            hp_clustered < hp_shuffled,
            "clustered {hp_clustered} vs reversed {hp_shuffled}"
        );
    }

    #[test]
    fn flip_flops_are_all_placed() {
        let n = s344();
        let placed = place(&n, &CellLibrary::n40(), &PlacerOptions::default());
        assert_eq!(placed.flip_flops().count(), 15);
    }

    #[test]
    fn placement_is_deterministic() {
        let n = s344();
        let lib = CellLibrary::n40();
        let a = place(&n, &lib, &PlacerOptions::default());
        let b = place(&n, &lib, &PlacerOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn large_designs_skip_refinement_automatically() {
        let n = benchmarks::generate_scaled(benchmarks::by_name("s13207").unwrap(), 3000);
        let opts = PlacerOptions {
            refine_cell_limit: 100,
            ..PlacerOptions::default()
        };
        // Must finish fast even with refine_passes > 0.
        let placed = place(&n, &CellLibrary::n40(), &opts);
        assert_eq!(placed.flip_flops().count(), 627);
    }
}
