//! Design Exchange Format (DEF) writer and reader — the interchange the
//! paper's merge script operates on ("identification of such neighbor
//! flip-flops in the layout is done using a script, that is executed
//! over the DEF file").
//!
//! The subset covers what the flow needs: header, die area, rows, and
//! placed components. Coordinates follow DEF convention (integer
//! database units, 1000 per micron).

use core::fmt;
use std::error::Error;

use netlist::CellKind;
use units::Length;

use crate::placer::{PlacedCell, PlacedDesign};

/// Database units per micron.
const DBU_PER_MICRON: f64 = 1000.0;

/// Serializes a placed design to DEF text.
///
/// # Examples
///
/// ```
/// use netlist::{CellLibrary, benchmarks};
/// use place::{PlacerOptions, placer, def};
///
/// let n = benchmarks::generate(benchmarks::by_name("s344").unwrap());
/// let placed = placer::place(&n, &CellLibrary::n40(), &PlacerOptions::default());
/// let text = def::write(&placed);
/// let parsed = def::parse(&text)?;
/// assert_eq!(parsed.cells().len(), placed.cells().len());
/// # Ok::<(), place::def::ParseDefError>(())
/// ```
#[must_use]
pub fn write(design: &PlacedDesign) -> String {
    use std::fmt::Write as _;
    let fp = design.floorplan();
    let to_dbu = |l: Length| (l.micro_meters() * DBU_PER_MICRON).round() as i64;

    let mut out = String::new();
    let _ = writeln!(out, "VERSION 5.8 ;");
    let _ = writeln!(out, "DESIGN {} ;", design.name());
    let _ = writeln!(out, "UNITS DISTANCE MICRONS {DBU_PER_MICRON} ;");
    let _ = writeln!(
        out,
        "DIEAREA ( 0 0 ) ( {} {} ) ;",
        to_dbu(fp.die_width()),
        to_dbu(fp.die_height())
    );
    for row in 0..fp.rows() {
        let _ = writeln!(
            out,
            "ROW core_row_{row} CoreSite 0 {} N DO {} BY 1 STEP {} 0 ;",
            to_dbu(fp.row_y(row)),
            fp.sites_per_row(),
            to_dbu(fp.site_width()),
        );
    }
    let _ = writeln!(out, "COMPONENTS {} ;", design.cells().len());
    for cell in design.cells() {
        let _ = writeln!(
            out,
            "- {} {} + PLACED ( {} {} ) N ;",
            cell.name,
            cell.kind,
            to_dbu(cell.x),
            to_dbu(cell.y)
        );
    }
    let _ = writeln!(out, "END COMPONENTS");
    let _ = writeln!(out, "END DESIGN");
    out
}

/// A component read back from DEF.
#[derive(Debug, Clone, PartialEq)]
pub struct DefComponent {
    /// Instance name.
    pub name: String,
    /// Cell master name (e.g. `DFF`).
    pub master: String,
    /// Left edge.
    pub x: Length,
    /// Bottom edge.
    pub y: Length,
}

impl DefComponent {
    /// `true` if the master is the flip-flop cell.
    #[must_use]
    pub fn is_flip_flop(&self) -> bool {
        self.master == "DFF"
    }
}

/// A parsed DEF file (the subset the merge flow consumes).
#[derive(Debug, Clone, PartialEq)]
pub struct DefDesign {
    name: String,
    die_width: Length,
    die_height: Length,
    components: Vec<DefComponent>,
}

impl DefDesign {
    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Die width.
    #[must_use]
    pub fn die_width(&self) -> Length {
        self.die_width
    }

    /// Die height.
    #[must_use]
    pub fn die_height(&self) -> Length {
        self.die_height
    }

    /// All placed components.
    #[must_use]
    pub fn cells(&self) -> &[DefComponent] {
        &self.components
    }

    /// The placed flip-flops.
    pub fn flip_flops(&self) -> impl Iterator<Item = &DefComponent> {
        self.components.iter().filter(|c| c.is_flip_flop())
    }
}

/// Error produced by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDefError {
    line: usize,
    what: String,
}

impl fmt::Display for ParseDefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DEF parse error at line {}: {}", self.line, self.what)
    }
}

impl Error for ParseDefError {}

/// Parses the DEF subset produced by [`write()`](write()) (and tolerant of extra
/// whitespace).
///
/// # Errors
///
/// Returns [`ParseDefError`] on malformed component or die-area lines,
/// or when mandatory sections are missing.
pub fn parse(text: &str) -> Result<DefDesign, ParseDefError> {
    let mut name = None;
    let mut die = None;
    let mut components = Vec::new();
    let mut in_components = false;
    let from_dbu = |raw: &str, line: usize| -> Result<Length, ParseDefError> {
        raw.parse::<f64>()
            .map(|v| Length::from_micro_meters(v / DBU_PER_MICRON))
            .map_err(|_| ParseDefError {
                line,
                what: format!("bad coordinate {raw}"),
            })
    };

    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty() {
            continue;
        }
        match tokens[0] {
            "DESIGN" if tokens.len() >= 2 && name.is_none() => {
                name = Some(tokens[1].to_owned());
            }
            "DIEAREA" => {
                // DIEAREA ( 0 0 ) ( W H ) ;
                let numbers: Vec<&str> = tokens
                    .iter()
                    .filter(|t| t.chars().all(|c| c.is_ascii_digit()))
                    .copied()
                    .collect();
                if numbers.len() < 4 {
                    return Err(ParseDefError {
                        line: lineno + 1,
                        what: "DIEAREA needs four coordinates".into(),
                    });
                }
                die = Some((
                    from_dbu(numbers[2], lineno + 1)?,
                    from_dbu(numbers[3], lineno + 1)?,
                ));
            }
            "COMPONENTS" => in_components = true,
            "END" if tokens.get(1) == Some(&"COMPONENTS") => in_components = false,
            "-" if in_components => {
                // - name master + PLACED ( x y ) N ;
                if tokens.len() < 9 {
                    return Err(ParseDefError {
                        line: lineno + 1,
                        what: "short component line".into(),
                    });
                }
                let open = tokens.iter().position(|&t| t == "(").ok_or(ParseDefError {
                    line: lineno + 1,
                    what: "missing coordinates".into(),
                })?;
                components.push(DefComponent {
                    name: tokens[1].to_owned(),
                    master: tokens[2].to_owned(),
                    x: from_dbu(tokens[open + 1], lineno + 1)?,
                    y: from_dbu(tokens[open + 2], lineno + 1)?,
                });
            }
            _ => {}
        }
    }

    let name = name.ok_or(ParseDefError {
        line: 0,
        what: "missing DESIGN".into(),
    })?;
    let (die_width, die_height) = die.ok_or(ParseDefError {
        line: 0,
        what: "missing DIEAREA".into(),
    })?;
    Ok(DefDesign {
        name,
        die_width,
        die_height,
        components,
    })
}

/// Converts a parsed component back into the placer's cell type, when
/// the master matches a library kind.
#[must_use]
pub fn component_kind(component: &DefComponent) -> Option<CellKind> {
    match component.master.as_str() {
        "INV" => Some(CellKind::Inv),
        "BUF" => Some(CellKind::Buf),
        "NAND2" => Some(CellKind::Nand2),
        "NOR2" => Some(CellKind::Nor2),
        "AND2" => Some(CellKind::And2),
        "OR2" => Some(CellKind::Or2),
        "XOR2" => Some(CellKind::Xor2),
        "DFF" => Some(CellKind::Dff),
        _ => None,
    }
}

/// Keeps `PlacedCell` reachable for doc purposes.
#[doc(hidden)]
pub fn _placed_cell_ty(cell: &PlacedCell) -> &str {
    &cell.name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::{self, PlacerOptions};
    use netlist::{benchmarks, CellLibrary};

    fn placed() -> PlacedDesign {
        let n = benchmarks::generate(benchmarks::by_name("s344").unwrap());
        placer::place(&n, &CellLibrary::n40(), &PlacerOptions::default())
    }

    #[test]
    fn round_trip_preserves_everything_relevant() {
        let design = placed();
        let text = write(&design);
        let parsed = parse(&text).expect("parse");
        assert_eq!(parsed.name(), "s344");
        assert_eq!(parsed.cells().len(), design.cells().len());
        assert_eq!(parsed.flip_flops().count(), design.flip_flops().count());
        // Coordinates survive to DBU precision (1 nm).
        for (a, b) in design.cells().iter().zip(parsed.cells()) {
            assert_eq!(a.name, b.name);
            assert!((a.x.meters() - b.x.meters()).abs() < 1e-9);
            assert!((a.y.meters() - b.y.meters()).abs() < 1e-9);
        }
        assert!(
            (parsed.die_width().meters() - design.floorplan().die_width().meters()).abs() < 1e-9
        );
    }

    #[test]
    fn def_text_has_the_expected_sections() {
        let text = write(&placed());
        assert!(text.contains("VERSION 5.8 ;"));
        assert!(text.contains("DESIGN s344 ;"));
        assert!(text.contains("DIEAREA"));
        assert!(text.contains("COMPONENTS"));
        assert!(text.contains("END COMPONENTS"));
        assert!(text.contains("DFF + PLACED"));
    }

    #[test]
    fn parse_rejects_missing_sections() {
        assert!(parse("VERSION 5.8 ;").is_err());
        let err = parse("DESIGN x ;").unwrap_err();
        assert!(err.to_string().contains("DIEAREA"));
    }

    #[test]
    fn parse_rejects_malformed_components() {
        let text = "DESIGN x ;\nDIEAREA ( 0 0 ) ( 100 100 ) ;\nCOMPONENTS 1 ;\n- a DFF ;\nEND COMPONENTS\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn master_names_map_to_kinds() {
        let c = DefComponent {
            name: "FF1".into(),
            master: "DFF".into(),
            x: Length::from_micro_meters(1.0),
            y: Length::from_micro_meters(2.0),
        };
        assert!(c.is_flip_flop());
        assert_eq!(component_kind(&c), Some(CellKind::Dff));
        let unknown = DefComponent {
            master: "WEIRD".into(),
            ..c
        };
        assert_eq!(component_kind(&unknown), None);
    }
}
