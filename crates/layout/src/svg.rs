//! SVG rendering of cell layouts (the repository's Fig. 8 equivalent).

use crate::geometry::{CellLayout, Layer, Rect};

/// Fill colour and opacity per layer, following conventional EDA
/// colouring (diffusion green, poly red, M1 blue, M2 violet).
fn style(layer: Layer) -> (&'static str, f64) {
    match layer {
        Layer::Outline => ("none", 1.0),
        Layer::Nwell => ("#fff7cc", 0.8),
        Layer::Pdiff => ("#7ccf6e", 0.85),
        Layer::Ndiff => ("#3e9e4f", 0.85),
        Layer::Poly => ("#d84a3a", 0.9),
        Layer::Metal1 => ("#3d6fd6", 0.55),
        Layer::Metal2 => ("#8e5bd0", 0.5),
        Layer::Mtj => ("#f2a93b", 0.95),
    }
}

/// Renders a cell layout to a standalone SVG document.
///
/// The drawing is scaled by `pixels_per_micron`; a title and the cell
/// area are printed above the geometry.
///
/// # Examples
///
/// ```
/// use layout::{DesignRules, cells, svg};
///
/// let layout = cells::proposed_2bit_layout(&DesignRules::n40());
/// let drawing = svg::render(&layout, 200.0);
/// assert!(drawing.starts_with("<svg"));
/// assert!(drawing.contains("NVLATCH2"));
/// ```
#[must_use]
pub fn render(layout: &CellLayout, pixels_per_micron: f64) -> String {
    let scale = pixels_per_micron;
    let w = layout.width().micro_meters() * scale;
    let h = layout.height().micro_meters() * scale;
    let header_h = 28.0;
    let margin = 10.0;
    let total_w = w + margin * 2.0;
    let total_h = h + header_h + margin;

    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{total_w:.0}\" \
         height=\"{total_h:.0}\" viewBox=\"0 0 {total_w:.1} {total_h:.1}\">\n"
    ));
    out.push_str(&format!(
        "  <text x=\"{margin}\" y=\"18\" font-family=\"monospace\" font-size=\"13\">\
         {} — {:.3} µm² ({:.3} × {:.3} µm)</text>\n",
        layout.name(),
        layout.area().square_micro_meters(),
        layout.width().micro_meters(),
        layout.height().micro_meters(),
    ));

    // Geometry, y-flipped so the VDD rail draws on top.
    let flip_y = |r: &Rect| header_h + (layout.height().micro_meters() - r.y - r.h) * scale;
    for rect in layout.rects() {
        let (fill, opacity) = style(rect.layer);
        let stroke = if rect.layer == Layer::Outline {
            " stroke=\"#222\" stroke-width=\"1.5\""
        } else {
            " stroke=\"none\""
        };
        out.push_str(&format!(
            "  <rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
             fill=\"{fill}\" fill-opacity=\"{opacity}\"{stroke}/>\n",
            margin + rect.x * scale,
            flip_y(rect),
            rect.w * scale,
            rect.h * scale,
        ));
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;
    use crate::rules::DesignRules;

    #[test]
    fn render_contains_all_layers() {
        let layout = cells::proposed_2bit_layout(&DesignRules::n40());
        let svg = render(&layout, 100.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Four MTJ pads → at least four orange rectangles.
        assert!(svg.matches("#f2a93b").count() >= 4);
        // Poly columns present.
        assert!(svg.contains("#d84a3a"));
        assert!(svg.contains("µm²"));
    }

    #[test]
    fn rect_count_matches_geometry() {
        let layout = cells::standard_1bit_layout(&DesignRules::n40());
        let svg = render(&layout, 100.0);
        let rect_count = svg.matches("<rect").count();
        assert_eq!(rect_count, layout.rects().len());
    }
}
