//! Cell description input to the layout generator.

use units::Length;

/// Which diffusion row a transistor occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Row {
    /// PMOS row (upper, in the n-well).
    P,
    /// NMOS row (lower).
    N,
}

/// One transistor of a cell: connectivity by net name plus drawn width.
#[derive(Debug, Clone, PartialEq)]
pub struct TransistorSpec {
    /// Instance name.
    pub name: String,
    /// Row assignment.
    pub row: Row,
    /// Gate net.
    pub gate: String,
    /// Source net.
    pub source: String,
    /// Drain net.
    pub drain: String,
    /// Drawn channel width.
    pub width: Length,
}

impl TransistorSpec {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: &str, row: Row, gate: &str, source: &str, drain: &str, width: Length) -> Self {
        Self {
            name: name.to_owned(),
            row,
            gate: gate.to_owned(),
            source: source.to_owned(),
            drain: drain.to_owned(),
            width,
        }
    }
}

/// One MTJ pillar in the back-end-of-line above the cell.
#[derive(Debug, Clone, PartialEq)]
pub struct MtjSpec {
    /// Instance name.
    pub name: String,
    /// Bottom-electrode net.
    pub bottom: String,
    /// Top-electrode net.
    pub top: String,
}

impl MtjSpec {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: &str, bottom: &str, top: &str) -> Self {
        Self {
            name: name.to_owned(),
            bottom: bottom.to_owned(),
            top: top.to_owned(),
        }
    }
}

/// A complete cell description.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Cell name.
    pub name: String,
    /// The transistors.
    pub transistors: Vec<TransistorSpec>,
    /// The MTJ pillars.
    pub mtjs: Vec<MtjSpec>,
}

impl CellSpec {
    /// Creates an empty cell spec.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            transistors: Vec::new(),
            mtjs: Vec::new(),
        }
    }

    /// The transistors of one row, preserving declaration order.
    #[must_use]
    pub fn row(&self, row: Row) -> Vec<&TransistorSpec> {
        self.transistors.iter().filter(|t| t.row == row).collect()
    }

    /// Total transistor count.
    #[must_use]
    pub fn transistor_count(&self) -> usize {
        self.transistors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_filter_by_polarity() {
        let mut spec = CellSpec::new("inv");
        spec.transistors.push(TransistorSpec::new(
            "MP",
            Row::P,
            "a",
            "vdd",
            "y",
            Length::from_nano_meters(400.0),
        ));
        spec.transistors.push(TransistorSpec::new(
            "MN",
            Row::N,
            "a",
            "gnd",
            "y",
            Length::from_nano_meters(200.0),
        ));
        assert_eq!(spec.transistor_count(), 2);
        assert_eq!(spec.row(Row::P).len(), 1);
        assert_eq!(spec.row(Row::N)[0].name, "MN");
    }
}
