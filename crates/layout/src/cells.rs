//! Concrete layouts of the two NV latch cells and the paper's published
//! areas.
//!
//! Table II's transistor counts ("excluding write components") and the
//! paper's statement that write drivers overlap the master/slave
//! circuitry imply the published **NV component** areas cover the read
//! path only. The specs here therefore come in two variants; the
//! read-path-only variant is the Table II / Table III quantity.
//!
//! One calibration anchors the generator to the paper: the NV-component
//! **edge margin** (well ties, MTJ BEOL enclosure keep-out, PD control
//! landing) is chosen so the 1-bit component width equals the paper's
//! published 1.675 µm — the same number the paper uses as half of its
//! 3.35 µm neighbour-merge threshold, which makes the system-level flow
//! self-consistent with the cell level.

use units::{Area, Length};

use crate::geometry::CellLayout;
use crate::rules::DesignRules;
use crate::spec::{CellSpec, MtjSpec, Row, TransistorSpec};

/// Areas published in the paper's Table II, for comparison against the
/// generator's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperAreas;

impl PaperAreas {
    /// Two standard 1-bit NV components, including spacing margin.
    #[must_use]
    pub fn standard_pair() -> Area {
        Area::from_square_micro_meters(5.635)
    }

    /// The proposed 2-bit NV component.
    #[must_use]
    pub fn proposed_2bit() -> Area {
        Area::from_square_micro_meters(3.696)
    }

    /// One standard 1-bit NV component (half the pair figure).
    #[must_use]
    pub fn standard_1bit() -> Area {
        Area::from_square_micro_meters(5.635 / 2.0)
    }

    /// The paper's neighbour-merge distance threshold: twice the 1-bit
    /// component width.
    #[must_use]
    pub fn merge_threshold() -> Length {
        Length::from_micro_meters(3.35)
    }

    /// The 1-bit NV component width implied by the merge threshold.
    #[must_use]
    pub fn standard_width() -> Length {
        Length::from_micro_meters(1.675)
    }
}

/// Edge margin calibrated so the 1-bit read-path component is exactly
/// [`PaperAreas::standard_width`] wide under the n40 rules (5 columns):
/// `(1.675 − 5 × 0.16) / 2`.
#[must_use]
pub fn nv_component_rules(base: &DesignRules) -> DesignRules {
    let mut rules = *base;
    let cols = 5.0;
    let margin =
        (PaperAreas::standard_width().micro_meters() - cols * base.poly_pitch.micro_meters()) / 2.0;
    rules.edge_margin = Length::from_micro_meters(margin);
    rules
}

fn nm(v: f64) -> Length {
    Length::from_nano_meters(v)
}

/// Spec of the standard 1-bit NV component (paper Fig. 2b read path),
/// optionally including the two tristate write drivers.
#[must_use]
pub fn standard_1bit_spec(include_write_drivers: bool) -> CellSpec {
    let mut s = CellSpec::new("NVLATCH1");
    let t = &mut s.transistors;
    // Read path (11 devices — Table II's per-bit count).
    t.push(TransistorSpec::new(
        "PCA",
        Row::P,
        "pc_b",
        "vdd",
        "q",
        nm(400.0),
    ));
    t.push(TransistorSpec::new(
        "PCB2",
        Row::P,
        "pc_b",
        "vdd",
        "qb",
        nm(400.0),
    ));
    t.push(TransistorSpec::new(
        "P1",
        Row::P,
        "qb",
        "vdd",
        "q",
        nm(400.0),
    ));
    t.push(TransistorSpec::new(
        "P2",
        Row::P,
        "q",
        "vdd",
        "qb",
        nm(400.0),
    ));
    t.push(TransistorSpec::new(
        "T1.MP",
        Row::P,
        "sen_b",
        "sl",
        "w1",
        nm(240.0),
    ));
    t.push(TransistorSpec::new(
        "T2.MP",
        Row::P,
        "sen_b",
        "sr",
        "w2",
        nm(240.0),
    ));
    t.push(TransistorSpec::new(
        "N1",
        Row::N,
        "qb",
        "sl",
        "q",
        nm(360.0),
    ));
    t.push(TransistorSpec::new(
        "N2",
        Row::N,
        "q",
        "sr",
        "qb",
        nm(360.0),
    ));
    t.push(TransistorSpec::new(
        "T1.MN",
        Row::N,
        "sen",
        "sl",
        "w1",
        nm(240.0),
    ));
    t.push(TransistorSpec::new(
        "T2.MN",
        Row::N,
        "sen",
        "sr",
        "w2",
        nm(240.0),
    ));
    t.push(TransistorSpec::new(
        "NEN",
        Row::N,
        "sen",
        "gnd",
        "wm",
        nm(480.0),
    ));
    if include_write_drivers {
        for (inv, input, out) in [("IA", "db", "w1"), ("IB", "d", "w2")] {
            let mid_p = format!("{inv}.mp");
            let mid_n = format!("{inv}.mn");
            t.push(TransistorSpec::new(
                &format!("{inv}.MPI"),
                Row::P,
                input,
                "vdd",
                &mid_p,
                nm(600.0),
            ));
            t.push(TransistorSpec::new(
                &format!("{inv}.MPE"),
                Row::P,
                "wen_b",
                &mid_p,
                out,
                nm(600.0),
            ));
            t.push(TransistorSpec::new(
                &format!("{inv}.MNE"),
                Row::N,
                "wen",
                &mid_n,
                out,
                nm(300.0),
            ));
            t.push(TransistorSpec::new(
                &format!("{inv}.MNI"),
                Row::N,
                input,
                "gnd",
                &mid_n,
                nm(300.0),
            ));
        }
    }
    s.mtjs.push(MtjSpec::new("MTJA", "w1", "wm"));
    s.mtjs.push(MtjSpec::new("MTJB", "wm", "w2"));
    s
}

/// Spec of the proposed 2-bit NV component (paper Fig. 5 read path),
/// optionally including the four tristate write drivers.
#[must_use]
pub fn proposed_2bit_spec(include_write_drivers: bool) -> CellSpec {
    let mut s = CellSpec::new("NVLATCH2");
    let t = &mut s.transistors;
    // Read path (16 devices — Table II's 2-bit count).
    t.push(TransistorSpec::new(
        "PCVA",
        Row::P,
        "pcv_b",
        "vdd",
        "q",
        nm(400.0),
    ));
    t.push(TransistorSpec::new(
        "PCVB2",
        Row::P,
        "pcv_b",
        "vdd",
        "qb",
        nm(400.0),
    ));
    t.push(TransistorSpec::new(
        "P1",
        Row::P,
        "qb",
        "tl",
        "q",
        nm(400.0),
    ));
    t.push(TransistorSpec::new(
        "P2",
        Row::P,
        "q",
        "tr",
        "qb",
        nm(400.0),
    ));
    t.push(TransistorSpec::new(
        "P3",
        Row::P,
        "sel_b",
        "vdd",
        "mt",
        nm(480.0),
    ));
    t.push(TransistorSpec::new(
        "P4",
        Row::P,
        "p4_b",
        "tr",
        "tl",
        nm(240.0),
    ));
    t.push(TransistorSpec::new(
        "T1.MP",
        Row::P,
        "ren_b",
        "nl",
        "a3",
        nm(240.0),
    ));
    t.push(TransistorSpec::new(
        "T2.MP",
        Row::P,
        "ren_b",
        "nr",
        "a4",
        nm(240.0),
    ));
    t.push(TransistorSpec::new(
        "PCGA",
        Row::N,
        "pcg",
        "gnd",
        "q",
        nm(400.0),
    ));
    t.push(TransistorSpec::new(
        "PCGB",
        Row::N,
        "pcg",
        "gnd",
        "qb",
        nm(400.0),
    ));
    t.push(TransistorSpec::new(
        "N1",
        Row::N,
        "qb",
        "nl",
        "q",
        nm(360.0),
    ));
    t.push(TransistorSpec::new(
        "N2",
        Row::N,
        "q",
        "nr",
        "qb",
        nm(360.0),
    ));
    t.push(TransistorSpec::new(
        "N3",
        Row::N,
        "ren",
        "gnd",
        "m",
        nm(480.0),
    ));
    t.push(TransistorSpec::new(
        "N4",
        Row::N,
        "n4",
        "nr",
        "nl",
        nm(240.0),
    ));
    t.push(TransistorSpec::new(
        "T1.MN",
        Row::N,
        "ren",
        "nl",
        "a3",
        nm(240.0),
    ));
    t.push(TransistorSpec::new(
        "T2.MN",
        Row::N,
        "ren",
        "nr",
        "a4",
        nm(240.0),
    ));
    if include_write_drivers {
        for (inv, input, out) in [
            ("I1", "d1", "tl"),
            ("I2", "d1b", "tr"),
            ("I3", "d0b", "a3"),
            ("I4", "d0", "a4"),
        ] {
            let mid_p = format!("{inv}.mp");
            let mid_n = format!("{inv}.mn");
            t.push(TransistorSpec::new(
                &format!("{inv}.MPI"),
                Row::P,
                input,
                "vdd",
                &mid_p,
                nm(600.0),
            ));
            t.push(TransistorSpec::new(
                &format!("{inv}.MPE"),
                Row::P,
                "wen_b",
                &mid_p,
                out,
                nm(600.0),
            ));
            t.push(TransistorSpec::new(
                &format!("{inv}.MNE"),
                Row::N,
                "wen",
                &mid_n,
                out,
                nm(300.0),
            ));
            t.push(TransistorSpec::new(
                &format!("{inv}.MNI"),
                Row::N,
                input,
                "gnd",
                &mid_n,
                nm(300.0),
            ));
        }
    }
    s.mtjs.push(MtjSpec::new("MTJ1", "tl", "mt"));
    s.mtjs.push(MtjSpec::new("MTJ2", "mt", "tr"));
    s.mtjs.push(MtjSpec::new("MTJ3", "a3", "m"));
    s.mtjs.push(MtjSpec::new("MTJ4", "m", "a4"));
    s
}

/// Spec of an n-bit banked NV word (the `cells::generator` banked arm):
/// the standard cell's shared PCSA core plus, per bit, two transmission
/// gates, a sense-enable footer and a complementary MTJ pair — `6 + 5n`
/// read-path transistors, `2n` MTJs, and 8 write-driver devices per bit
/// when included.
fn banked_word_spec(bits: usize, include_write_drivers: bool) -> CellSpec {
    let mut s = CellSpec::new(&format!("NVWORD{bits}"));
    let t = &mut s.transistors;
    // Shared PCSA core (6 devices).
    t.push(TransistorSpec::new(
        "PCA",
        Row::P,
        "pc_b",
        "vdd",
        "q",
        nm(400.0),
    ));
    t.push(TransistorSpec::new(
        "PCB2",
        Row::P,
        "pc_b",
        "vdd",
        "qb",
        nm(400.0),
    ));
    t.push(TransistorSpec::new(
        "P1",
        Row::P,
        "qb",
        "vdd",
        "q",
        nm(400.0),
    ));
    t.push(TransistorSpec::new(
        "P2",
        Row::P,
        "q",
        "vdd",
        "qb",
        nm(400.0),
    ));
    t.push(TransistorSpec::new(
        "N1",
        Row::N,
        "qb",
        "sl",
        "q",
        nm(360.0),
    ));
    t.push(TransistorSpec::new(
        "N2",
        Row::N,
        "q",
        "sr",
        "qb",
        nm(360.0),
    ));
    // Per-bit read branch (5 devices + MTJ pair).
    for i in 0..bits {
        let (w1, w2, wm) = (format!("w1_{i}"), format!("w2_{i}"), format!("wm_{i}"));
        let (sen, sen_b) = (format!("sen{i}"), format!("sen_b{i}"));
        t.push(TransistorSpec::new(
            &format!("T{i}A.MP"),
            Row::P,
            &sen_b,
            "sl",
            &w1,
            nm(240.0),
        ));
        t.push(TransistorSpec::new(
            &format!("T{i}B.MP"),
            Row::P,
            &sen_b,
            "sr",
            &w2,
            nm(240.0),
        ));
        t.push(TransistorSpec::new(
            &format!("T{i}A.MN"),
            Row::N,
            &sen,
            "sl",
            &w1,
            nm(240.0),
        ));
        t.push(TransistorSpec::new(
            &format!("T{i}B.MN"),
            Row::N,
            &sen,
            "sr",
            &w2,
            nm(240.0),
        ));
        t.push(TransistorSpec::new(
            &format!("NEN{i}"),
            Row::N,
            &sen,
            "gnd",
            &wm,
            nm(480.0),
        ));
        s.mtjs.push(MtjSpec::new(&format!("MTJA{i}"), &w1, &wm));
        s.mtjs.push(MtjSpec::new(&format!("MTJB{i}"), &wm, &w2));
    }
    if include_write_drivers {
        for i in 0..bits {
            for (inv, input, out) in [
                (format!("IA{i}"), format!("db{i}"), format!("w1_{i}")),
                (format!("IB{i}"), format!("d{i}"), format!("w2_{i}")),
            ] {
                let mid_p = format!("{inv}.mp");
                let mid_n = format!("{inv}.mn");
                t.push(TransistorSpec::new(
                    &format!("{inv}.MPI"),
                    Row::P,
                    &input,
                    "vdd",
                    &mid_p,
                    nm(600.0),
                ));
                t.push(TransistorSpec::new(
                    &format!("{inv}.MPE"),
                    Row::P,
                    "wen_b",
                    &mid_p,
                    &out,
                    nm(600.0),
                ));
                t.push(TransistorSpec::new(
                    &format!("{inv}.MNE"),
                    Row::N,
                    "wen",
                    &mid_n,
                    &out,
                    nm(300.0),
                ));
                t.push(TransistorSpec::new(
                    &format!("{inv}.MNI"),
                    Row::N,
                    &input,
                    "gnd",
                    &mid_n,
                    nm(300.0),
                ));
            }
        }
    }
    s
}

/// Spec of an n-bit NV word component, parametric in the bit count.
///
/// The family's legacy points return the hand-written specs (`bits = 1`
/// → [`standard_1bit_spec`], `bits = 2` → [`proposed_2bit_spec`]); other
/// widths return the banked generalization matching
/// `cells::generator`'s banked arm.
///
/// # Panics
///
/// Panics if `bits` is zero.
#[must_use]
pub fn word_spec(bits: usize, include_write_drivers: bool) -> CellSpec {
    assert!(bits > 0, "an NV word stores at least one bit");
    match bits {
        1 => standard_1bit_spec(include_write_drivers),
        2 => proposed_2bit_spec(include_write_drivers),
        _ => banked_word_spec(bits, include_write_drivers),
    }
}

/// Layout of an n-bit NV word component (read path, NV-calibrated
/// margins).
///
/// # Panics
///
/// Panics if `bits` is zero.
#[must_use]
pub fn word_layout(bits: usize, rules: &DesignRules) -> CellLayout {
    CellLayout::synthesize(&word_spec(bits, false), &nv_component_rules(rules))
}

/// NV-component area of an n-bit word — the Table II quantity,
/// generalized over the family.
///
/// # Panics
///
/// Panics if `bits` is zero.
#[must_use]
pub fn word_area(bits: usize, rules: &DesignRules) -> Area {
    word_layout(bits, rules).area()
}

/// Layout of the standard 1-bit NV component (read path, NV-calibrated
/// margins).
#[must_use]
pub fn standard_1bit_layout(rules: &DesignRules) -> CellLayout {
    CellLayout::synthesize(&standard_1bit_spec(false), &nv_component_rules(rules))
}

/// Layout of the proposed 2-bit NV component (read path, NV-calibrated
/// margins).
#[must_use]
pub fn proposed_2bit_layout(rules: &DesignRules) -> CellLayout {
    CellLayout::synthesize(&proposed_2bit_spec(false), &nv_component_rules(rules))
}

/// Area of two abutted standard 1-bit components (the Table II baseline
/// "two standard 1-bit latch" row: twice the width plus the minimum
/// spacing margin — one poly pitch between the cells).
#[must_use]
pub fn standard_pair_layout_area(rules: &DesignRules) -> Area {
    let one = standard_1bit_layout(rules);
    let spacing = rules.poly_pitch * 0.5;
    (one.width() * 2.0 + spacing) * one.height()
}

/// The neighbour-merge distance threshold derived from this generator's
/// own 1-bit component width (2× width, as the paper defines it).
#[must_use]
pub fn merge_threshold(rules: &DesignRules) -> Length {
    standard_1bit_layout(rules).width() * 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transistor_counts_match_table2() {
        assert_eq!(standard_1bit_spec(false).transistor_count(), 11);
        assert_eq!(proposed_2bit_spec(false).transistor_count(), 16);
        assert_eq!(standard_1bit_spec(true).transistor_count(), 19);
        assert_eq!(proposed_2bit_spec(true).transistor_count(), 32);
    }

    #[test]
    fn standard_width_matches_the_papers_implied_width() {
        let layout = standard_1bit_layout(&DesignRules::n40());
        let width = layout.width().micro_meters();
        assert!(
            (width - 1.675).abs() < 1e-9,
            "width = {width} µm (calibration anchor)"
        );
    }

    #[test]
    fn merge_threshold_matches_the_paper() {
        let t = merge_threshold(&DesignRules::n40());
        assert!((t.micro_meters() - 3.35).abs() < 1e-9, "{t}");
        assert!((PaperAreas::merge_threshold().micro_meters() - 3.35).abs() < 1e-12);
    }

    #[test]
    fn proposed_cell_is_smaller_than_the_pair() {
        let rules = DesignRules::n40();
        let pair = standard_pair_layout_area(&rules);
        let prop = proposed_2bit_layout(&rules).area();
        let saving = 1.0 - prop / pair;
        // Paper: 34 %. Shape requirement: a substantial (15–50 %) saving.
        assert!(
            (0.15..0.50).contains(&saving),
            "cell area saving = {:.1} % (pair {pair}, proposed {prop})",
            saving * 100.0
        );
    }

    #[test]
    fn generated_areas_are_near_the_published_ones() {
        let rules = DesignRules::n40();
        let pair = standard_pair_layout_area(&rules).square_micro_meters();
        let prop = proposed_2bit_layout(&rules).area().square_micro_meters();
        // Within 15 % of Table II's numbers.
        assert!((pair / 5.635 - 1.0).abs() < 0.15, "pair = {pair}");
        assert!((prop / 3.696 - 1.0).abs() < 0.15, "proposed = {prop}");
    }

    #[test]
    fn layouts_pass_the_geometry_check() {
        let rules = DesignRules::n40();
        for layout in [
            standard_1bit_layout(&rules),
            proposed_2bit_layout(&rules),
            CellLayout::synthesize(&proposed_2bit_spec(true), &nv_component_rules(&rules)),
        ] {
            assert!(layout.check().is_empty(), "{:?}", layout.check());
        }
    }

    #[test]
    fn mtj_pads_per_cell() {
        let rules = DesignRules::n40();
        assert_eq!(standard_1bit_layout(&rules).mtj_count(), 2);
        assert_eq!(proposed_2bit_layout(&rules).mtj_count(), 4);
    }

    #[test]
    fn write_drivers_enlarge_the_cell() {
        let rules = nv_component_rules(&DesignRules::n40());
        let without = CellLayout::synthesize(&proposed_2bit_spec(false), &rules);
        let with = CellLayout::synthesize(&proposed_2bit_spec(true), &rules);
        assert!(with.area() > without.area());
    }

    #[test]
    fn word_spec_reduces_to_the_legacy_specs() {
        for wd in [false, true] {
            assert_eq!(
                word_spec(1, wd).transistor_count(),
                standard_1bit_spec(wd).transistor_count()
            );
            assert_eq!(
                word_spec(2, wd).transistor_count(),
                proposed_2bit_spec(wd).transistor_count()
            );
        }
    }

    #[test]
    fn word_spec_counts_scale_with_bits() {
        for bits in [3, 4, 8] {
            assert_eq!(word_spec(bits, false).transistor_count(), 6 + 5 * bits);
            assert_eq!(word_spec(bits, true).transistor_count(), 6 + 13 * bits);
            assert_eq!(word_spec(bits, false).mtjs.len(), 2 * bits);
        }
    }

    #[test]
    fn word_layouts_pass_the_geometry_check_and_grow_sublinearly() {
        let rules = DesignRules::n40();
        let mut prev = word_area(1, &rules);
        for bits in [2, 4, 8] {
            let layout = word_layout(bits, &rules);
            assert!(layout.check().is_empty(), "{:?}", layout.check());
            let area = layout.area();
            assert!(area > prev, "{bits}-bit area {area} vs {prev}");
            // Sharing the sense amplifier keeps the word under `bits`
            // 1-bit components.
            assert!(
                area < word_area(1, &rules) * bits as f64,
                "{bits}-bit area {area}"
            );
            prev = area;
        }
    }
}
