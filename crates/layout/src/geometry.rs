//! Cell synthesis: from a [`CellSpec`] and [`DesignRules`] to placed
//! geometry with an area.

use units::{Area, Length};

use crate::chain::{chain_row, RowPlan};
use crate::rules::DesignRules;
use crate::spec::{CellSpec, Row};

/// Mask layers used by the generator (a deliberately small set — enough
/// for a recognizable 12-track cell plot up to M2, like the paper's
/// Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Cell boundary.
    Outline,
    /// N-well under the PMOS row.
    Nwell,
    /// PMOS diffusion.
    Pdiff,
    /// NMOS diffusion.
    Ndiff,
    /// Polysilicon gates.
    Poly,
    /// Metal 1 (rails and straps).
    Metal1,
    /// Metal 2 (control routing).
    Metal2,
    /// MTJ pillar landing pads in the BEOL.
    Mtj,
}

/// An axis-aligned rectangle in micrometres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Layer this rectangle belongs to.
    pub layer: Layer,
    /// Left edge, µm.
    pub x: f64,
    /// Bottom edge, µm.
    pub y: f64,
    /// Width, µm.
    pub w: f64,
    /// Height, µm.
    pub h: f64,
}

/// Where one transistor landed.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Instance name.
    pub name: String,
    /// Row.
    pub row: Row,
    /// Column index (0-based, left to right).
    pub column: usize,
}

/// A synthesized cell layout.
#[derive(Debug, Clone, PartialEq)]
pub struct CellLayout {
    name: String,
    width: Length,
    height: Length,
    rects: Vec<Rect>,
    placements: Vec<Placement>,
    p_plan: RowPlan,
    n_plan: RowPlan,
    mtj_count: usize,
}

impl CellLayout {
    /// Synthesizes the layout of `spec` under `rules`: chains both rows,
    /// sizes the cell to the wider row, and emits the geometry.
    #[must_use]
    pub fn synthesize(spec: &CellSpec, rules: &DesignRules) -> Self {
        let p_row: Vec<_> = spec.row(Row::P).into_iter().cloned().collect();
        let n_row: Vec<_> = spec.row(Row::N).into_iter().cloned().collect();
        let p_plan = chain_row(&p_row, rules);
        let n_plan = chain_row(&n_row, rules);
        let columns = p_plan.columns.max(n_plan.columns).max(1);
        let width = rules.cell_width(columns);
        let height = rules.cell_height();

        let wu = width.micro_meters();
        let hu = height.micro_meters();
        let pitch = rules.poly_pitch.micro_meters();
        let edge = rules.edge_margin.micro_meters();
        let rail = rules.track_pitch.micro_meters();

        let mut rects = vec![
            Rect {
                layer: Layer::Outline,
                x: 0.0,
                y: 0.0,
                w: wu,
                h: hu,
            },
            // Rails: VDD on top, GND on bottom, one track each.
            Rect {
                layer: Layer::Metal1,
                x: 0.0,
                y: hu - rail,
                w: wu,
                h: rail,
            },
            Rect {
                layer: Layer::Metal1,
                x: 0.0,
                y: 0.0,
                w: wu,
                h: rail,
            },
            // N-well covers the upper half.
            Rect {
                layer: Layer::Nwell,
                x: 0.0,
                y: hu * 0.5,
                w: wu,
                h: hu * 0.5,
            },
        ];

        // Diffusion strips sized to the occupied columns of each row.
        let p_cols = p_plan.columns.max(1);
        let n_cols = n_plan.columns.max(1);
        let diff_h = hu * 0.22;
        if !p_row.is_empty() {
            rects.push(Rect {
                layer: Layer::Pdiff,
                x: edge,
                y: hu * 0.60,
                w: pitch * p_cols as f64,
                h: diff_h,
            });
        }
        if !n_row.is_empty() {
            rects.push(Rect {
                layer: Layer::Ndiff,
                x: edge,
                y: hu * 0.18,
                w: pitch * n_cols as f64,
                h: diff_h,
            });
        }
        // Poly columns across both rows.
        for c in 0..columns {
            rects.push(Rect {
                layer: Layer::Poly,
                x: edge + pitch * (c as f64 + 0.35),
                y: hu * 0.12,
                w: pitch * 0.3,
                h: hu * 0.76,
            });
        }
        // A couple of M2 control straps (horizontal), as in the 12-track
        // template.
        for k in [4.0, 7.0] {
            rects.push(Rect {
                layer: Layer::Metal2,
                x: 0.05,
                y: rail * k,
                w: wu - 0.1,
                h: rail * 0.5,
            });
        }
        // MTJ pads spread along the top half (they live above the
        // transistors and consume no extra cell width as long as they
        // fit; the generator asserts they do).
        let pad = rules.mtj_pad.micro_meters();
        let n_mtj = spec.mtjs.len();
        for (k, _mtj) in spec.mtjs.iter().enumerate() {
            let slot = wu / (n_mtj as f64 + 1.0);
            rects.push(Rect {
                layer: Layer::Mtj,
                x: slot * (k as f64 + 1.0) - pad / 2.0,
                y: hu * 0.5 - pad / 2.0,
                w: pad,
                h: pad,
            });
        }

        // Record placements: walk the chains column by column.
        let mut placements = Vec::new();
        for (plan, row_devs, row) in [(&p_plan, &p_row, Row::P), (&n_plan, &n_row, Row::N)] {
            let mut col = 0usize;
            for chain in &plan.chains {
                for placed in &chain.devices {
                    placements.push(Placement {
                        name: row_devs[placed.index].name.clone(),
                        row,
                        column: col,
                    });
                    col += 1;
                }
                col += rules.break_columns;
            }
        }

        Self {
            name: spec.name.clone(),
            width,
            height,
            rects,
            placements,
            p_plan,
            n_plan,
            mtj_count: n_mtj,
        }
    }

    /// Cell name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell width.
    #[must_use]
    pub fn width(&self) -> Length {
        self.width
    }

    /// Cell height.
    #[must_use]
    pub fn height(&self) -> Length {
        self.height
    }

    /// Cell area (width × height).
    #[must_use]
    pub fn area(&self) -> Area {
        self.width * self.height
    }

    /// The generated geometry.
    #[must_use]
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Where each transistor landed.
    #[must_use]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Chaining result of the PMOS row.
    #[must_use]
    pub fn p_plan(&self) -> &RowPlan {
        &self.p_plan
    }

    /// Chaining result of the NMOS row.
    #[must_use]
    pub fn n_plan(&self) -> &RowPlan {
        &self.n_plan
    }

    /// Number of MTJ pads placed.
    #[must_use]
    pub fn mtj_count(&self) -> usize {
        self.mtj_count
    }

    /// Lightweight design-rule sanity check: geometry within the
    /// outline, MTJ pads non-overlapping, rails present.
    #[must_use]
    pub fn check(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let wu = self.width.micro_meters();
        let hu = self.height.micro_meters();
        for r in &self.rects {
            if r.x < -1e-9 || r.y < -1e-9 || r.x + r.w > wu + 1e-9 || r.y + r.h > hu + 1e-9 {
                violations.push(format!(
                    "{:?} rect at ({:.3},{:.3}) size ({:.3}×{:.3}) escapes the outline",
                    r.layer, r.x, r.y, r.w, r.h
                ));
            }
        }
        let mtjs: Vec<&Rect> = self
            .rects
            .iter()
            .filter(|r| r.layer == Layer::Mtj)
            .collect();
        for (i, a) in mtjs.iter().enumerate() {
            for b in mtjs.iter().skip(i + 1) {
                let overlap_x = a.x < b.x + b.w && b.x < a.x + a.w;
                let overlap_y = a.y < b.y + b.h && b.y < a.y + a.h;
                if overlap_x && overlap_y {
                    violations.push("overlapping MTJ pads".to_owned());
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MtjSpec, TransistorSpec};

    fn inverter_spec() -> CellSpec {
        let mut spec = CellSpec::new("inv");
        spec.transistors.push(TransistorSpec::new(
            "MP",
            Row::P,
            "a",
            "vdd",
            "y",
            Length::from_nano_meters(400.0),
        ));
        spec.transistors.push(TransistorSpec::new(
            "MN",
            Row::N,
            "a",
            "gnd",
            "y",
            Length::from_nano_meters(200.0),
        ));
        spec
    }

    #[test]
    fn inverter_is_one_column() {
        let layout = CellLayout::synthesize(&inverter_spec(), &DesignRules::n40());
        assert_eq!(layout.p_plan().columns, 1);
        assert_eq!(layout.n_plan().columns.max(1), 1);
        let expected_w = DesignRules::n40().cell_width(1);
        assert_eq!(layout.width(), expected_w);
        assert!(layout.check().is_empty(), "{:?}", layout.check());
        assert_eq!(layout.placements().len(), 2);
        assert_eq!(layout.name(), "inv");
    }

    #[test]
    fn area_is_width_times_height() {
        let layout = CellLayout::synthesize(&inverter_spec(), &DesignRules::n40());
        let a = layout.area().square_micro_meters();
        let expect = layout.width().micro_meters() * layout.height().micro_meters();
        assert!((a - expect).abs() < 1e-12);
    }

    #[test]
    fn mtj_pads_render_without_overlap() {
        let mut spec = inverter_spec();
        for k in 0..4 {
            spec.mtjs.push(MtjSpec::new(&format!("X{k}"), "a", "b"));
        }
        // Wider cell so four pads fit.
        for k in 0..6 {
            spec.transistors.push(TransistorSpec::new(
                &format!("MF{k}"),
                Row::P,
                &format!("g{k}"),
                &format!("s{k}"),
                &format!("d{k}"),
                Length::from_nano_meters(400.0),
            ));
        }
        let layout = CellLayout::synthesize(&spec, &DesignRules::n40());
        assert_eq!(layout.mtj_count(), 4);
        assert!(layout.check().is_empty(), "{:?}", layout.check());
    }

    #[test]
    fn empty_cell_has_minimum_width() {
        let layout = CellLayout::synthesize(&CellSpec::new("empty"), &DesignRules::n40());
        assert_eq!(layout.width(), DesignRules::n40().cell_width(1));
        assert!(layout.placements().is_empty());
    }
}
