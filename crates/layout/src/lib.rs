//! Procedural standard-cell layout for the non-volatile latch cells.
//!
//! The paper develops Cadence Virtuoso layouts (12-track cells, metal up
//! to M2) to compare the area of the standard 1-bit and proposed 2-bit
//! NV components. This crate reproduces that flow procedurally:
//!
//! 1. a cell is described as a [`CellSpec`] — transistors with their
//!    row (PMOS/NMOS), net connectivity and widths, plus the MTJ devices
//!    that sit in the back-end-of-line above the transistors;
//! 2. [`chain`] orders each row's transistors into diffusion-sharing
//!    chains (the classic Uehara–van Cleemput style left-edge heuristic),
//!    folding narrow device pairs into shared columns;
//! 3. [`CellLayout::synthesize`] places the chains on a track grid under
//!    a [`DesignRules`] set calibrated to a 40 nm process, producing
//!    rectangles per layer, the cell outline, and therefore the area;
//! 4. [`svg`] renders the result (the repository's Fig. 8 equivalent).
//!
//! [`cells`] holds the concrete specs of the two latch designs and the
//! paper's published areas for comparison.
//!
//! # Examples
//!
//! ```
//! use layout::{DesignRules, cells};
//!
//! let rules = DesignRules::n40();
//! let two_standard = cells::standard_pair_layout_area(&rules);
//! let proposed = cells::proposed_2bit_layout(&rules).area();
//! assert!(proposed < two_standard); // the paper's headline area claim
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod chain;
pub mod geometry;
pub mod lef;
pub mod rules;
pub mod spec;
pub mod svg;

pub use cells::PaperAreas;
pub use geometry::{CellLayout, Layer, Rect};
pub use rules::DesignRules;
pub use spec::{CellSpec, MtjSpec, Row, TransistorSpec};
