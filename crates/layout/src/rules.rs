//! Design rules of the target process, reduced to the handful of
//! quantities a track-based cell generator needs.

use units::Length;

/// Standard-cell design rules.
///
/// The defaults ([`DesignRules::n40`]) describe a 40 nm-class process:
/// 160 nm contacted poly pitch, 140 nm metal track pitch and a 12-track
/// cell, matching the paper's layout setup ("12 tracks, which uses up to
/// M2").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignRules {
    /// Contacted poly pitch — the width of one transistor column.
    pub poly_pitch: Length,
    /// Routing track pitch (M1/M2).
    pub track_pitch: Length,
    /// Cell height in routing tracks.
    pub cell_height_tracks: usize,
    /// Per-side cell edge margin (boundary half-spacing + well tie).
    pub edge_margin: Length,
    /// Extra columns inserted at a diffusion break between chains
    /// (0 on processes that allow single-dummy-gate abutment).
    pub break_columns: usize,
    /// Maximum device width that may share a folded column with another
    /// equally narrow device in the same row.
    pub fold_width_limit: Length,
    /// Diameter budget of one MTJ landing pad in the BEOL (the MTJ pillar
    /// plus its enclosure); MTJs consume no front-end area but bound how
    /// many fit above a cell.
    pub mtj_pad: Length,
}

impl DesignRules {
    /// 40 nm-class rules used throughout the reproduction.
    #[must_use]
    pub fn n40() -> Self {
        Self {
            poly_pitch: Length::from_nano_meters(160.0),
            track_pitch: Length::from_nano_meters(140.0),
            cell_height_tracks: 12,
            edge_margin: Length::from_nano_meters(40.0),
            break_columns: 0,
            fold_width_limit: Length::from_nano_meters(300.0),
            mtj_pad: Length::from_nano_meters(120.0),
        }
    }

    /// Cell height: tracks × track pitch.
    #[must_use]
    pub fn cell_height(&self) -> Length {
        self.track_pitch * self.cell_height_tracks as f64
    }

    /// Cell width for a given number of transistor columns.
    #[must_use]
    pub fn cell_width(&self, columns: usize) -> Length {
        self.poly_pitch * columns as f64 + self.edge_margin * 2.0
    }
}

impl Default for DesignRules {
    fn default() -> Self {
        Self::n40()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n40_cell_height_is_12_tracks() {
        let r = DesignRules::n40();
        assert_eq!(r.cell_height_tracks, 12);
        assert!((r.cell_height().micro_meters() - 1.68).abs() < 1e-9);
    }

    #[test]
    fn width_scales_with_columns() {
        let r = DesignRules::n40();
        let w10 = r.cell_width(10);
        let w16 = r.cell_width(16);
        assert!((w10.micro_meters() - 1.68).abs() < 1e-9);
        assert!(w16 > w10);
        assert!(((w16 - w10).micro_meters() - 6.0 * 0.16).abs() < 1e-9);
    }
}
