//! Diffusion-sharing transistor chaining.
//!
//! Transistors placed side by side in a row can share a source/drain
//! diffusion when the abutting terminals are the same net — the classic
//! optimization of Uehara & van Cleemput. This module implements the
//! greedy variant: grow each chain left and right while an unplaced
//! device can abut (flipping devices as needed), then start a new chain.
//! Columns are counted as one per placed gate plus the configured break
//! penalty between chains, minus folded pairs of narrow devices that
//! vertically share a column.

use crate::rules::DesignRules;
use crate::spec::TransistorSpec;

/// One placed transistor inside a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedDevice {
    /// Index into the row's device slice.
    pub index: usize,
    /// Whether source/drain were swapped to make the abutment work.
    pub flipped: bool,
}

/// A maximal run of diffusion-sharing transistors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Devices in left-to-right placement order.
    pub devices: Vec<PlacedDevice>,
}

/// The chaining result for one row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPlan {
    /// The chains, in placement order.
    pub chains: Vec<Chain>,
    /// Total columns occupied (gates + breaks − folds).
    pub columns: usize,
    /// Number of narrow-device pairs folded into shared columns.
    pub folded_pairs: usize,
}

/// Terminal nets of a device respecting its flip state:
/// returns `(left, right)`.
fn terminals(dev: &TransistorSpec, flipped: bool) -> (&str, &str) {
    if flipped {
        (&dev.drain, &dev.source)
    } else {
        (&dev.source, &dev.drain)
    }
}

/// Chains one row of transistors under the given rules.
///
/// # Examples
///
/// A NAND2's series NMOS pair shares its internal diffusion:
///
/// ```
/// use layout::{DesignRules, TransistorSpec, Row, chain};
/// use units::Length;
///
/// let w = Length::from_nano_meters(400.0);
/// let row = vec![
///     TransistorSpec::new("MN1", Row::N, "a", "y", "x", w),
///     TransistorSpec::new("MN2", Row::N, "b", "x", "gnd", w),
/// ];
/// let plan = chain::chain_row(&row, &DesignRules::n40());
/// assert_eq!(plan.chains.len(), 1);
/// assert_eq!(plan.columns, 2);
/// ```
#[must_use]
pub fn chain_row(devices: &[TransistorSpec], rules: &DesignRules) -> RowPlan {
    let mut unplaced: Vec<bool> = vec![true; devices.len()];
    let mut chains: Vec<Chain> = Vec::new();

    while let Some(seed) = unplaced.iter().position(|&u| u) {
        unplaced[seed] = false;
        let mut chain = vec![PlacedDevice {
            index: seed,
            flipped: false,
        }];
        let (mut left_net, mut right_net) = {
            let (l, r) = terminals(&devices[seed], false);
            (l.to_owned(), r.to_owned())
        };

        // Extend to the right, then to the left, until stuck.
        loop {
            let mut extended = false;
            // Rightward: next device's left terminal must equal right_net.
            if let Some((idx, flipped)) = find_abutting(devices, &unplaced, &right_net) {
                unplaced[idx] = false;
                right_net = terminals(&devices[idx], flipped).1.to_owned();
                chain.push(PlacedDevice {
                    index: idx,
                    flipped,
                });
                extended = true;
            }
            // Leftward: previous device's right terminal must equal left_net.
            if let Some((idx, flipped)) = find_abutting_right(devices, &unplaced, &left_net) {
                unplaced[idx] = false;
                left_net = terminals(&devices[idx], flipped).0.to_owned();
                chain.insert(
                    0,
                    PlacedDevice {
                        index: idx,
                        flipped,
                    },
                );
                extended = true;
            }
            if !extended {
                break;
            }
        }
        chains.push(Chain { devices: chain });
    }

    // Fold narrow devices pairwise: two devices of width ≤ the fold limit
    // can vertically share one column (split-diffusion stacking).
    let narrow = devices
        .iter()
        .filter(|d| d.width <= rules.fold_width_limit)
        .count();
    let folded_pairs = narrow / 2;

    let gates = devices.len();
    let breaks = chains.len().saturating_sub(1) * rules.break_columns;
    let columns = (gates + breaks).saturating_sub(folded_pairs);

    RowPlan {
        chains,
        columns,
        folded_pairs,
    }
}

/// Finds an unplaced device whose (possibly flipped) *left* terminal is
/// `net` — a rightward extension.
fn find_abutting(
    devices: &[TransistorSpec],
    unplaced: &[bool],
    net: &str,
) -> Option<(usize, bool)> {
    for (i, dev) in devices.iter().enumerate() {
        if !unplaced[i] {
            continue;
        }
        if dev.source == net {
            return Some((i, false));
        }
        if dev.drain == net {
            return Some((i, true));
        }
    }
    None
}

/// Finds an unplaced device whose (possibly flipped) *right* terminal is
/// `net` — a leftward extension.
fn find_abutting_right(
    devices: &[TransistorSpec],
    unplaced: &[bool],
    net: &str,
) -> Option<(usize, bool)> {
    for (i, dev) in devices.iter().enumerate() {
        if !unplaced[i] {
            continue;
        }
        if dev.drain == net {
            return Some((i, false));
        }
        if dev.source == net {
            return Some((i, true));
        }
    }
    None
}

/// Checks that a chain's internal abutments are net-consistent — the
/// invariant the greedy construction must maintain. Used by tests and
/// debug assertions.
#[must_use]
pub fn chain_is_consistent(devices: &[TransistorSpec], chain: &Chain) -> bool {
    chain.devices.windows(2).all(|pair| {
        let left = &devices[pair[0].index];
        let right = &devices[pair[1].index];
        terminals(left, pair[0].flipped).1 == terminals(right, pair[1].flipped).0
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Row;
    use units::Length;

    fn w(nm: f64) -> Length {
        Length::from_nano_meters(nm)
    }

    fn dev(name: &str, gate: &str, source: &str, drain: &str, width_nm: f64) -> TransistorSpec {
        TransistorSpec::new(name, Row::P, gate, source, drain, w(width_nm))
    }

    #[test]
    fn single_device_is_one_chain_one_column() {
        let row = vec![dev("M1", "a", "vdd", "y", 400.0)];
        let plan = chain_row(&row, &DesignRules::n40());
        assert_eq!(plan.chains.len(), 1);
        assert_eq!(plan.columns, 1);
        assert_eq!(plan.folded_pairs, 0);
    }

    #[test]
    fn series_stack_chains_fully() {
        // vdd -M1- x -M2- y -M3- gnd: one chain, three columns.
        let row = vec![
            dev("M1", "a", "vdd", "x", 400.0),
            dev("M2", "b", "x", "y", 400.0),
            dev("M3", "c", "y", "gnd", 400.0),
        ];
        let plan = chain_row(&row, &DesignRules::n40());
        assert_eq!(plan.chains.len(), 1);
        assert_eq!(plan.columns, 3);
        assert!(chain_is_consistent(&row, &plan.chains[0]));
    }

    #[test]
    fn parallel_devices_share_via_flipping() {
        // Two pull-ups vdd→y: chainable as y-M1-vdd-M2-y by flipping.
        let row = vec![
            dev("M1", "a", "vdd", "y", 400.0),
            dev("M2", "b", "vdd", "y", 400.0),
        ];
        let plan = chain_row(&row, &DesignRules::n40());
        assert_eq!(plan.chains.len(), 1);
        assert!(chain_is_consistent(&row, &plan.chains[0]));
    }

    #[test]
    fn disconnected_diffusions_break_chains() {
        let row = vec![
            dev("M1", "a", "n1", "n2", 400.0),
            dev("M2", "b", "n3", "n4", 400.0),
        ];
        let plan = chain_row(&row, &DesignRules::n40());
        assert_eq!(plan.chains.len(), 2);
        // break_columns = 0 on the n40 rules.
        assert_eq!(plan.columns, 2);

        let mut rules = DesignRules::n40();
        rules.break_columns = 1;
        let plan = chain_row(&row, &rules);
        assert_eq!(plan.columns, 3);
    }

    #[test]
    fn narrow_pairs_fold() {
        let row = vec![
            dev("M1", "a", "n1", "n2", 240.0),
            dev("M2", "b", "n3", "n4", 240.0),
            dev("M3", "c", "n5", "n6", 400.0),
        ];
        let plan = chain_row(&row, &DesignRules::n40());
        assert_eq!(plan.folded_pairs, 1);
        assert_eq!(plan.columns, 2); // 3 gates − 1 fold
    }

    #[test]
    fn empty_row_is_empty_plan() {
        let plan = chain_row(&[], &DesignRules::n40());
        assert!(plan.chains.is_empty());
        assert_eq!(plan.columns, 0);
    }

    #[test]
    fn all_devices_placed_exactly_once() {
        let row: Vec<TransistorSpec> = (0..10)
            .map(|i| {
                dev(
                    &format!("M{i}"),
                    &format!("g{i}"),
                    &format!("n{}", i % 3),
                    &format!("n{}", (i + 1) % 3),
                    400.0,
                )
            })
            .collect();
        let plan = chain_row(&row, &DesignRules::n40());
        let mut seen: Vec<usize> = plan
            .chains
            .iter()
            .flat_map(|c| c.devices.iter().map(|d| d.index))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        for c in &plan.chains {
            assert!(chain_is_consistent(&row, c));
        }
    }
}
