//! LEF (Library Exchange Format) abstract views of the generated cells
//! — the form a place-and-route tool consumes: cell size, site, and pin
//! shapes, without the full mask geometry.

use std::fmt::Write as _;

use crate::geometry::{CellLayout, Layer, Rect};

/// Pin description attached to a LEF macro.
#[derive(Debug, Clone, PartialEq)]
pub struct LefPin {
    /// Pin name.
    pub name: String,
    /// Direction: `INPUT`, `OUTPUT` or `INOUT`.
    pub direction: &'static str,
    /// Use class: `SIGNAL`, `POWER` or `GROUND`.
    pub use_class: &'static str,
}

impl LefPin {
    /// A signal input pin.
    #[must_use]
    pub fn input(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            direction: "INPUT",
            use_class: "SIGNAL",
        }
    }

    /// A signal output pin.
    #[must_use]
    pub fn output(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            direction: "OUTPUT",
            use_class: "SIGNAL",
        }
    }

    /// A supply pin.
    #[must_use]
    pub fn power(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            direction: "INOUT",
            use_class: "POWER",
        }
    }

    /// A ground pin.
    #[must_use]
    pub fn ground(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            direction: "INOUT",
            use_class: "GROUND",
        }
    }
}

/// Writes one LEF `MACRO` for a synthesized cell.
///
/// Pins are given simple one-track port rectangles spread along the
/// cell; the rails reuse the layout's Metal1 rail geometry.
///
/// # Examples
///
/// ```
/// use layout::{DesignRules, cells, lef};
///
/// let layout = cells::proposed_2bit_layout(&DesignRules::n40());
/// let pins = [lef::LefPin::input("D0"), lef::LefPin::output("Q0")];
/// let text = lef::write_macro(&layout, "CoreSite", &pins);
/// assert!(text.contains("MACRO NVLATCH2"));
/// assert!(text.contains("PIN D0"));
/// ```
#[must_use]
pub fn write_macro(layout: &CellLayout, site: &str, pins: &[LefPin]) -> String {
    let mut out = String::new();
    let w = layout.width().micro_meters();
    let h = layout.height().micro_meters();
    let _ = writeln!(out, "MACRO {}", layout.name());
    let _ = writeln!(out, "  CLASS CORE ;");
    let _ = writeln!(out, "  ORIGIN 0 0 ;");
    let _ = writeln!(out, "  SIZE {w:.4} BY {h:.4} ;");
    let _ = writeln!(out, "  SYMMETRY X Y ;");
    let _ = writeln!(out, "  SITE {site} ;");

    // Rails from the layout's Metal1 geometry.
    let rails: Vec<&Rect> = layout
        .rects()
        .iter()
        .filter(|r| r.layer == Layer::Metal1)
        .collect();
    for (name, rail) in ["VDD", "VSS"].iter().zip(rails.iter()) {
        let _ = writeln!(out, "  PIN {name}");
        let _ = writeln!(out, "    DIRECTION INOUT ;");
        let _ = writeln!(
            out,
            "    USE {} ;",
            if *name == "VDD" { "POWER" } else { "GROUND" }
        );
        let _ = writeln!(out, "    PORT");
        let _ = writeln!(
            out,
            "      LAYER metal1 ;\n      RECT {:.4} {:.4} {:.4} {:.4} ;",
            rail.x,
            rail.y,
            rail.x + rail.w,
            rail.y + rail.h
        );
        let _ = writeln!(out, "    END");
        let _ = writeln!(out, "  END {name}");
    }

    // Signal pins: one-track M2 landing pads spread along the cell.
    let pad = 0.07;
    for (k, pin) in pins.iter().enumerate() {
        let cx = w * (k as f64 + 1.0) / (pins.len() as f64 + 1.0);
        let cy = h * 0.5;
        let _ = writeln!(out, "  PIN {}", pin.name);
        let _ = writeln!(out, "    DIRECTION {} ;", pin.direction);
        let _ = writeln!(out, "    USE {} ;", pin.use_class);
        let _ = writeln!(out, "    PORT");
        let _ = writeln!(
            out,
            "      LAYER metal2 ;\n      RECT {:.4} {:.4} {:.4} {:.4} ;",
            cx - pad,
            cy - pad,
            cx + pad,
            cy + pad
        );
        let _ = writeln!(out, "    END");
        let _ = writeln!(out, "  END {}", pin.name);
    }
    let _ = writeln!(out, "END {}", layout.name());
    out
}

/// Writes a small LEF library: header, the core site, and the two NV
/// component macros with their natural pin lists.
#[must_use]
pub fn write_nv_library(rules: &crate::rules::DesignRules) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "VERSION 5.8 ;");
    let _ = writeln!(out, "BUSBITCHARS \"[]\" ;");
    let _ = writeln!(out, "DIVIDERCHAR \"/\" ;");
    let _ = writeln!(
        out,
        "SITE CoreSite\n  CLASS CORE ;\n  SIZE {:.4} BY {:.4} ;\nEND CoreSite",
        rules.poly_pitch.micro_meters(),
        rules.cell_height().micro_meters()
    );

    let single = crate::cells::standard_1bit_layout(rules);
    let pins_1 = [
        LefPin::input("D"),
        LefPin::output("Q"),
        LefPin::input("PD"),
        LefPin::input("CLK"),
    ];
    out.push_str(&write_macro(&single, "CoreSite", &pins_1));

    let shared = crate::cells::proposed_2bit_layout(rules);
    let pins_2 = [
        LefPin::input("D0"),
        LefPin::input("D1"),
        LefPin::output("Q0"),
        LefPin::output("Q1"),
        LefPin::input("PD"),
        LefPin::input("CLK"),
    ];
    out.push_str(&write_macro(&shared, "CoreSite", &pins_2));
    let _ = writeln!(out, "END LIBRARY");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;
    use crate::rules::DesignRules;

    #[test]
    fn macro_has_size_site_and_rails() {
        let layout = cells::standard_1bit_layout(&DesignRules::n40());
        let text = write_macro(&layout, "CoreSite", &[LefPin::input("D")]);
        assert!(text.contains("MACRO NVLATCH1"));
        assert!(text.contains("SIZE 1.6750 BY 1.6800 ;"));
        assert!(text.contains("SITE CoreSite ;"));
        assert!(text.contains("PIN VDD"));
        assert!(text.contains("USE GROUND ;"));
        assert!(text.contains("END NVLATCH1"));
    }

    #[test]
    fn pins_land_inside_the_cell() {
        let layout = cells::proposed_2bit_layout(&DesignRules::n40());
        let pins = [
            LefPin::input("D0"),
            LefPin::input("D1"),
            LefPin::output("Q0"),
        ];
        let text = write_macro(&layout, "CoreSite", &pins);
        let w = layout.width().micro_meters();
        for line in text.lines().filter(|l| l.trim_start().starts_with("RECT")) {
            let nums: Vec<f64> = line
                .split_whitespace()
                .filter_map(|t| t.trim_end_matches(';').parse().ok())
                .collect();
            assert_eq!(nums.len(), 4, "{line}");
            assert!(nums[0] >= -1e-9 && nums[2] <= w + 1e-9, "{line}");
        }
    }

    #[test]
    fn library_contains_both_macros_and_the_site() {
        let text = write_nv_library(&DesignRules::n40());
        assert!(text.starts_with("VERSION 5.8 ;"));
        assert!(text.contains("SITE CoreSite"));
        assert!(text.contains("MACRO NVLATCH1"));
        assert!(text.contains("MACRO NVLATCH2"));
        assert!(text.contains("PIN D1"));
        assert!(text.trim_end().ends_with("END LIBRARY"));
    }

    #[test]
    fn pin_constructors() {
        assert_eq!(LefPin::input("A").direction, "INPUT");
        assert_eq!(LefPin::output("Y").direction, "OUTPUT");
        assert_eq!(LefPin::power("VDD").use_class, "POWER");
        assert_eq!(LefPin::ground("VSS").use_class, "GROUND");
    }
}
