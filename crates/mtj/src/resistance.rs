//! Bias-dependent MTJ resistance.
//!
//! The parallel-state resistance of an MgO junction is nearly
//! bias-independent, while the anti-parallel resistance drops with bias
//! because inelastic tunnelling channels open up. The standard compact form
//! (used e.g. by Zhao et al., *Microelectronics Reliability* 2011, the
//! paper's sensing reference 28) expresses that as a TMR roll-off:
//!
//! ```text
//! TMR(V) = TMR(0) / (1 + V² / Vh²)
//! R_P(V)  = R_P(0)
//! R_AP(V) = R_P · (1 + TMR(V))
//! ```
//!
//! where `Vh` is the bias at which TMR has fallen to half its zero-bias
//! value (≈ 0.5 V for MgO junctions).

use core::fmt;

use units::{Resistance, Voltage};

use crate::params::MtjParams;

/// Magnetisation state of the free layer relative to the reference layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MtjState {
    /// Free layer parallel to the reference layer — low resistance,
    /// conventionally logic `0` in the latch designs.
    #[default]
    Parallel,
    /// Free layer anti-parallel to the reference layer — high resistance,
    /// conventionally logic `1`.
    AntiParallel,
}

impl MtjState {
    /// The opposite magnetisation state.
    ///
    /// # Examples
    ///
    /// ```
    /// use mtj::MtjState;
    /// assert_eq!(MtjState::Parallel.toggled(), MtjState::AntiParallel);
    /// assert_eq!(MtjState::AntiParallel.toggled(), MtjState::Parallel);
    /// ```
    #[must_use]
    pub fn toggled(self) -> Self {
        match self {
            Self::Parallel => Self::AntiParallel,
            Self::AntiParallel => Self::Parallel,
        }
    }

    /// Maps a stored logic bit to the state holding it under the
    /// convention used throughout the latch designs (`true` ⇒ AP).
    #[must_use]
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Self::AntiParallel
        } else {
            Self::Parallel
        }
    }

    /// Maps the state back to the logic bit it encodes (`AP` ⇒ `true`).
    #[must_use]
    pub fn to_bit(self) -> bool {
        matches!(self, Self::AntiParallel)
    }
}

impl fmt::Display for MtjState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Parallel => "P",
            Self::AntiParallel => "AP",
        })
    }
}

/// TMR at bias `v`: `TMR(0) / (1 + (V/Vh)²)`.
///
/// # Examples
///
/// ```
/// use mtj::MtjParams;
/// use units::Voltage;
///
/// let p = MtjParams::date2018();
/// let half = mtj::resistance::tmr_at(&p, p.tmr_half_bias());
/// assert!((half / p.tmr_zero_bias() - 0.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn tmr_at(params: &MtjParams, v: Voltage) -> f64 {
    let ratio = v.volts() / params.tmr_half_bias().volts();
    params.tmr_zero_bias() / (1.0 + ratio * ratio)
}

/// Resistance of the junction in `state` under bias `v`.
///
/// The bias enters only through the TMR roll-off, so the parallel state is
/// bias-independent and symmetric in the sign of `v`.
#[must_use]
pub fn resistance_at(params: &MtjParams, state: MtjState, v: Voltage) -> Resistance {
    match state {
        MtjState::Parallel => params.resistance_parallel(),
        MtjState::AntiParallel => params.resistance_parallel() * (1.0 + tmr_at(params, v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MtjParams {
        MtjParams::date2018()
    }

    #[test]
    fn zero_bias_matches_table() {
        let p = params();
        let rp = resistance_at(&p, MtjState::Parallel, Voltage::ZERO);
        let rap = resistance_at(&p, MtjState::AntiParallel, Voltage::ZERO);
        assert!((rp.kilo_ohms() - 5.0).abs() < 1e-12);
        assert!((rap.kilo_ohms() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn ap_resistance_falls_with_bias() {
        let p = params();
        let low = resistance_at(&p, MtjState::AntiParallel, Voltage::from_volts(0.1));
        let high = resistance_at(&p, MtjState::AntiParallel, Voltage::from_volts(0.9));
        assert!(high < low);
        // Parallel state is bias-independent.
        let rp0 = resistance_at(&p, MtjState::Parallel, Voltage::ZERO);
        let rp9 = resistance_at(&p, MtjState::Parallel, Voltage::from_volts(0.9));
        assert_eq!(rp0, rp9);
    }

    #[test]
    fn tmr_halves_at_half_bias_and_is_symmetric() {
        let p = params();
        let vh = p.tmr_half_bias();
        assert!((tmr_at(&p, vh) / p.tmr_zero_bias() - 0.5).abs() < 1e-12);
        assert!((tmr_at(&p, vh) - tmr_at(&p, -vh)).abs() < 1e-15);
    }

    #[test]
    fn ap_always_exceeds_p() {
        let p = params();
        for mv in (0..=1200).step_by(50) {
            let v = Voltage::from_milli_volts(f64::from(mv));
            assert!(
                resistance_at(&p, MtjState::AntiParallel, v)
                    > resistance_at(&p, MtjState::Parallel, v)
            );
        }
    }

    #[test]
    fn state_bit_round_trip() {
        assert_eq!(MtjState::from_bit(true), MtjState::AntiParallel);
        assert_eq!(MtjState::from_bit(false), MtjState::Parallel);
        assert!(MtjState::from_bit(true).to_bit());
        assert!(!MtjState::from_bit(false).to_bit());
        assert_eq!(MtjState::Parallel.toggled().toggled(), MtjState::Parallel);
    }

    #[test]
    fn display_names() {
        assert_eq!(MtjState::Parallel.to_string(), "P");
        assert_eq!(MtjState::AntiParallel.to_string(), "AP");
    }
}
