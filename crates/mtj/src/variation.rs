//! Process variation and corner models for the MTJ.
//!
//! The paper's corner methodology (Section IV-A): "we have considered ±3σ
//! variations for the product of Resistance-Area (RA), Tunnelling Magneto
//! Resistance (TMR) value and switching current". The σ fractions are not
//! published; the defaults here (4 % RA, 5 % TMR, 5 % switching current)
//! are typical of perpendicular MTJ statistics in the literature and are
//! fully overridable.

use core::fmt;
use std::error::Error;

use rand::{Rng, RngExt};

use crate::params::MtjParams;

/// Standard deviations (as fractions of the nominal) of the three varied
/// MTJ parameters, plus sampling and corner application.
///
/// # Examples
///
/// ```
/// use mtj::{MtjParams, VariationModel, MtjCorner};
///
/// let nominal = MtjParams::date2018();
/// let var = VariationModel::default();
/// let worst = var.at_corner(&nominal, MtjCorner::WorstRead);
/// // Worst read corner: less TMR → smaller sense margin.
/// assert!(worst.tmr_zero_bias() < nominal.tmr_zero_bias());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    sigma_ra: f64,
    sigma_tmr: f64,
    sigma_switching_current: f64,
}

impl VariationModel {
    /// Creates a variation model from per-parameter σ fractions.
    ///
    /// # Errors
    ///
    /// Returns [`VariationBoundsError`] if any σ is negative or large
    /// enough (≥ 1/3) that a −3σ excursion would reach a non-physical
    /// (zero or negative) parameter value.
    pub fn new(
        sigma_ra: f64,
        sigma_tmr: f64,
        sigma_switching_current: f64,
    ) -> Result<Self, VariationBoundsError> {
        for (name, sigma) in [
            ("RA", sigma_ra),
            ("TMR", sigma_tmr),
            ("switching current", sigma_switching_current),
        ] {
            if !(0.0..1.0 / 3.0).contains(&sigma) {
                return Err(VariationBoundsError { name, sigma });
            }
        }
        Ok(Self {
            sigma_ra,
            sigma_tmr,
            sigma_switching_current,
        })
    }

    /// σ fraction of the resistance–area product.
    #[must_use]
    pub fn sigma_ra(&self) -> f64 {
        self.sigma_ra
    }

    /// σ fraction of the zero-bias TMR.
    #[must_use]
    pub fn sigma_tmr(&self) -> f64 {
        self.sigma_tmr
    }

    /// σ fraction of the switching current.
    #[must_use]
    pub fn sigma_switching_current(&self) -> f64 {
        self.sigma_switching_current
    }

    /// Applies a deterministic corner: each varied parameter is shifted by
    /// the corner's signed σ multiple.
    #[must_use]
    pub fn at_corner(&self, nominal: &MtjParams, corner: MtjCorner) -> MtjParams {
        let (ra_sigmas, tmr_sigmas, isw_sigmas) = corner.sigma_shifts();
        nominal.perturbed(
            1.0 + ra_sigmas * self.sigma_ra,
            1.0 + tmr_sigmas * self.sigma_tmr,
            1.0 + isw_sigmas * self.sigma_switching_current,
        )
    }

    /// Draws one Monte-Carlo sample: independent Gaussian multipliers on
    /// the three varied parameters.
    pub fn sample<R: Rng + ?Sized>(&self, nominal: &MtjParams, rng: &mut R) -> MtjSample {
        let ra = 1.0 + self.sigma_ra * standard_normal(rng);
        let tmr = 1.0 + self.sigma_tmr * standard_normal(rng);
        let isw = 1.0 + self.sigma_switching_current * standard_normal(rng);
        // Clamp at a floor so a >3σ tail draw can never go non-physical.
        let floor = 1e-3;
        MtjSample {
            params: nominal.perturbed(ra.max(floor), tmr.max(floor), isw.max(floor)),
            ra_multiplier: ra.max(floor),
            tmr_multiplier: tmr.max(floor),
            switching_current_multiplier: isw.max(floor),
        }
    }
}

impl Default for VariationModel {
    /// The documented defaults: σ(RA) = 4 %, σ(TMR) = 5 %, σ(Isw) = 5 %.
    fn default() -> Self {
        Self::new(0.04, 0.05, 0.05).expect("default sigmas are in bounds")
    }
}

/// One Monte-Carlo draw of a perturbed device.
#[derive(Debug, Clone, PartialEq)]
pub struct MtjSample {
    /// The perturbed parameter set.
    pub params: MtjParams,
    /// Multiplier applied to the RA product (and hence Rp).
    pub ra_multiplier: f64,
    /// Multiplier applied to the zero-bias TMR.
    pub tmr_multiplier: f64,
    /// Multiplier applied to the critical/switching current.
    pub switching_current_multiplier: f64,
}

/// The ±3σ MTJ corners used for Table II's worst/typical/best columns.
///
/// "Worst" is defined from the **read path's** point of view, which is what
/// the paper's Table II reports: low TMR (small sense margin), high RA
/// (less read current, slower evaluation), high switching current (slower,
/// more energetic writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MtjCorner {
    /// −3σ TMR, +3σ RA, +3σ switching current.
    WorstRead,
    /// Nominal parameters.
    #[default]
    Typical,
    /// +3σ TMR, −3σ RA, −3σ switching current.
    BestRead,
}

impl MtjCorner {
    /// All three corners in worst → best order (Table II column order).
    pub const ALL: [Self; 3] = [Self::WorstRead, Self::Typical, Self::BestRead];

    /// Signed σ multiples applied to (RA, TMR, switching current).
    #[must_use]
    pub fn sigma_shifts(self) -> (f64, f64, f64) {
        match self {
            Self::WorstRead => (3.0, -3.0, 3.0),
            Self::Typical => (0.0, 0.0, 0.0),
            Self::BestRead => (-3.0, 3.0, -3.0),
        }
    }
}

impl fmt::Display for MtjCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::WorstRead => "worst",
            Self::Typical => "typical",
            Self::BestRead => "best",
        })
    }
}

/// Error returned when a σ fraction passed to [`VariationModel::new`] is
/// out of the physical range `[0, 1/3)`.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationBoundsError {
    name: &'static str,
    sigma: f64,
}

impl fmt::Display for VariationBoundsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sigma for {} is {}, outside the physical range [0, 1/3)",
            self.name, self.sigma
        )
    }
}

impl Error for VariationBoundsError {}

/// Standard normal deviate via the Box–Muller transform (rand 0.10 does
/// not bundle a normal distribution; `rand_distr` would be an extra
/// dependency for one function).
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_sigmas() {
        let v = VariationModel::default();
        assert!((v.sigma_ra() - 0.04).abs() < 1e-12);
        assert!((v.sigma_tmr() - 0.05).abs() < 1e-12);
        assert!((v.sigma_switching_current() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn out_of_bounds_sigma_rejected() {
        assert!(VariationModel::new(-0.01, 0.05, 0.05).is_err());
        let err = VariationModel::new(0.04, 0.4, 0.05).unwrap_err();
        assert!(err.to_string().contains("TMR"));
    }

    #[test]
    fn corners_shift_in_documented_directions() {
        let nominal = MtjParams::date2018();
        let v = VariationModel::default();
        let worst = v.at_corner(&nominal, MtjCorner::WorstRead);
        let typical = v.at_corner(&nominal, MtjCorner::Typical);
        let best = v.at_corner(&nominal, MtjCorner::BestRead);

        assert_eq!(typical, nominal);
        assert!(worst.tmr_zero_bias() < nominal.tmr_zero_bias());
        assert!(best.tmr_zero_bias() > nominal.tmr_zero_bias());
        assert!(worst.resistance_parallel() > nominal.resistance_parallel());
        assert!(best.resistance_parallel() < nominal.resistance_parallel());
        assert!(worst.critical_current() > nominal.critical_current());
        assert!(best.critical_current() < nominal.critical_current());
    }

    #[test]
    fn corner_magnitudes_are_three_sigma() {
        let nominal = MtjParams::date2018();
        let v = VariationModel::default();
        let worst = v.at_corner(&nominal, MtjCorner::WorstRead);
        let ra_shift = worst.resistance_parallel() / nominal.resistance_parallel();
        assert!((ra_shift - 1.12).abs() < 1e-9); // 1 + 3·0.04
        let tmr_shift = worst.tmr_zero_bias() / nominal.tmr_zero_bias();
        assert!((tmr_shift - 0.85).abs() < 1e-9); // 1 − 3·0.05
    }

    #[test]
    fn samples_are_centred_and_spread() {
        let nominal = MtjParams::date2018();
        let v = VariationModel::default();
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 4000;
        let samples: Vec<MtjSample> = (0..n).map(|_| v.sample(&nominal, &mut rng)).collect();
        let mean: f64 = samples.iter().map(|s| s.tmr_multiplier).sum::<f64>() / f64::from(n);
        let var: f64 = samples
            .iter()
            .map(|s| (s.tmr_multiplier - mean).powi(2))
            .sum::<f64>()
            / f64::from(n - 1);
        assert!((mean - 1.0).abs() < 0.005, "mean = {mean}");
        assert!((var.sqrt() - 0.05).abs() < 0.005, "sd = {}", var.sqrt());
    }

    #[test]
    fn samples_never_go_nonphysical() {
        // Even with the largest admissible sigma, the clamp keeps every
        // perturbed parameter positive.
        let nominal = MtjParams::date2018();
        let v = VariationModel::new(0.33, 0.33, 0.33).expect("in bounds");
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let s = v.sample(&nominal, &mut rng);
            assert!(s.params.resistance_parallel().ohms() > 0.0);
            assert!(s.params.tmr_zero_bias() > 0.0);
            assert!(s.params.critical_current().amps() > 0.0);
        }
    }

    #[test]
    fn corner_display_matches_table_headers() {
        assert_eq!(MtjCorner::WorstRead.to_string(), "worst");
        assert_eq!(MtjCorner::Typical.to_string(), "typical");
        assert_eq!(MtjCorner::BestRead.to_string(), "best");
        assert_eq!(MtjCorner::ALL.len(), 3);
    }

    #[test]
    fn standard_normal_has_unit_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / f64::from(n);
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / f64::from(n - 1);
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }
}
