//! Write-error-rate (WER) analysis.
//!
//! STT switching is stochastic: holding a drive current for a finite
//! pulse leaves a residual probability `exp(−t/τ(I))` that the free
//! layer has not reversed. The paper sizes its store phase with margin
//! ("reliable back-up"); this module quantifies that margin — the WER
//! as a function of pulse width and drive, and the inverse problem of
//! choosing a pulse for a target error rate.
//!
//! The Monte-Carlo kernel is **counter-seeded per trial**: trial `t` of
//! a campaign draws from a private `StdRng` seeded by
//! [`sweep::point_seed`]`(seed, t)`, and every trial integrates a
//! deterministic **integer** number of steps ([`trial_step_plan`]).
//! Together these make any trial computable independently of every
//! other — which is what lets the lane-batched engine in
//! [`crate::lanes`] run trials in lockstep and still return results
//! bit-identical to this scalar path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use units::{Current, Time};

use crate::device::{Mtj, WritePolarity};
use crate::params::MtjParams;
use crate::resistance::MtjState;
use crate::switching::SwitchingModel;

/// Probability that a single device fails to reverse under `current`
/// held for `pulse` — `exp(−t/τ)`.
///
/// # Examples
///
/// ```
/// use mtj::{MtjParams, SwitchingModel, wer};
/// use units::Time;
///
/// let p = MtjParams::date2018();
/// let m = SwitchingModel::new(&p);
/// let short = wer::write_error_rate(&m, p.nominal_write_current(), Time::from_nano_seconds(2.0));
/// let long = wer::write_error_rate(&m, p.nominal_write_current(), Time::from_nano_seconds(8.0));
/// assert!(long < short);
/// ```
#[must_use]
pub fn write_error_rate(model: &SwitchingModel, current: Current, pulse: Time) -> f64 {
    let tau = model.mean_switching_time(current).seconds();
    (-pulse.seconds() / tau).exp()
}

/// WER of a complementary-pair store: both devices of the pair must
/// reverse (worst-case data), so the pair fails if either does.
///
/// With single-device failure probability `s` the pair fails with
/// probability `1 − (1 − s)²`, computed here in the algebraically
/// equivalent form `s·(2 − s)`. The naive form cancels catastrophically
/// in the tail (`s ≲ 1e-16` rounds `1 − s` to exactly `1.0`, reporting
/// a zero pair WER) — and the tail is precisely the rare-event regime
/// reliability studies target.
#[must_use]
pub fn pair_write_error_rate(model: &SwitchingModel, current: Current, pulse: Time) -> f64 {
    let single = write_error_rate(model, current, pulse);
    single * (2.0 - single)
}

/// The shortest pulse meeting a target WER at the given drive:
/// `t = τ·ln(1/target)`.
///
/// # Panics
///
/// Panics unless `0 < target_wer < 1`.
#[must_use]
pub fn pulse_for_wer(model: &SwitchingModel, current: Current, target_wer: f64) -> Time {
    assert!(
        target_wer > 0.0 && target_wer < 1.0,
        "target WER must be in (0, 1), got {target_wer}"
    );
    let tau = model.mean_switching_time(current).seconds();
    Time::from_seconds(tau * (1.0 / target_wer).ln())
}

/// Nominal integration steps per stochastic write trial.
pub const TRIAL_STEPS: usize = 64;

/// Floor on the integration step — trials never step finer than 1 ps.
const MIN_STEP_SECONDS: f64 = 1e-12;

/// The integration plan of one stochastic write trial: the integer step
/// count and the uniform step width covering `pulse`.
///
/// A trial takes exactly [`TRIAL_STEPS`] steps of `pulse / TRIAL_STEPS`
/// whenever that step clears the 1 ps floor; shorter pulses fall back
/// to 1 ps steps, `⌈pulse / 1 ps⌉` of them. The count is computed by
/// integer arithmetic on the *ratio* — never by accumulating the step
/// in floating point and comparing against the pulse, which made the
/// per-trial draw count depend on the rounding of the pulse magnitude.
/// Rescaling a (floor-clear) pulse therefore never changes how many
/// RNG draws a trial consumes — the invariance the lane-batched versus
/// scalar differential tests rest on.
///
/// # Examples
///
/// ```
/// use mtj::wer::{trial_step_plan, TRIAL_STEPS};
/// use units::Time;
///
/// let (steps, step) = trial_step_plan(Time::from_nano_seconds(2.0));
/// assert_eq!(steps, TRIAL_STEPS);
/// assert!((step.seconds() * TRIAL_STEPS as f64 - 2.0e-9).abs() < 1e-21);
///
/// // A 10 ps pulse hits the 1 ps floor: 10 steps of 1 ps.
/// let (steps, step) = trial_step_plan(Time::from_pico_seconds(10.0));
/// assert_eq!(steps, 10);
/// assert_eq!(step.seconds(), 1e-12);
/// ```
#[must_use]
pub fn trial_step_plan(pulse: Time) -> (usize, Time) {
    let nominal = pulse.seconds() / TRIAL_STEPS as f64;
    if nominal >= MIN_STEP_SECONDS {
        (TRIAL_STEPS, Time::from_seconds(nominal))
    } else {
        let steps = (pulse.seconds().max(0.0) / MIN_STEP_SECONDS).ceil() as usize;
        (steps, Time::from_seconds(MIN_STEP_SECONDS))
    }
}

/// Probability that one stochastic write **trial** fails, conditioned on
/// the device's switching model — `exp(−(steps·step)/τ)` under the exact
/// integration plan of [`trial_step_plan`], with the trial preamble's
/// guards applied (a torque-less drive or a zero-step pulse fails with
/// certainty).
///
/// This is the Rao–Blackwellized ("smooth") form of [`write_trial`]: it
/// returns the trial's failure probability instead of a Bernoulli draw,
/// and is what the importance-sampling engine in [`crate::rare`]
/// integrates over the variation space. It matches the stepped trial's
/// distribution exactly — `(1 − p_step)^steps = exp(−steps·step/τ)` —
/// where [`write_error_rate`] uses the un-discretized pulse length and
/// no polarity guard.
#[must_use]
pub fn trial_failure_probability(model: &SwitchingModel, current: Current, pulse: Time) -> f64 {
    if WritePolarity::PositiveSetsAntiParallel.target_state(current) != Some(MtjState::AntiParallel)
    {
        return 1.0;
    }
    let (steps, step) = trial_step_plan(pulse);
    if steps == 0 {
        return 1.0;
    }
    let per_step = 1.0 - model.switch_probability(current, step);
    per_step.powi(i32::try_from(steps).unwrap_or(i32::MAX))
}

/// Outcome of one stochastic write trial — see [`write_trial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteTrial {
    /// Whether the free layer was still un-reversed when the pulse
    /// ended.
    pub failed: bool,
    /// RNG draws the trial consumed: one per executed step, zero when
    /// the drive exerts no switching torque.
    pub draws: usize,
}

/// Runs one stochastic write trial — a `Parallel` device driven toward
/// `AntiParallel` for `pulse` — stepping per [`trial_step_plan`] and
/// drawing one uniform per step from `rng` until the device reverses
/// or the pulse ends.
///
/// This is the scalar reference the lane-batched kernel
/// ([`crate::lanes`]) is differentially tested against; it is public so
/// property tests can pin its draw accounting directly.
pub fn write_trial<R: Rng + ?Sized>(
    params: &MtjParams,
    current: Current,
    pulse: Time,
    rng: &mut R,
) -> WriteTrial {
    write_trial_with_model(params, SwitchingModel::new(params), current, pulse, rng)
}

/// [`write_trial`] with an explicit switching model instead of the
/// self-calibrated `SwitchingModel::new(params)`.
///
/// Variation studies need this: a Monte-Carlo sample must be stepped
/// under a **reference-calibrated** model
/// ([`SwitchingModel::with_reference`]) or the per-sample recalibration
/// cancels the very `Ic` excursion being sampled. The draw pattern is
/// identical to [`write_trial`].
pub fn write_trial_with_model<R: Rng + ?Sized>(
    params: &MtjParams,
    model: SwitchingModel,
    current: Current,
    pulse: Time,
    rng: &mut R,
) -> WriteTrial {
    let mut device = Mtj::with_model(
        params.clone(),
        model,
        MtjState::Parallel,
        WritePolarity::PositiveSetsAntiParallel,
    );
    if device.polarity().target_state(current) != Some(MtjState::AntiParallel) {
        // Zero or reverse drive exerts no torque toward a reversal:
        // the trial fails without consuming a draw.
        return WriteTrial {
            failed: true,
            draws: 0,
        };
    }
    let (steps, step) = trial_step_plan(pulse);
    let mut draws = 0usize;
    for _ in 0..steps {
        draws += 1;
        if device.advance_stochastic(current, step, rng) {
            break;
        }
    }
    WriteTrial {
        failed: device.state() == MtjState::Parallel,
        draws,
    }
}

/// Counts stochastic write failures over `trials` attempted writes —
/// the kernel shared by [`monte_carlo_wer`] and the grid runner.
///
/// Trial `t` draws from a private `StdRng` seeded by
/// [`sweep::point_seed`]`(seed, t)`, so any trial's outcome is
/// independent of every other trial and of the batching strategy:
/// [`crate::lanes::count_write_failures_batched`] returns bit-identical
/// counts for every lane count.
#[must_use]
pub fn count_write_failures(
    params: &MtjParams,
    current: Current,
    pulse: Time,
    trials: usize,
    seed: u64,
) -> usize {
    let mut failures = 0usize;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(sweep::point_seed(seed, t as u64));
        if write_trial(params, current, pulse, &mut rng).failed {
            failures += 1;
        }
    }
    failures
}

/// Monte-Carlo estimate of the single-device WER by repeated stochastic
/// writes — the empirical cross-check of the analytic rate.
#[must_use]
pub fn monte_carlo_wer(
    params: &MtjParams,
    current: Current,
    pulse: Time,
    trials: usize,
    seed: u64,
) -> f64 {
    count_write_failures(params, current, pulse, trials, seed) as f64 / trials as f64
}

/// One Monte-Carlo WER estimate at a `(current, pulse)` grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WerEstimate {
    /// Drive current of this grid point.
    pub current: Current,
    /// Pulse width of this grid point.
    pub pulse: Time,
    /// Attempted writes.
    pub trials: usize,
    /// Writes that failed to reverse the free layer.
    pub failures: usize,
}

impl WerEstimate {
    /// The estimated write error rate, `failures / trials`.
    ///
    /// A zero-trial estimate carries no information, so it returns
    /// `NaN` — silently reporting `0.0` would claim perfect
    /// reliability from an empty campaign.
    #[must_use]
    pub fn wer(&self) -> f64 {
        if self.trials == 0 {
            f64::NAN
        } else {
            self.failures as f64 / self.trials as f64
        }
    }

    /// Two-sided **Wilson score** confidence interval on the estimated
    /// WER — the right interval for an unweighted Bernoulli count.
    ///
    /// Unlike the Wald interval `p̂ ± z·√(p̂(1−p̂)/n)`, Wilson stays
    /// inside `[0, 1]` and remains informative at zero observed
    /// failures (`lo = 0`, `hi ≈ z²/(n+z²)` — the rule-of-three
    /// regime), which is the typical state of a rare-event campaign's
    /// brute-force arm. Weighted (importance-sampled) estimates use the
    /// CLT-on-weights interval from [`crate::rare`] instead.
    ///
    /// A zero-trial estimate returns a `NaN` interval, mirroring
    /// [`Self::wer`].
    ///
    /// # Examples
    ///
    /// ```
    /// use mtj::wer::WerEstimate;
    /// use units::{Current, Time};
    ///
    /// let est = WerEstimate {
    ///     current: Current::from_micro_amps(70.0),
    ///     pulse: Time::from_nano_seconds(2.0),
    ///     trials: 1000,
    ///     failures: 3,
    /// };
    /// let ci = est.confidence_interval(0.99);
    /// assert!(ci.lo > 0.0 && ci.lo < est.wer() && est.wer() < ci.hi);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless `0 < confidence < 1`.
    #[must_use]
    pub fn confidence_interval(&self, confidence: f64) -> ConfidenceInterval {
        let z = crate::rare::z_for_confidence(confidence);
        if self.trials == 0 {
            return ConfidenceInterval {
                lo: f64::NAN,
                hi: f64::NAN,
                confidence,
            };
        }
        let n = self.trials as f64;
        let p = self.failures as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ConfidenceInterval {
            lo: (center - half).max(0.0),
            hi: (center + half).min(1.0),
            confidence,
        }
    }
}

/// A two-sided confidence interval `[lo, hi]` at the stated confidence
/// level — attached to both the brute-force Wilson intervals here and
/// the CLT-on-weights intervals of the importance-sampled estimates in
/// [`crate::rare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level in `(0, 1)`, e.g. `0.99`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Whether `value` lies inside the closed interval. `NaN` bounds
    /// (zero-sample estimates) contain nothing.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }

    /// Interval width, `hi − lo`.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Options for [`monte_carlo_wer_grid_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WerGridOptions {
    /// Attempted writes per grid point.
    pub trials: usize,
    /// Base seed of the campaign.
    pub seed: u64,
    /// Worker count (`0` = auto, `1` = serial on the calling thread).
    pub jobs: usize,
    /// SIMD lane count of the batched kernel (`0` = auto: `NVFF_LANES`
    /// or the built-in default, `1` = the scalar reference kernel).
    /// Results are bit-identical for every value.
    pub lanes: usize,
}

impl Default for WerGridOptions {
    fn default() -> Self {
        Self {
            trials: 1000,
            seed: 0,
            jobs: 0,
            lanes: 0,
        }
    }
}

/// Monte-Carlo WER over a `(current, pulse)` grid, fanned out over a
/// [`sweep`] worker pool with the lane-batched kernel inside each
/// worker (lanes × workers composed).
///
/// Each grid point runs its `trials` stochastic writes with per-trial
/// counter-derived seeds rooted at the point's [`sweep::point_seed`],
/// so the returned estimates are **bit-identical for every
/// `jobs` value and every `lanes` value**. Results come back in grid
/// order alongside the pool's [`sweep::RunSummary`].
pub fn monte_carlo_wer_grid_with(
    params: &MtjParams,
    points: &[(Current, Time)],
    opts: &WerGridOptions,
) -> (Vec<WerEstimate>, sweep::RunSummary) {
    let grid = sweep::Grid::with_seed(points.to_vec(), opts.seed);
    let pool = sweep::SweepOptions {
        jobs: opts.jobs,
        span_label: "mtj.wer_point",
        ..sweep::SweepOptions::default()
    };
    let trials = opts.trials;
    let lanes = opts.lanes;
    let outcome = sweep::run(&grid, &pool, |ctx, &(current, pulse)| WerEstimate {
        current,
        pulse,
        trials,
        failures: crate::lanes::count_write_failures_batched(
            params, current, pulse, trials, ctx.seed, lanes,
        ),
    });
    (outcome.results, outcome.summary)
}

/// Monte-Carlo WER over a `(current, pulse)` grid — the auto-lane form
/// of [`monte_carlo_wer_grid_with`].
///
/// # Examples
///
/// ```
/// use mtj::{wer, MtjParams};
/// use units::{Current, Time};
///
/// let p = MtjParams::date2018();
/// let points = vec![
///     (p.nominal_write_current(), Time::from_nano_seconds(2.0)),
///     (p.nominal_write_current(), Time::from_nano_seconds(6.0)),
/// ];
/// let (estimates, _) = wer::monte_carlo_wer_grid(&p, &points, 200, 17, 2);
/// assert!(estimates[1].wer() <= estimates[0].wer());
/// ```
pub fn monte_carlo_wer_grid(
    params: &MtjParams,
    points: &[(Current, Time)],
    trials: usize,
    seed: u64,
    jobs: usize,
) -> (Vec<WerEstimate>, sweep::RunSummary) {
    monte_carlo_wer_grid_with(
        params,
        points,
        &WerGridOptions {
            trials,
            seed,
            jobs,
            lanes: 0,
        },
    )
}

/// One row of a WER-vs-pulse characterization sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WerPoint {
    /// Pulse width.
    pub pulse: Time,
    /// Single-device analytic WER.
    pub single: f64,
    /// Complementary-pair analytic WER.
    pub pair: f64,
}

/// Sweeps the WER over pulse widths (the store-margin curve).
#[must_use]
pub fn sweep(model: &SwitchingModel, current: Current, pulses: &[Time]) -> Vec<WerPoint> {
    pulses
        .iter()
        .map(|&pulse| WerPoint {
            pulse,
            single: write_error_rate(model, current, pulse),
            pair: pair_write_error_rate(model, current, pulse),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MtjParams, SwitchingModel) {
        let p = MtjParams::date2018();
        let m = SwitchingModel::new(&p);
        (p, m)
    }

    #[test]
    fn wer_decays_exponentially_with_pulse() {
        let (p, m) = setup();
        let i = p.nominal_write_current();
        let tau = m.mean_switching_time(i);
        let w1 = write_error_rate(&m, i, tau);
        let w2 = write_error_rate(&m, i, tau * 2.0);
        assert!((w1 - (-1.0f64).exp()).abs() < 1e-12);
        assert!((w2 - w1 * w1).abs() < 1e-12); // exp(-2) = exp(-1)²
    }

    #[test]
    fn pair_wer_is_worse_than_single() {
        let (p, m) = setup();
        let i = p.nominal_write_current();
        let pulse = Time::from_nano_seconds(4.0);
        let single = write_error_rate(&m, i, pulse);
        let pair = pair_write_error_rate(&m, i, pulse);
        assert!(pair > single);
        assert!(pair < 2.0 * single + 1e-12);
    }

    #[test]
    fn pair_wer_survives_the_tail_regime() {
        // Regression: the naive 1 − (1 − s)² rounds to 0 once
        // s < 2⁻⁵³ ≈ 1.1e-16 (1 − s collapses to exactly 1.0). The
        // rewritten s·(2 − s) keeps full relative precision: in the
        // tail the pair WER is 2s to within one part in 1e16.
        let (p, m) = setup();
        let i = p.nominal_write_current();
        for target in [1e-15, 1e-18, 1e-21] {
            let pulse = pulse_for_wer(&m, i, target);
            let single = write_error_rate(&m, i, pulse);
            assert!(single > 0.0 && single < 2e-15, "single = {single}");
            let pair = pair_write_error_rate(&m, i, pulse);
            assert!(pair > 0.0, "tail pair WER must not round to zero");
            assert!(
                (pair / (2.0 * single) - 1.0).abs() < 1e-12,
                "pair {pair} vs 2·single {}",
                2.0 * single
            );
            // The naive form loses the value entirely down here.
            let naive = 1.0 - (1.0 - single) * (1.0 - single);
            if single < 5e-17 {
                assert_eq!(naive, 0.0, "tail premise: naive form cancels");
            }
        }
    }

    #[test]
    fn pulse_for_wer_inverts_the_rate() {
        let (p, m) = setup();
        let i = p.nominal_write_current();
        for target in [1e-3, 1e-6, 1e-9] {
            let pulse = pulse_for_wer(&m, i, target);
            let achieved = write_error_rate(&m, i, pulse);
            assert!((achieved / target - 1.0).abs() < 1e-9, "{target}");
        }
        // 1e-9 at the nominal drive needs ~20.7 τ ≈ 41 ns.
        let pulse = pulse_for_wer(&m, i, 1e-9);
        assert!((pulse.nano_seconds() - 41.4).abs() < 1.0, "{pulse}");
    }

    #[test]
    fn stronger_drive_needs_shorter_pulses() {
        let (_, m) = setup();
        let weak = pulse_for_wer(&m, Current::from_micro_amps(55.0), 1e-6);
        let strong = pulse_for_wer(&m, Current::from_micro_amps(90.0), 1e-6);
        assert!(strong < weak);
    }

    #[test]
    fn step_plan_is_pulse_scale_invariant_above_the_floor() {
        // The committed regression for the float-accumulation bug: the
        // per-trial step count must not depend on the magnitude of the
        // pulse. (The old `elapsed += step; elapsed < pulse` loop took
        // 64 or 65 draws depending on rounding.)
        for exponent in -10..=-4 {
            for mantissa in [1.0, 1.3, 2.0, 3.7, 5.0, 7.77, 9.99] {
                let pulse = Time::from_seconds(mantissa * 10f64.powi(exponent));
                let (steps, step) = trial_step_plan(pulse);
                assert_eq!(steps, TRIAL_STEPS, "pulse {pulse}");
                assert!(
                    (step.seconds() * TRIAL_STEPS as f64 / pulse.seconds() - 1.0).abs() < 1e-12
                );
            }
        }
    }

    #[test]
    fn step_plan_floors_at_one_picosecond() {
        let (steps, step) = trial_step_plan(Time::from_pico_seconds(3.0));
        assert_eq!(steps, 3);
        assert_eq!(step.seconds(), 1e-12);
        let (steps, step) = trial_step_plan(Time::from_pico_seconds(2.5));
        assert_eq!(steps, 3); // ceil covers the whole pulse
        assert_eq!(step.seconds(), 1e-12);
        let (steps, _) = trial_step_plan(Time::ZERO);
        assert_eq!(steps, 0);
    }

    #[test]
    fn write_trial_accounts_its_draws() {
        let (p, _) = setup();
        let i = p.nominal_write_current();
        // A far-sub-critical drive (τ astronomically long): the trial
        // runs — and draws on — all 64 steps, then fails.
        let mut rng = StdRng::seed_from_u64(3);
        let trial = write_trial(
            &p,
            Current::from_micro_amps(1.0),
            Time::from_nano_seconds(2.0),
            &mut rng,
        );
        assert!(trial.failed);
        assert_eq!(trial.draws, TRIAL_STEPS);
        // Zero drive exerts no torque: failure with zero draws.
        let mut rng = StdRng::seed_from_u64(3);
        let trial = write_trial(&p, Current::ZERO, Time::from_nano_seconds(2.0), &mut rng);
        assert!(trial.failed);
        assert_eq!(trial.draws, 0);
        // Reverse drive stabilises Parallel: same.
        let mut rng = StdRng::seed_from_u64(3);
        let trial = write_trial(&p, -i, Time::from_nano_seconds(2.0), &mut rng);
        assert!(trial.failed);
        assert_eq!(trial.draws, 0);
    }

    #[test]
    fn monte_carlo_agrees_with_analytic() {
        let (p, m) = setup();
        let i = p.nominal_write_current();
        let pulse = m.mean_switching_time(i); // WER = e⁻¹ ≈ 0.368
        let empirical = monte_carlo_wer(&p, i, pulse, 2000, 17);
        let analytic = write_error_rate(&m, i, pulse);
        assert!(
            (empirical - analytic).abs() < 0.04,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn trial_outcomes_are_independent_of_campaign_size() {
        // Counter seeding: shrinking the campaign must not change the
        // trials that remain.
        let (p, m) = setup();
        let i = p.nominal_write_current();
        let pulse = m.mean_switching_time(i);
        let long = count_write_failures(&p, i, pulse, 500, 23);
        let short = count_write_failures(&p, i, pulse, 200, 23);
        let tail: usize = (200..500)
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(sweep::point_seed(23, t as u64));
                usize::from(write_trial(&p, i, pulse, &mut rng).failed)
            })
            .sum();
        assert_eq!(long, short + tail);
    }

    #[test]
    fn wer_grid_is_bit_identical_across_worker_counts() {
        let (p, m) = setup();
        let i = p.nominal_write_current();
        let points: Vec<(Current, Time)> = (1..=6)
            .map(|k| (i, m.mean_switching_time(i) * f64::from(k) * 0.5))
            .collect();
        let (serial, _) = monte_carlo_wer_grid(&p, &points, 150, 23, 1);
        for jobs in [2, 4] {
            let (parallel, summary) = monte_carlo_wer_grid(&p, &points, 150, 23, jobs);
            assert_eq!(parallel, serial, "jobs = {jobs}");
            assert_eq!(summary.points, 6);
        }
        // Estimates come back in grid order; over the 2.5τ span the
        // decay dominates the 150-trial sampling noise.
        assert!(serial[5].wer() < serial[0].wer());
    }

    #[test]
    fn wer_estimate_divides_failures_by_trials() {
        let (p, _) = setup();
        let est = WerEstimate {
            current: p.nominal_write_current(),
            pulse: Time::from_nano_seconds(2.0),
            trials: 200,
            failures: 50,
        };
        assert!((est.wer() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_trial_estimate_is_nan_not_perfect() {
        // Regression: an empty campaign used to report WER = 0.0 —
        // perfect reliability from zero evidence.
        let (p, _) = setup();
        let empty = WerEstimate {
            current: p.nominal_write_current(),
            pulse: Time::from_nano_seconds(2.0),
            trials: 0,
            failures: 0,
        };
        assert!(empty.wer().is_nan());
    }

    #[test]
    fn sweep_is_monotone_decreasing() {
        let (p, m) = setup();
        let pulses: Vec<Time> = (1..=8)
            .map(|k| Time::from_nano_seconds(f64::from(k)))
            .collect();
        let points = sweep(&m, p.nominal_write_current(), &pulses);
        assert_eq!(points.len(), 8);
        for pair in points.windows(2) {
            assert!(pair[1].single < pair[0].single);
            assert!(pair[1].pair < pair[0].pair);
        }
    }

    #[test]
    #[should_panic(expected = "target WER")]
    fn invalid_target_panics() {
        let (p, m) = setup();
        let _ = pulse_for_wer(&m, p.nominal_write_current(), 1.5);
    }

    #[test]
    fn trial_failure_probability_matches_the_stepped_trial_distribution() {
        let (p, m) = setup();
        let i = p.nominal_write_current();
        let pulse = Time::from_nano_seconds(4.0);
        let (steps, step) = trial_step_plan(pulse);
        // The stepped trial fails iff all `steps` Bernoulli draws miss.
        let expected = (1.0 - m.switch_probability(i, step)).powi(steps as i32);
        assert_eq!(trial_failure_probability(&m, i, pulse), expected);
        // ... which is the analytic rate over the discretized pulse.
        let covered = Time::from_seconds(step.seconds() * steps as f64);
        let analytic = write_error_rate(&m, i, covered);
        assert!((expected / analytic - 1.0).abs() < 1e-12);
        // Trial-preamble guards: no torque or no steps fails certainly.
        assert_eq!(trial_failure_probability(&m, Current::ZERO, pulse), 1.0);
        assert_eq!(trial_failure_probability(&m, -i, pulse), 1.0);
        assert_eq!(trial_failure_probability(&m, i, Time::ZERO), 1.0);
    }

    #[test]
    fn write_trial_with_model_generalizes_write_trial() {
        let (p, m) = setup();
        let i = p.nominal_write_current();
        let pulse = Time::from_nano_seconds(2.0);
        for seed in 0..50 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            assert_eq!(
                write_trial(&p, i, pulse, &mut a),
                write_trial_with_model(&p, m.clone(), i, pulse, &mut b)
            );
        }
    }

    #[test]
    fn wilson_interval_brackets_the_point_estimate() {
        let (p, _) = setup();
        let est = WerEstimate {
            current: p.nominal_write_current(),
            pulse: Time::from_nano_seconds(2.0),
            trials: 1000,
            failures: 10,
        };
        let ci95 = est.confidence_interval(0.95);
        let ci99 = est.confidence_interval(0.99);
        assert!(ci95.lo > 0.0 && ci95.contains(est.wer()) && ci95.hi < 1.0);
        // Higher confidence widens the interval; more data narrows it.
        assert!(ci99.width() > ci95.width());
        let bigger = WerEstimate {
            trials: 100_000,
            failures: 1000,
            ..est
        };
        assert!(bigger.confidence_interval(0.95).width() < ci95.width());
    }

    #[test]
    fn wilson_interval_stays_informative_at_zero_failures() {
        // The rule-of-three regime: no observed failures still bounds
        // the rate away from "anything".
        let (p, _) = setup();
        let est = WerEstimate {
            current: p.nominal_write_current(),
            pulse: Time::from_nano_seconds(2.0),
            trials: 3000,
            failures: 0,
        };
        let ci = est.confidence_interval(0.99);
        assert_eq!(ci.lo, 0.0);
        assert!(ci.hi > 0.0 && ci.hi < 5e-3, "hi = {}", ci.hi);
        assert!(ci.contains(0.0) && !ci.contains(0.01));
    }

    #[test]
    fn zero_trial_confidence_interval_is_nan() {
        // Regression companion to `zero_trial_estimate_is_nan_not_perfect`:
        // the interval must not claim certainty from an empty campaign.
        let (p, _) = setup();
        let empty = WerEstimate {
            current: p.nominal_write_current(),
            pulse: Time::from_nano_seconds(2.0),
            trials: 0,
            failures: 0,
        };
        let ci = empty.confidence_interval(0.99);
        assert!(ci.lo.is_nan() && ci.hi.is_nan());
        assert!(!ci.contains(0.0), "a NaN interval contains nothing");
    }
}
