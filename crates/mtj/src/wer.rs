//! Write-error-rate (WER) analysis.
//!
//! STT switching is stochastic: holding a drive current for a finite
//! pulse leaves a residual probability `exp(−t/τ(I))` that the free
//! layer has not reversed. The paper sizes its store phase with margin
//! ("reliable back-up"); this module quantifies that margin — the WER
//! as a function of pulse width and drive, and the inverse problem of
//! choosing a pulse for a target error rate.

use rand::{Rng, SeedableRng};
use units::{Current, Time};

use crate::device::{Mtj, WritePolarity};
use crate::params::MtjParams;
use crate::resistance::MtjState;
use crate::switching::SwitchingModel;

/// Probability that a single device fails to reverse under `current`
/// held for `pulse` — `exp(−t/τ)`.
///
/// # Examples
///
/// ```
/// use mtj::{MtjParams, SwitchingModel, wer};
/// use units::Time;
///
/// let p = MtjParams::date2018();
/// let m = SwitchingModel::new(&p);
/// let short = wer::write_error_rate(&m, p.nominal_write_current(), Time::from_nano_seconds(2.0));
/// let long = wer::write_error_rate(&m, p.nominal_write_current(), Time::from_nano_seconds(8.0));
/// assert!(long < short);
/// ```
#[must_use]
pub fn write_error_rate(model: &SwitchingModel, current: Current, pulse: Time) -> f64 {
    let tau = model.mean_switching_time(current).seconds();
    (-pulse.seconds() / tau).exp()
}

/// WER of a complementary-pair store: both devices of the pair must
/// reverse (worst-case data), so the pair fails if either does.
#[must_use]
pub fn pair_write_error_rate(model: &SwitchingModel, current: Current, pulse: Time) -> f64 {
    let single = write_error_rate(model, current, pulse);
    1.0 - (1.0 - single) * (1.0 - single)
}

/// The shortest pulse meeting a target WER at the given drive:
/// `t = τ·ln(1/target)`.
///
/// # Panics
///
/// Panics unless `0 < target_wer < 1`.
#[must_use]
pub fn pulse_for_wer(model: &SwitchingModel, current: Current, target_wer: f64) -> Time {
    assert!(
        target_wer > 0.0 && target_wer < 1.0,
        "target WER must be in (0, 1), got {target_wer}"
    );
    let tau = model.mean_switching_time(current).seconds();
    Time::from_seconds(tau * (1.0 / target_wer).ln())
}

/// Counts stochastic write failures over `trials` attempted writes —
/// the kernel shared by [`monte_carlo_wer`] and the grid runner.
pub fn count_write_failures<R: Rng + ?Sized>(
    params: &MtjParams,
    current: Current,
    pulse: Time,
    trials: usize,
    rng: &mut R,
) -> usize {
    let step = Time::from_seconds((pulse.seconds() / 64.0).max(1e-12));
    let mut failures = 0usize;
    for _ in 0..trials {
        let mut device = Mtj::new(
            params.clone(),
            MtjState::Parallel,
            WritePolarity::PositiveSetsAntiParallel,
        );
        let mut elapsed = Time::ZERO;
        while elapsed < pulse && device.state() == MtjState::Parallel {
            device.advance_stochastic(current, step, rng);
            elapsed += step;
        }
        if device.state() == MtjState::Parallel {
            failures += 1;
        }
    }
    failures
}

/// Monte-Carlo estimate of the single-device WER by repeated stochastic
/// writes — the empirical cross-check of the analytic rate.
pub fn monte_carlo_wer<R: Rng + ?Sized>(
    params: &MtjParams,
    current: Current,
    pulse: Time,
    trials: usize,
    rng: &mut R,
) -> f64 {
    count_write_failures(params, current, pulse, trials, rng) as f64 / trials as f64
}

/// One Monte-Carlo WER estimate at a `(current, pulse)` grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WerEstimate {
    /// Drive current of this grid point.
    pub current: Current,
    /// Pulse width of this grid point.
    pub pulse: Time,
    /// Attempted writes.
    pub trials: usize,
    /// Writes that failed to reverse the free layer.
    pub failures: usize,
}

impl WerEstimate {
    /// The estimated write error rate, `failures / trials`.
    #[must_use]
    pub fn wer(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.failures as f64 / self.trials as f64
        }
    }
}

/// Monte-Carlo WER over a `(current, pulse)` grid, fanned out over a
/// [`sweep`] worker pool.
///
/// Each grid point runs its `trials` stochastic writes with a private
/// `StdRng` seeded from the point's counter-derived
/// [`sweep::point_seed`], so the returned estimates are
/// **bit-identical for every `jobs` value** (`0` = auto, `1` = serial).
/// Results come back in grid order alongside the pool's
/// [`sweep::RunSummary`].
///
/// # Examples
///
/// ```
/// use mtj::{wer, MtjParams};
/// use units::{Current, Time};
///
/// let p = MtjParams::date2018();
/// let points = vec![
///     (p.nominal_write_current(), Time::from_nano_seconds(2.0)),
///     (p.nominal_write_current(), Time::from_nano_seconds(6.0)),
/// ];
/// let (estimates, _) = wer::monte_carlo_wer_grid(&p, &points, 200, 17, 2);
/// assert!(estimates[1].wer() <= estimates[0].wer());
/// ```
pub fn monte_carlo_wer_grid(
    params: &MtjParams,
    points: &[(Current, Time)],
    trials: usize,
    seed: u64,
    jobs: usize,
) -> (Vec<WerEstimate>, sweep::RunSummary) {
    let grid = sweep::Grid::with_seed(points.to_vec(), seed);
    let opts = sweep::SweepOptions {
        jobs,
        span_label: "mtj.wer_point",
        ..sweep::SweepOptions::default()
    };
    let outcome = sweep::run(&grid, &opts, |ctx, &(current, pulse)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        WerEstimate {
            current,
            pulse,
            trials,
            failures: count_write_failures(params, current, pulse, trials, &mut rng),
        }
    });
    (outcome.results, outcome.summary)
}

/// One row of a WER-vs-pulse characterization sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WerPoint {
    /// Pulse width.
    pub pulse: Time,
    /// Single-device analytic WER.
    pub single: f64,
    /// Complementary-pair analytic WER.
    pub pair: f64,
}

/// Sweeps the WER over pulse widths (the store-margin curve).
#[must_use]
pub fn sweep(model: &SwitchingModel, current: Current, pulses: &[Time]) -> Vec<WerPoint> {
    pulses
        .iter()
        .map(|&pulse| WerPoint {
            pulse,
            single: write_error_rate(model, current, pulse),
            pair: pair_write_error_rate(model, current, pulse),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (MtjParams, SwitchingModel) {
        let p = MtjParams::date2018();
        let m = SwitchingModel::new(&p);
        (p, m)
    }

    #[test]
    fn wer_decays_exponentially_with_pulse() {
        let (p, m) = setup();
        let i = p.nominal_write_current();
        let tau = m.mean_switching_time(i);
        let w1 = write_error_rate(&m, i, tau);
        let w2 = write_error_rate(&m, i, tau * 2.0);
        assert!((w1 - (-1.0f64).exp()).abs() < 1e-12);
        assert!((w2 - w1 * w1).abs() < 1e-12); // exp(-2) = exp(-1)²
    }

    #[test]
    fn pair_wer_is_worse_than_single() {
        let (p, m) = setup();
        let i = p.nominal_write_current();
        let pulse = Time::from_nano_seconds(4.0);
        let single = write_error_rate(&m, i, pulse);
        let pair = pair_write_error_rate(&m, i, pulse);
        assert!(pair > single);
        assert!(pair < 2.0 * single + 1e-12);
    }

    #[test]
    fn pulse_for_wer_inverts_the_rate() {
        let (p, m) = setup();
        let i = p.nominal_write_current();
        for target in [1e-3, 1e-6, 1e-9] {
            let pulse = pulse_for_wer(&m, i, target);
            let achieved = write_error_rate(&m, i, pulse);
            assert!((achieved / target - 1.0).abs() < 1e-9, "{target}");
        }
        // 1e-9 at the nominal drive needs ~20.7 τ ≈ 41 ns.
        let pulse = pulse_for_wer(&m, i, 1e-9);
        assert!((pulse.nano_seconds() - 41.4).abs() < 1.0, "{pulse}");
    }

    #[test]
    fn stronger_drive_needs_shorter_pulses() {
        let (_, m) = setup();
        let weak = pulse_for_wer(&m, Current::from_micro_amps(55.0), 1e-6);
        let strong = pulse_for_wer(&m, Current::from_micro_amps(90.0), 1e-6);
        assert!(strong < weak);
    }

    #[test]
    fn monte_carlo_agrees_with_analytic() {
        let (p, m) = setup();
        let i = p.nominal_write_current();
        let pulse = m.mean_switching_time(i); // WER = e⁻¹ ≈ 0.368
        let mut rng = StdRng::seed_from_u64(17);
        let empirical = monte_carlo_wer(&p, i, pulse, 2000, &mut rng);
        let analytic = write_error_rate(&m, i, pulse);
        assert!(
            (empirical - analytic).abs() < 0.04,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn wer_grid_is_bit_identical_across_worker_counts() {
        let (p, m) = setup();
        let i = p.nominal_write_current();
        let points: Vec<(Current, Time)> = (1..=6)
            .map(|k| (i, m.mean_switching_time(i) * f64::from(k) * 0.5))
            .collect();
        let (serial, _) = monte_carlo_wer_grid(&p, &points, 150, 23, 1);
        for jobs in [2, 4] {
            let (parallel, summary) = monte_carlo_wer_grid(&p, &points, 150, 23, jobs);
            assert_eq!(parallel, serial, "jobs = {jobs}");
            assert_eq!(summary.points, 6);
        }
        // Estimates come back in grid order; over the 2.5τ span the
        // decay dominates the 150-trial sampling noise.
        assert!(serial[5].wer() < serial[0].wer());
    }

    #[test]
    fn wer_estimate_divides_failures_by_trials() {
        let (p, _) = setup();
        let est = WerEstimate {
            current: p.nominal_write_current(),
            pulse: Time::from_nano_seconds(2.0),
            trials: 200,
            failures: 50,
        };
        assert!((est.wer() - 0.25).abs() < 1e-12);
        let empty = WerEstimate {
            trials: 0,
            failures: 0,
            ..est
        };
        assert_eq!(empty.wer(), 0.0);
    }

    #[test]
    fn sweep_is_monotone_decreasing() {
        let (p, m) = setup();
        let pulses: Vec<Time> = (1..=8)
            .map(|k| Time::from_nano_seconds(f64::from(k)))
            .collect();
        let points = sweep(&m, p.nominal_write_current(), &pulses);
        assert_eq!(points.len(), 8);
        for pair in points.windows(2) {
            assert!(pair[1].single < pair[0].single);
            assert!(pair[1].pair < pair[0].pair);
        }
    }

    #[test]
    #[should_panic(expected = "target WER")]
    fn invalid_target_panics() {
        let (p, m) = setup();
        let _ = pulse_for_wer(&m, p.nominal_write_current(), 1.5);
    }
}
