//! Lane-batched (SIMD structure-of-arrays) Monte-Carlo WER kernel.
//!
//! Every trial of a WER campaign runs the *same* computation — step a
//! `Parallel` device toward `AntiParallel` with a per-step Bernoulli
//! draw — over a private counter-seeded RNG stream. That independence
//! is what this module exploits: `LANES` trials advance in lockstep
//! through one branch-free hot loop over structure-of-arrays xoshiro
//! state ([`rand::rngs::StdRngLanes`]), one `[f64; LANES]` uniform
//! block per step, against a switch probability hoisted out of the
//! loop (the scalar path re-derives `exp(−dt/τ)` every step — the
//! dominant cost).
//!
//! **Retirement and refill:** a lane whose trial resolves (switched, or
//! pulse exhausted) is immediately reseeded with the next trial's
//! counter seed; when no trials remain the lane idles, its discarded
//! draws harmless because every trial's stream starts from its own
//! seed. The failure count is therefore **bit-identical to the scalar
//! reference** [`crate::wer::count_write_failures`] for every lane
//! count — the property the differential suite in `tests/simd_mc.rs`
//! pins.

use rand::rngs::StdRngLanes;
use units::{Current, Time};

use crate::device::WritePolarity;
use crate::params::MtjParams;
use crate::resistance::MtjState;
use crate::switching::SwitchingModel;
use crate::wer::trial_step_plan;

/// Lane widths the runtime dispatcher accepts.
pub const SUPPORTED_LANE_COUNTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Lane width used when the caller asks for auto (`0`) and `NVFF_LANES`
/// is unset.
///
/// 64 keeps a full `u64` of trial masks in flight; with 512-bit
/// vectors that is eight RNG register groups per round, enough
/// instruction-level parallelism to hide the xoshiro dependency chain.
/// Trials-per-point below a few hundred waste a little drain time at
/// this width — pass an explicit narrower lane count there.
pub const DEFAULT_LANES: usize = 64;

/// Resolves a requested lane count to a supported width: `0` consults
/// the `NVFF_LANES` environment variable and falls back to
/// [`DEFAULT_LANES`]; any other value is rounded **down** to the
/// nearest supported width. The resolved width never changes results —
/// only throughput.
///
/// # Examples
///
/// ```
/// assert_eq!(mtj::lanes::resolve_lanes(8), 8);
/// assert_eq!(mtj::lanes::resolve_lanes(7), 4);
/// assert_eq!(mtj::lanes::resolve_lanes(1000), 64);
/// assert_eq!(mtj::lanes::resolve_lanes(1), 1);
/// ```
#[must_use]
pub fn resolve_lanes(requested: usize) -> usize {
    let requested = if requested == 0 {
        std::env::var("NVFF_LANES")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_LANES)
    } else {
        requested
    };
    SUPPORTED_LANE_COUNTS
        .iter()
        .copied()
        .filter(|&w| w <= requested)
        .max()
        .unwrap_or(1)
}

/// Counts stochastic write failures with the lane-batched kernel —
/// bit-identical to [`crate::wer::count_write_failures`]`(params,
/// current, pulse, trials, seed)` for every `lanes` value.
///
/// `lanes` is resolved by [`resolve_lanes`]; `1` selects the scalar
/// reference kernel itself.
#[must_use]
pub fn count_write_failures_batched(
    params: &MtjParams,
    current: Current,
    pulse: Time,
    trials: usize,
    seed: u64,
    lanes: usize,
) -> usize {
    match resolve_lanes(lanes) {
        2 => count_write_failures_lanes::<2>(params, current, pulse, trials, seed),
        4 => count_write_failures_lanes::<4>(params, current, pulse, trials, seed),
        8 => count_write_failures_lanes::<8>(params, current, pulse, trials, seed),
        16 => count_write_failures_lanes::<16>(params, current, pulse, trials, seed),
        32 => count_write_failures_lanes::<32>(params, current, pulse, trials, seed),
        64 => count_write_failures_lanes::<64>(params, current, pulse, trials, seed),
        _ => crate::wer::count_write_failures(params, current, pulse, trials, seed),
    }
}

/// The const-generic lane kernel behind [`count_write_failures_batched`].
///
/// Trials are dealt to lanes in campaign order; each occupies its lane
/// for at most `steps` lockstep draws before retiring (switched or
/// failed) and refilling with the next trial. The per-round loop is
/// branch-free across lanes — compare, decrement, and pack outcome
/// bitmasks — so the compiler vectorizes it together with the
/// structure-of-arrays RNG step; the (rare, once per trial) retirement
/// work runs only over the set bits of the round's `done` mask. An
/// idle lane keeps stepping its RNG with a sentinel counter that never
/// reaches zero; its draws belong to no trial and a refilled lane is
/// reseeded, so discarded draws cannot influence any outcome.
///
/// # Panics
///
/// Panics if `LANES` is 0 or exceeds 64 (lane masks are `u64`).
#[must_use]
pub fn count_write_failures_lanes<const LANES: usize>(
    params: &MtjParams,
    current: Current,
    pulse: Time,
    trials: usize,
    seed: u64,
) -> usize {
    assert!(
        (1..=64).contains(&LANES),
        "lane count {LANES} outside 1..=64"
    );
    // Mirror the scalar trial's preamble: a Parallel device written
    // toward AntiParallel. A drive that exerts no torque toward the
    // reversal fails every trial without consuming a draw.
    let polarity = WritePolarity::PositiveSetsAntiParallel;
    if polarity.target_state(current) != Some(MtjState::AntiParallel) {
        return trials;
    }
    let (steps, step) = trial_step_plan(pulse);
    if steps == 0 {
        return trials;
    }
    // The hoist: the scalar path computes this same probability from
    // the same inputs once per step per trial; one evaluation serves
    // the whole grid point and the comparison stays bitwise identical.
    let model = SwitchingModel::new(params);
    let p = model.switch_probability(current, step);
    // Exact integer form of the scalar draw `uniform < p`. A uniform is
    // `m * 2^-53` for an integer `m = bits >> 11`, and both that product
    // and `p * 2^53` are computed without rounding (powers of two only
    // shift the exponent), so `m * 2^-53 < p  ⟺  m < ceil(p * 2^53)` —
    // the hot loop compares integers and skips the u64→f64 conversion.
    let switch_threshold = (p * (1u64 << 53) as f64).ceil() as u64;

    let mut rngs = StdRngLanes::<LANES>::new();
    // Idle-lane sentinel: decrements forever without hitting zero.
    let mut remaining = [usize::MAX; LANES];
    let mut bits = [0u64; LANES];
    let mut live = 0u64;
    let mut next_trial = 0usize;
    let mut failures = 0usize;

    // Deal the opening trials.
    for (lane, rem) in remaining.iter_mut().enumerate().take(trials.min(LANES)) {
        rngs.seed_lane(lane, sweep::point_seed(seed, next_trial as u64));
        *rem = steps;
        live |= 1u64 << lane;
        next_trial += 1;
    }

    while live != 0 {
        // One lockstep round: every lane draws its next uniform, then
        // the outcome masks are packed without lane-dependent branches.
        rngs.fill_u64(&mut bits);
        let mut switched = 0u64;
        let mut exhausted = 0u64;
        for (lane, rem) in remaining.iter_mut().enumerate() {
            switched |= u64::from((bits[lane] >> 11) < switch_threshold) << lane;
            let r = rem.wrapping_sub(1);
            *rem = r;
            exhausted |= u64::from(r == 0) << lane;
        }
        // A trial that consumed its last draw without switching failed.
        failures += (exhausted & !switched & live).count_ones() as usize;
        // Retire-and-refill, over the resolved lanes only.
        let mut done = (switched | exhausted) & live;
        while done != 0 {
            let lane = done.trailing_zeros() as usize;
            done &= done - 1;
            if next_trial < trials {
                rngs.seed_lane(lane, sweep::point_seed(seed, next_trial as u64));
                remaining[lane] = steps;
                next_trial += 1;
            } else {
                live &= !(1u64 << lane);
                remaining[lane] = usize::MAX;
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wer::count_write_failures;

    fn setup() -> (MtjParams, SwitchingModel) {
        let p = MtjParams::date2018();
        let m = SwitchingModel::new(&p);
        (p, m)
    }

    #[test]
    fn every_lane_width_matches_the_scalar_kernel() {
        let (p, m) = setup();
        let i = p.nominal_write_current();
        for k in 1u32..=4 {
            let pulse = m.mean_switching_time(i) * (0.5 * f64::from(k));
            let scalar = count_write_failures(&p, i, pulse, 333, 40 + u64::from(k));
            for lanes in SUPPORTED_LANE_COUNTS {
                let batched =
                    count_write_failures_batched(&p, i, pulse, 333, 40 + u64::from(k), lanes);
                assert_eq!(batched, scalar, "lanes = {lanes}, pulse = {pulse}");
            }
        }
    }

    #[test]
    fn trial_counts_smaller_than_the_lane_width_still_match() {
        let (p, m) = setup();
        let i = p.nominal_write_current();
        let pulse = m.mean_switching_time(i);
        for trials in [0, 1, 2, 7, 31, 32, 33] {
            let scalar = count_write_failures(&p, i, pulse, trials, 5);
            assert_eq!(
                count_write_failures_lanes::<32>(&p, i, pulse, trials, 5),
                scalar,
                "trials = {trials}"
            );
        }
    }

    #[test]
    fn torqueless_drives_fail_every_trial() {
        let (p, _) = setup();
        let pulse = Time::from_nano_seconds(2.0);
        for lanes in [1, 8] {
            assert_eq!(
                count_write_failures_batched(&p, Current::ZERO, pulse, 50, 9, lanes),
                50
            );
            assert_eq!(
                count_write_failures_batched(&p, -p.nominal_write_current(), pulse, 50, 9, lanes),
                50
            );
        }
        // A zero-length pulse gives switching no chance at all.
        assert_eq!(
            count_write_failures_lanes::<8>(&p, p.nominal_write_current(), Time::ZERO, 50, 9),
            50
        );
    }

    #[test]
    fn resolver_rounds_down_and_defaults() {
        assert_eq!(resolve_lanes(1), 1);
        assert_eq!(resolve_lanes(2), 2);
        assert_eq!(resolve_lanes(3), 2);
        assert_eq!(resolve_lanes(31), 16);
        assert_eq!(resolve_lanes(32), 32);
        assert_eq!(resolve_lanes(63), 32);
        assert_eq!(resolve_lanes(usize::MAX), 64);
        // `0` resolves through the environment; with NVFF_LANES unset
        // in the test harness it lands on the built-in default.
        if std::env::var("NVFF_LANES").is_err() {
            assert_eq!(resolve_lanes(0), DEFAULT_LANES);
        }
    }
}
