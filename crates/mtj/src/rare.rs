//! Rare-event WER estimation by importance sampling over the variation
//! space.
//!
//! Brute-force Monte-Carlo needs on the order of `1/WER` trials per
//! observed failure — hopeless at the WER ≈ 1e-9 the flip-flop's store
//! phase is specified against. This module reaches that regime with
//! **Gaussian mean-shift (exponentially tilted) sampling**: the three
//! standard-normal variation coordinates `z = (z_RA, z_TMR, z_Isw)`
//! behind [`crate::variation::VariationModel::sample`] are drawn from
//! `N(μ, I)` instead of `N(0, I)`, pushing samples toward the failure
//! region (slow dies — large critical current), and every draw carries
//! its likelihood ratio
//!
//! ```text
//! w(z) = φ(z)/φ_μ(z) = exp(−μ·ε − |μ|²/2),   ε = z − μ ~ N(0, I)
//! ```
//!
//! so that `E_μ[w·f] = E_0[f]` for any statistic `f` — the estimator
//! stays **unbiased for every tilt** and the tilt only moves its
//! variance. Two estimators are offered ([`Estimator`]): the default
//! **smooth** (Rao–Blackwellized) form integrates the per-device
//! conditional failure probability
//! [`crate::wer::trial_failure_probability`] exactly, and the
//! **Bernoulli** form draws the stepped trial outcome, matching the
//! brute-force kernel draw-for-draw in distribution.
//!
//! Device samples are stepped under a **reference-calibrated** switching
//! model ([`crate::switching::SwitchingModel::with_reference`]): the
//! per-sample recalibration of `SwitchingModel::new` cancels an `Ic`
//! excursion exactly at the nominal drive, which would make the WER
//! variation-independent and this whole module a no-op.
//!
//! Everything composes with the repo's determinism discipline: each
//! sample is counter-seeded ([`sweep::point_seed`]), drawn either on a
//! scalar `StdRng` or in lockstep over [`rand::rngs::StdRngLanes`]
//! structure-of-arrays banks (a fixed six/seven-uniform budget per
//! sample — no retire/refill needed), and fanned over the [`sweep`]
//! worker pool — results are **bit-identical for every `jobs` and
//! `lanes` combination**. Surface campaigns
//! ([`tail_surface`]) checkpoint through `nvff-sweep-checkpoint/1`
//! and resume bit-identically.

use rand::rngs::{StdRng, StdRngLanes};
use rand::{Rng, RngExt, SeedableRng};
use units::{Current, Temperature, Time};

use crate::params::MtjParams;
use crate::switching::SwitchingModel;
use crate::thermal::ThermalModel;
use crate::variation::{standard_normal, VariationModel};
use crate::wer::{self, ConfidenceInterval, WerEstimate};

/// Multiplier floor shared with [`VariationModel::sample`] — a deep
/// negative excursion clamps instead of going non-physical. Clamping is
/// a measurable map of the sample space, so it leaves the
/// likelihood-ratio identity (and hence unbiasedness) intact: both the
/// tilted and the brute-force estimators integrate the same clamped
/// push-forward measure.
const MULTIPLIER_FLOOR: f64 = 1e-3;

/// Seed salt separating adaptive-tilt pilot draws from the final
/// estimation round.
const PILOT_SALT: u64 = 0x7261_7265_7069_6c6f; // "rarepilo"

// ---------------------------------------------------------------------------
// Tilt and normal quantiles
// ---------------------------------------------------------------------------

/// A mean shift `μ` of the three variation coordinates
/// `(z_RA, z_TMR, z_Isw)` — the importance-sampling proposal `N(μ, I)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Tilt {
    /// Mean shift per coordinate, in units of that coordinate's σ.
    pub mu: [f64; 3],
}

impl Tilt {
    /// The null tilt — plain Monte-Carlo over the nominal measure.
    pub const ZERO: Self = Self { mu: [0.0; 3] };

    /// A tilt along the switching-current coordinate only (positive
    /// shifts sample slower dies — the write-failure direction).
    #[must_use]
    pub fn along_switching_current(shift: f64) -> Self {
        Self {
            mu: [0.0, 0.0, shift],
        }
    }

    /// Euclidean magnitude `|μ|`.
    #[must_use]
    pub fn magnitude(&self) -> f64 {
        self.mu.iter().map(|m| m * m).sum::<f64>().sqrt()
    }

    /// Log likelihood ratio of a draw with innovation `ε = z − μ`:
    /// `ln w = −μ·ε − |μ|²/2`.
    #[must_use]
    pub fn log_weight(&self, eps: [f64; 3]) -> f64 {
        let dot = self.mu[0] * eps[0] + self.mu[1] * eps[1] + self.mu[2] * eps[2];
        let mag2 = self.mu[0] * self.mu[0] + self.mu[1] * self.mu[1] + self.mu[2] * self.mu[2];
        -dot - 0.5 * mag2
    }

    /// Likelihood-ratio weight `w = exp(ln w)`; satisfies
    /// `E_{ε~N(0,I)}[w] = 1` for every tilt.
    #[must_use]
    pub fn weight(&self, eps: [f64; 3]) -> f64 {
        self.log_weight(eps).exp()
    }
}

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9 — far below any sampling noise it is
/// compared against).
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile argument must be in (0, 1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p > 1.0 - P_LOW {
        -normal_quantile(1.0 - p)
    } else {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    }
}

/// Two-sided critical value `z` with `P(|N(0,1)| ≤ z) = confidence`
/// (`z ≈ 1.96` at 95 %, `≈ 2.576` at 99 %).
///
/// # Panics
///
/// Panics unless `0 < confidence < 1`.
#[must_use]
pub fn z_for_confidence(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1), got {confidence}"
    );
    normal_quantile(0.5 + 0.5 * confidence)
}

/// Effective sample size of a set of non-negative values,
/// `(Σv)² / Σv²` — `n` for equal values, → 1 as one value dominates.
/// Returns 0 for an empty or all-zero set.
#[must_use]
pub fn effective_sample_size(values: &[f64]) -> f64 {
    let sum: f64 = values.iter().sum();
    let sum2: f64 = values.iter().map(|v| v * v).sum();
    if sum2 == 0.0 {
        0.0
    } else {
        sum * sum / sum2
    }
}

// ---------------------------------------------------------------------------
// Sampling environment
// ---------------------------------------------------------------------------

/// The sampling environment of a tail campaign: the (possibly
/// temperature-scaled) reference device, the variation measure over it,
/// and the write drive.
///
/// All paths — the tilted sampler, the adaptive tilt search, and the
/// variation-aware brute-force cross-check — share this one `z ↦ θ(z)`
/// map and the one reference-calibrated switching model, so they
/// integrate the *same* measure and are directly comparable.
#[derive(Debug, Clone, PartialEq)]
pub struct TailEnv {
    reference: MtjParams,
    variation: VariationModel,
    current: Current,
}

impl TailEnv {
    /// An environment at the reference device's own temperature.
    #[must_use]
    pub fn new(nominal: &MtjParams, variation: VariationModel, current: Current) -> Self {
        Self {
            reference: nominal.clone(),
            variation,
            current,
        }
    }

    /// An environment with the reference device re-evaluated at
    /// `temperature` through `thermal` — temperature as a first-class
    /// campaign axis. The switching-model calibration is then frozen on
    /// the *at-temperature* reference, so thermal `Ic` softening shifts
    /// the whole WER curve while per-die variation spreads it.
    #[must_use]
    pub fn at_temperature(
        nominal: &MtjParams,
        variation: VariationModel,
        thermal: &ThermalModel,
        temperature: Temperature,
        current: Current,
    ) -> Self {
        Self {
            reference: thermal.at_temperature(nominal, temperature),
            variation,
            current,
        }
    }

    /// The reference (typical-die) parameter set of this environment.
    #[must_use]
    pub fn reference(&self) -> &MtjParams {
        &self.reference
    }

    /// The variation measure sampled over.
    #[must_use]
    pub fn variation(&self) -> &VariationModel {
        &self.variation
    }

    /// The write drive current.
    #[must_use]
    pub fn current(&self) -> Current {
        self.current
    }

    /// The reference device's own (self-calibrated) switching model —
    /// used for pulse planning (`pulse_for_wer` targets).
    #[must_use]
    pub fn reference_model(&self) -> SwitchingModel {
        SwitchingModel::new(&self.reference)
    }

    /// The deterministic `z ↦ θ(z)` map: standard-normal coordinates to
    /// a perturbed parameter set, `multiplier = max(1 + σ·z, 1e-3)` per
    /// coordinate — exactly the push-forward of
    /// [`VariationModel::sample`].
    #[must_use]
    pub fn params_from_z(&self, z: [f64; 3]) -> MtjParams {
        self.reference.perturbed(
            (1.0 + self.variation.sigma_ra() * z[0]).max(MULTIPLIER_FLOOR),
            (1.0 + self.variation.sigma_tmr() * z[1]).max(MULTIPLIER_FLOOR),
            (1.0 + self.variation.sigma_switching_current() * z[2]).max(MULTIPLIER_FLOOR),
        )
    }

    /// Reference-calibrated switching model for a sampled device — see
    /// [`SwitchingModel::with_reference`] for why per-sample
    /// recalibration must not be used here.
    #[must_use]
    pub fn model_for(&self, device: &MtjParams) -> SwitchingModel {
        SwitchingModel::with_reference(&self.reference, device)
    }

    /// Conditional probability that one stochastic write trial of the
    /// device at coordinates `z` fails under `pulse` — the smooth
    /// integrand of the importance-sampling estimator.
    #[must_use]
    pub fn failure_probability(&self, z: [f64; 3], pulse: Time) -> f64 {
        let params = self.params_from_z(z);
        let model = self.model_for(&params);
        wer::trial_failure_probability(&model, self.current, pulse)
    }
}

// ---------------------------------------------------------------------------
// Estimators and draws
// ---------------------------------------------------------------------------

/// Which per-sample statistic the tilted sampler accumulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Estimator {
    /// Rao–Blackwellized: `x = w·p_fail(θ(z))`, integrating the
    /// conditional failure probability exactly (6 uniforms per sample).
    /// Lowest variance; the default.
    #[default]
    Smooth,
    /// Stepped-trial form: `x = w·1{u < p_fail(θ(z))}` with a seventh
    /// uniform — matches the brute-force trial's conditional outcome in
    /// distribution, at Bernoulli-noise cost. Useful when the
    /// comparison itself is the point (differential tests).
    Bernoulli,
}

impl Estimator {
    /// Fixed uniform-draw budget of one sample — what lets the lane
    /// path run in pure lockstep with no retire/refill.
    fn draw_rounds(self) -> usize {
        match self {
            Self::Smooth => 6,
            Self::Bernoulli => 7,
        }
    }
}

/// One tilted draw — the per-sample record the accumulator folds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TiltedDraw {
    /// Variation coordinates under the tilted measure, `z = μ + ε`.
    pub z: [f64; 3],
    /// Likelihood-ratio weight `w(ε)`.
    pub weight: f64,
    /// Conditional trial-failure probability at `θ(z)`.
    pub p_fail: f64,
    /// Estimator contribution (`w·p` or `w·1{fail}`).
    pub x: f64,
}

/// Completes a draw from its innovations (and, for the Bernoulli
/// estimator, its seventh uniform). Shared verbatim by the scalar and
/// lane paths so their arithmetic is bit-identical.
fn finish_draw(
    env: &TailEnv,
    pulse: Time,
    tilt: Tilt,
    estimator: Estimator,
    eps: [f64; 3],
    bernoulli_u: f64,
) -> TiltedDraw {
    let z = [
        tilt.mu[0] + eps[0],
        tilt.mu[1] + eps[1],
        tilt.mu[2] + eps[2],
    ];
    let weight = tilt.weight(eps);
    let p_fail = env.failure_probability(z, pulse);
    let x = match estimator {
        Estimator::Smooth => weight * p_fail,
        Estimator::Bernoulli => {
            if bernoulli_u < p_fail {
                weight
            } else {
                0.0
            }
        }
    };
    TiltedDraw {
        z,
        weight,
        p_fail,
        x,
    }
}

/// The scalar reference draw for sample seed `seed` — the definition of
/// correct the lane path is held to.
fn draw_scalar(
    env: &TailEnv,
    pulse: Time,
    tilt: Tilt,
    estimator: Estimator,
    seed: u64,
) -> TiltedDraw {
    let mut rng = StdRng::seed_from_u64(seed);
    let eps = [
        standard_normal(&mut rng),
        standard_normal(&mut rng),
        standard_normal(&mut rng),
    ];
    let bernoulli_u: f64 = match estimator {
        Estimator::Smooth => 0.0,
        Estimator::Bernoulli => rng.random(),
    };
    finish_draw(env, pulse, tilt, estimator, eps, bernoulli_u)
}

/// Lane-batched draws over one block of sample seeds: the
/// structure-of-arrays RNG banks step all lanes through the fixed
/// six/seven-uniform budget in lockstep, then each lane's innovations
/// finish on the shared scalar arithmetic.
///
/// Box–Muller's rejection branch (first uniform ≤ `f64::MIN_POSITIVE`,
/// probability ≈ 2⁻⁵³ per draw) breaks the fixed budget; an affected
/// lane is recomputed wholesale from its own seed on the scalar path,
/// preserving bit-identity because
/// [`StdRngLanes::seed_lane`] reproduces `StdRng::seed_from_u64`
/// exactly.
fn draw_block_lanes<const LANES: usize>(
    env: &TailEnv,
    pulse: Time,
    tilt: Tilt,
    estimator: Estimator,
    ctxs: &[sweep::JobCtx],
) -> Vec<TiltedDraw> {
    let filled = ctxs.len().min(LANES);
    let mut rngs = StdRngLanes::<LANES>::new();
    for (lane, ctx) in ctxs.iter().enumerate().take(filled) {
        rngs.seed_lane(lane, ctx.seed);
    }
    let mut uniforms = [[0.0f64; LANES]; 7];
    for block in uniforms.iter_mut().take(estimator.draw_rounds()) {
        rngs.fill_unit_f64(block);
    }
    let mut out = Vec::with_capacity(ctxs.len());
    for (lane, ctx) in ctxs.iter().enumerate().take(filled) {
        let mut eps = [0.0f64; 3];
        let mut rejected = false;
        for (k, eps_k) in eps.iter_mut().enumerate() {
            let u1 = uniforms[2 * k][lane];
            if u1 <= f64::MIN_POSITIVE {
                rejected = true;
                break;
            }
            let u2 = uniforms[2 * k + 1][lane];
            *eps_k = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        }
        if rejected {
            out.push(draw_scalar(env, pulse, tilt, estimator, ctx.seed));
        } else {
            out.push(finish_draw(
                env,
                pulse,
                tilt,
                estimator,
                eps,
                uniforms[6][lane],
            ));
        }
    }
    // A block longer than the lane width cannot come from
    // `run_blocked`, but degrade gracefully rather than truncate.
    for ctx in ctxs.iter().skip(filled) {
        out.push(draw_scalar(env, pulse, tilt, estimator, ctx.seed));
    }
    out
}

/// Runtime-width dispatch of one block of draws.
fn draw_block(
    env: &TailEnv,
    pulse: Time,
    tilt: Tilt,
    estimator: Estimator,
    ctxs: &[sweep::JobCtx],
    lanes: usize,
) -> Vec<TiltedDraw> {
    match lanes {
        2 => draw_block_lanes::<2>(env, pulse, tilt, estimator, ctxs),
        4 => draw_block_lanes::<4>(env, pulse, tilt, estimator, ctxs),
        8 => draw_block_lanes::<8>(env, pulse, tilt, estimator, ctxs),
        16 => draw_block_lanes::<16>(env, pulse, tilt, estimator, ctxs),
        32 => draw_block_lanes::<32>(env, pulse, tilt, estimator, ctxs),
        64 => draw_block_lanes::<64>(env, pulse, tilt, estimator, ctxs),
        _ => ctxs
            .iter()
            .map(|ctx| draw_scalar(env, pulse, tilt, estimator, ctx.seed))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Accumulation and estimates
// ---------------------------------------------------------------------------

/// Running sums of a tilted campaign — everything the estimators, the
/// confidence interval, the effective sample sizes, and the
/// cross-entropy tilt update need, in nine cells. Folding is done in
/// grid order after collection, so the sums are bit-identical for every
/// `jobs`/`lanes` combination, and the fixed [`Self::CELLS`]-cell
/// encoding ([`Self::to_cells`]) is what surface campaigns checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TailAccumulator {
    samples: u64,
    sum_x: f64,
    sum_x2: f64,
    sum_w: f64,
    sum_w2: f64,
    sum_xz: [f64; 3],
}

impl TailAccumulator {
    /// Cells in the checkpoint encoding.
    pub const CELLS: usize = 8;

    /// Folds one draw.
    pub fn push(&mut self, draw: &TiltedDraw) {
        self.samples += 1;
        self.sum_x += draw.x;
        self.sum_x2 += draw.x * draw.x;
        self.sum_w += draw.weight;
        self.sum_w2 += draw.weight * draw.weight;
        for (acc, z) in self.sum_xz.iter_mut().zip(draw.z) {
            *acc += draw.x * z;
        }
    }

    /// Samples folded so far.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean likelihood-ratio weight — `≈ 1` under any tilt
    /// (unbiasedness diagnostic; the property suite pins it).
    #[must_use]
    pub fn mean_weight(&self) -> f64 {
        if self.samples == 0 {
            f64::NAN
        } else {
            self.sum_w / self.samples as f64
        }
    }

    /// Effective sample size of the **weights**, `(Σw)²/Σw²`. Maximal
    /// (= n) at zero tilt — a proposal-overlap diagnostic, *not* the
    /// quantity to tune the tilt by.
    #[must_use]
    pub fn weight_ess(&self) -> f64 {
        if self.sum_w2 == 0.0 {
            0.0
        } else {
            self.sum_w * self.sum_w / self.sum_w2
        }
    }

    /// Effective sample size of the estimator **contributions**,
    /// `(Σx)²/Σx²` — the variance-relevant ESS the adaptive tilt
    /// search maximizes. At zero tilt on a deep tail almost every
    /// contribution is ≈ 0 and this collapses; at the optimal tilt it
    /// approaches n.
    #[must_use]
    pub fn contribution_ess(&self) -> f64 {
        if self.sum_x2 == 0.0 {
            0.0
        } else {
            self.sum_x * self.sum_x / self.sum_x2
        }
    }

    /// Cross-entropy tilt update: the mean of `z` under the
    /// failure-weighted measure, `μ' = Σ x·z / Σ x` — the Gaussian
    /// closest (in KL) to the zero-variance importance distribution.
    /// `None` when no contribution has been observed yet.
    #[must_use]
    pub fn cross_entropy_tilt(&self) -> Option<Tilt> {
        if self.sum_x > 0.0 {
            Some(Tilt {
                mu: self.sum_xz.map(|s| s / self.sum_x),
            })
        } else {
            None
        }
    }

    /// Point estimate + confidence interval of this campaign.
    #[must_use]
    pub fn estimate(&self, confidence: f64) -> TailEstimate {
        let z = z_for_confidence(confidence);
        if self.samples == 0 {
            // An empty campaign carries no information — NaN, never a
            // silent 0.0 (the WerEstimate regression, weighted form).
            return TailEstimate {
                samples: 0,
                wer: f64::NAN,
                self_normalized: f64::NAN,
                std_error: f64::NAN,
                ci: ConfidenceInterval {
                    lo: f64::NAN,
                    hi: f64::NAN,
                    confidence,
                },
                contribution_ess: 0.0,
                weight_ess: 0.0,
                mean_weight: f64::NAN,
            };
        }
        let n = self.samples as f64;
        let mean = self.sum_x / n;
        let variance = if self.samples < 2 {
            0.0
        } else {
            ((self.sum_x2 - n * mean * mean) / (n - 1.0)).max(0.0)
        };
        let std_error = (variance / n).sqrt();
        TailEstimate {
            samples: self.samples,
            wer: mean,
            self_normalized: if self.sum_w > 0.0 {
                self.sum_x / self.sum_w
            } else {
                f64::NAN
            },
            std_error,
            ci: ConfidenceInterval {
                lo: (mean - z * std_error).max(0.0),
                hi: mean + z * std_error,
                confidence,
            },
            contribution_ess: self.contribution_ess(),
            weight_ess: self.weight_ess(),
            mean_weight: self.mean_weight(),
        }
    }

    /// Fixed-layout cell encoding for checkpoints:
    /// `[n, Σx, Σx², Σw, Σw², Σxz₀, Σxz₁, Σxz₂]` with `n` stored as an
    /// exact `f64` (campaigns are far below 2⁵³ samples).
    #[must_use]
    pub fn to_cells(&self) -> Vec<f64> {
        let mut cells = Vec::with_capacity(Self::CELLS);
        cells.push(self.samples as f64);
        cells.extend_from_slice(&[self.sum_x, self.sum_x2, self.sum_w, self.sum_w2]);
        cells.extend_from_slice(&self.sum_xz);
        cells
    }

    /// Inverse of [`Self::to_cells`]; `None` on a malformed layout.
    #[must_use]
    pub fn from_cells(cells: &[f64]) -> Option<Self> {
        if cells.len() != Self::CELLS || cells[0] < 0.0 || cells[0].fract() != 0.0 {
            return None;
        }
        Some(Self {
            samples: cells[0] as u64,
            sum_x: cells[1],
            sum_x2: cells[2],
            sum_w: cells[3],
            sum_w2: cells[4],
            sum_xz: [cells[5], cells[6], cells[7]],
        })
    }
}

/// The result of one tail campaign at one `(pulse, σ, T)` point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailEstimate {
    /// Samples accumulated.
    pub samples: u64,
    /// Unbiased (vanilla likelihood-ratio) WER estimate, `Σx/n`.
    pub wer: f64,
    /// Self-normalized estimate `Σx/Σw` — biased O(1/n) but often
    /// lower-variance when weights are dispersed; report both.
    pub self_normalized: f64,
    /// CLT standard error of [`Self::wer`] (Bessel-corrected).
    pub std_error: f64,
    /// CLT-on-weights confidence interval on [`Self::wer`], floored at
    /// zero.
    pub ci: ConfidenceInterval,
    /// Contribution effective sample size, `(Σx)²/Σx²`.
    pub contribution_ess: f64,
    /// Weight effective sample size, `(Σw)²/Σw²`.
    pub weight_ess: f64,
    /// Mean likelihood-ratio weight (≈ 1 diagnostic).
    pub mean_weight: f64,
}

impl TailEstimate {
    /// Brute-force trials that would match this estimate's variance:
    /// `p(1−p)/se²` — the samples-to-target-variance comparison the
    /// bench report records. `NaN`/`∞`-safe only as far as its inputs.
    #[must_use]
    pub fn brute_force_equivalent_trials(&self) -> f64 {
        self.wer * (1.0 - self.wer) / (self.std_error * self.std_error)
    }
}

// ---------------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------------

/// Options of a tail campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailOptions {
    /// Samples per estimated point.
    pub samples: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker count (`0` = auto, `1` = serial on the caller).
    pub jobs: usize,
    /// SIMD lane width (`0` = auto via `NVFF_LANES`, `1` = scalar).
    pub lanes: usize,
    /// Per-sample statistic.
    pub estimator: Estimator,
    /// Confidence level of the reported interval.
    pub confidence: f64,
    /// Fixed tilt; `None` runs the adaptive (cross-entropy) search.
    pub tilt: Option<Tilt>,
    /// Cross-entropy pilot rounds of the adaptive search.
    pub pilot_rounds: usize,
    /// Samples per pilot round (and per candidate evaluation).
    pub pilot_samples: usize,
}

impl Default for TailOptions {
    fn default() -> Self {
        Self {
            samples: 10_000,
            seed: 0,
            jobs: 0,
            lanes: 0,
            estimator: Estimator::Smooth,
            confidence: 0.99,
            tilt: None,
            pilot_rounds: 3,
            pilot_samples: 512,
        }
    }
}

/// Accumulates `opts.samples` tilted draws at one pulse width, fanned
/// over the worker pool with the lane-batched sampler inside each
/// worker. The returned sums are bit-identical for every
/// `jobs`/`lanes` combination (per-sample counter seeds; grid-order
/// fold).
pub fn accumulate_tilted(
    env: &TailEnv,
    pulse: Time,
    tilt: Tilt,
    opts: &TailOptions,
) -> (TailAccumulator, sweep::RunSummary) {
    let grid = sweep::Grid::samples(opts.samples, opts.seed);
    let pool = sweep::SweepOptions {
        jobs: opts.jobs,
        span_label: "mtj.rare_block",
        ..sweep::SweepOptions::default()
    };
    let lanes = crate::lanes::resolve_lanes(opts.lanes);
    let outcome = sweep::run_blocked(&grid, &pool, lanes, |ctxs, _| {
        draw_block(env, pulse, tilt, opts.estimator, ctxs, lanes)
    });
    let mut acc = TailAccumulator::default();
    for draw in &outcome.results {
        acc.push(draw);
    }
    (acc, outcome.summary)
}

/// Adaptive tilt search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TiltSearch {
    /// Cross-entropy update rounds.
    pub rounds: usize,
    /// Samples per round and per candidate evaluation.
    pub pilot_samples: usize,
}

impl Default for TiltSearch {
    fn default() -> Self {
        Self {
            rounds: 3,
            pilot_samples: 512,
        }
    }
}

/// Outcome of [`adaptive_tilt`].
#[derive(Debug, Clone, PartialEq)]
pub struct TiltSearchResult {
    /// The winning tilt.
    pub tilt: Tilt,
    /// Its contribution ESS on the common evaluation batch.
    pub ess: f64,
    /// Every candidate visited, with its evaluation ESS.
    pub evaluated: Vec<(Tilt, f64)>,
}

/// Cross-entropy tilt search: starting from the null tilt, each pilot
/// round re-centers the proposal on the failure-weighted mean of `z`
/// ([`TailAccumulator::cross_entropy_tilt`]); every visited candidate
/// is then scored by contribution ESS on **one common batch** (common
/// random numbers — identical innovations for every candidate, so the
/// comparison is noise-free in the differences) and the best wins.
///
/// Pilot seeds are salted counter seeds off `seed`, disjoint from any
/// final estimation round rooted at `seed` itself; the whole search is
/// serial and deterministic.
#[must_use]
pub fn adaptive_tilt(
    env: &TailEnv,
    pulse: Time,
    search: &TiltSearch,
    seed: u64,
    lanes: usize,
) -> TiltSearchResult {
    let pilot_opts = |tilt: Tilt, round: u64| TailOptions {
        samples: search.pilot_samples.max(1),
        seed: sweep::point_seed(seed ^ PILOT_SALT, round),
        jobs: 1,
        lanes,
        estimator: Estimator::Smooth,
        confidence: 0.99,
        tilt: Some(tilt),
        pilot_rounds: 0,
        pilot_samples: 0,
    };
    let mut candidates = vec![Tilt::ZERO];
    let mut current = Tilt::ZERO;
    for round in 0..search.rounds {
        let (acc, _) = accumulate_tilted(env, pulse, current, &pilot_opts(current, round as u64));
        let Some(next) = acc.cross_entropy_tilt() else {
            break;
        };
        current = next;
        candidates.push(next);
    }
    let eval_round = u64::MAX;
    let mut evaluated = Vec::with_capacity(candidates.len());
    let mut best = (Tilt::ZERO, f64::NEG_INFINITY);
    for &tilt in &candidates {
        let (acc, _) = accumulate_tilted(env, pulse, tilt, &pilot_opts(tilt, eval_round));
        let ess = acc.contribution_ess();
        evaluated.push((tilt, ess));
        if ess > best.1 {
            best = (tilt, ess);
        }
    }
    TiltSearchResult {
        tilt: best.0,
        ess: best.1,
        evaluated,
    }
}

/// One fully-driven tail point: adaptive tilt (unless fixed in `opts`),
/// then the estimation campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct TailPointResult {
    /// Pulse width estimated.
    pub pulse: Time,
    /// Tilt used for the estimation round.
    pub tilt: Tilt,
    /// The estimate.
    pub estimate: TailEstimate,
    /// Worker-pool summary of the estimation round.
    pub summary: sweep::RunSummary,
}

/// Estimates the WER tail at one pulse width: tilt search (or the fixed
/// tilt from `opts`), then `opts.samples` tilted draws.
#[must_use]
pub fn estimate_tail(env: &TailEnv, pulse: Time, opts: &TailOptions) -> TailPointResult {
    let tilt = opts.tilt.unwrap_or_else(|| {
        adaptive_tilt(
            env,
            pulse,
            &TiltSearch {
                rounds: opts.pilot_rounds,
                pilot_samples: opts.pilot_samples,
            },
            opts.seed,
            opts.lanes,
        )
        .tilt
    });
    let (acc, summary) = accumulate_tilted(env, pulse, tilt, opts);
    TailPointResult {
        pulse,
        tilt,
        estimate: acc.estimate(opts.confidence),
        summary,
    }
}

// ---------------------------------------------------------------------------
// Variation-aware brute force (the cross-check arm)
// ---------------------------------------------------------------------------

/// One brute-force trial over the *same* measure as the tilted sampler:
/// draw a device from the nominal variation measure (three standard
/// normals → [`TailEnv::params_from_z`]), then run the stochastic
/// stepped write under the reference-calibrated model.
pub fn varied_write_trial<R: Rng + ?Sized>(
    env: &TailEnv,
    pulse: Time,
    rng: &mut R,
) -> wer::WriteTrial {
    let z = [
        standard_normal(rng),
        standard_normal(rng),
        standard_normal(rng),
    ];
    let params = env.params_from_z(z);
    let model = env.model_for(&params);
    wer::write_trial_with_model(&params, model, env.current, pulse, rng)
}

/// Counts variation-aware brute-force write failures, one counter seed
/// per trial — the direct analogue of
/// [`crate::wer::count_write_failures`] with per-trial device sampling.
#[must_use]
pub fn count_varied_write_failures(env: &TailEnv, pulse: Time, trials: usize, seed: u64) -> usize {
    let mut failures = 0usize;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(sweep::point_seed(seed, t as u64));
        if varied_write_trial(env, pulse, &mut rng).failed {
            failures += 1;
        }
    }
    failures
}

/// Variation-aware brute-force WER over a pulse grid, fanned over the
/// worker pool — the cross-check the differential suite holds the
/// importance sampler to in the 1e-3 regime. Bit-identical for every
/// `jobs` value.
pub fn varied_wer_grid(
    env: &TailEnv,
    pulses: &[Time],
    trials: usize,
    seed: u64,
    jobs: usize,
) -> (Vec<WerEstimate>, sweep::RunSummary) {
    let grid = sweep::Grid::with_seed(pulses.to_vec(), seed);
    let pool = sweep::SweepOptions {
        jobs,
        span_label: "mtj.rare_bruteforce",
        ..sweep::SweepOptions::default()
    };
    let current = env.current;
    let outcome = sweep::run(&grid, &pool, |ctx, &pulse| WerEstimate {
        current,
        pulse,
        trials,
        failures: count_varied_write_failures(env, pulse, trials, ctx.seed),
    });
    (outcome.results, outcome.summary)
}

// ---------------------------------------------------------------------------
// Shmoo surface campaign (pulse × σ(Isw) × T), checkpointable
// ---------------------------------------------------------------------------

/// Axes of a WER-tail shmoo surface.
#[derive(Debug, Clone, PartialEq)]
pub struct SurfaceAxes {
    /// Pulse widths.
    pub pulses: Vec<Time>,
    /// σ(Isw) values swept (σ(RA)/σ(TMR) stay at the base model's).
    pub sigma_switching_currents: Vec<f64>,
    /// Operating temperatures.
    pub temperatures: Vec<Temperature>,
}

impl SurfaceAxes {
    /// The row-major point list: temperature-major, then σ, then pulse.
    #[must_use]
    pub fn points(&self) -> Vec<SurfacePoint> {
        let mut points = Vec::with_capacity(
            self.pulses.len().max(1) * self.sigma_switching_currents.len().max(1),
        );
        for &temperature in &self.temperatures {
            for &sigma in &self.sigma_switching_currents {
                for &pulse in &self.pulses {
                    points.push(SurfacePoint {
                        pulse,
                        sigma_switching_current: sigma,
                        temperature,
                    });
                }
            }
        }
        points
    }
}

/// One grid point of the shmoo surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfacePoint {
    /// Pulse width.
    pub pulse: Time,
    /// σ fraction of the switching current at this point.
    pub sigma_switching_current: f64,
    /// Operating temperature.
    pub temperature: Temperature,
}

/// One estimated row of the surface.
#[derive(Debug, Clone, PartialEq)]
pub struct TailSurfaceRow {
    /// The grid point.
    pub point: SurfacePoint,
    /// Tilt the point's campaign used.
    pub tilt: Tilt,
    /// The estimate.
    pub estimate: TailEstimate,
}

/// A completed (or resumed) shmoo surface.
#[derive(Debug, Clone, PartialEq)]
pub struct TailSurface {
    /// Rows in [`SurfaceAxes::points`] order.
    pub rows: Vec<TailSurfaceRow>,
    /// Worker-pool summary (`resumed` counts checkpoint-restored
    /// points).
    pub summary: sweep::RunSummary,
}

/// Canonical fingerprint of a surface campaign for
/// [`sweep::CheckpointPolicy::fingerprint`] — covers the axes and every
/// option that changes the numbers.
#[must_use]
pub fn surface_fingerprint(axes: &SurfaceAxes, opts: &TailOptions) -> u64 {
    use core::fmt::Write as _;
    let mut desc = String::from("nvff-rare-surface/1");
    for p in &axes.pulses {
        let _ = write!(desc, "|p={}", p.seconds());
    }
    for s in &axes.sigma_switching_currents {
        let _ = write!(desc, "|s={s}");
    }
    for t in &axes.temperatures {
        let _ = write!(desc, "|t={}", t.celsius());
    }
    let _ = write!(
        desc,
        "|n={}|est={:?}|conf={}|tilt={:?}|rounds={}|pilot={}",
        opts.samples,
        opts.estimator,
        opts.confidence,
        opts.tilt,
        opts.pilot_rounds,
        opts.pilot_samples
    );
    sweep::fingerprint(&desc)
}

/// Runs (or resumes) a full WER-tail shmoo surface: per grid point, an
/// adaptive tilt search seeded by the point's counter seed, then the
/// estimation campaign — workers fan over *points* and lanes batch
/// *samples* within each point.
///
/// With a checkpoint policy the per-point accumulator sums (exact-f64
/// cells) go through `nvff-sweep-checkpoint/1`; a resumed run restores
/// them bit-for-bit, so the final estimates and intervals are identical
/// to an uninterrupted run.
///
/// # Errors
///
/// Propagates [`sweep::CheckpointError`] from a checkpointed run
/// (mismatched fingerprint, corrupt file, I/O).
///
/// # Panics
///
/// Panics if a surface σ(Isw) value is outside the physical `[0, 1/3)`
/// bound of [`VariationModel::new`].
pub fn tail_surface(
    nominal: &MtjParams,
    base_variation: &VariationModel,
    thermal: &ThermalModel,
    current: Current,
    axes: &SurfaceAxes,
    opts: &TailOptions,
    checkpoint: Option<&sweep::CheckpointPolicy>,
) -> Result<TailSurface, sweep::CheckpointError> {
    for &sigma in &axes.sigma_switching_currents {
        assert!(
            VariationModel::new(base_variation.sigma_ra(), base_variation.sigma_tmr(), sigma)
                .is_ok(),
            "surface sigma(Isw) {sigma} outside [0, 1/3)"
        );
    }
    let points = axes.points();
    let grid = sweep::Grid::with_seed(points, opts.seed);
    let pool = sweep::SweepOptions {
        jobs: opts.jobs,
        span_label: "mtj.rare_point",
        ..sweep::SweepOptions::default()
    };
    let job = |ctx: &sweep::JobCtx, point: &SurfacePoint| -> Vec<f64> {
        let variation = VariationModel::new(
            base_variation.sigma_ra(),
            base_variation.sigma_tmr(),
            point.sigma_switching_current,
        )
        .expect("validated above");
        let env = TailEnv::at_temperature(nominal, variation, thermal, point.temperature, current);
        let tilt = opts.tilt.unwrap_or_else(|| {
            adaptive_tilt(
                &env,
                point.pulse,
                &TiltSearch {
                    rounds: opts.pilot_rounds,
                    pilot_samples: opts.pilot_samples,
                },
                ctx.seed,
                opts.lanes,
            )
            .tilt
        });
        let inner = TailOptions {
            seed: ctx.seed,
            jobs: 1,
            tilt: Some(tilt),
            ..*opts
        };
        let (acc, _) = accumulate_tilted(&env, point.pulse, tilt, &inner);
        let mut cells = vec![tilt.mu[0], tilt.mu[1], tilt.mu[2]];
        cells.extend_from_slice(&acc.to_cells());
        cells
    };
    let outcome = match checkpoint {
        Some(policy) => {
            sweep::run_checkpointed(&grid, &pool, policy, |_| (), |_, ctx, p| job(ctx, p), None)?
        }
        None => sweep::run(&grid, &pool, job),
    };
    let rows = grid
        .points()
        .iter()
        .zip(&outcome.results)
        .map(|(&point, cells)| {
            let tilt = Tilt {
                mu: [cells[0], cells[1], cells[2]],
            };
            let acc = TailAccumulator::from_cells(&cells[3..])
                .expect("surface cells have the fixed accumulator layout");
            TailSurfaceRow {
                point,
                tilt,
                estimate: acc.estimate(opts.confidence),
            }
        })
        .collect();
    Ok(TailSurface {
        rows,
        summary: outcome.summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wer::pulse_for_wer;

    fn env() -> TailEnv {
        let p = MtjParams::date2018();
        let i = p.nominal_write_current();
        TailEnv::new(&p, VariationModel::default(), i)
    }

    fn quick_opts(samples: usize, seed: u64, tilt: Tilt) -> TailOptions {
        TailOptions {
            samples,
            seed,
            jobs: 1,
            lanes: 1,
            tilt: Some(tilt),
            ..TailOptions::default()
        }
    }

    #[test]
    fn normal_quantile_hits_tabulated_values() {
        assert!(normal_quantile(0.5).abs() < 1e-12);
        assert!((z_for_confidence(0.95) - 1.959_963_985).abs() < 1e-6);
        assert!((z_for_confidence(0.99) - 2.575_829_304).abs() < 1e-6);
        // Symmetry across the tail/central region boundary.
        for p in [1e-6, 0.01, 0.2, 0.45] {
            assert!(
                (normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-8,
                "asymmetry at {p}"
            );
        }
        // Deep-tail sanity: Φ⁻¹(1e-9) ≈ −5.9978.
        assert!((normal_quantile(1e-9) + 5.9978).abs() < 1e-3);
    }

    #[test]
    fn weights_are_exactly_one_at_zero_tilt_and_mean_one_tilted() {
        let e = env();
        let m = e.reference_model();
        let pulse = pulse_for_wer(&m, e.current(), 1e-2);
        let (acc, _) = accumulate_tilted(&e, pulse, Tilt::ZERO, &quick_opts(400, 9, Tilt::ZERO));
        assert!((acc.mean_weight() - 1.0).abs() < 1e-12);
        assert_eq!(acc.weight_ess(), 400.0);
        let tilt = Tilt::along_switching_current(1.0);
        let (acc, _) = accumulate_tilted(&e, pulse, tilt, &quick_opts(4000, 9, tilt));
        // E[w] = 1 with sd(w)/√n ≈ √(e−1)/63 ≈ 0.021.
        assert!(
            (acc.mean_weight() - 1.0).abs() < 0.1,
            "{}",
            acc.mean_weight()
        );
        assert!(acc.weight_ess() < 4000.0);
    }

    #[test]
    fn zero_tilt_matches_the_variation_sample_pushforward() {
        // params_from_z ∘ (standard normals) must be exactly the map
        // VariationModel::sample applies — same draws, same floor.
        let p = MtjParams::date2018();
        let var = VariationModel::default();
        let e = env();
        let mut rng = StdRng::seed_from_u64(77);
        let sample = var.sample(&p, &mut rng);
        let mut rng = StdRng::seed_from_u64(77);
        let z = [
            standard_normal(&mut rng),
            standard_normal(&mut rng),
            standard_normal(&mut rng),
        ];
        assert_eq!(e.params_from_z(z), sample.params);
    }

    #[test]
    fn failure_probability_guards_match_trial_preamble() {
        let e = env();
        assert_eq!(e.failure_probability([0.0; 3], Time::ZERO), 1.0);
        let neg = TailEnv::new(e.reference(), *e.variation(), -e.current());
        assert_eq!(
            neg.failure_probability([0.0; 3], Time::from_nano_seconds(2.0)),
            1.0
        );
        // A slow die (large z_Isw) fails more often than the typical.
        let pulse = Time::from_nano_seconds(10.0);
        let typical = e.failure_probability([0.0; 3], pulse);
        let slow = e.failure_probability([0.0, 0.0, 3.0], pulse);
        assert!(slow > typical * 3.0, "slow {slow} vs typical {typical}");
    }

    #[test]
    fn deep_negative_excursions_clamp_and_stay_finite() {
        let e = env();
        let pulse = Time::from_nano_seconds(2.0);
        for z2 in [-5.0, -50.0, -1000.0] {
            let p = e.failure_probability([0.0, 0.0, z2], pulse);
            assert!(p.is_finite() && (0.0..=1.0).contains(&p), "z={z2} p={p}");
        }
    }

    #[test]
    fn lane_widths_and_jobs_are_bit_identical() {
        let e = env();
        let m = e.reference_model();
        let pulse = pulse_for_wer(&m, e.current(), 1e-4);
        for estimator in [Estimator::Smooth, Estimator::Bernoulli] {
            let tilt = Tilt::along_switching_current(1.5);
            let reference = accumulate_tilted(
                &e,
                pulse,
                tilt,
                &TailOptions {
                    samples: 257,
                    seed: 31,
                    jobs: 1,
                    lanes: 1,
                    estimator,
                    tilt: Some(tilt),
                    ..TailOptions::default()
                },
            )
            .0;
            for (jobs, lanes) in [(1, 2), (1, 8), (2, 64), (4, 16), (3, 4)] {
                let got = accumulate_tilted(
                    &e,
                    pulse,
                    tilt,
                    &TailOptions {
                        samples: 257,
                        seed: 31,
                        jobs,
                        lanes,
                        estimator,
                        tilt: Some(tilt),
                        ..TailOptions::default()
                    },
                )
                .0;
                assert_eq!(got, reference, "jobs={jobs} lanes={lanes} {estimator:?}");
            }
        }
    }

    #[test]
    fn tilted_estimate_agrees_with_untilted_within_ci() {
        let e = env();
        let m = e.reference_model();
        let pulse = pulse_for_wer(&m, e.current(), 1e-2);
        let flat = accumulate_tilted(&e, pulse, Tilt::ZERO, &quick_opts(3000, 5, Tilt::ZERO))
            .0
            .estimate(0.99);
        let tilt = Tilt::along_switching_current(1.2);
        let tilted = accumulate_tilted(&e, pulse, tilt, &quick_opts(3000, 6, tilt))
            .0
            .estimate(0.99);
        let pooled = (flat.std_error.powi(2) + tilted.std_error.powi(2)).sqrt();
        assert!(
            (flat.wer - tilted.wer).abs() < 4.0 * pooled,
            "flat {} vs tilted {} (pooled se {pooled})",
            flat.wer,
            tilted.wer
        );
    }

    #[test]
    fn accumulator_cells_round_trip_exactly() {
        let e = env();
        let tilt = Tilt::along_switching_current(0.8);
        let (acc, _) = accumulate_tilted(
            &e,
            Time::from_nano_seconds(12.0),
            tilt,
            &quick_opts(300, 2, tilt),
        );
        let cells = acc.to_cells();
        assert_eq!(cells.len(), TailAccumulator::CELLS);
        assert_eq!(TailAccumulator::from_cells(&cells), Some(acc));
        assert_eq!(TailAccumulator::from_cells(&cells[1..]), None);
    }

    #[test]
    fn zero_sample_estimate_is_nan_not_perfect() {
        let est = TailAccumulator::default().estimate(0.99);
        assert_eq!(est.samples, 0);
        assert!(est.wer.is_nan());
        assert!(est.std_error.is_nan());
        assert!(est.ci.lo.is_nan() && est.ci.hi.is_nan());
        assert!(!est.ci.contains(0.0));
    }

    #[test]
    fn cross_entropy_update_points_along_the_switching_current_axis() {
        let e = env();
        let m = e.reference_model();
        let pulse = pulse_for_wer(&m, e.current(), 1e-6);
        let (acc, _) = accumulate_tilted(&e, pulse, Tilt::ZERO, &quick_opts(4000, 11, Tilt::ZERO));
        let update = acc.cross_entropy_tilt().expect("some failure mass");
        // Failures concentrate where the critical current is high: the
        // Isw component dominates and is positive.
        assert!(update.mu[2] > 0.3, "mu = {:?}", update.mu);
        assert!(update.mu[2] > update.mu[0].abs());
        assert!(update.mu[2] > update.mu[1].abs());
    }

    #[test]
    fn adaptive_tilt_beats_the_null_tilt_in_the_deep_tail() {
        let e = env();
        let m = e.reference_model();
        let pulse = pulse_for_wer(&m, e.current(), 1e-8);
        let search = TiltSearch {
            rounds: 3,
            pilot_samples: 600,
        };
        let result = adaptive_tilt(&e, pulse, &search, 21, 1);
        assert!(result.tilt.magnitude() > 0.5, "tilt {:?}", result.tilt);
        let null_ess = result
            .evaluated
            .iter()
            .find(|(t, _)| *t == Tilt::ZERO)
            .expect("null candidate always evaluated")
            .1;
        assert!(
            result.ess > 3.0 * null_ess.max(1.0),
            "adaptive ess {} vs null {null_ess}",
            result.ess
        );
    }

    #[test]
    fn estimate_tail_reaches_the_deep_tail_with_bounded_samples() {
        let e = env();
        let m = e.reference_model();
        // The pulse sized for 1e-9 on the *typical* die; variation
        // inflates the population WER above that (Jensen), but it stays
        // a deep-tail quantity far beyond brute-force reach at 1e4.
        let pulse = pulse_for_wer(&m, e.current(), 1e-9);
        let result = estimate_tail(
            &e,
            pulse,
            &TailOptions {
                samples: 4000,
                seed: 3,
                jobs: 1,
                lanes: 64,
                pilot_samples: 400,
                ..TailOptions::default()
            },
        );
        let est = result.estimate;
        assert!(est.wer > 1e-10 && est.wer < 1e-5, "wer {}", est.wer);
        assert!(est.ci.lo > 0.0 && est.ci.contains(est.wer));
        // Tight: the CI spans well under a decade.
        assert!(
            est.ci.hi / est.ci.lo < 5.0,
            "ci [{}, {}]",
            est.ci.lo,
            est.ci.hi
        );
        // And the brute-force equivalent is astronomically larger.
        assert!(est.brute_force_equivalent_trials() > 50.0 * est.samples as f64);
    }

    #[test]
    fn varied_brute_force_is_jobs_invariant_and_decays() {
        let e = env();
        let m = e.reference_model();
        let pulses: Vec<Time> = [0.3, 0.15]
            .iter()
            .map(|&t| pulse_for_wer(&m, e.current(), t))
            .collect();
        let (serial, _) = varied_wer_grid(&e, &pulses, 400, 7, 1);
        let (parallel, _) = varied_wer_grid(&e, &pulses, 400, 7, 2);
        assert_eq!(serial, parallel);
        assert!(serial[0].wer() > serial[1].wer());
    }

    #[test]
    fn surface_axes_enumerate_row_major() {
        let axes = SurfaceAxes {
            pulses: vec![Time::from_nano_seconds(1.0), Time::from_nano_seconds(2.0)],
            sigma_switching_currents: vec![0.05, 0.08],
            temperatures: vec![Temperature::from_celsius(27.0)],
        };
        let points = axes.points();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].sigma_switching_current, 0.05);
        assert_eq!(points[1].pulse, Time::from_nano_seconds(2.0));
        assert_eq!(points[2].sigma_switching_current, 0.08);
    }

    #[test]
    fn surface_fingerprint_separates_campaigns() {
        let axes = SurfaceAxes {
            pulses: vec![Time::from_nano_seconds(8.0)],
            sigma_switching_currents: vec![0.05],
            temperatures: vec![Temperature::from_celsius(27.0)],
        };
        let opts = TailOptions::default();
        let base = surface_fingerprint(&axes, &opts);
        assert_eq!(base, surface_fingerprint(&axes, &opts));
        let mut other = axes.clone();
        other.sigma_switching_currents = vec![0.06];
        assert_ne!(base, surface_fingerprint(&other, &opts));
        let fewer = TailOptions {
            samples: 5000,
            ..opts
        };
        assert_ne!(base, surface_fingerprint(&axes, &fewer));
    }
}
