//! Monte-Carlo harness and summary statistics over device samples.
//!
//! The circuit-level corner columns of Table II bound the distribution; a
//! Monte-Carlo run characterises the interior. [`run`] evaluates an
//! arbitrary metric over `n` perturbed devices and [`Statistics`]
//! summarises the draws (mean, standard deviation, extremes, yield against
//! a predicate).
//!
//! Sampling is **counter-seeded**: draw `i` perturbs its device with a
//! private `StdRng` seeded by [`sweep::point_seed`]`(seed, i)` rather
//! than walking one shared generator. Any draw can therefore be
//! computed independently — which is what lets [`run_parallel`] fan the
//! campaign out over a worker pool and still return results
//! bit-identical to the serial [`run`].

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::params::MtjParams;
use crate::variation::{MtjSample, VariationModel};

/// Runs `metric` over `n` Monte-Carlo device samples drawn with a
/// deterministic seed, returning every metric value.
///
/// The metric receives the full [`MtjSample`] so it can correlate outputs
/// with the underlying multipliers. Draw `i` uses its own counter-derived
/// seed, so the value at index `i` does not depend on `n` or on any other
/// draw.
///
/// # Examples
///
/// ```
/// use mtj::{MtjParams, VariationModel, montecarlo};
///
/// let nominal = MtjParams::date2018();
/// let spread = montecarlo::run(&nominal, &VariationModel::default(), 256, 7, |s| {
///     s.params.resistance_antiparallel().ohms() - s.params.resistance_parallel().ohms()
/// });
/// let stats = montecarlo::Statistics::from_values(&spread);
/// // The nominal Rap − Rp = 6 kΩ read window is preserved on average.
/// assert!((stats.mean() - 6000.0).abs() < 200.0);
/// ```
pub fn run<T>(
    nominal: &MtjParams,
    variation: &VariationModel,
    n: usize,
    seed: u64,
    mut metric: impl FnMut(&MtjSample) -> T,
) -> Vec<T> {
    (0..n)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(sweep::point_seed(seed, i as u64));
            let sample = variation.sample(nominal, &mut rng);
            metric(&sample)
        })
        .collect()
}

/// The parallel form of [`run`]: the same draws, fanned out over a
/// [`sweep`] worker pool.
///
/// Because each draw owns a counter-derived seed, the returned metric
/// values are **bit-identical** to `run(nominal, variation, n, seed, …)`
/// for every `jobs` value (`0` = auto, `1` = serial on the calling
/// thread). Also returns the pool's [`sweep::RunSummary`] accounting.
///
/// # Examples
///
/// ```
/// use mtj::{MtjParams, VariationModel, montecarlo};
///
/// let nominal = MtjParams::date2018();
/// let v = VariationModel::default();
/// let serial = montecarlo::run(&nominal, &v, 64, 7, |s| s.tmr_multiplier);
/// let (parallel, summary) = montecarlo::run_parallel(&nominal, &v, 64, 7, 4, |s| {
///     s.tmr_multiplier
/// });
/// assert_eq!(parallel, serial);
/// assert_eq!(summary.points, 64);
/// ```
pub fn run_parallel<T: Send>(
    nominal: &MtjParams,
    variation: &VariationModel,
    n: usize,
    seed: u64,
    jobs: usize,
    metric: impl Fn(&MtjSample) -> T + Sync,
) -> (Vec<T>, sweep::RunSummary) {
    let grid = sweep::Grid::samples(n, seed);
    let opts = sweep::SweepOptions {
        jobs,
        span_label: "mtj.mc_sample",
        ..sweep::SweepOptions::default()
    };
    let outcome = sweep::run(&grid, &opts, |ctx, ()| {
        let mut rng = StdRng::seed_from_u64(ctx.seed);
        metric(&variation.sample(nominal, &mut rng))
    });
    (outcome.results, outcome.summary)
}

/// The lane-batched form of [`run`]: draws arrive at the metric in
/// contiguous blocks of up to `lanes` samples, for metrics that
/// evaluate a whole block in lockstep (SIMD structure-of-arrays
/// kernels).
///
/// Sample `i` is drawn exactly as [`run`] draws it — a private `StdRng`
/// seeded by [`sweep::point_seed`]`(seed, i)` — so for a metric that
/// maps each sample independently the flattened results are
/// **bit-identical** to `run(...)` for every `lanes` value. The metric
/// must return one value per sample, in block order.
///
/// # Panics
///
/// Panics if the metric returns a value count different from its
/// block's length.
///
/// # Examples
///
/// ```
/// use mtj::{MtjParams, VariationModel, montecarlo};
///
/// let nominal = MtjParams::date2018();
/// let v = VariationModel::default();
/// let pointwise = montecarlo::run(&nominal, &v, 64, 7, |s| s.tmr_multiplier);
/// let blocked = montecarlo::run_blocked(&nominal, &v, 64, 7, 8, |block| {
///     block.iter().map(|s| s.tmr_multiplier).collect()
/// });
/// assert_eq!(blocked, pointwise);
/// ```
pub fn run_blocked<T>(
    nominal: &MtjParams,
    variation: &VariationModel,
    n: usize,
    seed: u64,
    lanes: usize,
    mut metric: impl FnMut(&[MtjSample]) -> Vec<T>,
) -> Vec<T> {
    let lanes = lanes.max(1);
    let mut out = Vec::with_capacity(n);
    let mut block = Vec::with_capacity(lanes);
    for start in (0..n).step_by(lanes) {
        block.clear();
        for i in start..(start + lanes).min(n) {
            let mut rng = StdRng::seed_from_u64(sweep::point_seed(seed, i as u64));
            block.push(variation.sample(nominal, &mut rng));
        }
        let results = metric(&block);
        assert_eq!(
            results.len(),
            block.len(),
            "blocked metric returned {} values for a block of {}",
            results.len(),
            block.len()
        );
        out.extend(results);
    }
    out
}

/// The parallel form of [`run_blocked`]: lane-sized blocks fanned out
/// over a [`sweep`] worker pool (lanes × workers composed via
/// [`sweep::run_blocked`]).
///
/// Per-sample seeds are identical to [`run`]'s, so for an
/// independent-per-sample metric the results are bit-identical to the
/// serial pointwise run for every `jobs` **and** `lanes` combination.
pub fn run_parallel_blocked<T: Send>(
    nominal: &MtjParams,
    variation: &VariationModel,
    n: usize,
    seed: u64,
    jobs: usize,
    lanes: usize,
    metric: impl Fn(&[MtjSample]) -> Vec<T> + Sync,
) -> (Vec<T>, sweep::RunSummary) {
    let grid = sweep::Grid::samples(n, seed);
    let opts = sweep::SweepOptions {
        jobs,
        span_label: "mtj.mc_block",
        ..sweep::SweepOptions::default()
    };
    let outcome = sweep::run_blocked(&grid, &opts, lanes, |ctxs, _| {
        let samples: Vec<MtjSample> = ctxs
            .iter()
            .map(|ctx| {
                let mut rng = StdRng::seed_from_u64(ctx.seed);
                variation.sample(nominal, &mut rng)
            })
            .collect();
        metric(&samples)
    });
    (outcome.results, outcome.summary)
}

/// Summary statistics over a slice of metric values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Statistics {
    count: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    max: f64,
}

impl Statistics {
    /// Computes statistics over `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty — an empty Monte-Carlo run is a caller
    /// bug, not a data condition.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "statistics over an empty sample set");
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            count,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sample mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (Bessel-corrected).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest observed value.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observed value.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// The `q`-quantile (0‥1) of `values` by linear interpolation between
/// order statistics — e.g. `quantile(&spreads, 0.999)` estimates a +3σ
/// point non-parametrically.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of an empty sample set");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let position = q * (sorted.len() - 1) as f64;
    let lower = position.floor() as usize;
    let upper = position.ceil() as usize;
    let frac = position - lower as f64;
    sorted[lower] * (1.0 - frac) + sorted[upper] * frac
}

/// Fraction of values satisfying `pass` — the yield of a criterion such as
/// "read margin above 100 mV".
///
/// Returns 0 for an empty slice.
#[must_use]
pub fn yield_fraction(values: &[f64], mut pass: impl FnMut(f64) -> bool) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let passing = values.iter().filter(|&&v| pass(v)).count();
    passing as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_is_deterministic_per_seed() {
        let nominal = MtjParams::date2018();
        let v = VariationModel::default();
        let a = run(&nominal, &v, 64, 11, |s| {
            s.params.resistance_parallel().ohms()
        });
        let b = run(&nominal, &v, 64, 11, |s| {
            s.params.resistance_parallel().ohms()
        });
        let c = run(&nominal, &v, 64, 12, |s| {
            s.params.resistance_parallel().ohms()
        });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let nominal = MtjParams::date2018();
        let v = VariationModel::default();
        let serial = run(&nominal, &v, 300, 5, |s| {
            s.params.resistance_parallel().ohms()
        });
        for jobs in [1, 3, 8] {
            let (parallel, summary) = run_parallel(&nominal, &v, 300, 5, jobs, |s| {
                s.params.resistance_parallel().ohms()
            });
            assert_eq!(parallel, serial, "jobs = {jobs}");
            assert_eq!(summary.points, 300);
            assert_eq!(summary.resumed, 0);
        }
    }

    #[test]
    fn blocked_runs_are_bit_identical_to_pointwise() {
        let nominal = MtjParams::date2018();
        let v = VariationModel::default();
        let pointwise = run(&nominal, &v, 100, 19, |s| {
            s.params.resistance_parallel().ohms()
        });
        for lanes in [1, 3, 8, 128] {
            let blocked = run_blocked(&nominal, &v, 100, 19, lanes, |block| {
                block
                    .iter()
                    .map(|s| s.params.resistance_parallel().ohms())
                    .collect()
            });
            assert_eq!(blocked, pointwise, "lanes = {lanes}");
            for jobs in [1, 4] {
                let (parallel, summary) =
                    run_parallel_blocked(&nominal, &v, 100, 19, jobs, lanes, |block| {
                        block
                            .iter()
                            .map(|s| s.params.resistance_parallel().ohms())
                            .collect()
                    });
                assert_eq!(parallel, pointwise, "lanes = {lanes}, jobs = {jobs}");
                assert_eq!(summary.points, 100);
            }
        }
    }

    #[test]
    #[should_panic(expected = "blocked metric returned")]
    fn blocked_metric_must_cover_its_block() {
        let nominal = MtjParams::date2018();
        let v = VariationModel::default();
        let _ = run_blocked(&nominal, &v, 8, 1, 4, |_| Vec::<f64>::new());
    }

    #[test]
    fn draw_i_is_independent_of_n() {
        // Counter seeding: shrinking the campaign must not change the
        // draws that remain.
        let nominal = MtjParams::date2018();
        let v = VariationModel::default();
        let long = run(&nominal, &v, 50, 13, |s| s.tmr_multiplier);
        let short = run(&nominal, &v, 20, 13, |s| s.tmr_multiplier);
        assert_eq!(&long[..20], &short[..]);
    }

    #[test]
    fn statistics_basics() {
        let s = Statistics::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.min() - 1.0).abs() < 1e-12);
        assert!((s.max() - 4.0).abs() < 1e-12);
        // Bessel-corrected sd of 1..4 is sqrt(5/3).
        assert!((s.std_dev() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = Statistics::from_values(&[7.0]);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.mean(), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn empty_statistics_panic() {
        let _ = Statistics::from_values(&[]);
    }

    #[test]
    fn quantiles_interpolate_order_statistics() {
        let values = [4.0, 1.0, 3.0, 2.0];
        assert!((quantile(&values, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&values, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&values, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&values, 1.0 / 3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_quantile_panics() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn gaussian_quantiles_match_the_normal_table() {
        // The sampled TMR multiplier is N(1, 0.05²): its 97.7 % quantile
        // sits near +2σ.
        let nominal = MtjParams::date2018();
        let v = VariationModel::default();
        let draws = run(&nominal, &v, 8000, 21, |s| s.tmr_multiplier);
        let q977 = quantile(&draws, 0.977);
        assert!((q977 - 1.10).abs() < 0.01, "q97.7 = {q977}");
    }

    #[test]
    fn yield_counts_passing_fraction() {
        let values = [0.5, 1.5, 2.5, 3.5];
        assert!((yield_fraction(&values, |v| v > 1.0) - 0.75).abs() < 1e-12);
        assert_eq!(yield_fraction(&[], |_| true), 0.0);
    }

    #[test]
    fn read_window_yield_is_high_at_default_variation() {
        // Yield criterion: Rap − Rp window at least 4 kΩ (two thirds of
        // nominal). With 4–5 % sigmas this should pass essentially always.
        let nominal = MtjParams::date2018();
        let v = VariationModel::default();
        let windows = run(&nominal, &v, 2000, 3, |s| {
            s.params.resistance_antiparallel().ohms() - s.params.resistance_parallel().ohms()
        });
        let y = yield_fraction(&windows, |w| w > 4000.0);
        assert!(y > 0.999, "yield = {y}");
    }
}
