//! Compact model of a spin-transfer-torque (STT) magnetic tunnel junction.
//!
//! A magnetic tunnel junction (MTJ) stores one bit as the relative magnetic
//! orientation of a free layer (FL) against a reference layer (RL) across a
//! thin MgO barrier. Parallel (`P`) orientation is low resistance, while
//! anti-parallel (`AP`) is high resistance; the ratio is the tunnelling
//! magneto-resistance (TMR). A sufficiently large current through the stack
//! transfers spin angular momentum and switches the free layer — the storage
//! mechanism exploited by the non-volatile flip-flops reproduced in this
//! repository.
//!
//! The model follows the precessional compact model of Mejdoubi et al.
//! (MIEL 2012, reference 29 of the paper) with the parameters of the
//! paper's Table I (`MtjParams::date2018`):
//!
//! * geometry: 20 nm radius, 1.84 nm free layer, 1.48 nm oxide;
//! * RA = 1.26 Ωµm², TMR(0 V) = 123 %, Rp = 5 kΩ, Rap = 11 kΩ;
//! * critical current 37 µA, nominal write current 70 µA.
//!
//! Three layers build on the static parameters:
//!
//! * [`resistance`] — bias-dependent resistance `R(state, V)` with TMR
//!   roll-off, the quantity a sense amplifier actually discriminates;
//! * [`switching`] — Sun-model switching delay vs. current (precessional
//!   regime) and thermally activated switching below the critical current;
//! * [`device`] — a stateful [`device::Mtj`] that integrates switching
//!   progress under a time-varying current, which is what the transient
//!   circuit simulator steps;
//! * [`variation`] / [`montecarlo`] — ±3σ process variation on RA, TMR and
//!   switching current, matching the paper's corner methodology;
//! * [`wer`] / [`lanes`] — stochastic write-error-rate kernels: a
//!   counter-seeded scalar reference and a lane-batched
//!   structure-of-arrays engine returning bit-identical counts at SIMD
//!   throughput.
//!
//! # Examples
//!
//! ```
//! use mtj::{MtjParams, MtjState};
//!
//! let params = MtjParams::date2018();
//! let rp = params.resistance_at(MtjState::Parallel, units::Voltage::ZERO);
//! let rap = params.resistance_at(MtjState::AntiParallel, units::Voltage::ZERO);
//! assert!(rap > rp);
//! assert!((rap / rp - (1.0 + params.tmr_zero_bias())).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod lanes;
pub mod montecarlo;
pub mod params;
pub mod rare;
pub mod resistance;
pub mod switching;
pub mod thermal;
pub mod variation;
pub mod wer;

pub use device::{Mtj, WritePolarity};
pub use params::{MtjParams, MtjParamsBuilder, ValidateParamsError};
pub use rare::{Estimator, TailEnv, TailEstimate, TailOptions, Tilt};
pub use resistance::MtjState;
pub use switching::SwitchingModel;
pub use thermal::ThermalModel;
pub use variation::{MtjCorner, MtjSample, VariationModel};
