//! Spin-transfer-torque switching dynamics.
//!
//! Switching time versus drive current follows the classic three-regime
//! picture (Sun's model plus Néel–Brown thermal activation, as used by the
//! compact model of Mejdoubi et al. that the paper simulates with):
//!
//! * **Thermal activation** (`I ≤ 0.8·Ic0`): mean switching time
//!   `τ = τ₀ · exp(Δ·(1 − I/Ic0))`. At zero current this is the retention
//!   time (`e^Δ` ≈ 10¹⁷ s for Δ = 60).
//! * **Precessional** (`I ≥ 1.2·Ic0`): `τ = τ_p / (I/Ic0 − 1)`, the
//!   strong-overdrive asymptote used for deliberate writes.
//! * **Intermediate** (`0.8·Ic0 < I < 1.2·Ic0`): log-linear interpolation
//!   in `log τ` between the two boundary values, keeping the curve
//!   continuous and strictly decreasing.
//!
//! The precessional time constant `τ_p` is calibrated so the nominal write
//! current (70 µA in Table I) switches in the paper's worst-case write
//! latency of 2 ns; see [`SwitchingModel::new`].

use core::fmt;

use units::{Current, Time};

use crate::params::MtjParams;

/// Fraction of `Ic0` below which switching is purely thermally activated.
const THERMAL_BOUNDARY: f64 = 0.8;
/// Fraction of `Ic0` above which switching is purely precessional.
const PRECESSIONAL_BOUNDARY: f64 = 1.2;

/// Which physical regime a drive current falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchingRegime {
    /// Sub-threshold: rare, thermally activated reversal.
    Thermal,
    /// Near-threshold crossover window.
    Intermediate,
    /// Strong overdrive: deterministic precessional reversal.
    Precessional,
}

impl fmt::Display for SwitchingRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Thermal => "thermal",
            Self::Intermediate => "intermediate",
            Self::Precessional => "precessional",
        })
    }
}

/// Switching-time model for one MTJ parameter set.
///
/// # Examples
///
/// ```
/// use mtj::{MtjParams, SwitchingModel};
/// use units::Current;
///
/// let params = MtjParams::date2018();
/// let model = SwitchingModel::new(&params);
/// // Calibrated: the nominal 70 µA write completes in 2 ns.
/// let t = model.mean_switching_time(params.nominal_write_current());
/// assert!((t.nano_seconds() - 2.0).abs() < 1e-9);
/// // A read-disturb-level current (a few µA) practically never switches.
/// let t_read = model.mean_switching_time(Current::from_micro_amps(5.0));
/// assert!(t_read.seconds() > 1e4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchingModel {
    critical_current: Current,
    attempt_time: Time,
    thermal_stability: f64,
    precessional_time_constant: Time,
}

impl SwitchingModel {
    /// Default write latency the model is calibrated against (paper
    /// Section IV-B: "around … 2 ns for the worst case").
    pub const DEFAULT_WRITE_TIME: Time = Time::from_seconds(2e-9);

    /// Builds a model calibrated so that the parameter set's nominal write
    /// current switches in [`Self::DEFAULT_WRITE_TIME`].
    #[must_use]
    pub fn new(params: &MtjParams) -> Self {
        Self::with_write_time(params, Self::DEFAULT_WRITE_TIME)
    }

    /// Builds a model calibrated so the nominal write current switches in
    /// `write_time`.
    ///
    /// # Panics
    ///
    /// Panics if `write_time` is not positive; parameter-set validity is
    /// already guaranteed by [`MtjParams`] construction.
    #[must_use]
    pub fn with_write_time(params: &MtjParams, write_time: Time) -> Self {
        assert!(
            write_time.seconds() > 0.0,
            "write time must be positive, got {write_time}"
        );
        let overdrive = params.nominal_write_current() / params.critical_current() - 1.0;
        Self {
            critical_current: params.critical_current(),
            attempt_time: params.attempt_time(),
            thermal_stability: params.thermal_stability(),
            precessional_time_constant: write_time * overdrive,
        }
    }

    /// Builds a model for a *perturbed* device using the precessional
    /// calibration of a *reference* device — the construction variation
    /// and temperature studies need.
    ///
    /// [`Self::new`] calibrates `τ_p` so the parameter set's own nominal
    /// write current switches in the target write time. Applied to a
    /// Monte-Carlo sample that recalibration silently absorbs the very
    /// perturbation under study: at the nominal drive the overdrive
    /// factor cancels and every sample switches in exactly the
    /// calibrated time, regardless of its critical current. Here the
    /// time constant is frozen from `reference` (it is a device-class
    /// property — magnetics and damping — not a per-die one), while the
    /// critical current, thermal stability and attempt time come from
    /// `device`, so an `Ic` excursion shifts the switching curve the
    /// way a real slow die would.
    ///
    /// `with_reference(p, p)` is identical to `new(p)`.
    #[must_use]
    pub fn with_reference(reference: &MtjParams, device: &MtjParams) -> Self {
        Self::with_reference_write_time(reference, device, Self::DEFAULT_WRITE_TIME)
    }

    /// [`Self::with_reference`] with an explicit reference write time.
    ///
    /// # Panics
    ///
    /// Panics if `write_time` is not positive.
    #[must_use]
    pub fn with_reference_write_time(
        reference: &MtjParams,
        device: &MtjParams,
        write_time: Time,
    ) -> Self {
        assert!(
            write_time.seconds() > 0.0,
            "write time must be positive, got {write_time}"
        );
        let overdrive = reference.nominal_write_current() / reference.critical_current() - 1.0;
        Self {
            critical_current: device.critical_current(),
            attempt_time: device.attempt_time(),
            thermal_stability: device.thermal_stability(),
            precessional_time_constant: write_time * overdrive,
        }
    }

    /// The regime a drive current of magnitude `current` falls into.
    #[must_use]
    pub fn regime(&self, current: Current) -> SwitchingRegime {
        let x = current.abs() / self.critical_current;
        if x <= THERMAL_BOUNDARY {
            SwitchingRegime::Thermal
        } else if x >= PRECESSIONAL_BOUNDARY {
            SwitchingRegime::Precessional
        } else {
            SwitchingRegime::Intermediate
        }
    }

    /// Mean time to reverse the free layer under a constant drive of
    /// magnitude `current` (the sign is the caller's concern — see
    /// [`crate::device::Mtj`]).
    ///
    /// The returned time is continuous and strictly decreasing in the
    /// current magnitude.
    #[must_use]
    pub fn mean_switching_time(&self, current: Current) -> Time {
        let x = current.abs() / self.critical_current;
        Time::from_seconds(self.log_tau(x).exp())
    }

    /// Switching rate `1/τ` in 1/s — the quantity integrated by the
    /// dynamic device model under time-varying current.
    #[must_use]
    pub fn switching_rate(&self, current: Current) -> f64 {
        let x = current.abs() / self.critical_current;
        (-self.log_tau(x)).exp()
    }

    /// Probability that a constant drive of magnitude `current` held for
    /// `duration` reverses the free layer, `1 − exp(−t/τ)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mtj::{MtjParams, SwitchingModel};
    /// use units::Time;
    ///
    /// let p = MtjParams::date2018();
    /// let m = SwitchingModel::new(&p);
    /// // Holding the nominal write current for 5× the mean time is a
    /// // practically certain write.
    /// let prob = m.switch_probability(p.nominal_write_current(), Time::from_nano_seconds(10.0));
    /// assert!(prob > 0.99);
    /// ```
    #[must_use]
    pub fn switch_probability(&self, current: Current, duration: Time) -> f64 {
        let tau = self.mean_switching_time(current).seconds();
        1.0 - (-duration.seconds() / tau).exp()
    }

    /// Natural log of the mean switching time at normalized current `x =
    /// I/Ic0`, the internal piecewise-continuous curve.
    fn log_tau(&self, x: f64) -> f64 {
        if x <= THERMAL_BOUNDARY {
            self.log_tau_thermal(x)
        } else if x >= PRECESSIONAL_BOUNDARY {
            self.log_tau_precessional(x)
        } else {
            // Log-linear bridge across the crossover window.
            let t = (x - THERMAL_BOUNDARY) / (PRECESSIONAL_BOUNDARY - THERMAL_BOUNDARY);
            let lo = self.log_tau_thermal(THERMAL_BOUNDARY);
            let hi = self.log_tau_precessional(PRECESSIONAL_BOUNDARY);
            lo + t * (hi - lo)
        }
    }

    fn log_tau_thermal(&self, x: f64) -> f64 {
        self.attempt_time.seconds().ln() + self.thermal_stability * (1.0 - x)
    }

    fn log_tau_precessional(&self, x: f64) -> f64 {
        self.precessional_time_constant.seconds().ln() - (x - 1.0).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (MtjParams, SwitchingModel) {
        let p = MtjParams::date2018();
        let m = SwitchingModel::new(&p);
        (p, m)
    }

    #[test]
    fn calibrated_write_time() {
        let (p, m) = model();
        let t = m.mean_switching_time(p.nominal_write_current());
        assert!((t.nano_seconds() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn custom_write_time_calibration() {
        let p = MtjParams::date2018();
        let m = SwitchingModel::with_write_time(&p, Time::from_nano_seconds(5.0));
        let t = m.mean_switching_time(p.nominal_write_current());
        assert!((t.nano_seconds() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_current_gives_retention_time() {
        let (p, m) = model();
        let t = m.mean_switching_time(Current::ZERO);
        assert!((t / p.retention_time() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regimes_partition_the_current_axis() {
        let (p, m) = model();
        let ic = p.critical_current();
        assert_eq!(m.regime(ic * 0.5), SwitchingRegime::Thermal);
        assert_eq!(m.regime(ic * 1.0), SwitchingRegime::Intermediate);
        assert_eq!(m.regime(ic * 1.5), SwitchingRegime::Precessional);
        // Magnitude only: negative currents land in the same regime.
        assert_eq!(m.regime(-(ic * 1.5)), SwitchingRegime::Precessional);
    }

    #[test]
    fn switching_time_is_strictly_decreasing_and_continuous() {
        let (p, m) = model();
        let ic = p.critical_current().micro_amps();
        let mut last = f64::INFINITY;
        let mut prev_log = f64::INFINITY;
        for step in 1..400 {
            let i = Current::from_micro_amps(ic * 0.01 * f64::from(step));
            let log_tau = m.mean_switching_time(i).seconds().ln();
            assert!(log_tau < last, "not decreasing at {i}");
            if prev_log.is_finite() {
                // No jumps bigger than the local slope allows (continuity).
                assert!(
                    (prev_log - log_tau) < 2.0,
                    "discontinuity near {i}: {prev_log} -> {log_tau}"
                );
            }
            last = log_tau;
            prev_log = log_tau;
        }
    }

    #[test]
    fn rate_is_reciprocal_of_time() {
        let (p, m) = model();
        let i = p.nominal_write_current();
        let tau = m.mean_switching_time(i).seconds();
        assert!((m.switching_rate(i) * tau - 1.0).abs() < 1e-9);
    }

    #[test]
    fn read_level_currents_are_disturb_safe() {
        let (_, m) = model();
        // A 10 µA read current held for 1 ns: disturb probability ~ 0.
        let p_disturb =
            m.switch_probability(Current::from_micro_amps(10.0), Time::from_nano_seconds(1.0));
        assert!(p_disturb < 1e-15, "p = {p_disturb}");
    }

    #[test]
    fn write_current_held_long_enough_switches() {
        let (p, m) = model();
        let prob = m.switch_probability(p.nominal_write_current(), Time::from_nano_seconds(20.0));
        assert!(prob > 0.9999);
    }

    #[test]
    #[should_panic(expected = "write time must be positive")]
    fn zero_write_time_panics() {
        let p = MtjParams::date2018();
        let _ = SwitchingModel::with_write_time(&p, Time::ZERO);
    }

    #[test]
    fn reference_calibration_matches_new_on_the_reference() {
        let p = MtjParams::date2018();
        assert_eq!(
            SwitchingModel::with_reference(&p, &p),
            SwitchingModel::new(&p)
        );
        assert_eq!(
            SwitchingModel::with_reference_write_time(&p, &p, Time::from_nano_seconds(5.0)),
            SwitchingModel::with_write_time(&p, Time::from_nano_seconds(5.0))
        );
    }

    #[test]
    fn reference_calibration_sees_critical_current_excursions() {
        // Regression for the variation studies: recalibrating on the
        // perturbed set (`new`) cancels an Ic excursion exactly at the
        // nominal drive — overdrive appears in both τ_p and the
        // denominator, so every sample switches in the calibrated 2 ns
        // no matter how slow its die is. The reference-calibrated model
        // must expose the excursion instead.
        let p = MtjParams::date2018();
        let slow = p.perturbed(1.0, 1.0, 1.15); // a +3σ Isw die at σ = 5 %
        let i = p.nominal_write_current();
        let recalibrated = SwitchingModel::new(&slow).mean_switching_time(i);
        assert!((recalibrated.nano_seconds() - 2.0).abs() < 1e-9);
        let referenced = SwitchingModel::with_reference(&p, &slow).mean_switching_time(i);
        assert!(
            referenced > recalibrated * 1.2,
            "slow die must switch slower: {referenced} vs {recalibrated}"
        );
        // And a fast die switches faster.
        let fast = p.perturbed(1.0, 1.0, 0.85);
        let fast_tau = SwitchingModel::with_reference(&p, &fast).mean_switching_time(i);
        assert!(fast_tau < recalibrated * 0.8, "fast die: {fast_tau}");
    }

    #[test]
    fn regime_display() {
        assert_eq!(SwitchingRegime::Thermal.to_string(), "thermal");
        assert_eq!(SwitchingRegime::Precessional.to_string(), "precessional");
    }
}
