//! Static MTJ device parameters and their validation.

use core::fmt;
use std::error::Error;

use units::{Area, Current, Length, Resistance, Temperature, Time, Voltage};

use crate::resistance::MtjState;

/// Complete parameter set of one MTJ device.
///
/// Constructed either from the paper's Table I via [`MtjParams::date2018`]
/// or through [`MtjParams::builder`]. All parameters are nominal; process
/// variation is applied by [`crate::variation::VariationModel::at_corner`],
/// which returns a perturbed copy.
///
/// # Examples
///
/// ```
/// use mtj::MtjParams;
///
/// let nominal = MtjParams::date2018();
/// assert!((nominal.tmr_zero_bias() - 1.2).abs() < 0.05); // 123 % → Rap/Rp ≈ 2.2
/// assert!((nominal.resistance_parallel().kilo_ohms() - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MtjParams {
    radius: Length,
    free_layer_thickness: Length,
    oxide_thickness: Length,
    resistance_area_product_ohm_um2: f64,
    resistance_parallel: Resistance,
    tmr_zero_bias: f64,
    tmr_half_bias: Voltage,
    critical_current: Current,
    nominal_write_current: Current,
    thermal_stability: f64,
    attempt_time: Time,
    temperature: Temperature,
}

impl MtjParams {
    /// Parameters of the paper's Table I (DATE 2018 circuit-level setup).
    ///
    /// `Rp` is taken from the table's explicit 'AP'/'P' resistance row
    /// (5 kΩ / 11 kΩ) rather than derived from RA / area; the table's RA and
    /// radius are internally inconsistent with those values (RA / πr²
    /// ≈ 1 kΩ), a common artefact of quoting RA at a different reference
    /// geometry. Both views are exposed: [`Self::resistance_parallel`]
    /// (authoritative) and [`Self::resistance_from_ra`] (derived).
    #[must_use]
    pub fn date2018() -> Self {
        Self {
            radius: Length::from_nano_meters(20.0),
            free_layer_thickness: Length::from_nano_meters(1.84),
            oxide_thickness: Length::from_nano_meters(1.48),
            resistance_area_product_ohm_um2: 1.26,
            resistance_parallel: Resistance::from_kilo_ohms(5.0),
            tmr_zero_bias: 1.2,
            tmr_half_bias: Voltage::from_volts(0.5),
            critical_current: Current::from_micro_amps(37.0),
            nominal_write_current: Current::from_micro_amps(70.0),
            thermal_stability: 60.0,
            attempt_time: Time::from_nano_seconds(1.0),
            temperature: Temperature::from_celsius(27.0),
        }
    }

    /// Starts building a parameter set from the Table I defaults.
    #[must_use]
    pub fn builder() -> MtjParamsBuilder {
        MtjParamsBuilder {
            params: Self::date2018(),
        }
    }

    /// Starts building a parameter set from `self` — the way to apply
    /// point overrides on top of an already corner-shifted device
    /// without losing the shift. `build()` re-validates the result.
    #[must_use]
    pub fn to_builder(&self) -> MtjParamsBuilder {
        MtjParamsBuilder {
            params: self.clone(),
        }
    }

    /// Free-layer disc radius.
    #[must_use]
    pub fn radius(&self) -> Length {
        self.radius
    }

    /// Free layer thickness.
    #[must_use]
    pub fn free_layer_thickness(&self) -> Length {
        self.free_layer_thickness
    }

    /// MgO barrier thickness.
    #[must_use]
    pub fn oxide_thickness(&self) -> Length {
        self.oxide_thickness
    }

    /// Resistance–area product in Ω·µm².
    #[must_use]
    pub fn resistance_area_product_ohm_um2(&self) -> f64 {
        self.resistance_area_product_ohm_um2
    }

    /// Junction area `πr²`.
    #[must_use]
    pub fn junction_area(&self) -> Area {
        let r = self.radius.meters();
        Area::from_square_meters(core::f64::consts::PI * r * r)
    }

    /// Parallel-state resistance at zero bias (authoritative value).
    #[must_use]
    pub fn resistance_parallel(&self) -> Resistance {
        self.resistance_parallel
    }

    /// Anti-parallel-state resistance at zero bias: `Rp · (1 + TMR₀)`.
    #[must_use]
    pub fn resistance_antiparallel(&self) -> Resistance {
        self.resistance_parallel * (1.0 + self.tmr_zero_bias)
    }

    /// Parallel-state resistance derived from the RA product and geometry.
    ///
    /// Provided for cross-checking datasheet consistency; the circuit
    /// models use [`Self::resistance_parallel`].
    #[must_use]
    pub fn resistance_from_ra(&self) -> Resistance {
        let area_um2 = self.junction_area().square_micro_meters();
        Resistance::from_ohms(self.resistance_area_product_ohm_um2 / area_um2)
    }

    /// Zero-bias TMR as a fraction (Table I's 123 % → `1.23`; the explicit
    /// resistance row implies `1.2`, which is what `date2018` uses so that
    /// `Rap = 11 kΩ` holds exactly).
    #[must_use]
    pub fn tmr_zero_bias(&self) -> f64 {
        self.tmr_zero_bias
    }

    /// Bias voltage at which TMR drops to half its zero-bias value.
    #[must_use]
    pub fn tmr_half_bias(&self) -> Voltage {
        self.tmr_half_bias
    }

    /// Critical switching current `Ic0` (threshold of the precessional
    /// regime).
    #[must_use]
    pub fn critical_current(&self) -> Current {
        self.critical_current
    }

    /// Nominal write-driver current used during the store phase.
    #[must_use]
    pub fn nominal_write_current(&self) -> Current {
        self.nominal_write_current
    }

    /// Thermal stability factor `Δ = E_b / k_B T`.
    #[must_use]
    pub fn thermal_stability(&self) -> f64 {
        self.thermal_stability
    }

    /// Attempt time `τ₀` of thermally activated switching.
    #[must_use]
    pub fn attempt_time(&self) -> Time {
        self.attempt_time
    }

    /// Operating temperature.
    #[must_use]
    pub fn temperature(&self) -> Temperature {
        self.temperature
    }

    /// Resistance in `state` under bias `v` (voltage across the junction).
    ///
    /// Delegates to [`crate::resistance::resistance_at`]; see there for the
    /// TMR roll-off model.
    #[must_use]
    pub fn resistance_at(&self, state: MtjState, v: Voltage) -> Resistance {
        crate::resistance::resistance_at(self, state, v)
    }

    /// Expected data retention time at the operating temperature,
    /// `τ₀ · exp(Δ)`.
    ///
    /// With Δ = 60 this is on the order of 10¹⁷ s — the "zero leakage
    /// storage" property motivating NV flip-flops.
    #[must_use]
    pub fn retention_time(&self) -> Time {
        self.attempt_time * self.thermal_stability.exp()
    }

    /// Returns a copy with the given multiplicative perturbations applied.
    ///
    /// Used by the variation model; multipliers of `1.0` leave the
    /// parameter untouched.
    #[must_use]
    pub(crate) fn perturbed(
        &self,
        ra_multiplier: f64,
        tmr_multiplier: f64,
        switching_current_multiplier: f64,
    ) -> Self {
        let mut p = self.clone();
        p.resistance_area_product_ohm_um2 *= ra_multiplier;
        // Rp scales with RA at fixed geometry.
        p.resistance_parallel = p.resistance_parallel * ra_multiplier;
        p.tmr_zero_bias *= tmr_multiplier;
        p.critical_current = p.critical_current * switching_current_multiplier;
        p
    }
}

impl Default for MtjParams {
    fn default() -> Self {
        Self::date2018()
    }
}

/// Builder for [`MtjParams`], seeded with the Table I defaults.
///
/// # Examples
///
/// ```
/// use mtj::MtjParams;
/// use units::{Current, Resistance};
///
/// let params = MtjParams::builder()
///     .resistance_parallel(Resistance::from_kilo_ohms(4.0))
///     .critical_current(Current::from_micro_amps(30.0))
///     .build()?;
/// assert!((params.resistance_parallel().kilo_ohms() - 4.0).abs() < 1e-12);
/// # Ok::<(), mtj::ValidateParamsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MtjParamsBuilder {
    params: MtjParams,
}

impl MtjParamsBuilder {
    /// Sets the free-layer radius.
    #[must_use]
    pub fn radius(mut self, radius: Length) -> Self {
        self.params.radius = radius;
        self
    }

    /// Sets the free-layer thickness.
    #[must_use]
    pub fn free_layer_thickness(mut self, t: Length) -> Self {
        self.params.free_layer_thickness = t;
        self
    }

    /// Sets the oxide-barrier thickness.
    #[must_use]
    pub fn oxide_thickness(mut self, t: Length) -> Self {
        self.params.oxide_thickness = t;
        self
    }

    /// Sets the resistance–area product (Ω·µm²).
    #[must_use]
    pub fn resistance_area_product_ohm_um2(mut self, ra: f64) -> Self {
        self.params.resistance_area_product_ohm_um2 = ra;
        self
    }

    /// Sets the zero-bias parallel resistance.
    #[must_use]
    pub fn resistance_parallel(mut self, r: Resistance) -> Self {
        self.params.resistance_parallel = r;
        self
    }

    /// Sets the zero-bias TMR as a fraction (1.2 = 120 %).
    #[must_use]
    pub fn tmr_zero_bias(mut self, tmr: f64) -> Self {
        self.params.tmr_zero_bias = tmr;
        self
    }

    /// Sets the bias at which TMR halves.
    #[must_use]
    pub fn tmr_half_bias(mut self, v: Voltage) -> Self {
        self.params.tmr_half_bias = v;
        self
    }

    /// Sets the critical (threshold) switching current.
    #[must_use]
    pub fn critical_current(mut self, i: Current) -> Self {
        self.params.critical_current = i;
        self
    }

    /// Sets the nominal write current.
    #[must_use]
    pub fn nominal_write_current(mut self, i: Current) -> Self {
        self.params.nominal_write_current = i;
        self
    }

    /// Sets the thermal stability factor Δ.
    #[must_use]
    pub fn thermal_stability(mut self, delta: f64) -> Self {
        self.params.thermal_stability = delta;
        self
    }

    /// Sets the attempt time τ₀.
    #[must_use]
    pub fn attempt_time(mut self, tau: Time) -> Self {
        self.params.attempt_time = tau;
        self
    }

    /// Sets the operating temperature.
    #[must_use]
    pub fn temperature(mut self, t: Temperature) -> Self {
        self.params.temperature = t;
        self
    }

    /// Validates and returns the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateParamsError`] when a physical constraint is
    /// violated: non-positive geometry, resistances, currents or TMR, a
    /// write current at or below the critical current, or a temperature at
    /// or below absolute zero.
    pub fn build(self) -> Result<MtjParams, ValidateParamsError> {
        let p = &self.params;
        let check = |ok: bool, what: &'static str| {
            if ok {
                Ok(())
            } else {
                Err(ValidateParamsError { what })
            }
        };
        check(p.radius.meters() > 0.0, "radius must be positive")?;
        check(
            p.free_layer_thickness.meters() > 0.0,
            "free layer thickness must be positive",
        )?;
        check(
            p.oxide_thickness.meters() > 0.0,
            "oxide thickness must be positive",
        )?;
        check(
            p.resistance_area_product_ohm_um2 > 0.0,
            "RA product must be positive",
        )?;
        check(
            p.resistance_parallel.ohms() > 0.0,
            "parallel resistance must be positive",
        )?;
        check(p.tmr_zero_bias > 0.0, "TMR must be positive")?;
        check(
            p.tmr_half_bias.volts() > 0.0,
            "TMR half-bias voltage must be positive",
        )?;
        check(
            p.critical_current.amps() > 0.0,
            "critical current must be positive",
        )?;
        check(
            p.nominal_write_current > p.critical_current,
            "write current must exceed the critical current",
        )?;
        check(
            p.thermal_stability > 0.0,
            "thermal stability must be positive",
        )?;
        check(
            p.attempt_time.seconds() > 0.0,
            "attempt time must be positive",
        )?;
        check(
            p.temperature > Temperature::ABSOLUTE_ZERO,
            "temperature must exceed absolute zero",
        )?;
        Ok(self.params)
    }
}

/// Error returned when [`MtjParamsBuilder::build`] rejects a parameter set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateParamsError {
    what: &'static str,
}

impl fmt::Display for ValidateParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MTJ parameters: {}", self.what)
    }
}

impl Error for ValidateParamsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_are_consistent() {
        let p = MtjParams::date2018();
        assert!((p.resistance_parallel().kilo_ohms() - 5.0).abs() < 1e-12);
        assert!((p.resistance_antiparallel().kilo_ohms() - 11.0).abs() < 1e-9);
        assert!((p.critical_current().micro_amps() - 37.0).abs() < 1e-12);
        assert!((p.nominal_write_current().micro_amps() - 70.0).abs() < 1e-12);
        assert!((p.temperature().celsius() - 27.0).abs() < 1e-12);
    }

    #[test]
    fn junction_area_matches_geometry() {
        let p = MtjParams::date2018();
        // π · (20 nm)² ≈ 1.2566e-3 µm²
        let a = p.junction_area().square_micro_meters();
        assert!((a - 1.2566e-3).abs() < 1e-6);
    }

    #[test]
    fn ra_derived_resistance_is_exposed_for_cross_checking() {
        let p = MtjParams::date2018();
        let derived = p.resistance_from_ra().ohms();
        // Table I's RA/geometry imply about 1 kΩ — the known inconsistency.
        assert!(derived > 500.0 && derived < 2000.0, "derived = {derived}");
    }

    #[test]
    fn retention_time_is_astronomical() {
        let p = MtjParams::date2018();
        // Δ = 60 → τ ≈ 1 ns · e⁶⁰ ≈ 1.1e17 s.
        assert!(p.retention_time().seconds() > 1e15);
    }

    #[test]
    fn builder_overrides_and_validates() {
        let p = MtjParams::builder()
            .tmr_zero_bias(1.0)
            .resistance_parallel(Resistance::from_kilo_ohms(6.0))
            .build()
            .expect("valid params");
        assert!((p.resistance_antiparallel().kilo_ohms() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn builder_rejects_nonphysical_values() {
        assert!(MtjParams::builder()
            .radius(Length::from_nano_meters(0.0))
            .build()
            .is_err());
        assert!(MtjParams::builder().tmr_zero_bias(-0.5).build().is_err());
        let err = MtjParams::builder()
            .nominal_write_current(Current::from_micro_amps(10.0))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("write current"));
    }

    #[test]
    fn to_builder_preserves_the_starting_point() {
        let shifted = MtjParams::date2018().perturbed(1.1, 0.9, 1.0);
        let p = shifted
            .to_builder()
            .thermal_stability(55.0)
            .build()
            .expect("valid params");
        // The override lands; the perturbation survives.
        assert!((p.thermal_stability() - 55.0).abs() < 1e-12);
        assert!(
            (p.resistance_parallel().ohms() - shifted.resistance_parallel().ohms()).abs() < 1e-12
        );
        assert!((p.tmr_zero_bias() - shifted.tmr_zero_bias()).abs() < 1e-12);
    }

    #[test]
    fn perturbed_scales_the_right_parameters() {
        let p = MtjParams::date2018();
        let q = p.perturbed(1.1, 0.9, 1.2);
        assert!(
            (q.resistance_parallel().ohms() / p.resistance_parallel().ohms() - 1.1).abs() < 1e-12
        );
        assert!((q.tmr_zero_bias() / p.tmr_zero_bias() - 0.9).abs() < 1e-12);
        assert!((q.critical_current().amps() / p.critical_current().amps() - 1.2).abs() < 1e-12);
        // Geometry untouched.
        assert_eq!(q.radius(), p.radius());
    }
}
