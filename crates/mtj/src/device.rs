//! Stateful dynamic MTJ device.
//!
//! [`Mtj`] is the object a transient circuit simulation steps: it holds the
//! current magnetisation state, exposes the (bias-dependent) resistance the
//! solver needs, and integrates switching progress under the time-varying
//! current the solver computes. Deterministic integration is used by
//! default — the fraction of a reversal completed accumulates as
//! `∫ dt / τ(I(t))` — which reproduces the mean-time behaviour exactly for
//! piecewise-constant currents and is what a corner analysis wants.
//! Stochastic writes (per-step Bernoulli trials at rate `1/τ`) are available
//! for Monte-Carlo disturb studies via [`Mtj::advance_stochastic`].

use rand::{Rng, RngExt};
use units::{Current, Resistance, Time, Voltage};

use crate::params::MtjParams;
use crate::resistance::MtjState;
use crate::switching::SwitchingModel;

/// Mapping from the sign of the device current to the magnetisation state
/// it drives the free layer towards.
///
/// In the latch schematics the two MTJs of a complementary pair are drawn
/// with opposite stack orientation, so the same write-path current stores
/// opposite values in them; the polarity flag captures that wiring without
/// duplicating device code.
///
/// The convention: device current is positive when it flows from the
/// device's first terminal to its second. With
/// [`WritePolarity::PositiveSetsAntiParallel`] a positive current drives
/// the free layer towards AP (and a negative one towards P);
/// [`WritePolarity::PositiveSetsParallel`] is the mirror image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WritePolarity {
    /// Positive terminal-1→terminal-2 current drives the device to AP.
    #[default]
    PositiveSetsAntiParallel,
    /// Positive terminal-1→terminal-2 current drives the device to P.
    PositiveSetsParallel,
}

impl WritePolarity {
    /// The state a current of the given sign drives the free layer toward.
    ///
    /// Returns `None` for an exactly zero current, which exerts no torque.
    #[must_use]
    pub fn target_state(self, current: Current) -> Option<MtjState> {
        if current.amps() == 0.0 {
            return None;
        }
        let positive = current.amps() > 0.0;
        Some(match (self, positive) {
            (Self::PositiveSetsAntiParallel, true) | (Self::PositiveSetsParallel, false) => {
                MtjState::AntiParallel
            }
            (Self::PositiveSetsAntiParallel, false) | (Self::PositiveSetsParallel, true) => {
                MtjState::Parallel
            }
        })
    }

    /// The mirror polarity (how the complementary MTJ of a pair is wired).
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Self::PositiveSetsAntiParallel => Self::PositiveSetsParallel,
            Self::PositiveSetsParallel => Self::PositiveSetsAntiParallel,
        }
    }
}

/// A dynamic MTJ: parameters + switching model + magnetisation state.
///
/// # Examples
///
/// ```
/// use mtj::{Mtj, MtjParams, MtjState, WritePolarity};
/// use units::{Current, Time};
///
/// let params = MtjParams::date2018();
/// let mut mtj = Mtj::new(params.clone(), MtjState::Parallel, WritePolarity::default());
///
/// // Drive the nominal write current for 3 ns: the device reverses.
/// let switched = mtj.advance(params.nominal_write_current(), Time::from_nano_seconds(3.0));
/// assert!(switched);
/// assert_eq!(mtj.state(), MtjState::AntiParallel);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mtj {
    params: MtjParams,
    model: SwitchingModel,
    polarity: WritePolarity,
    state: MtjState,
    /// Fraction of a reversal completed toward `pending_target`.
    progress: f64,
    pending_target: Option<MtjState>,
}

impl Mtj {
    /// Creates a device in `initial` state with the default-calibrated
    /// switching model.
    #[must_use]
    pub fn new(params: MtjParams, initial: MtjState, polarity: WritePolarity) -> Self {
        let model = SwitchingModel::new(&params);
        Self::with_model(params, model, initial, polarity)
    }

    /// Creates a device with an explicitly calibrated switching model.
    #[must_use]
    pub fn with_model(
        params: MtjParams,
        model: SwitchingModel,
        initial: MtjState,
        polarity: WritePolarity,
    ) -> Self {
        Self {
            params,
            model,
            polarity,
            state: initial,
            progress: 0.0,
            pending_target: None,
        }
    }

    /// Current magnetisation state.
    #[must_use]
    pub fn state(&self) -> MtjState {
        self.state
    }

    /// Forces the magnetisation state (e.g. test preconditioning),
    /// discarding partial switching progress.
    pub fn set_state(&mut self, state: MtjState) {
        self.state = state;
        self.progress = 0.0;
        self.pending_target = None;
    }

    /// Device parameters.
    #[must_use]
    pub fn params(&self) -> &MtjParams {
        &self.params
    }

    /// The switching model in use.
    #[must_use]
    pub fn model(&self) -> &SwitchingModel {
        &self.model
    }

    /// Write polarity of this device.
    #[must_use]
    pub fn polarity(&self) -> WritePolarity {
        self.polarity
    }

    /// Fraction (0‥1) of a reversal completed toward the pending target.
    #[must_use]
    pub fn switching_progress(&self) -> f64 {
        self.progress
    }

    /// Resistance at the given bias voltage in the current state.
    #[must_use]
    pub fn resistance(&self, bias: Voltage) -> Resistance {
        self.params.resistance_at(self.state, bias)
    }

    /// Advances the magnetisation dynamics by `dt` under a constant device
    /// current, deterministically. Returns `true` if the state reversed
    /// during this step.
    ///
    /// Progress toward a reversal accumulates as `dt/τ(I)`; if the current
    /// direction stops favouring the pending reversal, accumulated progress
    /// decays at the relaxation rate `dt/τ₀·e^{-Δ}`… in practice it simply
    /// resets, because a free layer that has not crossed the energy barrier
    /// relaxes back within precession timescales once torque is removed.
    pub fn advance(&mut self, current: Current, dt: Time) -> bool {
        let Some(target) = self.polarity.target_state(current) else {
            self.relax();
            return false;
        };
        if target == self.state {
            // Torque stabilises the present state.
            self.relax();
            return false;
        }
        if self.pending_target != Some(target) {
            self.pending_target = Some(target);
            self.progress = 0.0;
        }
        self.progress += self.model.switching_rate(current) * dt.seconds();
        if self.progress >= 1.0 {
            self.state = target;
            self.relax();
            true
        } else {
            false
        }
    }

    /// Advances the dynamics by `dt` with a stochastic reversal decision:
    /// the step switches with probability `1 − exp(−dt/τ(I))`.
    ///
    /// Use for write-error-rate and read-disturb Monte-Carlo studies.
    /// Returns `true` if the state reversed during this step.
    pub fn advance_stochastic<R: Rng + ?Sized>(
        &mut self,
        current: Current,
        dt: Time,
        rng: &mut R,
    ) -> bool {
        let Some(target) = self.polarity.target_state(current) else {
            return false;
        };
        if target == self.state {
            return false;
        }
        let p = self.model.switch_probability(current, dt);
        if rng.random::<f64>() < p {
            self.state = target;
            self.relax();
            true
        } else {
            false
        }
    }

    fn relax(&mut self) {
        self.progress = 0.0;
        self.pending_target = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device(initial: MtjState) -> (MtjParams, Mtj) {
        let params = MtjParams::date2018();
        let mtj = Mtj::new(params.clone(), initial, WritePolarity::default());
        (params, mtj)
    }

    #[test]
    fn polarity_maps_current_sign_to_target() {
        let i = Current::from_micro_amps(70.0);
        let pol = WritePolarity::PositiveSetsAntiParallel;
        assert_eq!(pol.target_state(i), Some(MtjState::AntiParallel));
        assert_eq!(pol.target_state(-i), Some(MtjState::Parallel));
        assert_eq!(pol.target_state(Current::ZERO), None);
        assert_eq!(pol.flipped().target_state(i), Some(MtjState::Parallel));
        assert_eq!(pol.flipped().flipped(), pol);
    }

    #[test]
    fn nominal_write_switches_in_about_two_nanoseconds() {
        let (params, mut mtj) = device(MtjState::Parallel);
        let dt = Time::from_pico_seconds(10.0);
        let mut elapsed = Time::ZERO;
        while mtj.state() == MtjState::Parallel {
            assert!(elapsed.nano_seconds() < 5.0, "write did not complete");
            mtj.advance(params.nominal_write_current(), dt);
            elapsed += dt;
        }
        assert!((elapsed.nano_seconds() - 2.0).abs() < 0.05, "{elapsed}");
    }

    #[test]
    fn reverse_current_writes_the_other_state() {
        let (params, mut mtj) = device(MtjState::AntiParallel);
        let i = -params.nominal_write_current();
        for _ in 0..400 {
            mtj.advance(i, Time::from_pico_seconds(10.0));
        }
        assert_eq!(mtj.state(), MtjState::Parallel);
    }

    #[test]
    fn stabilising_current_never_switches() {
        let (params, mut mtj) = device(MtjState::AntiParallel);
        // Positive current drives toward AP, which is already the state.
        for _ in 0..1000 {
            assert!(!mtj.advance(
                params.nominal_write_current(),
                Time::from_pico_seconds(10.0)
            ));
        }
        assert_eq!(mtj.state(), MtjState::AntiParallel);
    }

    #[test]
    fn interrupted_write_resets_progress() {
        let (params, mut mtj) = device(MtjState::Parallel);
        let i = params.nominal_write_current();
        // Half a write...
        for _ in 0..100 {
            mtj.advance(i, Time::from_pico_seconds(10.0));
        }
        assert!(mtj.switching_progress() > 0.3);
        // ...then remove torque: progress relaxes.
        mtj.advance(Current::ZERO, Time::from_pico_seconds(10.0));
        assert_eq!(mtj.switching_progress(), 0.0);
        assert_eq!(mtj.state(), MtjState::Parallel);
    }

    #[test]
    fn read_current_does_not_disturb() {
        let (_, mut mtj) = device(MtjState::Parallel);
        // 20 µA (< Ic0) "read" current pointing toward AP held for 100 ns.
        let i = Current::from_micro_amps(20.0);
        for _ in 0..10_000 {
            mtj.advance(i, Time::from_pico_seconds(10.0));
        }
        assert_eq!(mtj.state(), MtjState::Parallel);
        assert!(mtj.switching_progress() < 1e-6);
    }

    #[test]
    fn resistance_tracks_state() {
        let (params, mut mtj) = device(MtjState::Parallel);
        assert_eq!(mtj.resistance(Voltage::ZERO), params.resistance_parallel());
        mtj.set_state(MtjState::AntiParallel);
        assert_eq!(
            mtj.resistance(Voltage::ZERO),
            params.resistance_antiparallel()
        );
    }

    #[test]
    fn stochastic_write_converges_to_certainty() {
        let (params, _) = device(MtjState::Parallel);
        let mut rng = StdRng::seed_from_u64(42);
        let mut switched = 0;
        let trials = 200;
        for _ in 0..trials {
            let mut mtj = Mtj::new(params.clone(), MtjState::Parallel, WritePolarity::default());
            // 10 ns at nominal current: ~5τ, nearly certain.
            for _ in 0..1000 {
                if mtj.advance_stochastic(
                    params.nominal_write_current(),
                    Time::from_pico_seconds(10.0),
                    &mut rng,
                ) {
                    break;
                }
            }
            if mtj.state() == MtjState::AntiParallel {
                switched += 1;
            }
        }
        assert!(switched > trials * 95 / 100, "{switched}/{trials}");
    }

    #[test]
    fn stochastic_read_disturb_is_rare() {
        let (params, _) = device(MtjState::Parallel);
        let mut rng = StdRng::seed_from_u64(7);
        let mut mtj = Mtj::new(params, MtjState::Parallel, WritePolarity::default());
        for _ in 0..10_000 {
            mtj.advance_stochastic(
                Current::from_micro_amps(10.0),
                Time::from_pico_seconds(100.0),
                &mut rng,
            );
        }
        assert_eq!(mtj.state(), MtjState::Parallel);
    }

    #[test]
    fn set_state_discards_progress() {
        let (params, mut mtj) = device(MtjState::Parallel);
        for _ in 0..50 {
            mtj.advance(
                params.nominal_write_current(),
                Time::from_pico_seconds(10.0),
            );
        }
        mtj.set_state(MtjState::Parallel);
        assert_eq!(mtj.switching_progress(), 0.0);
    }
}
