//! First-order temperature dependence of the MTJ figures of merit.
//!
//! The paper evaluates at a fixed 27 °C (Table I); this module extends
//! the compact model with the standard first-order thermal laws so the
//! reproduction can answer the obvious next question — what happens at
//! automotive/industrial temperatures:
//!
//! * **TMR** falls roughly linearly with temperature (spin polarisation
//!   decays below the Curie point): `TMR(T) = TMR(T₀)·(1 − k_tmr·ΔT)`;
//! * **thermal stability** `Δ = E_b/k_BT` falls both through the
//!   explicit `1/T` and through the barrier energy's magnetisation
//!   dependence: `Δ(T) = Δ(T₀)·(T₀/T)·(1 − k_ms·ΔT)²`;
//! * **critical current** follows the barrier:
//!   `Ic(T) = Ic(T₀)·(1 − k_ic·ΔT)` — hotter devices switch easier.
//!
//! Coefficient defaults are representative of perpendicular CoFeB/MgO
//! stacks (Takemura et al. class devices).

use units::Temperature;

use crate::params::MtjParams;

/// Linear thermal coefficients (per kelvin of excursion from the
/// reference temperature).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Fractional TMR loss per kelvin (default 1.5 × 10⁻³).
    pub k_tmr: f64,
    /// Fractional saturation-magnetisation loss per kelvin
    /// (default 5 × 10⁻⁴), entering the barrier quadratically.
    pub k_ms: f64,
    /// Fractional critical-current reduction per kelvin
    /// (default 1 × 10⁻³).
    pub k_ic: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self {
            k_tmr: 1.5e-3,
            k_ms: 5e-4,
            k_ic: 1e-3,
        }
    }
}

impl ThermalModel {
    /// Returns the parameter set re-evaluated at `temperature`, taking
    /// the input set's own temperature as the reference point.
    ///
    /// Multipliers are clamped at a small positive floor so extreme
    /// excursions degrade gracefully instead of going non-physical.
    ///
    /// # Examples
    ///
    /// ```
    /// use mtj::{MtjParams, thermal::ThermalModel};
    /// use units::Temperature;
    ///
    /// let nominal = MtjParams::date2018(); // 27 °C
    /// let hot = ThermalModel::default()
    ///     .at_temperature(&nominal, Temperature::from_celsius(85.0));
    /// assert!(hot.tmr_zero_bias() < nominal.tmr_zero_bias());
    /// assert!(hot.critical_current() < nominal.critical_current());
    /// assert!(hot.retention_time() < nominal.retention_time());
    /// ```
    #[must_use]
    pub fn at_temperature(&self, reference: &MtjParams, temperature: Temperature) -> MtjParams {
        const FLOOR: f64 = 1e-3;
        let dt = temperature.celsius() - reference.temperature().celsius();
        let tmr_mult = (1.0 - self.k_tmr * dt).max(FLOOR);
        let ic_mult = (1.0 - self.k_ic * dt).max(FLOOR);
        let ms_mult = (1.0 - self.k_ms * dt).max(FLOOR);
        let delta_mult =
            (reference.temperature().kelvin() / temperature.kelvin()) * ms_mult * ms_mult;

        let delta = reference.thermal_stability() * delta_mult;
        MtjParams::builder()
            .radius(reference.radius())
            .free_layer_thickness(reference.free_layer_thickness())
            .oxide_thickness(reference.oxide_thickness())
            .resistance_area_product_ohm_um2(reference.resistance_area_product_ohm_um2())
            .resistance_parallel(reference.resistance_parallel())
            .tmr_zero_bias(reference.tmr_zero_bias() * tmr_mult)
            .tmr_half_bias(reference.tmr_half_bias())
            .critical_current(reference.critical_current() * ic_mult)
            .nominal_write_current(reference.nominal_write_current())
            .thermal_stability(delta)
            .attempt_time(reference.attempt_time())
            .temperature(temperature)
            .build()
            .expect("thermal scaling keeps parameters physical")
    }

    /// Retention time at the given temperature (`τ₀·e^{Δ(T)}`).
    #[must_use]
    pub fn retention_at(&self, reference: &MtjParams, temperature: Temperature) -> units::Time {
        self.at_temperature(reference, temperature).retention_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use units::Current;

    fn nominal() -> MtjParams {
        MtjParams::date2018()
    }

    #[test]
    fn reference_temperature_is_identity() {
        let p = nominal();
        let same = ThermalModel::default().at_temperature(&p, p.temperature());
        assert!((same.tmr_zero_bias() - p.tmr_zero_bias()).abs() < 1e-12);
        assert!((same.critical_current().amps() - p.critical_current().amps()).abs() < 1e-18);
        assert!((same.thermal_stability() - p.thermal_stability()).abs() < 1e-9);
    }

    #[test]
    fn heating_degrades_tmr_stability_and_ic() {
        let p = nominal();
        let hot = ThermalModel::default().at_temperature(&p, Temperature::from_celsius(125.0));
        assert!(hot.tmr_zero_bias() < p.tmr_zero_bias());
        assert!(hot.thermal_stability() < p.thermal_stability());
        assert!(hot.critical_current() < p.critical_current());
        assert_eq!(hot.temperature(), Temperature::from_celsius(125.0));
    }

    #[test]
    fn cooling_improves_everything() {
        let p = nominal();
        let cold = ThermalModel::default().at_temperature(&p, Temperature::from_celsius(-40.0));
        assert!(cold.tmr_zero_bias() > p.tmr_zero_bias());
        assert!(cold.thermal_stability() > p.thermal_stability());
        assert!(cold.critical_current() > p.critical_current());
    }

    #[test]
    fn retention_collapses_by_orders_of_magnitude_at_heat() {
        let p = nominal();
        let model = ThermalModel::default();
        let r27 = model.retention_at(&p, Temperature::from_celsius(27.0));
        let r85 = model.retention_at(&p, Temperature::from_celsius(85.0));
        let r125 = model.retention_at(&p, Temperature::from_celsius(125.0));
        assert!(r85 < r27);
        assert!(r125 < r85);
        // Δ drops ~16 % at 85 °C → retention loses ≥ 3 decades.
        assert!(r27.seconds() / r85.seconds() > 1e3);
        // Still a retention device at 125 °C (> 1 year ≈ 3e7 s).
        assert!(r125.seconds() > 3e7, "retention at 125 °C: {r125}");
    }

    #[test]
    fn hot_devices_switch_faster() {
        use crate::switching::SwitchingModel;
        let p = nominal();
        let hot = ThermalModel::default().at_temperature(&p, Temperature::from_celsius(85.0));
        let i = Current::from_micro_amps(55.0);
        let t_cold = SwitchingModel::new(&p).mean_switching_time(i);
        let t_hot = SwitchingModel::new(&hot).mean_switching_time(i);
        assert!(t_hot < t_cold, "hot {t_hot} vs cold {t_cold}");
    }

    #[test]
    fn extreme_excursions_stay_physical() {
        let p = nominal();
        let extreme = ThermalModel::default().at_temperature(&p, Temperature::from_celsius(900.0));
        assert!(extreme.tmr_zero_bias() > 0.0);
        assert!(extreme.critical_current().amps() > 0.0);
        assert!(extreme.thermal_stability() > 0.0);
    }
}
