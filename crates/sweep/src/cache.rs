//! Worker-local keyed caches for expensive job state.
//!
//! A [`LazyPool`] is a lazily-populated map each worker owns privately
//! (it is handed out via the `make_state` hook of
//! [`run_with_state`](crate::run_with_state), so no synchronization is
//! involved). The canonical use is a pool of `SimulationSession`s
//! keyed by circuit topology: the first job needing a topology builds
//! the session (cloned circuit, fresh workspace); every later job on
//! the same worker reuses it, keeping solver allocations amortized
//! across the whole sweep.

use std::collections::HashMap;
use std::hash::Hash;

/// A lazily-built keyed pool of values, owned by one worker.
///
/// # Examples
///
/// ```
/// let mut pool: sweep::LazyPool<&str, Vec<u8>> = sweep::LazyPool::new();
/// let a = pool.get_or_build("latch", || vec![0; 16]);
/// a[0] = 7;
/// // Second lookup reuses the built value.
/// assert_eq!(pool.get_or_build("latch", || unreachable!())[0], 7);
/// assert_eq!(pool.builds(), 1);
/// assert_eq!(pool.hits(), 1);
/// ```
#[derive(Debug, Default)]
pub struct LazyPool<K, V> {
    entries: HashMap<K, V>,
    builds: usize,
    hits: usize,
}

impl<K: Eq + Hash, V> LazyPool<K, V> {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: HashMap::new(),
            builds: 0,
            hits: 0,
        }
    }

    /// Returns the value for `key`, building it with `build` on first
    /// use. Hits and builds are counted locally and mirrored to the
    /// `sweep.pool_hit` / `sweep.pool_miss` telemetry counters.
    pub fn get_or_build(&mut self, key: K, build: impl FnOnce() -> V) -> &mut V {
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(entry) => {
                self.hits += 1;
                telemetry::counter("sweep.pool_hit", 1);
                entry.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                self.builds += 1;
                telemetry::counter("sweep.pool_miss", 1);
                entry.insert(build())
            }
        }
    }

    /// Number of distinct keys built so far.
    #[must_use]
    pub fn builds(&self) -> usize {
        self.builds
    }

    /// Number of lookups served from an already-built entry.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry, keeping the hit/build counters. Long-lived
    /// owners (service worker threads, as opposed to one-sweep workers)
    /// use this to bound memory when the key population is unbounded.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_once_per_key_and_counts_hits() {
        let mut pool = LazyPool::new();
        let mut built = 0;
        for key in [1, 2, 1, 1, 2] {
            let _ = pool.get_or_build(key, || {
                built += 1;
                key * 100
            });
        }
        assert_eq!(built, 2);
        assert_eq!(pool.builds(), 2);
        assert_eq!(pool.hits(), 3);
        assert_eq!(pool.len(), 2);
        assert_eq!(*pool.get_or_build(2, || 0), 200);
    }

    #[test]
    fn empty_pool_reports_empty() {
        let pool: LazyPool<u8, u8> = LazyPool::new();
        assert!(pool.is_empty());
        assert_eq!(pool.len(), 0);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let mut pool = LazyPool::new();
        let _ = pool.get_or_build("a", || 1);
        let _ = pool.get_or_build("a", || 2);
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.builds(), 1);
        assert_eq!(pool.hits(), 1);
        // Rebuilding after clear counts a fresh build.
        assert_eq!(*pool.get_or_build("a", || 3), 3);
        assert_eq!(pool.builds(), 2);
    }
}
