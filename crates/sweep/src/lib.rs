//! Deterministic parallel sweep and Monte-Carlo execution engine.
//!
//! Corner sweeps, write-error-rate grids and Monte-Carlo campaigns all
//! share one shape: a list of independent job points, each needing its
//! own random stream, whose results must come back in a stable order.
//! This crate factors that shape out of the simulation crates:
//!
//! - [`Grid`] — an ordered list of job points plus a base seed. Every
//!   point's RNG seed is derived *by counter* from `(base_seed, index)`
//!   via [`point_seed`], never from a shared sequential stream, so a
//!   point's randomness is independent of worker count and scheduling.
//! - [`run`] / [`run_with_state`] — a hand-rolled `std::thread` worker
//!   pool (chunked self-scheduling over an atomic cursor, zero external
//!   dependencies) that executes the grid and returns results in
//!   **grid order**. `--jobs 1` takes a true serial fast path on the
//!   calling thread. [`run_blocked`] hands workers contiguous
//!   lane-sized blocks of points (same per-point seeds) so SIMD
//!   lane-batched kernels compose with thread-level parallelism.
//! - [`LazyPool`] — worker-owned keyed caches for expensive job state,
//!   e.g. one `SimulationSession` per circuit topology per worker.
//! - [`run_checkpointed`] — the same execution with completed points
//!   persisted to a JSON checkpoint, so interrupted Monte-Carlo
//!   campaigns resume bit-identically.
//!
//! The determinism contract: a job's output must depend only on its
//! point and its [`JobCtx::seed`]. Under that contract, results — and
//! any commutative-associative aggregate folded over them in grid
//! order — are bit-identical for every `--jobs` value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod checkpoint;
pub mod grid;
pub mod pool;

pub use cache::LazyPool;
pub use checkpoint::{
    run_checkpointed, CheckpointError, CheckpointPolicy, JsonCodec, CHECKPOINT_SCHEMA,
};
pub use grid::{fingerprint, fingerprint128, fingerprint_bytes, point_seed, Fnv1a, Grid};
pub use pool::{
    available_parallelism, run, run_blocked, run_with_state, JobCtx, Progress, RunSummary,
    SweepOptions, SweepOutcome,
};
