//! Resumable checkpoints for long sweeps.
//!
//! [`run_checkpointed`] behaves like
//! [`run_with_state`](crate::run_with_state) but persists completed
//! results to a JSON file (written with `telemetry::json`, the
//! workspace's own zero-dependency writer) every few completions. If
//! the process is interrupted, rerunning with the same grid and policy
//! loads the file, restores the finished points, and executes only the
//! remainder — and because every point's randomness is derived from its
//! grid index ([`point_seed`](crate::point_seed)), the resumed run's
//! results are bit-identical to an uninterrupted one.
//!
//! The file is bound to its grid by a caller-supplied
//! [`fingerprint`](crate::fingerprint) plus the grid's length and base
//! seed; a mismatch is an error rather than a silent restart, so a
//! stale checkpoint can never corrupt a campaign.

use std::fmt;
use std::path::{Path, PathBuf};

use telemetry::JsonValue;

use crate::grid::Grid;
use crate::pool::{run_pending, Progress, SweepOptions, SweepOutcome};

/// Schema tag of the checkpoint file format.
pub const CHECKPOINT_SCHEMA: &str = "nvff-sweep-checkpoint/1";

/// Conversion between result values and the checkpoint's JSON cells.
///
/// Implemented for the scalar types sweep results are made of; compose
/// with `Vec` for per-point series.
pub trait JsonCodec: Sized {
    /// Encodes the value.
    fn encode(&self) -> JsonValue;
    /// Decodes a value; `None` marks a corrupt cell.
    fn decode(value: &JsonValue) -> Option<Self>;
}

impl JsonCodec for f64 {
    fn encode(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
    fn decode(value: &JsonValue) -> Option<Self> {
        value.as_f64()
    }
}

impl JsonCodec for u64 {
    // Bit-cast through i64 (the same convention as the header fields),
    // so the full u64 range round-trips exactly.
    fn encode(&self) -> JsonValue {
        JsonValue::Int(*self as i64)
    }
    fn decode(value: &JsonValue) -> Option<Self> {
        value.as_i64().map(|v| v as u64)
    }
}

impl JsonCodec for i64 {
    fn encode(&self) -> JsonValue {
        JsonValue::Int(*self)
    }
    fn decode(value: &JsonValue) -> Option<Self> {
        value.as_i64()
    }
}

impl JsonCodec for bool {
    fn encode(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
    fn decode(value: &JsonValue) -> Option<Self> {
        match value {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl JsonCodec for String {
    fn encode(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
    fn decode(value: &JsonValue) -> Option<Self> {
        value.as_str().map(str::to_owned)
    }
}

impl<T: JsonCodec> JsonCodec for Vec<T> {
    fn encode(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(JsonCodec::encode).collect())
    }
    fn decode(value: &JsonValue) -> Option<Self> {
        value.as_array()?.iter().map(T::decode).collect()
    }
}

/// Where and how often to checkpoint a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint file path. Written atomically (temp file + rename).
    pub path: PathBuf,
    /// Save after this many completed jobs (and once more at the end).
    pub every: usize,
    /// Caller-supplied fingerprint of the grid *contents* (see
    /// [`fingerprint`](crate::fingerprint)); resuming against a file
    /// with a different fingerprint is refused.
    pub fingerprint: u64,
}

impl CheckpointPolicy {
    /// A policy saving every 16 completions.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>, fingerprint: u64) -> Self {
        Self {
            path: path.into(),
            every: 16,
            fingerprint,
        }
    }
}

/// Errors from checkpoint loading, validation, or saving.
#[derive(Debug)]
pub enum CheckpointError {
    /// File-system failure reading or writing the checkpoint.
    Io(std::io::Error),
    /// The file exists but is not a well-formed checkpoint.
    Corrupt(String),
    /// The file belongs to a different grid (fingerprint, length or
    /// base seed differ).
    Mismatch {
        /// The offending checkpoint file.
        path: PathBuf,
        /// What the running grid expects.
        expected: String,
        /// What the file declares.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            Self::Mismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "checkpoint {} belongs to a different grid: running grid has {expected}, \
                 file declares {found}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn grid_tag<P>(grid: &Grid<P>, fingerprint: u64) -> String {
    format!(
        "fingerprint={fingerprint:#018x} points={} base_seed={}",
        grid.len(),
        grid.base_seed()
    )
}

fn encode_file(
    fingerprint: u64,
    points: usize,
    base_seed: u64,
    done: &[(usize, JsonValue)],
) -> String {
    let entries: Vec<JsonValue> = done
        .iter()
        .map(|(index, value)| {
            JsonValue::Array(vec![
                JsonValue::Int(i64::try_from(*index).unwrap_or(i64::MAX)),
                value.clone(),
            ])
        })
        .collect();
    let mut text = JsonValue::object(vec![
        ("schema".into(), JsonValue::Str(CHECKPOINT_SCHEMA.into())),
        ("fingerprint".into(), JsonValue::Int(fingerprint as i64)),
        (
            "points".into(),
            JsonValue::Int(i64::try_from(points).unwrap_or(i64::MAX)),
        ),
        ("base_seed".into(), JsonValue::Int(base_seed as i64)),
        ("done".into(), JsonValue::Array(entries)),
    ])
    .to_json();
    text.push('\n');
    text
}

fn save_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Loads and validates an existing checkpoint, returning the decoded
/// `(index, value)` pairs. `Ok(None)` means no file exists (a fresh
/// run).
fn load<P, T: JsonCodec>(
    grid: &Grid<P>,
    policy: &CheckpointPolicy,
) -> Result<Option<Vec<(usize, T)>>, CheckpointError> {
    let text = match std::fs::read_to_string(&policy.path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let doc = JsonValue::parse(&text)
        .map_err(|e| CheckpointError::Corrupt(format!("unparseable JSON: {e}")))?;
    let schema = doc.get("schema").and_then(JsonValue::as_str);
    if schema != Some(CHECKPOINT_SCHEMA) {
        return Err(CheckpointError::Corrupt(format!(
            "schema {schema:?}, expected {CHECKPOINT_SCHEMA:?}"
        )));
    }
    let field_u64 = |name: &str| -> Result<u64, CheckpointError> {
        doc.get(name)
            .and_then(JsonValue::as_i64)
            .map(|v| v as u64)
            .ok_or_else(|| CheckpointError::Corrupt(format!("missing integer field {name:?}")))
    };
    let fingerprint = field_u64("fingerprint")?;
    let points = field_u64("points")? as usize;
    let base_seed = field_u64("base_seed")?;
    if fingerprint != policy.fingerprint || points != grid.len() || base_seed != grid.base_seed() {
        return Err(CheckpointError::Mismatch {
            path: policy.path.clone(),
            expected: grid_tag(grid, policy.fingerprint),
            found: format!("fingerprint={fingerprint:#018x} points={points} base_seed={base_seed}"),
        });
    }
    let done = doc
        .get("done")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| CheckpointError::Corrupt("missing done array".into()))?;
    let mut decoded = Vec::with_capacity(done.len());
    for entry in done {
        let cells = entry
            .as_array()
            .filter(|cells| cells.len() == 2)
            .ok_or_else(|| CheckpointError::Corrupt("done entry is not a pair".into()))?;
        let index = cells[0]
            .as_i64()
            .and_then(|v| usize::try_from(v).ok())
            .filter(|&i| i < grid.len())
            .ok_or_else(|| CheckpointError::Corrupt("done entry index out of range".into()))?;
        let value = T::decode(&cells[1])
            .ok_or_else(|| CheckpointError::Corrupt(format!("undecodable value at {index}")))?;
        decoded.push((index, value));
    }
    Ok(Some(decoded))
}

/// Runs a sweep with periodic checkpointing, resuming from `policy.path`
/// if a matching checkpoint exists.
///
/// Semantics match [`run_with_state`](crate::run_with_state), with two
/// additions: previously-completed points are restored instead of
/// executed (counted in
/// [`RunSummary::resumed`](crate::RunSummary::resumed)), and completed
/// work is persisted every [`CheckpointPolicy::every`] jobs plus once
/// at the end. The checkpoint file is left in place after a complete
/// run — rerunning is then a no-op restore.
///
/// # Errors
///
/// Fails on checkpoint I/O errors, a corrupt file, or a file written
/// for a different grid (wrong fingerprint, length or base seed).
pub fn run_checkpointed<P, S, T, FS, FJ>(
    grid: &Grid<P>,
    opts: &SweepOptions,
    policy: &CheckpointPolicy,
    make_state: FS,
    job: FJ,
    on_progress: Option<&mut dyn FnMut(&Progress)>,
) -> Result<SweepOutcome<T>, CheckpointError>
where
    P: Sync,
    T: JsonCodec + Send,
    FS: Fn(usize) -> S + Sync,
    FJ: Fn(&mut S, &crate::JobCtx, &P) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = (0..grid.len()).map(|_| None).collect();
    let mut done: Vec<(usize, JsonValue)> = Vec::new();
    if let Some(restored) = load::<P, T>(grid, policy)? {
        for (index, value) in restored {
            done.push((index, value.encode()));
            slots[index] = Some(value);
        }
    }
    let pending: Vec<usize> = (0..grid.len()).filter(|&i| slots[i].is_none()).collect();

    let every = policy.every.max(1);
    let fingerprint = policy.fingerprint;
    let points = grid.len();
    let base_seed = grid.base_seed();
    let path = policy.path.clone();
    let mut since_save = 0usize;
    // Mid-run save failures are tolerated (the final save below is
    // authoritative); losing an intermediate checkpoint only costs
    // re-execution, never correctness.
    let mut sink = |index: usize, result: &T| {
        done.push((index, result.encode()));
        since_save += 1;
        if since_save >= every {
            since_save = 0;
            let _ = save_atomic(&path, &encode_file(fingerprint, points, base_seed, &done));
        }
    };

    let (results, summary) = run_pending(
        grid,
        pending,
        slots,
        opts,
        &make_state,
        &job,
        on_progress,
        &mut sink,
    );

    // Final authoritative save: every point, in one atomic write.
    let complete: Vec<(usize, JsonValue)> = results
        .iter()
        .enumerate()
        .map(|(index, value)| (index, value.encode()))
        .collect();
    save_atomic(
        &policy.path,
        &encode_file(policy.fingerprint, grid.len(), grid.base_seed(), &complete),
    )?;
    Ok(SweepOutcome { results, summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nvff-sweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn seeded_job(ctx: &crate::JobCtx, p: &u64) -> u64 {
        ctx.seed.wrapping_mul(31).wrapping_add(*p)
    }

    #[test]
    fn fresh_run_writes_a_resumable_checkpoint() {
        let path = temp_path("fresh.json");
        let _ = std::fs::remove_file(&path);
        let grid = Grid::with_seed((0..20u64).collect(), 5);
        let policy = CheckpointPolicy {
            path: path.clone(),
            every: 4,
            fingerprint: crate::fingerprint("fresh-test"),
        };
        let executed = AtomicUsize::new(0);
        let job = |_: &mut (), ctx: &crate::JobCtx, p: &u64| {
            executed.fetch_add(1, Ordering::Relaxed);
            seeded_job(ctx, p)
        };
        let opts = SweepOptions::with_jobs(2);
        let first = run_checkpointed(&grid, &opts, &policy, |_| (), job, None).expect("first run");
        assert_eq!(executed.load(Ordering::Relaxed), 20);
        assert_eq!(first.summary.resumed, 0);

        // Rerunning restores everything and executes nothing.
        let second = run_checkpointed(&grid, &opts, &policy, |_| (), job, None).expect("resume");
        assert_eq!(executed.load(Ordering::Relaxed), 20, "no re-execution");
        assert_eq!(second.summary.resumed, 20);
        assert_eq!(second.results, first.results);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn partial_checkpoint_resumes_only_the_missing_points() {
        let path = temp_path("partial.json");
        let _ = std::fs::remove_file(&path);
        let grid = Grid::with_seed((0..12u64).collect(), 77);
        let policy = CheckpointPolicy {
            path: path.clone(),
            every: 1,
            fingerprint: crate::fingerprint("partial-test"),
        };
        let job = |_: &mut (), ctx: &crate::JobCtx, p: &u64| seeded_job(ctx, p);
        let full = run_checkpointed(
            &grid,
            &SweepOptions::with_jobs(1),
            &policy,
            |_| (),
            job,
            None,
        )
        .expect("full run");

        // Simulate an interrupted run: keep only the even-index entries.
        let text = std::fs::read_to_string(&path).expect("checkpoint");
        let doc = JsonValue::parse(&text).expect("parse");
        let done: Vec<JsonValue> = doc
            .get("done")
            .and_then(JsonValue::as_array)
            .expect("done")
            .iter()
            .filter(|entry| entry.as_array().expect("pair")[0].as_i64().expect("index") % 2 == 0)
            .cloned()
            .collect();
        let truncated = JsonValue::object(vec![
            ("schema".into(), JsonValue::Str(CHECKPOINT_SCHEMA.into())),
            (
                "fingerprint".into(),
                JsonValue::Int(policy.fingerprint as i64),
            ),
            ("points".into(), JsonValue::Int(12)),
            ("base_seed".into(), JsonValue::Int(77)),
            ("done".into(), JsonValue::Array(done)),
        ]);
        std::fs::write(&path, truncated.to_json()).expect("rewrite");

        let executed = AtomicUsize::new(0);
        let resumed = run_checkpointed(
            &grid,
            &SweepOptions::with_jobs(3),
            &policy,
            |_| (),
            |_: &mut (), ctx: &crate::JobCtx, p: &u64| {
                executed.fetch_add(1, Ordering::Relaxed);
                assert_eq!(ctx.index % 2, 1, "only odd points re-execute");
                seeded_job(ctx, p)
            },
            None,
        )
        .expect("resume");
        assert_eq!(executed.load(Ordering::Relaxed), 6);
        assert_eq!(resumed.summary.resumed, 6);
        assert_eq!(resumed.results, full.results, "resume is bit-identical");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_checkpoint_is_refused() {
        let path = temp_path("mismatch.json");
        let _ = std::fs::remove_file(&path);
        let grid = Grid::with_seed(vec![1u64, 2, 3], 9);
        let policy = CheckpointPolicy::new(&path, crate::fingerprint("grid-a"));
        let job = |_: &mut (), ctx: &crate::JobCtx, p: &u64| seeded_job(ctx, p);
        run_checkpointed(
            &grid,
            &SweepOptions::with_jobs(1),
            &policy,
            |_| (),
            job,
            None,
        )
        .expect("first run");

        let other = CheckpointPolicy::new(&path, crate::fingerprint("grid-b"));
        let err = run_checkpointed(
            &grid,
            &SweepOptions::with_jobs(1),
            &other,
            |_| (),
            job,
            None,
        )
        .expect_err("fingerprint mismatch");
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");
        // The refusal must be diagnosable from the message alone: the
        // offending file and both fingerprints.
        let message = err.to_string();
        assert!(
            message.contains(&path.display().to_string()),
            "message names the file: {message}"
        );
        assert!(
            message.contains(&format!(
                "fingerprint={:#018x}",
                crate::fingerprint("grid-b")
            )),
            "message carries the expected fingerprint: {message}"
        );
        assert!(
            message.contains(&format!(
                "fingerprint={:#018x}",
                crate::fingerprint("grid-a")
            )),
            "message carries the file's fingerprint: {message}"
        );

        // A different grid shape is refused too.
        let longer = Grid::with_seed(vec![1u64, 2, 3, 4], 9);
        let err = run_checkpointed(
            &longer,
            &SweepOptions::with_jobs(1),
            &policy,
            |_| (),
            job,
            None,
        )
        .expect_err("length mismatch");
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checkpoint_is_reported() {
        let path = temp_path("corrupt.json");
        std::fs::write(&path, "{not json").expect("write");
        let grid = Grid::new(vec![1u64]);
        let policy = CheckpointPolicy::new(&path, 1);
        let err = run_checkpointed(
            &grid,
            &SweepOptions::with_jobs(1),
            &policy,
            |_| (),
            |_: &mut (), ctx: &crate::JobCtx, p: &u64| seeded_job(ctx, p),
            None,
        )
        .expect_err("corrupt file");
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn codec_round_trips() {
        assert_eq!(f64::decode(&1.5f64.encode()), Some(1.5));
        assert_eq!(u64::decode(&7u64.encode()), Some(7));
        assert_eq!(i64::decode(&(-3i64).encode()), Some(-3));
        assert_eq!(bool::decode(&true.encode()), Some(true));
        assert_eq!(String::decode(&"x".to_owned().encode()), Some("x".into()));
        let v = vec![1.0f64, 2.0];
        assert_eq!(Vec::<f64>::decode(&v.encode()), Some(v));
        assert_eq!(u64::decode(&JsonValue::Str("nope".into())), None);
    }
}
