//! Job grids and counter-based per-point seeding.
//!
//! A [`Grid`] is an ordered list of job points — corner × parameter ×
//! seed combinations — plus a base seed. Each point owns a
//! deterministic RNG seed derived *by counter* from the base seed and
//! the point's grid index ([`point_seed`]), never from a shared
//! sequential stream. That is the property the whole execution engine
//! rests on: a point's randomness depends only on `(base_seed, index)`,
//! so results are bit-identical regardless of how many workers run the
//! grid or in which order they pick points up.

/// Mixes a 64-bit state with the SplitMix64 finalizer — the same
/// construction the vendored `rand` stub uses to expand seeds, reused
/// here to decorrelate per-point seeds.
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the RNG seed of grid point `index` from the grid's
/// `base_seed`.
///
/// The derivation is counter-based (a SplitMix64 walk evaluated at
/// `index`, folded with the mixed base seed), so any point's seed can
/// be computed independently in O(1) — no shared generator, no
/// order dependence, no cross-worker coordination.
///
/// # Examples
///
/// ```
/// // Same (base, index) → same seed; neighbours decorrelate.
/// assert_eq!(sweep::point_seed(7, 3), sweep::point_seed(7, 3));
/// assert_ne!(sweep::point_seed(7, 3), sweep::point_seed(7, 4));
/// assert_ne!(sweep::point_seed(7, 3), sweep::point_seed(8, 3));
/// ```
#[must_use]
pub fn point_seed(base_seed: u64, index: u64) -> u64 {
    let counter = index.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64_mix(splitmix64_mix(base_seed) ^ counter)
}

/// FNV-1a hash of a byte string — the engine's stable fingerprint
/// primitive, used to bind a [checkpoint](crate::checkpoint) to the
/// grid description it was taken over.
///
/// # Examples
///
/// ```
/// let a = sweep::fingerprint("wer current=63uA pulses=6 trials=2000");
/// assert_eq!(a, sweep::fingerprint("wer current=63uA pulses=6 trials=2000"));
/// assert_ne!(a, sweep::fingerprint("wer current=63uA pulses=6 trials=4000"));
/// ```
#[must_use]
pub fn fingerprint(description: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in description.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An ordered list of job points with a base seed.
///
/// The grid is the unit of execution: [`crate::run`] walks its points
/// (in any order, on any number of workers) and returns results in
/// **grid order**. Point `i` receives the deterministic seed
/// [`Grid::seed_of`]`(i)`.
///
/// # Examples
///
/// ```
/// let grid = sweep::Grid::with_seed(vec!["SS", "TT", "FF"], 42);
/// assert_eq!(grid.len(), 3);
/// assert_eq!(grid.seed_of(1), sweep::point_seed(42, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid<P> {
    points: Vec<P>,
    base_seed: u64,
}

impl<P> Grid<P> {
    /// A grid over `points` with base seed 0.
    #[must_use]
    pub fn new(points: Vec<P>) -> Self {
        Self::with_seed(points, 0)
    }

    /// A grid over `points` seeded with `base_seed`.
    #[must_use]
    pub fn with_seed(points: Vec<P>, base_seed: u64) -> Self {
        Self { points, base_seed }
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, in grid order.
    #[must_use]
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// The base seed the per-point seeds derive from.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The deterministic RNG seed of point `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn seed_of(&self, index: usize) -> u64 {
        assert!(index < self.points.len(), "point {index} out of range");
        point_seed(self.base_seed, index as u64)
    }
}

impl Grid<()> {
    /// A grid of `n` unit points — the shape of a pure Monte-Carlo run,
    /// where a point is nothing but its index and seed.
    #[must_use]
    pub fn samples(n: usize, base_seed: u64) -> Self {
        Self::with_seed(vec![(); n], base_seed)
    }
}

impl<A: Clone, B: Clone> Grid<(A, B)> {
    /// The cartesian product `a × b` in row-major order (`a` outer).
    #[must_use]
    pub fn cartesian(a: &[A], b: &[B], base_seed: u64) -> Self {
        let mut points = Vec::with_capacity(a.len() * b.len());
        for x in a {
            for y in b {
                points.push((x.clone(), y.clone()));
            }
        }
        Self::with_seed(points, base_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_seeds_are_stable_and_decorrelated() {
        let seeds: Vec<u64> = (0..64).map(|i| point_seed(11, i)).collect();
        let again: Vec<u64> = (0..64).map(|i| point_seed(11, i)).collect();
        assert_eq!(seeds, again);
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "no seed collisions");
        // A different base seed reroutes every point.
        assert!((0..64).all(|i| point_seed(12, i) != seeds[i as usize]));
    }

    #[test]
    fn grid_seed_of_matches_free_function() {
        let grid = Grid::with_seed(vec![10, 20, 30], 99);
        for i in 0..grid.len() {
            assert_eq!(grid.seed_of(i), point_seed(99, i as u64));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_seed_panics() {
        let _ = Grid::new(vec![1]).seed_of(1);
    }

    #[test]
    fn cartesian_is_row_major() {
        let grid = Grid::cartesian(&[1, 2], &["a", "b", "c"], 0);
        assert_eq!(grid.len(), 6);
        assert_eq!(grid.points()[0], (1, "a"));
        assert_eq!(grid.points()[2], (1, "c"));
        assert_eq!(grid.points()[3], (2, "a"));
    }

    #[test]
    fn samples_grid_is_unit_points() {
        let grid = Grid::samples(5, 3);
        assert_eq!(grid.len(), 5);
        assert_eq!(grid.base_seed(), 3);
    }

    #[test]
    fn fingerprint_discriminates() {
        assert_ne!(fingerprint("a"), fingerprint("b"));
        assert_ne!(fingerprint(""), fingerprint("a"));
    }
}
