//! Job grids and counter-based per-point seeding.
//!
//! A [`Grid`] is an ordered list of job points — corner × parameter ×
//! seed combinations — plus a base seed. Each point owns a
//! deterministic RNG seed derived *by counter* from the base seed and
//! the point's grid index ([`point_seed`]), never from a shared
//! sequential stream. That is the property the whole execution engine
//! rests on: a point's randomness depends only on `(base_seed, index)`,
//! so results are bit-identical regardless of how many workers run the
//! grid or in which order they pick points up.

/// Mixes a 64-bit state with the SplitMix64 finalizer — the same
/// construction the vendored `rand` stub uses to expand seeds, reused
/// here to decorrelate per-point seeds.
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the RNG seed of grid point `index` from the grid's
/// `base_seed`.
///
/// The derivation is counter-based (a SplitMix64 walk evaluated at
/// `index`, folded with the mixed base seed), so any point's seed can
/// be computed independently in O(1) — no shared generator, no
/// order dependence, no cross-worker coordination.
///
/// # Examples
///
/// ```
/// // Same (base, index) → same seed; neighbours decorrelate.
/// assert_eq!(sweep::point_seed(7, 3), sweep::point_seed(7, 3));
/// assert_ne!(sweep::point_seed(7, 3), sweep::point_seed(7, 4));
/// assert_ne!(sweep::point_seed(7, 3), sweep::point_seed(8, 3));
/// ```
#[must_use]
pub fn point_seed(base_seed: u64, index: u64) -> u64 {
    let counter = index.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64_mix(splitmix64_mix(base_seed) ^ counter)
}

/// The standard 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The standard 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher — the engine's stable fingerprint primitive.
///
/// [`fingerprint`] and [`fingerprint_bytes`] are one-shot wrappers; the
/// struct form exists so callers hashing composite keys (canonical
/// request bytes, grid descriptions assembled from parts) can feed
/// chunks without building an intermediate `String`.
///
/// # Examples
///
/// ```
/// let mut h = sweep::Fnv1a::new();
/// h.update(b"wer current=63uA ");
/// h.update(b"pulses=6");
/// assert_eq!(h.finish(), sweep::fingerprint("wer current=63uA pulses=6"));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a {
    hash: u64,
}

impl Fnv1a {
    /// A hasher at the standard FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::with_basis(FNV_OFFSET)
    }

    /// A hasher starting from an arbitrary basis — distinct bases yield
    /// independent hash streams over the same bytes, which is how
    /// [`fingerprint128`] widens the digest.
    #[must_use]
    pub fn with_basis(basis: u64) -> Self {
        Self { hash: basis }
    }

    /// Feeds `bytes` into the hash state.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.hash ^= u64::from(byte);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current 64-bit digest. The hasher remains usable.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a hash of a byte string, used to bind a
/// [checkpoint](crate::checkpoint) to the grid description it was taken
/// over.
///
/// # Examples
///
/// ```
/// let a = sweep::fingerprint("wer current=63uA pulses=6 trials=2000");
/// assert_eq!(a, sweep::fingerprint("wer current=63uA pulses=6 trials=2000"));
/// assert_ne!(a, sweep::fingerprint("wer current=63uA pulses=6 trials=4000"));
/// ```
#[must_use]
pub fn fingerprint(description: &str) -> u64 {
    fingerprint_bytes(description.as_bytes())
}

/// FNV-1a hash over raw bytes — identical to [`fingerprint`] for UTF-8
/// input, provided for callers keying on non-textual material.
#[must_use]
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut hasher = Fnv1a::new();
    hasher.update(bytes);
    hasher.finish()
}

/// 128-bit content fingerprint: two independent FNV-1a streams over the
/// same bytes (the standard basis in the high half, a decorrelated
/// basis in the low half). 64 bits is plenty for checkpoint tags, but a
/// content-addressed cache lives or dies on collision resistance, so
/// cache keys get the wide digest.
///
/// # Examples
///
/// ```
/// let a = sweep::fingerprint128(b"{\"variant\":\"proposed\"}");
/// assert_eq!(a, sweep::fingerprint128(b"{\"variant\":\"proposed\"}"));
/// assert_ne!(a, sweep::fingerprint128(b"{\"variant\":\"standard\"}"));
/// // High half is the plain 64-bit fingerprint.
/// assert_eq!((a >> 64) as u64, sweep::fingerprint_bytes(b"{\"variant\":\"proposed\"}"));
/// ```
#[must_use]
pub fn fingerprint128(bytes: &[u8]) -> u128 {
    let mut high = Fnv1a::new();
    high.update(bytes);
    // The low half starts from the standard basis remixed by the
    // SplitMix64 finalizer, giving an independent stream over the same
    // bytes without inventing a second FNV constant.
    let mut low = Fnv1a::with_basis(splitmix64_mix(FNV_OFFSET));
    low.update(bytes);
    (u128::from(high.finish()) << 64) | u128::from(low.finish())
}

/// An ordered list of job points with a base seed.
///
/// The grid is the unit of execution: [`crate::run`] walks its points
/// (in any order, on any number of workers) and returns results in
/// **grid order**. Point `i` receives the deterministic seed
/// [`Grid::seed_of`]`(i)`.
///
/// # Examples
///
/// ```
/// let grid = sweep::Grid::with_seed(vec!["SS", "TT", "FF"], 42);
/// assert_eq!(grid.len(), 3);
/// assert_eq!(grid.seed_of(1), sweep::point_seed(42, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid<P> {
    points: Vec<P>,
    base_seed: u64,
}

impl<P> Grid<P> {
    /// A grid over `points` with base seed 0.
    #[must_use]
    pub fn new(points: Vec<P>) -> Self {
        Self::with_seed(points, 0)
    }

    /// A grid over `points` seeded with `base_seed`.
    #[must_use]
    pub fn with_seed(points: Vec<P>, base_seed: u64) -> Self {
        Self { points, base_seed }
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, in grid order.
    #[must_use]
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// The base seed the per-point seeds derive from.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The deterministic RNG seed of point `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn seed_of(&self, index: usize) -> u64 {
        assert!(index < self.points.len(), "point {index} out of range");
        point_seed(self.base_seed, index as u64)
    }
}

impl Grid<()> {
    /// A grid of `n` unit points — the shape of a pure Monte-Carlo run,
    /// where a point is nothing but its index and seed.
    #[must_use]
    pub fn samples(n: usize, base_seed: u64) -> Self {
        Self::with_seed(vec![(); n], base_seed)
    }
}

impl<A: Clone, B: Clone> Grid<(A, B)> {
    /// The cartesian product `a × b` in row-major order (`a` outer).
    #[must_use]
    pub fn cartesian(a: &[A], b: &[B], base_seed: u64) -> Self {
        let mut points = Vec::with_capacity(a.len() * b.len());
        for x in a {
            for y in b {
                points.push((x.clone(), y.clone()));
            }
        }
        Self::with_seed(points, base_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_seeds_are_stable_and_decorrelated() {
        let seeds: Vec<u64> = (0..64).map(|i| point_seed(11, i)).collect();
        let again: Vec<u64> = (0..64).map(|i| point_seed(11, i)).collect();
        assert_eq!(seeds, again);
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "no seed collisions");
        // A different base seed reroutes every point.
        assert!((0..64).all(|i| point_seed(12, i) != seeds[i as usize]));
    }

    #[test]
    fn grid_seed_of_matches_free_function() {
        let grid = Grid::with_seed(vec![10, 20, 30], 99);
        for i in 0..grid.len() {
            assert_eq!(grid.seed_of(i), point_seed(99, i as u64));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_seed_panics() {
        let _ = Grid::new(vec![1]).seed_of(1);
    }

    #[test]
    fn cartesian_is_row_major() {
        let grid = Grid::cartesian(&[1, 2], &["a", "b", "c"], 0);
        assert_eq!(grid.len(), 6);
        assert_eq!(grid.points()[0], (1, "a"));
        assert_eq!(grid.points()[2], (1, "c"));
        assert_eq!(grid.points()[3], (2, "a"));
    }

    #[test]
    fn samples_grid_is_unit_points() {
        let grid = Grid::samples(5, 3);
        assert_eq!(grid.len(), 5);
        assert_eq!(grid.base_seed(), 3);
    }

    #[test]
    fn fingerprint_discriminates() {
        assert_ne!(fingerprint("a"), fingerprint("b"));
        assert_ne!(fingerprint(""), fingerprint("a"));
    }

    #[test]
    fn streaming_hasher_matches_one_shot_for_any_chunking() {
        let text = "wer current=63uA pulses=6 trials=2000";
        let expect = fingerprint(text);
        for split in 0..=text.len() {
            let mut h = Fnv1a::new();
            h.update(&text.as_bytes()[..split]);
            h.update(&text.as_bytes()[split..]);
            assert_eq!(h.finish(), expect, "split at {split}");
        }
        assert_eq!(fingerprint_bytes(text.as_bytes()), expect);
    }

    #[test]
    fn wide_fingerprint_halves_are_independent() {
        let a = fingerprint128(b"request-a");
        let b = fingerprint128(b"request-b");
        assert_ne!(a, b);
        assert_eq!((a >> 64) as u64, fingerprint_bytes(b"request-a"));
        // The two halves must not be the same stream.
        assert_ne!((a >> 64) as u64, a as u64);
        // Empty input still yields a stable, nonzero digest.
        assert_eq!(fingerprint128(b""), fingerprint128(b""));
        assert_ne!(fingerprint128(b""), 0);
    }
}
