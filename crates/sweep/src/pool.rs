//! The worker pool and ordered result collector.
//!
//! [`run`] / [`run_with_state`] execute every point of a
//! [`Grid`](crate::Grid) and return the results **in grid order**,
//! regardless of completion order. Work distribution is chunked
//! self-scheduling over a shared atomic cursor (the zero-dependency
//! cousin of work-stealing: finished workers pull the next chunk
//! instead of idling), results travel over an `mpsc` channel to the
//! collector running on the calling thread, and each worker owns
//! private state built lazily on its own thread — the place consumers
//! keep their pools of `SimulationSession`s.
//!
//! With one worker (or one point) no thread is spawned at all: jobs run
//! on the calling thread, preserving the serial path exactly —
//! including telemetry span parentage under the caller's open spans.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use crate::grid::Grid;

/// Execution options for a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// Worker count. `0` selects the host's available parallelism;
    /// `1` runs serially on the calling thread (no threads spawned).
    pub jobs: usize,
    /// Points claimed per cursor fetch. `0` selects an automatic chunk
    /// (about eight chunks per worker) that balances scheduling
    /// overhead against tail latency.
    pub chunk: usize,
    /// Telemetry span label wrapped around every job. Under a parallel
    /// run each worker opens a `worker/<k>` root span for its lifetime,
    /// so jobs aggregate per worker (`worker/<k>/<label>`); under
    /// `jobs = 1` the label nests beneath the caller's spans.
    pub span_label: &'static str,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            jobs: 0,
            chunk: 0,
            span_label: "sweep.job",
        }
    }
}

impl SweepOptions {
    /// Options with an explicit worker count (`0` = auto).
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        Self {
            jobs,
            ..Self::default()
        }
    }

    /// Resolves `jobs = 0` to the host's available parallelism and caps
    /// the count at `total` (more workers than points is pure waste).
    #[must_use]
    pub fn effective_workers(&self, total: usize) -> usize {
        let requested = if self.jobs == 0 {
            available_parallelism()
        } else {
            self.jobs
        };
        requested.clamp(1, total.max(1))
    }
}

/// The host's available parallelism, defaulting to 1 when the OS will
/// not say.
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Per-job context handed to the job function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCtx {
    /// The point's grid index.
    pub index: usize,
    /// The point's deterministic RNG seed
    /// ([`Grid::seed_of`](crate::Grid::seed_of)`(index)`). Jobs that
    /// need randomness must derive it from this seed *only* — never
    /// from worker identity or shared state — or determinism across
    /// worker counts is lost.
    pub seed: u64,
    /// The executing worker's id (`0..workers`). Informational; results
    /// must not depend on it.
    pub worker: usize,
}

/// Progress of a running sweep, handed to the progress callback after
/// every completed job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Progress {
    /// Jobs completed so far (excluding checkpoint-restored ones).
    pub done: usize,
    /// Jobs this run must execute (excluding checkpoint-restored ones).
    pub total: usize,
    /// Wall-clock seconds since the sweep started.
    pub elapsed_s: f64,
    /// Estimated seconds to completion, extrapolated from the mean
    /// job rate so far.
    pub eta_s: f64,
}

/// Aggregate accounting of one sweep run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunSummary {
    /// Total points in the grid.
    pub points: usize,
    /// Points restored from a checkpoint instead of executed.
    pub resumed: usize,
    /// Workers that executed jobs.
    pub workers: usize,
    /// Wall-clock seconds of the whole run.
    pub wall_s: f64,
    /// Cumulative seconds spent inside jobs, summed over workers. With
    /// `workers = 1` this tracks `wall_s`; the ratio is the realized
    /// speedup.
    pub busy_s: f64,
}

impl RunSummary {
    /// Realized parallel speedup: cumulative job time over wall-clock
    /// time (≈ 1 for a serial run, → `workers` for perfect scaling).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.busy_s / self.wall_s
        } else {
            1.0
        }
    }
}

/// Results of a sweep: one entry per grid point, in grid order, plus
/// the run accounting.
#[derive(Debug, Clone)]
pub struct SweepOutcome<T> {
    /// Per-point results, index-aligned with the grid's points.
    pub results: Vec<T>,
    /// Worker/wall-clock accounting for the run.
    pub summary: RunSummary,
}

/// Runs a stateless job over every grid point. See [`run_with_state`]
/// for the variant with per-worker state.
///
/// # Examples
///
/// ```
/// let grid = sweep::Grid::with_seed(vec![1u64, 2, 3, 4], 9);
/// let opts = sweep::SweepOptions::with_jobs(2);
/// let out = sweep::run(&grid, &opts, |ctx, &p| p * 10 + ctx.index as u64);
/// assert_eq!(out.results, vec![10, 21, 32, 43]); // grid order
/// ```
pub fn run<P, T>(
    grid: &Grid<P>,
    opts: &SweepOptions,
    job: impl Fn(&JobCtx, &P) -> T + Sync,
) -> SweepOutcome<T>
where
    P: Sync,
    T: Send,
{
    run_with_state(grid, opts, |_| (), |(), ctx, point| job(ctx, point), None)
}

/// Runs a *blocked* job over every grid point: workers claim
/// contiguous blocks of up to `lanes` points and evaluate each block
/// with one call — the composition point between thread-level
/// parallelism (this pool) and lane-level SIMD batching (the job
/// evaluates its block in lockstep).
///
/// The job receives index-aligned slices: one [`JobCtx`] per point —
/// carrying the **same** per-point counter seed [`Grid::seed_of`]
/// would hand the pointwise [`run`] — and the block's points. It must
/// return exactly one result per point, in block order. Under that
/// contract the flattened results are bit-identical to a pointwise
/// [`run`] of the same per-point computation, for every `lanes` and
/// every `jobs` value.
///
/// # Panics
///
/// Panics if the job returns a result count different from its block
/// length.
///
/// # Examples
///
/// ```
/// let grid = sweep::Grid::with_seed(vec![10u64, 20, 30, 40, 50], 9);
/// let opts = sweep::SweepOptions::with_jobs(2);
/// let out = sweep::run_blocked(&grid, &opts, 2, |ctxs, points| {
///     ctxs.iter()
///         .zip(points)
///         .map(|(ctx, &p)| p + ctx.index as u64)
///         .collect()
/// });
/// assert_eq!(out.results, vec![10, 21, 32, 43, 54]); // grid order
/// assert_eq!(out.summary.points, 5);
/// ```
pub fn run_blocked<P, T>(
    grid: &Grid<P>,
    opts: &SweepOptions,
    lanes: usize,
    job: impl Fn(&[JobCtx], &[P]) -> Vec<T> + Sync,
) -> SweepOutcome<T>
where
    P: Sync,
    T: Send,
{
    let lanes = lanes.max(1);
    let total = grid.len();
    let blocks: Vec<(usize, usize)> = (0..total)
        .step_by(lanes)
        .map(|lo| (lo, (lo + lanes).min(total)))
        .collect();
    let block_grid = Grid::new(blocks);
    let outcome = run(&block_grid, opts, |block_ctx, &(lo, hi)| {
        let ctxs: Vec<JobCtx> = (lo..hi)
            .map(|index| JobCtx {
                index,
                seed: grid.seed_of(index),
                worker: block_ctx.worker,
            })
            .collect();
        let results = job(&ctxs, &grid.points()[lo..hi]);
        assert_eq!(
            results.len(),
            hi - lo,
            "blocked job returned {} results for a block of {}",
            results.len(),
            hi - lo
        );
        results
    });
    let mut summary = outcome.summary;
    summary.points = total;
    SweepOutcome {
        results: outcome.results.into_iter().flatten().collect(),
        summary,
    }
}

/// Runs a job over every grid point with per-worker state.
///
/// `make_state` is called once per worker, **on that worker's thread**,
/// before its first job — the hook for lazily-built expensive state
/// such as a pool of simulation sessions (see
/// [`LazyPool`](crate::LazyPool)). The job receives its worker's state
/// mutably, the per-point [`JobCtx`], and the point.
///
/// `on_progress`, when given, is invoked on the calling thread after
/// every completed job (in completion order) with running ETA figures.
///
/// Determinism contract: the returned `results` are bit-identical for
/// any worker count **provided** the job derives its output from the
/// point and `ctx.seed` alone. Worker state may cache and amortize, but
/// must not alter results.
pub fn run_with_state<P, S, T, FS, FJ>(
    grid: &Grid<P>,
    opts: &SweepOptions,
    make_state: FS,
    job: FJ,
    on_progress: Option<&mut dyn FnMut(&Progress)>,
) -> SweepOutcome<T>
where
    P: Sync,
    T: Send,
    FS: Fn(usize) -> S + Sync,
    FJ: Fn(&mut S, &JobCtx, &P) -> T + Sync,
{
    let pending: Vec<usize> = (0..grid.len()).collect();
    let slots = (0..grid.len()).map(|_| None).collect();
    let (results, summary) = run_pending(
        grid,
        pending,
        slots,
        opts,
        &make_state,
        &job,
        on_progress,
        &mut |_, _| {},
    );
    SweepOutcome { results, summary }
}

/// The engine core shared by [`run_with_state`] and the checkpointed
/// runner: executes the `pending` indices of `grid` into `slots`
/// (pre-filled entries are counted as resumed), reporting each result
/// to `sink` (on the collector thread, in completion order) before
/// storing it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_pending<P, S, T, FS, FJ>(
    grid: &Grid<P>,
    pending: Vec<usize>,
    mut slots: Vec<Option<T>>,
    opts: &SweepOptions,
    make_state: &FS,
    job: &FJ,
    mut on_progress: Option<&mut dyn FnMut(&Progress)>,
    sink: &mut dyn FnMut(usize, &T),
) -> (Vec<T>, RunSummary)
where
    P: Sync,
    T: Send,
    FS: Fn(usize) -> S + Sync,
    FJ: Fn(&mut S, &JobCtx, &P) -> T + Sync,
{
    assert_eq!(slots.len(), grid.len(), "slot/grid length mismatch");
    let total = pending.len();
    let resumed = slots.iter().filter(|s| s.is_some()).count();
    let workers = opts.effective_workers(total);
    let start = Instant::now();
    telemetry::counter("sweep.runs", 1);
    telemetry::counter("sweep.jobs_resumed", resumed as u64);

    let mut busy_s = 0.0f64;
    let mut done = 0usize;

    if workers <= 1 || total <= 1 {
        let mut state = make_state(0);
        for &index in &pending {
            let ctx = JobCtx {
                index,
                seed: grid.seed_of(index),
                worker: 0,
            };
            let t0 = Instant::now();
            let result = {
                let _span = telemetry::span(opts.span_label);
                job(&mut state, &ctx, &grid.points()[index])
            };
            telemetry::counter("sweep.jobs", 1);
            busy_s += t0.elapsed().as_secs_f64();
            done += 1;
            sink(index, &result);
            slots[index] = Some(result);
            if let Some(progress) = on_progress.as_deref_mut() {
                progress(&progress_of(done, total, start));
            }
        }
    } else {
        let chunk = if opts.chunk > 0 {
            opts.chunk
        } else {
            (total / (workers * 8)).max(1)
        };
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, f64, T)>();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for worker in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let pending = &pending;
                let span_label = opts.span_label;
                handles.push(scope.spawn(move || {
                    // Give every worker its own span-path root
                    // (`worker/<k>/<job>/…`) and chrome-trace track
                    // label — without it, all workers' jobs collapse
                    // into one indistinguishable root row in
                    // render_summary and the trace viewer.
                    let tel = telemetry::enabled();
                    let _worker_span = tel.then(|| {
                        telemetry::set_thread_label(telemetry::worker_label(worker));
                        telemetry::span(telemetry::worker_label(worker))
                    });
                    let mut state = make_state(worker);
                    loop {
                        let claim = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if claim >= total {
                            break;
                        }
                        for &index in &pending[claim..(claim + chunk).min(total)] {
                            let ctx = JobCtx {
                                index,
                                seed: grid.seed_of(index),
                                worker,
                            };
                            let t0 = Instant::now();
                            let result = {
                                let _span = telemetry::span(span_label);
                                job(&mut state, &ctx, &grid.points()[index])
                            };
                            telemetry::counter("sweep.jobs", 1);
                            if tx
                                .send((index, t0.elapsed().as_secs_f64(), result))
                                .is_err()
                            {
                                return; // collector gone; unwind quietly
                            }
                        }
                    }
                }));
            }
            drop(tx);
            // Ordered collection: completion order arrives here, grid
            // order is restored by slot index. A worker that panics
            // drops its `tx`, so the loop drains whatever the healthy
            // workers produced and then ends.
            while let Ok((index, dur_s, result)) = rx.recv() {
                busy_s += dur_s;
                done += 1;
                sink(index, &result);
                slots[index] = Some(result);
                if let Some(progress) = on_progress.as_deref_mut() {
                    progress(&progress_of(done, total, start));
                }
            }
            // Join the workers *before* touching the result slots, and
            // re-raise the first worker panic with its original payload.
            // Leaving the handles to the scope's implicit join would
            // replace a job's panic message with the scope's generic
            // "a scoped thread panicked", and the collector would then
            // die on an unfilled slot instead of the real cause.
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
    }

    let wall_s = start.elapsed().as_secs_f64();
    if telemetry::enabled() {
        telemetry::histogram("sweep.run_wall_s", wall_s);
    }
    let results: Vec<T> = slots
        .into_iter()
        .map(|slot| slot.expect("every grid point produced a result"))
        .collect();
    let summary = RunSummary {
        points: grid.len(),
        resumed,
        workers: if total <= 1 { 1 } else { workers },
        wall_s,
        busy_s,
    };
    (results, summary)
}

fn progress_of(done: usize, total: usize, start: Instant) -> Progress {
    let elapsed_s = start.elapsed().as_secs_f64();
    let eta_s = if done > 0 {
        elapsed_s / done as f64 * (total - done) as f64
    } else {
        f64::INFINITY
    };
    Progress {
        done,
        total,
        elapsed_s,
        eta_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_job(ctx: &JobCtx, p: &u64) -> u64 {
        // Output depends only on (point, seed) — the determinism
        // contract — but takes long enough to interleave workers.
        let mut acc = ctx.seed ^ p;
        for _ in 0..50 {
            acc = acc.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
        }
        acc
    }

    #[test]
    fn results_are_bit_identical_across_worker_counts() {
        let grid = Grid::with_seed((0..97u64).collect(), 1234);
        let serial = run(&grid, &SweepOptions::with_jobs(1), mix_job);
        for jobs in [2, 4, 8] {
            let parallel = run(&grid, &SweepOptions::with_jobs(jobs), mix_job);
            assert_eq!(parallel.results, serial.results, "jobs = {jobs}");
        }
    }

    #[test]
    fn results_come_back_in_grid_order_not_completion_order() {
        // Early points sleep longest, so completion order is roughly
        // reversed; the collector must still restore grid order.
        let grid = Grid::new((0..16u64).collect());
        let opts = SweepOptions {
            jobs: 4,
            chunk: 1,
            ..SweepOptions::default()
        };
        let out = run(&grid, &opts, |ctx, &p| {
            std::thread::sleep(std::time::Duration::from_millis(
                (16 - ctx.index as u64) * 2,
            ));
            p
        });
        assert_eq!(out.results, (0..16u64).collect::<Vec<_>>());
        assert_eq!(out.summary.workers, 4);
        assert_eq!(out.summary.points, 16);
    }

    #[test]
    fn serial_path_spawns_no_threads_and_reports_one_worker() {
        let grid = Grid::new(vec![5u64; 8]);
        let caller = std::thread::current().id();
        let out = run(&grid, &SweepOptions::with_jobs(1), |_, _| {
            std::thread::current().id()
        });
        assert!(out.results.iter().all(|&id| id == caller));
        assert_eq!(out.summary.workers, 1);
    }

    #[test]
    fn worker_state_is_built_per_worker_and_threaded_through() {
        let grid = Grid::new((0..32u64).collect());
        let out = run_with_state(
            &grid,
            &SweepOptions::with_jobs(4),
            |worker| (worker, 0usize),
            |state: &mut (usize, usize), ctx, _| {
                state.1 += 1;
                assert_eq!(state.0, ctx.worker);
                state.1
            },
            None,
        );
        // Each worker counts its own jobs from 1; every value is ≥ 1
        // and the per-worker counts cover all 32 points.
        assert_eq!(out.results.len(), 32);
        assert!(out.results.iter().all(|&n| (1..=32).contains(&n)));
    }

    #[test]
    fn progress_reports_monotonic_completion() {
        let grid = Grid::new(vec![0u64; 10]);
        let mut seen = Vec::new();
        let mut on_progress = |p: &Progress| seen.push(p.done);
        let _ = run_with_state(
            &grid,
            &SweepOptions::with_jobs(2),
            |_| (),
            |(), _, _| (),
            Some(&mut on_progress),
        );
        assert_eq!(seen.len(), 10);
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*seen.last().expect("nonempty"), 10);
    }

    #[test]
    fn worker_panic_resurfaces_with_original_payload() {
        // Regression: the collector used to leave panicked workers to
        // the scope's implicit join, which replaced the job's payload
        // with the scope's generic "a scoped thread panicked" (or died
        // first on an unfilled result slot). The original message must
        // survive to the caller.
        let grid = Grid::new((0..24u64).collect());
        let opts = SweepOptions {
            jobs: 3,
            chunk: 1,
            ..SweepOptions::default()
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(&grid, &opts, |ctx, &p| {
                if ctx.index == 7 {
                    panic!("boom at point {}", ctx.index);
                }
                p
            })
        }));
        let payload = outcome.expect_err("the worker panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic payload is a string");
        assert_eq!(message, "boom at point 7");
    }

    #[test]
    fn blocked_run_matches_pointwise_run_for_any_lane_count() {
        let grid = Grid::with_seed((0..29u64).collect(), 77);
        let pointwise = run(&grid, &SweepOptions::with_jobs(1), mix_job);
        for lanes in [1, 3, 8, 64] {
            for jobs in [1, 4] {
                let blocked = run_blocked(
                    &grid,
                    &SweepOptions::with_jobs(jobs),
                    lanes,
                    |ctxs, points| {
                        ctxs.iter()
                            .zip(points)
                            .map(|(ctx, p)| mix_job(ctx, p))
                            .collect()
                    },
                );
                assert_eq!(
                    blocked.results, pointwise.results,
                    "lanes = {lanes}, jobs = {jobs}"
                );
                assert_eq!(blocked.summary.points, 29);
            }
        }
    }

    #[test]
    fn blocked_run_hands_out_per_point_seeds_and_indices() {
        let grid = Grid::with_seed(vec![0u8; 10], 5);
        let out = run_blocked(&grid, &SweepOptions::with_jobs(1), 4, |ctxs, points| {
            assert!(points.len() <= 4);
            ctxs.iter().map(|ctx| (ctx.index, ctx.seed)).collect()
        });
        for (i, &(index, seed)) in out.results.iter().enumerate() {
            assert_eq!(index, i);
            assert_eq!(seed, grid.seed_of(i));
        }
    }

    #[test]
    #[should_panic(expected = "blocked job returned")]
    fn blocked_job_must_return_one_result_per_point() {
        let grid = Grid::new(vec![0u8; 4]);
        let _ = run_blocked(&grid, &SweepOptions::with_jobs(1), 2, |_, _| vec![0u8; 1]);
    }

    #[test]
    fn blocked_run_over_an_empty_grid_is_empty() {
        let grid: Grid<u64> = Grid::new(Vec::new());
        let out = run_blocked(&grid, &SweepOptions::default(), 8, |_, _| Vec::<u64>::new());
        assert!(out.results.is_empty());
        assert_eq!(out.summary.points, 0);
    }

    #[test]
    fn empty_grid_returns_empty_outcome() {
        let grid: Grid<u64> = Grid::new(Vec::new());
        let out = run(&grid, &SweepOptions::default(), |_, &p| p);
        assert!(out.results.is_empty());
        assert_eq!(out.summary.points, 0);
    }

    #[test]
    fn effective_workers_resolves_auto_and_caps_at_points() {
        let auto = SweepOptions::default();
        assert!(auto.effective_workers(1000) >= 1);
        assert_eq!(SweepOptions::with_jobs(8).effective_workers(3), 3);
        assert_eq!(SweepOptions::with_jobs(2).effective_workers(0), 1);
    }

    #[test]
    fn speedup_is_busy_over_wall() {
        let summary = RunSummary {
            points: 4,
            resumed: 0,
            workers: 4,
            wall_s: 1.0,
            busy_s: 3.5,
        };
        assert!((summary.speedup() - 3.5).abs() < 1e-12);
        assert!((RunSummary::default().speedup() - 1.0).abs() < 1e-12);
    }
}
