//! A `--jobs 4` sweep traced in chrome mode must produce a valid Trace
//! Event JSON document with four labeled worker tracks, and the span
//! aggregates must keep the workers apart under `worker/<k>` roots.
//!
//! Single test function: the telemetry registry is process-global.

use std::collections::BTreeSet;

use sweep::{Grid, SweepOptions};
use telemetry::JsonValue;

#[test]
fn four_workers_get_four_labeled_tracks() {
    let path = std::env::temp_dir().join(format!("nvff-sweep-trace-{}.json", std::process::id()));
    telemetry::reset_for_tests();
    telemetry::init(telemetry::TraceMode::Chrome(path.clone()));

    // chunk = 1 and a small sleep force all four workers to claim work.
    let grid = Grid::with_seed((0..16u64).collect(), 7);
    let opts = SweepOptions {
        jobs: 4,
        chunk: 1,
        span_label: "trace.job",
    };
    let out = sweep::run(&grid, &opts, |ctx, &p| {
        std::thread::sleep(std::time::Duration::from_millis(2));
        p + ctx.seed
    });
    assert_eq!(out.summary.workers, 4);

    // Worker roots keep the spans apart in the aggregate view.
    let snap = telemetry::finish();
    let worker_roots: BTreeSet<&str> = snap
        .spans
        .iter()
        .filter(|s| s.path.starts_with("worker/"))
        .filter_map(|s| s.path.split('/').nth(1))
        .collect();
    assert_eq!(
        worker_roots,
        BTreeSet::from(["0", "1", "2", "3"]),
        "spans: {:?}",
        snap.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
    );
    assert!(
        snap.spans
            .iter()
            .any(|s| s.path.starts_with("worker/") && s.path.ends_with("/trace.job")),
        "job spans must nest under their worker root"
    );

    telemetry::init(telemetry::TraceMode::Off);

    // The trace file is one valid JSON document with 4 labeled tracks.
    let text = std::fs::read_to_string(&path).expect("trace file");
    let doc = JsonValue::parse(&text).expect("valid Trace Event JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    let labels: BTreeSet<String> = events
        .iter()
        .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("thread_name"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
        })
        .filter(|l| l.starts_with("worker/"))
        .collect();
    assert_eq!(
        labels,
        BTreeSet::from([
            "worker/0".to_owned(),
            "worker/1".to_owned(),
            "worker/2".to_owned(),
            "worker/3".to_owned(),
        ])
    );

    // Each labeled track carries at least one complete event.
    let label_tids: BTreeSet<i64> = events
        .iter()
        .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("thread_name"))
        .filter_map(|e| e.get("tid").and_then(JsonValue::as_i64))
        .collect();
    for tid in &label_tids {
        assert!(
            events.iter().any(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("X")
                    && e.get("tid").and_then(JsonValue::as_i64) == Some(*tid)
            }),
            "no X events on labeled tid {tid}"
        );
    }

    let _ = std::fs::remove_file(&path);
    telemetry::reset_for_tests();
}
