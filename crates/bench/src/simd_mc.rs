//! Lane-batched Monte-Carlo benchmark: the WER grid timed under four
//! engine configurations, plus the bit-identity cross-check.
//!
//! The four configurations isolate where the throughput comes from:
//!
//! - **scalar serial** — reference kernel, one worker;
//! - **threads** — reference kernel fanned over the sweep pool
//!   (`--jobs` parallelism alone, the pre-lane baseline);
//! - **lanes serial** — the SIMD structure-of-arrays kernel
//!   ([`mtj::lanes`]), one worker;
//! - **combined** — lanes × workers, the shipping configuration.
//!
//! Every configuration must return the *same failure counts* — the
//! counter-seeded per-trial streams make results independent of both
//! lane width and worker count — and the report records that check as
//! `bit_identical`. The headline figure is `speedup_vs_threads`
//! (threads-alone wall over combined wall): the contract the committed
//! baseline asserts is ≥ 4×, which the lane kernel clears by hoisting
//! the per-step switch probability (two `exp` evaluations per step per
//! trial in the scalar path) out of the trial loop and stepping `LANES`
//! trials per RNG round.
//!
//! The [`SimdMcReport::section`] output lands in `BENCH_report.json` as
//! the `simd_mc` section; `ci.sh` additionally runs the differential
//! mode of the `simd_mc` binary (`--check`), which diffs the grid across
//! every supported lane width × worker count combination exactly.

use std::time::Instant;

use mtj::{wer, MtjParams, SwitchingModel};
use telemetry::Section;
use units::{Current, Time};

/// Knobs for one [`run`].
#[derive(Debug, Clone)]
pub struct SimdMcOptions {
    /// Stochastic write trials per grid point.
    pub trials: usize,
    /// Campaign base seed (per-point and per-trial seeds derive from it).
    pub seed: u64,
    /// Worker count for the threaded configurations (`0` = auto).
    pub jobs: usize,
    /// Lane width for the batched configurations (`0` = auto; rounded
    /// to a supported width by [`mtj::lanes::resolve_lanes`]).
    pub lanes: usize,
    /// WER grid points (pulse widths at the nominal write current).
    pub points: usize,
    /// Timing repeats per configuration; the best run is reported.
    pub repeats: usize,
}

impl Default for SimdMcOptions {
    fn default() -> Self {
        Self {
            trials: 4000,
            seed: 2018,
            jobs: 0,
            lanes: 0,
            points: 6,
            repeats: 3,
        }
    }
}

impl SimdMcOptions {
    /// The CI / report configuration: finishes in seconds while keeping
    /// per-configuration wall times well above timer resolution.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            trials: 2000,
            points: 4,
            repeats: 2,
            ..Self::default()
        }
    }
}

/// Wall-clock and failure counts of one engine configuration.
#[derive(Debug, Clone)]
pub struct ConfigStats {
    /// Best wall-clock over the timing repeats, seconds.
    pub wall_s: f64,
    /// Per-point failure counts (the bit-identity payload).
    pub failures: Vec<u64>,
    /// Workers the sweep pool actually used.
    pub workers: usize,
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct SimdMcReport {
    /// Grid points timed.
    pub points: usize,
    /// Trials per point.
    pub trials: usize,
    /// Resolved lane width of the batched configurations.
    pub lanes: usize,
    /// Scalar kernel, one worker.
    pub scalar_serial: ConfigStats,
    /// Scalar kernel over the sweep pool — thread parallelism alone.
    pub threads: ConfigStats,
    /// Lane kernel, one worker.
    pub lanes_serial: ConfigStats,
    /// Lane kernel over the sweep pool.
    pub combined: ConfigStats,
    /// All four configurations returned identical failure counts.
    pub bit_identical: bool,
}

impl SimdMcReport {
    /// Combined wall over threads-alone wall — the headline the
    /// committed baseline holds at ≥ 4×.
    #[must_use]
    pub fn speedup_vs_threads(&self) -> f64 {
        self.threads.wall_s / self.combined.wall_s.max(1e-12)
    }

    /// Lane kernel speedup with parallelism factored out.
    #[must_use]
    pub fn lane_speedup_serial(&self) -> f64 {
        self.scalar_serial.wall_s / self.lanes_serial.wall_s.max(1e-12)
    }

    /// Trials per second in the combined configuration.
    #[must_use]
    pub fn combined_throughput(&self) -> f64 {
        (self.points * self.trials) as f64 / self.combined.wall_s.max(1e-12)
    }

    /// Markdown block for `REPORT.md`.
    #[must_use]
    pub fn markdown(&self) -> String {
        let row = |name: &str, c: &ConfigStats| {
            format!(
                "| {name} | {:.2} | {} | {:.0} |\n",
                c.wall_s * 1e3,
                c.workers,
                (self.points * self.trials) as f64 / c.wall_s.max(1e-12),
            )
        };
        let mut md = String::new();
        md.push_str(&format!(
            "{} points x {} trials, lane width {}\n\n",
            self.points, self.trials, self.lanes
        ));
        md.push_str("| configuration | wall (ms) | workers | trials/s |\n|---|--:|--:|--:|\n");
        md.push_str(&row("scalar serial", &self.scalar_serial));
        md.push_str(&row("threads only", &self.threads));
        md.push_str(&row("lanes serial", &self.lanes_serial));
        md.push_str(&row("lanes x threads", &self.combined));
        md.push_str(&format!(
            "\n* speedup over threads alone: {:.2}x (target >= 4x)\n\
             * lane speedup, parallelism factored out: {:.2}x\n\
             * failure counts identical across all configurations: {}\n",
            self.speedup_vs_threads(),
            self.lane_speedup_serial(),
            if self.bit_identical { "yes" } else { "NO" },
        ));
        md
    }

    /// The `simd_mc` section for `BENCH_report.json`.
    #[must_use]
    pub fn section(&self) -> Section {
        Section::new("simd_mc")
            .metric("points", self.points as u64)
            .metric("trials", self.trials as u64)
            .metric("lanes", self.lanes as u64)
            .metric("workers", self.combined.workers as u64)
            .metric("scalar_serial_s", self.scalar_serial.wall_s)
            .metric("threads_s", self.threads.wall_s)
            .metric("lanes_serial_s", self.lanes_serial.wall_s)
            .metric("combined_s", self.combined.wall_s)
            .metric("speedup_vs_threads", self.speedup_vs_threads())
            .metric("lane_speedup_serial", self.lane_speedup_serial())
            .metric("combined_trials_per_s", self.combined_throughput())
            .metric("bit_identical", u64::from(self.bit_identical))
    }
}

/// The benchmark grid: pulse widths from deep-failure to deep-success
/// regimes at the nominal write current, so trials retire at varied
/// step counts (the lane refill path earns its keep).
#[must_use]
pub fn grid(params: &MtjParams, points: usize) -> Vec<(Current, Time)> {
    let model = SwitchingModel::new(params);
    let drive = params.nominal_write_current();
    let tau = model.mean_switching_time(drive);
    (1..=points)
        .map(|k| (drive, tau * (0.6 * k as f64)))
        .collect()
}

/// Times one engine configuration, returning its best wall-clock and
/// the failure counts it produced.
fn time_config(
    params: &MtjParams,
    points: &[(Current, Time)],
    opts: &SimdMcOptions,
    jobs: usize,
    lanes: usize,
) -> ConfigStats {
    let grid_opts = wer::WerGridOptions {
        trials: opts.trials,
        seed: opts.seed,
        jobs,
        lanes,
    };
    let mut best = f64::INFINITY;
    let mut failures = Vec::new();
    let mut workers = 1;
    for _ in 0..opts.repeats.max(1) {
        let t0 = Instant::now();
        let (estimates, summary) = wer::monte_carlo_wer_grid_with(params, points, &grid_opts);
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
        failures = estimates.iter().map(|e| e.failures as u64).collect();
        workers = summary.workers;
    }
    ConfigStats {
        wall_s: best,
        failures,
        workers,
    }
}

/// Runs the four-configuration benchmark and the bit-identity check.
#[must_use]
pub fn run(opts: &SimdMcOptions) -> SimdMcReport {
    let params = MtjParams::date2018();
    let points = grid(&params, opts.points);
    let lanes = mtj::lanes::resolve_lanes(opts.lanes);

    let scalar_serial = time_config(&params, &points, opts, 1, 1);
    let threads = time_config(&params, &points, opts, opts.jobs, 1);
    let lanes_serial = time_config(&params, &points, opts, 1, lanes);
    let combined = time_config(&params, &points, opts, opts.jobs, lanes);

    let bit_identical = [&threads, &lanes_serial, &combined]
        .iter()
        .all(|c| c.failures == scalar_serial.failures);
    SimdMcReport {
        points: points.len(),
        trials: opts.trials,
        lanes,
        scalar_serial,
        threads,
        lanes_serial,
        combined,
        bit_identical,
    }
}

/// Differential check behind `simd_mc --check`: diffs the WER grid
/// failure counts for every supported lane width × a worker-count pair
/// against the scalar serial reference, returning the mismatches.
#[must_use]
pub fn check(trials: usize, seed: u64, points: usize) -> Vec<String> {
    let params = MtjParams::date2018();
    let grid = grid(&params, points);
    let reference = {
        let o = wer::WerGridOptions {
            trials,
            seed,
            jobs: 1,
            lanes: 1,
        };
        let (est, _) = wer::monte_carlo_wer_grid_with(&params, &grid, &o);
        est
    };
    let mut mismatches = Vec::new();
    for &lanes in &mtj::lanes::SUPPORTED_LANE_COUNTS {
        for jobs in [1usize, 4] {
            let o = wer::WerGridOptions {
                trials,
                seed,
                jobs,
                lanes,
            };
            let (est, _) = wer::monte_carlo_wer_grid_with(&params, &grid, &o);
            if est != reference {
                mismatches.push(format!(
                    "lanes={lanes} jobs={jobs}: failure counts diverge from scalar serial"
                ));
            }
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_run_is_bit_identical_and_well_formed() {
        let opts = SimdMcOptions {
            trials: 60,
            seed: 11,
            jobs: 2,
            lanes: 8,
            points: 2,
            repeats: 1,
        };
        let report = run(&opts);
        assert!(report.bit_identical);
        assert_eq!(report.points, 2);
        assert_eq!(report.lanes, 8);
        assert_eq!(report.scalar_serial.failures.len(), 2);
        assert!(report.combined.wall_s > 0.0);
        let md = report.markdown();
        assert!(md.contains("lanes x threads"));
    }

    #[test]
    fn the_differential_check_passes_on_the_real_kernels() {
        assert!(check(50, 3, 2).is_empty());
    }
}
