//! Loopback benchmark of the characterization service.
//!
//! Stands up a real [`serve::MetricsServer`] with a
//! [`serve::CharacterizeService`] on `127.0.0.1:0` and drives it with
//! raw-socket HTTP clients through three phases:
//!
//! - **cold** — every request is a distinct fingerprint, so each one
//!   runs a simulation (misses, batched per circuit by the queue);
//! - **warm** — the same request set again, answered entirely from the
//!   content-addressed cache;
//! - **coalesced** — many concurrent clients post one fresh
//!   fingerprint, exercising single-flight sharing.
//!
//! Each phase records throughput and latency quantiles; the
//! [`ChserveReport::section`] output lands in `BENCH_report.json` as
//! the `chserve` section. The contract the committed baseline asserts:
//! warm throughput is at least an order of magnitude above cold,
//! because a hit costs a map probe while a miss costs a transient
//! simulation.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use telemetry::Section;

/// Knobs for one [`run`].
#[derive(Debug, Clone)]
pub struct ChserveOptions {
    /// Distinct circuits (override points) in the cold request set.
    pub circuits: usize,
    /// Analysis kinds requested per circuit (1–4); kinds past the first
    /// share the circuit's one simulation through the worker pools.
    pub analyses_per_circuit: usize,
    /// Concurrent client threads driving each phase.
    pub clients: usize,
    /// How many times the warm phase replays the cold set.
    pub warm_rounds: usize,
    /// Concurrent clients posting the one fresh key in the coalesce
    /// phase.
    pub coalesce_fanout: usize,
    /// Service worker threads.
    pub workers: usize,
}

impl Default for ChserveOptions {
    fn default() -> Self {
        Self {
            circuits: 12,
            analyses_per_circuit: 2,
            clients: 8,
            warm_rounds: 20,
            coalesce_fanout: 8,
            workers: 2,
        }
    }
}

impl ChserveOptions {
    /// The CI / report configuration: small enough to finish in a few
    /// seconds even in debug builds.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            circuits: 6,
            analyses_per_circuit: 2,
            warm_rounds: 10,
            ..Self::default()
        }
    }
}

/// Latency/throughput summary of one phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStats {
    /// Requests completed.
    pub requests: usize,
    /// Wall-clock for the whole phase.
    pub wall_s: f64,
    /// Median request latency.
    pub p50_s: f64,
    /// 99th-percentile request latency (the max for small sets).
    pub p99_s: f64,
}

impl PhaseStats {
    /// Requests per second over the phase wall-clock.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        self.requests as f64 / self.wall_s.max(1e-9)
    }

    fn from_latencies(mut latencies: Vec<f64>, wall_s: f64) -> Self {
        latencies.sort_by(f64::total_cmp);
        let quantile = |q: f64| -> f64 {
            if latencies.is_empty() {
                return 0.0;
            }
            let index = ((latencies.len() - 1) as f64 * q).round() as usize;
            latencies[index]
        };
        Self {
            requests: latencies.len(),
            wall_s,
            p50_s: quantile(0.5),
            p99_s: quantile(0.99),
        }
    }
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct ChserveReport {
    /// Distinct-fingerprint phase (every request simulates).
    pub cold: PhaseStats,
    /// Replay phase (every request is a cache hit).
    pub warm: PhaseStats,
    /// Single-flight phase (one fresh key, many concurrent clients).
    pub coalesced: PhaseStats,
    /// `serve.cache.hits` delta across the run.
    pub hits: u64,
    /// `serve.cache.misses` delta across the run (underlying
    /// simulations scheduled).
    pub misses: u64,
    /// `serve.coalesced` delta across the run.
    pub coalesced_requests: u64,
}

impl ChserveReport {
    /// Warm-over-cold throughput ratio — the cache's headline win.
    #[must_use]
    pub fn warm_over_cold(&self) -> f64 {
        self.warm.throughput_rps() / self.cold.throughput_rps().max(1e-9)
    }

    /// Renders the `chserve` run-report section.
    #[must_use]
    pub fn section(&self) -> Section {
        let mut section = Section::new("chserve");
        for (name, phase) in [
            ("cold", &self.cold),
            ("warm", &self.warm),
            ("coalesced", &self.coalesced),
        ] {
            section.push(&format!("{name}.requests"), phase.requests as u64);
            section.push(&format!("{name}.wall_s"), phase.wall_s);
            section.push(&format!("{name}.throughput_rps"), phase.throughput_rps());
            section.push(&format!("{name}.p50_ms"), phase.p50_s * 1e3);
            section.push(&format!("{name}.p99_ms"), phase.p99_s * 1e3);
        }
        section.push("warm_over_cold", self.warm_over_cold());
        section.push("cache.hits", self.hits);
        section.push("cache.misses", self.misses);
        section.push("cache.coalesced", self.coalesced_requests);
        section
    }

    /// Human-readable summary lines.
    #[must_use]
    pub fn markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut md = String::new();
        let _ = writeln!(md, "| phase | requests | rps | p50 (ms) | p99 (ms) |");
        let _ = writeln!(md, "|---|--:|--:|--:|--:|");
        for (name, phase) in [
            ("cold (all miss)", &self.cold),
            ("warm (all hit)", &self.warm),
            ("coalesced", &self.coalesced),
        ] {
            let _ = writeln!(
                md,
                "| {name} | {} | {:.0} | {:.2} | {:.2} |",
                phase.requests,
                phase.throughput_rps(),
                phase.p50_s * 1e3,
                phase.p99_s * 1e3,
            );
        }
        let _ = writeln!(
            md,
            "\n* warm / cold throughput: {:.1}×; hits {}, misses {}, coalesced {}",
            self.warm_over_cold(),
            self.hits,
            self.misses,
            self.coalesced_requests,
        );
        md
    }
}

/// One raw-socket POST to `/v1/characterize`; returns the status code.
fn post(addr: SocketAddr, body: &str) -> Result<u16, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
    let _ = stream.set_nodelay(true);
    let request = format!(
        "POST /v1/characterize HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response: {response:?}"))?;
    if status != 200 {
        return Err(format!("status {status}: {response:?}"));
    }
    Ok(status)
}

/// Drives `bodies` through `clients` threads (round-robin split), each
/// posting its share sequentially. Returns per-request latencies and
/// the phase wall-clock.
fn drive(addr: SocketAddr, bodies: &[String], clients: usize) -> Result<PhaseStats, String> {
    let clients = clients.clamp(1, bodies.len().max(1));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|k| {
            let share: Vec<String> = bodies.iter().skip(k).step_by(clients).cloned().collect();
            std::thread::spawn(move || -> Result<Vec<f64>, String> {
                let mut latencies = Vec::with_capacity(share.len());
                for body in &share {
                    let t0 = Instant::now();
                    post(addr, body)?;
                    latencies.push(t0.elapsed().as_secs_f64());
                }
                Ok(latencies)
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(bodies.len());
    for handle in handles {
        latencies.extend(handle.join().map_err(|_| "client thread panicked")??);
    }
    Ok(PhaseStats::from_latencies(
        latencies,
        started.elapsed().as_secs_f64(),
    ))
}

/// Value of counter `name` in a telemetry snapshot (0 when absent).
fn counter(snapshot: &telemetry::Snapshot, name: &str) -> u64 {
    snapshot
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

/// Runs the benchmark: builds the service, runs the three phases,
/// tears the server down, and returns the measurements.
///
/// # Errors
///
/// Propagates bind and client I/O failures as strings.
pub fn run(options: &ChserveOptions) -> Result<ChserveReport, String> {
    telemetry::ensure_collecting();
    let service_options = serve::ServiceOptions {
        workers: options.workers,
        queue_capacity: 4096,
        ..serve::ServiceOptions::default()
    };
    let service = Arc::new(serve::CharacterizeService::new(&service_options));
    let mut server = serve::MetricsServer::bind_with("127.0.0.1:0", Some(service))
        .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();

    // The cold set: `circuits` override points, each requested under
    // `analyses_per_circuit` analysis kinds. A slightly finer time step
    // keeps the cold phase honestly simulation-bound even in release
    // builds.
    const ANALYSES: [&str; 4] = ["full", "read", "write", "leakage"];
    let kinds = options.analyses_per_circuit.clamp(1, ANALYSES.len());
    let mut bodies = Vec::with_capacity(options.circuits * kinds);
    for circuit in 0..options.circuits {
        for analysis in &ANALYSES[..kinds] {
            bodies.push(format!(
                r#"{{"variant":"standard","analysis":"{analysis}","overrides":{{"sizing.output_load_ff":{:.1},"time_step_ps":1.0}}}}"#,
                5.0 + circuit as f64,
            ));
        }
    }

    let before = telemetry::snapshot();
    let cold = drive(addr, &bodies, options.clients)?;

    let warm_bodies: Vec<String> = std::iter::repeat_with(|| bodies.clone())
        .take(options.warm_rounds.max(1))
        .flatten()
        .collect();
    let warm = drive(addr, &warm_bodies, options.clients)?;

    // One fresh fingerprint, many simultaneous clients: the first
    // schedules, the rest share its flight (or hit right after it).
    let fresh = r#"{"variant":"nv_word_2","overrides":{"time_step_ps":1.0}}"#.to_owned();
    let coalesce_bodies = vec![fresh; options.coalesce_fanout.max(2)];
    let coalesced = drive(addr, &coalesce_bodies, options.coalesce_fanout.max(2))?;
    let after = telemetry::snapshot();

    server.shutdown();
    Ok(ChserveReport {
        cold,
        warm,
        coalesced,
        hits: counter(&after, "serve.cache.hits") - counter(&before, "serve.cache.hits"),
        misses: counter(&after, "serve.cache.misses") - counter(&before, "serve.cache.misses"),
        coalesced_requests: counter(&after, "serve.coalesced")
            - counter(&before, "serve.coalesced"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_stats_quantiles_and_throughput() {
        let stats = PhaseStats::from_latencies(vec![0.004, 0.001, 0.002, 0.003, 0.100], 0.5);
        assert_eq!(stats.requests, 5);
        assert!((stats.p50_s - 0.003).abs() < 1e-12);
        assert!((stats.p99_s - 0.100).abs() < 1e-12);
        assert!((stats.throughput_rps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn report_section_carries_the_contract_fields() {
        let phase = PhaseStats {
            requests: 10,
            wall_s: 1.0,
            p50_s: 0.001,
            p99_s: 0.002,
        };
        let report = ChserveReport {
            cold: PhaseStats {
                wall_s: 10.0,
                ..phase
            },
            warm: phase,
            coalesced: phase,
            hits: 7,
            misses: 3,
            coalesced_requests: 5,
        };
        assert!((report.warm_over_cold() - 10.0).abs() < 1e-9);
        let md = report.markdown();
        assert!(md.contains("warm / cold throughput: 10.0"), "{md}");
    }
}
