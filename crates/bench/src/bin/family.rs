//! Cell-family scaling bench: characterizes the generator's n-bit NV
//! word across word widths and reports area / read-energy scaling
//! against an n × 1-bit baseline.
//!
//! Usage: `family [--quick] [--json <path>] [--serve <addr>]`. Default
//! sweeps n ∈ {1, 2, 4, 8}; `--quick` stops at n = 4 (the CI smoke
//! configuration). With `--json`, emits a machine-readable run report
//! whose `family` section carries the per-width metrics, and whose
//! telemetry counters expose the shared-`StampPlan` accounting
//! (`spice.subckt.plan_builds` / `plan_reuses` / `instances`) from the
//! subcircuit instantiations this bench performs per width. `--serve`
//! exposes the live registry at `http://<addr>/metrics` while the
//! characterizations run (companion flags: `--serve-addr-file` writes
//! the bound address, `--serve-linger <secs>` keeps serving after the
//! run for a final scrape).

use std::fmt::Write as _;
use std::time::Instant;

use cells::{LatchConfig, NvWord, WordParams};
use layout::DesignRules;
use nvff_bench::push_solver_stats;
use telemetry::Section;

/// Per-width measurement row.
struct FamilyPoint {
    bits: usize,
    metrics: cells::CellMetrics,
    area_um2: f64,
    total_transistors: usize,
}

/// Flattens the word's subcircuit twice into one scratch circuit, so
/// every width contributes `plan_builds = 1`, `plan_reuses ≥ 1` to the
/// telemetry counters and the instance transistor budget is checked.
fn exercise_subckt(word: &NvWord) -> Result<usize, Box<dyn std::error::Error>> {
    let sub = word.subckt()?;
    let mut ckt = spice::Circuit::new();
    for inst in ["U0", "U1"] {
        let ports: Vec<spice::NodeId> = sub
            .ports()
            .iter()
            .map(|p| ckt.node(&format!("{inst}_{p}")))
            .collect();
        ckt.instantiate(inst, &sub, &ports)?;
    }
    assert_eq!(
        ckt.transistor_count(),
        2 * word.total_transistors(),
        "flattened instances must carry the word's transistor budget"
    );
    Ok(ckt.transistor_count())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    telemetry::init_from_env();
    let json_path = nvff_bench::json_path_from_args();
    if json_path.is_some() {
        telemetry::ensure_collecting();
    }
    let metrics_server = nvff_bench::serve_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    let widths: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    let mut run = telemetry::RunReport::new("family");
    let root_span = telemetry::span("family");
    let start = Instant::now();

    let config = LatchConfig::default();
    let rules = DesignRules::n40();
    let mut points = Vec::new();
    for &bits in widths {
        eprintln!("characterizing {bits}-bit word...");
        let _span = telemetry::span(match bits {
            1 => "family.n1",
            2 => "family.n2",
            4 => "family.n4",
            _ => "family.n8",
        });
        let word = NvWord::new(WordParams::new(bits), config.clone());
        let metrics = word.characterize()?;
        exercise_subckt(&word)?;
        points.push(FamilyPoint {
            bits,
            area_um2: layout::cells::word_area(bits, &rules).square_micro_meters(),
            total_transistors: word.total_transistors(),
            metrics,
        });
    }

    // n × 1-bit baseline: the cost of keeping every flip-flop on its
    // own 1-bit NV component (read delay stays a single evaluation, so
    // it is compared per word, not per bit).
    let base = &points[0];
    let mut md = String::new();
    let _ = writeln!(md, "# NV word family scaling\n");
    let _ = writeln!(
        md,
        "| n | read energy (fJ) | read delay (ps) | write energy (fJ) | \
         leakage (pW) | area (um^2) | transistors | area / (n x 1-bit) | \
         read energy / (n x 1-bit) |"
    );
    let _ = writeln!(md, "|--:|--:|--:|--:|--:|--:|--:|--:|--:|");

    let mut section = Section::new("family");
    for p in &points {
        let n = p.bits as f64;
        let area_ratio = p.area_um2 / (n * base.area_um2);
        let energy_ratio = p.metrics.read_energy.joules() / (n * base.metrics.read_energy.joules());
        let _ = writeln!(
            md,
            "| {} | {:.2} | {:.1} | {:.2} | {:.1} | {:.2} | {} | {:.3} | {:.3} |",
            p.bits,
            p.metrics.read_energy.joules() * 1e15,
            p.metrics.read_delay.seconds() * 1e12,
            p.metrics.write_energy.joules() * 1e15,
            p.metrics.leakage.watts() * 1e12,
            p.area_um2,
            p.total_transistors,
            area_ratio,
            energy_ratio,
        );
        let prefix = format!("n{}.", p.bits);
        section.push(
            &format!("{prefix}read_energy_fj"),
            p.metrics.read_energy.joules() * 1e15,
        );
        section.push(
            &format!("{prefix}read_delay_ps"),
            p.metrics.read_delay.seconds() * 1e12,
        );
        section.push(
            &format!("{prefix}write_energy_fj"),
            p.metrics.write_energy.joules() * 1e15,
        );
        section.push(
            &format!("{prefix}write_latency_ns"),
            p.metrics.write_latency.seconds() * 1e9,
        );
        section.push(
            &format!("{prefix}leakage_pw"),
            p.metrics.leakage.watts() * 1e12,
        );
        section.push(&format!("{prefix}area_um2"), p.area_um2);
        section.push(
            &format!("{prefix}read_transistors"),
            p.metrics.read_transistors as f64,
        );
        section.push(
            &format!("{prefix}total_transistors"),
            p.total_transistors as f64,
        );
        section.push(&format!("{prefix}area_ratio_vs_1bit"), area_ratio);
        section.push(&format!("{prefix}read_energy_ratio_vs_1bit"), energy_ratio);
        push_solver_stats(&mut section, &prefix, p.metrics.solver);
    }
    section.push("widths", points.len() as f64);
    section.push("wall_s", start.elapsed().as_secs_f64());
    run.add(section);

    println!("{md}");

    drop(root_span);
    let snap = telemetry::finish();
    if let Some(path) = json_path {
        run.write(&path, &snap)?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(guard) = metrics_server {
        guard.finish();
    }
    Ok(())
}
