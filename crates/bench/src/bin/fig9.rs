//! Regenerates **Fig. 9** — the s344 floorplan with mergeable flip-flop
//! pairs encircled, written as an SVG into `target/figures/`, plus the
//! merge statistics for every benchmark at the default threshold.

use std::fmt::Write as _;

use merge::{MergeOptions, Strategy};
use netlist::{benchmarks, CellLibrary};
use place::placer::{self, PlacerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir)?;

    // ---- The floorplan picture (s344, as in the paper) -------------
    let spec = benchmarks::by_name("s344").expect("s344 exists");
    let netlist = benchmarks::generate(spec);
    let lib = CellLibrary::n40();
    let placed = placer::place(&netlist, &lib, &PlacerOptions::default());
    let options = MergeOptions::default();
    let plan = merge::plan(&placed, &options);

    println!("FIG 9: s344 FLOORPLAN");
    println!(
        "die {:.2} × {:.2} µm, {} rows, {} cells, {} flip-flops",
        placed.floorplan().die_width().micro_meters(),
        placed.floorplan().die_height().micro_meters(),
        placed.floorplan().rows(),
        placed.cells().len(),
        plan.total_flip_flops(),
    );
    println!(
        "mergeable pairs within {}: {} (paper found {})",
        options.threshold,
        plan.merged_pairs(),
        spec.paper_merged_pairs
    );

    let svg = render_floorplan(&placed, &plan, &lib);
    let path = out_dir.join("fig9_s344_floorplan.svg");
    std::fs::write(&path, svg)?;
    println!("svg: {}\n", path.display());

    // ---- Merge statistics across all benchmarks --------------------
    println!(
        "merge statistics at threshold {} (greedy-closest):",
        options.threshold
    );
    for spec in benchmarks::Benchmark::ALL {
        let n = benchmarks::generate_scaled(spec, 40_000);
        let placed = placer::place(&n, &lib, &PlacerOptions::default());
        let plan = merge::plan(
            &placed,
            &MergeOptions {
                threshold: options.threshold,
                strategy: Strategy::GreedyClosest,
            },
        );
        println!(
            "  {:<8} ffs {:>5}  pairs {:>5}  coverage {:>5.1} %  (paper pairs {:>5})",
            spec.name,
            plan.total_flip_flops(),
            plan.merged_pairs(),
            plan.merge_fraction() * 100.0,
            spec.paper_merged_pairs,
        );
    }
    Ok(())
}

/// Renders the placed design: combinational cells grey, flip-flops
/// blue, merged pairs encircled in red (the paper's presentation).
fn render_floorplan(
    placed: &place::PlacedDesign,
    plan: &merge::MergePlan,
    lib: &CellLibrary,
) -> String {
    let scale = 14.0; // px per µm
    let w = placed.floorplan().die_width().micro_meters() * scale;
    let h = placed.floorplan().die_height().micro_meters() * scale;
    let row_h = placed.floorplan().row_height().micro_meters() * scale;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
         viewBox=\"-10 -10 {:.0} {:.0}\">",
        w + 20.0,
        h + 20.0,
        w + 20.0,
        h + 20.0
    );
    let _ = writeln!(
        out,
        "  <rect x=\"0\" y=\"0\" width=\"{w:.1}\" height=\"{h:.1}\" fill=\"#fafafa\" \
         stroke=\"#333\"/>"
    );
    let flip = |y_um: f64| h - (y_um * scale) - row_h;
    for cell in placed.cells() {
        let cw = lib.footprint(cell.kind).width.micro_meters() * scale;
        let (fill, stroke) = if cell.kind.is_flip_flop() {
            ("#4d7fd1", "#1d3f7a")
        } else {
            ("#d9d9d9", "#bbbbbb")
        };
        let _ = writeln!(
            out,
            "  <rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
             fill=\"{fill}\" stroke=\"{stroke}\" stroke-width=\"0.5\"/>",
            cell.x.micro_meters() * scale,
            flip(cell.y.micro_meters()),
            cw.max(1.0),
            row_h,
        );
    }
    // Encircle merged pairs.
    let ff_w = lib.footprint(netlist::CellKind::Dff).width.micro_meters() * scale;
    for pair in plan.pairs() {
        let a = &plan.points()[pair.a];
        let b = &plan.points()[pair.b];
        let cx = (a.x + b.x) / 2.0 * scale + ff_w / 2.0;
        let cy = (flip(a.y) + flip(b.y)) / 2.0 + row_h / 2.0;
        let r = (pair.distance * scale / 2.0 + ff_w / 2.0 + 4.0).max(row_h * 0.7);
        let _ = writeln!(
            out,
            "  <ellipse cx=\"{cx:.1}\" cy=\"{cy:.1}\" rx=\"{r:.1}\" ry=\"{:.1}\" \
             fill=\"none\" stroke=\"#d43a3a\" stroke-width=\"2\"/>",
            (row_h * 0.8).max(r * 0.5),
        );
    }
    out.push_str("</svg>\n");
    out
}
