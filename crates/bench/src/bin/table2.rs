//! Regenerates **Table II** — the cell-level comparison of two standard
//! 1-bit latches against the proposed 2-bit latch, as worst/typical/best
//! envelopes over the 3 × 3 CMOS ⊗ MTJ corner grid.
//!
//! Usage: `table2 [--quick] [--jobs <N>] [--json <path>]
//! [--serve <addr>]` (`--quick` evaluates the three diagonal corners
//! only; `--jobs` sets the corner worker count, `0`/absent = one per
//! hardware thread, `1` = serial; `--json` additionally writes a
//! machine-readable run report with wall-clock, solver work, parallel
//! accounting and the telemetry span tree; `--serve` exposes the live
//! registry at `http://<addr>/metrics` for the duration of the run —
//! see `nvff_bench::serve_from_args` for the companion
//! `--serve-addr-file` / `--serve-linger` flags). The printed table is
//! byte-identical for every `--jobs` value.

use std::time::Instant;

use cells::{CellMetrics, Corner, LatchComparison, LatchConfig};
use layout::DesignRules;
use nvff::paper;
use nvff_bench::{compare_line, push_parallel_summary, push_solver_stats};
use telemetry::Section;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    telemetry::init_from_env();
    let json_path = nvff_bench::json_path_from_args();
    if json_path.is_some() {
        telemetry::ensure_collecting();
    }
    let metrics_server = nvff_bench::serve_from_args();
    let root_span = telemetry::span("table2");
    let wall_start = Instant::now();

    let quick = std::env::args().any(|a| a == "--quick");
    let corners: Vec<Corner> = if quick {
        vec![Corner::slow(), Corner::typical(), Corner::fast()]
    } else {
        Corner::all()
    };
    let jobs = nvff_bench::jobs_from_args();
    eprintln!(
        "characterizing both designs over {} corners on {} workers (this runs {} transient analyses)...",
        corners.len(),
        sweep::SweepOptions::with_jobs(jobs).effective_workers(corners.len()),
        corners.len() * 16,
    );
    let comparison = LatchComparison::evaluate_with_jobs(&LatchConfig::default(), &corners, jobs)?;
    let published = paper::table2();

    println!("TABLE II: TWO STANDARD 1-BIT LATCHES vs PROPOSED 2-BIT LATCH");
    println!("(worst / typical / best envelopes over the corner grid)\n");

    let print_metric = |label: &str,
                        unit_scale: f64,
                        std_pick: &dyn Fn(&CellMetrics) -> f64,
                        paper_std: [f64; 3],
                        paper_prop: [f64; 3]| {
        let s = comparison.standard_envelope(std_pick);
        let p = comparison.proposed_envelope(std_pick);
        println!("{label}");
        println!(
            "  standard  measured {:>9.3} / {:>9.3} / {:>9.3}   paper {:>8.3} / {:>8.3} / {:>8.3}",
            s.worst * unit_scale,
            s.typical * unit_scale,
            s.best * unit_scale,
            paper_std[0],
            paper_std[1],
            paper_std[2]
        );
        println!(
            "  proposed  measured {:>9.3} / {:>9.3} / {:>9.3}   paper {:>8.3} / {:>8.3} / {:>8.3}",
            p.worst * unit_scale,
            p.typical * unit_scale,
            p.best * unit_scale,
            paper_prop[0],
            paper_prop[1],
            paper_prop[2]
        );
    };

    print_metric(
        "Read energy [fJ]",
        1e15,
        &|m| m.read_energy.joules(),
        [
            published.standard_read_energy_fj.worst,
            published.standard_read_energy_fj.typical,
            published.standard_read_energy_fj.best,
        ],
        [
            published.proposed_read_energy_fj.worst,
            published.proposed_read_energy_fj.typical,
            published.proposed_read_energy_fj.best,
        ],
    );
    print_metric(
        "Read delay [ps]",
        1e12,
        &|m| m.read_delay.seconds(),
        [
            published.standard_read_delay_ps.worst,
            published.standard_read_delay_ps.typical,
            published.standard_read_delay_ps.best,
        ],
        [
            published.proposed_read_delay_ps.worst,
            published.proposed_read_delay_ps.typical,
            published.proposed_read_delay_ps.best,
        ],
    );
    print_metric(
        "Leakage [pW]",
        1e12,
        &|m| m.leakage.watts(),
        [
            published.standard_leakage_pw.worst,
            published.standard_leakage_pw.typical,
            published.standard_leakage_pw.best,
        ],
        [
            published.proposed_leakage_pw.worst,
            published.proposed_leakage_pw.typical,
            published.proposed_leakage_pw.best,
        ],
    );

    // Transistors and area are corner-independent.
    let rules = DesignRules::n40();
    let std_area = layout::cells::standard_pair_layout_area(&rules);
    let prop_area = layout::cells::proposed_2bit_layout(&rules).area();
    println!("\n# of transistors (read path)");
    println!(
        "{}",
        compare_line(
            "  standard pair",
            22.0,
            published.standard_transistors as f64
        )
    );
    println!(
        "{}",
        compare_line("  proposed", 16.0, published.proposed_transistors as f64)
    );
    println!("\nArea [µm²]");
    println!(
        "{}",
        compare_line(
            "  standard pair",
            std_area.square_micro_meters(),
            published.standard_area_um2
        )
    );
    println!(
        "{}",
        compare_line(
            "  proposed",
            prop_area.square_micro_meters(),
            published.proposed_area_um2
        )
    );

    // Derived headline numbers.
    let energy_saving = comparison.read_energy_improvement();
    println!("\nHeadline (typical corner):");
    println!(
        "{}",
        compare_line("  read-energy improvement [%]", energy_saving * 100.0, 18.8)
    );
    let area_saving = (1.0 - prop_area / std_area) * 100.0;
    println!(
        "{}",
        compare_line("  cell-area saving [%]", area_saving, 34.4)
    );

    // Solver work: total characterization cost per design, summed over
    // the corner grid (each corner reuses one SimulationSession per
    // latch, so these counters also measure the workspace-reuse path).
    let sum_stats = |rows: &[(Corner, CellMetrics)]| {
        let mut total = spice::SolverStats::default();
        for (_, m) in rows {
            total.accumulate(m.solver);
        }
        total
    };
    let std_stats = sum_stats(&comparison.standard);
    let prop_stats = sum_stats(&comparison.proposed);
    println!("\nSolver work (all corners, per design):");
    for (label, st) in [("standard pair", std_stats), ("proposed", prop_stats)] {
        println!(
            "  {label:<14} {} Newton iterations, {} LU factorizations, \
             {} steps accepted, {} rejected ({} halvings)",
            st.newton_iterations,
            st.lu_factorizations,
            st.accepted_steps,
            st.rejected_steps,
            st.step_halvings
        );
    }

    // Write path (identical between designs by construction).
    let std_cfg = LatchConfig::default();
    let w = cells::StandardLatch::new(std_cfg).simulate_store([true], [false])?;
    println!("\nWrite (store) — shared methodology, worst case published:");
    println!(
        "{}",
        compare_line(
            "  write energy to completion [fJ]",
            w.energy.femto_joules(),
            paper::write_energy().femto_joules()
        )
    );
    println!(
        "{}",
        compare_line(
            "  write latency [ns]",
            w.latency.nano_seconds(),
            paper::write_latency().nano_seconds()
        )
    );

    drop(root_span);
    let snap = telemetry::finish();
    if let Some(path) = json_path {
        let mut run = telemetry::RunReport::new("table2");
        let mut section = Section::new("table2")
            .metric("wall_s", wall_start.elapsed().as_secs_f64())
            .metric("corners", corners.len() as u64)
            .metric("read_energy_improvement", energy_saving);
        push_solver_stats(&mut section, "standard.", std_stats);
        push_solver_stats(&mut section, "proposed.", prop_stats);
        push_solver_stats(&mut section, "write.", w.solver);
        push_parallel_summary(&mut section, &comparison.parallel);
        run.add(section);
        run.write(&path, &snap)?;
        println!("run report written to {}", path.display());
    }
    if let Some(guard) = metrics_server {
        guard.finish();
    }
    Ok(())
}
