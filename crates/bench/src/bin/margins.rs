//! Robustness report — the analyses behind the paper's "reliable
//! back-up and restore" claims, quantified:
//!
//! * read-margin vs. TMR sweep and the minimum resolvable TMR;
//! * read-disturb check (no MTJ may flip during a restore);
//! * write-error-rate vs. pulse width, with the pulse for a 10⁻⁹ WER,
//!   cross-checked by a parallel Monte-Carlo campaign;
//! * retention and latch function across temperature.
//!
//! Usage: `margins [--jobs <N>] [--lanes <L>] [--checkpoint <path>]`.
//! `--jobs` sets the Monte-Carlo worker count (`0`/absent = auto, `1` =
//! serial); `--lanes` sets the SIMD lane count of the batched WER
//! kernel (`0`/absent = auto, `1` = the scalar reference kernel);
//! `--checkpoint` persists completed WER grid points to the given file,
//! so an interrupted campaign resumes — bit-identically — where it
//! stopped. Printed figures are identical for every mode.

use cells::{margin, LatchConfig, ProposedLatch};
use mtj::{wer, MtjParams, SwitchingModel, ThermalModel};
use units::{Current, Temperature, Time};

/// Extracts the `--checkpoint <path>` argument, if present.
fn checkpoint_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--checkpoint" {
            return args.next().map(std::path::PathBuf::from);
        }
        if let Some(path) = a.strip_prefix("--checkpoint=") {
            return Some(std::path::PathBuf::from(path));
        }
    }
    None
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = LatchConfig::default();

    // ---- Read margin vs TMR -----------------------------------------
    println!("READ MARGIN vs TMR (proposed 2-bit latch, pattern [1,0])");
    let tmrs = [1.2, 0.9, 0.6, 0.4, 0.25, 0.15, 0.08];
    for point in margin::sweep_tmr(&base, &tmrs)? {
        println!(
            "  TMR {:>5.0} %: lower {:>5.1} %  upper {:>5.1} %  resolved {}",
            point.tmr * 100.0,
            point.margins.lower * 100.0,
            point.margins.upper * 100.0,
            if point.resolved { "yes" } else { "NO" },
        );
    }
    let min_tmr = margin::minimum_resolvable_tmr(&base, 0.02)?;
    println!(
        "  minimum resolvable TMR ≈ {:.0} % — {:.1}× below Table I's 120 %\n  \
         (noise-free solver: a silicon sense amp adds offset, so real margins\n  \
         need the ±3σ corner headroom Table II budgets)\n",
        min_tmr * 100.0,
        1.2 / min_tmr
    );

    // ---- Read disturb ------------------------------------------------
    println!("READ DISTURB (restores must never flip an MTJ)");
    let latch = ProposedLatch::new(base.clone());
    let mut disturbs = 0;
    for pattern in [[false, false], [false, true], [true, false], [true, true]] {
        let (result, _) = latch.restore_traces(pattern)?;
        disturbs += result.mtj_events().len();
    }
    println!(
        "  4 restore patterns, {} MTJ reversal events — {}\n",
        disturbs,
        if disturbs == 0 {
            "disturb-free"
        } else {
            "DISTURB DETECTED"
        },
    );

    // ---- Write error rate ---------------------------------------------
    println!("WRITE ERROR RATE vs PULSE (series-path drive ≈ 63 µA)");
    let nominal = MtjParams::date2018();
    let model = SwitchingModel::new(&nominal);
    let drive = Current::from_micro_amps(63.0);
    let pulses: Vec<Time> = [2.0, 3.0, 5.0, 8.0, 12.0, 20.0]
        .iter()
        .map(|&ns| Time::from_nano_seconds(ns))
        .collect();
    for point in wer::sweep(&model, drive, &pulses) {
        println!(
            "  pulse {:>6}: single WER {:>9.2e}   pair WER {:>9.2e}",
            point.pulse.to_string(),
            point.single,
            point.pair,
        );
    }
    println!(
        "  pulse for WER 1e-9: {} (store happens once per power-down — cheap insurance)\n",
        wer::pulse_for_wer(&model, drive, 1e-9)
    );

    // ---- Monte-Carlo WER cross-check ----------------------------------
    // Empirical failure counts over the same (current, pulse) grid,
    // fanned out over a sweep pool. Counter-based per-point seeding
    // makes the counts identical for every --jobs value, and identical
    // again when resumed from a --checkpoint file.
    let jobs = nvff_bench::jobs_from_args();
    let lanes = nvff_bench::lanes_from_args();
    let trials = 2000;
    let mc_seed = 2018u64;
    let points: Vec<(Current, Time)> = pulses[..4].iter().map(|&p| (drive, p)).collect();
    println!("MONTE-CARLO WER CROSS-CHECK ({trials} stochastic writes per pulse)");
    let failures: Vec<u64> = if let Some(path) = checkpoint_path_from_args() {
        let description = format!(
            "margins-wer drive={drive} pulses={} trials={trials} seed={mc_seed}",
            points.len()
        );
        let grid = sweep::Grid::with_seed(points.clone(), mc_seed);
        let policy = sweep::CheckpointPolicy::new(&path, sweep::fingerprint(&description));
        let opts = sweep::SweepOptions {
            jobs,
            span_label: "margins.wer_point",
            ..sweep::SweepOptions::default()
        };
        let outcome = sweep::run_checkpointed(
            &grid,
            &opts,
            &policy,
            |_| (),
            |(), ctx, &(current, pulse)| {
                mtj::lanes::count_write_failures_batched(
                    &nominal, current, pulse, trials, ctx.seed, lanes,
                ) as u64
            },
            None,
        )?;
        eprintln!(
            "checkpoint {}: {} of {} points restored",
            path.display(),
            outcome.summary.resumed,
            outcome.summary.points
        );
        outcome.results
    } else {
        let opts = wer::WerGridOptions {
            trials,
            seed: mc_seed,
            jobs,
            lanes,
        };
        let (estimates, _) = wer::monte_carlo_wer_grid_with(&nominal, &points, &opts);
        estimates.iter().map(|e| e.failures as u64).collect()
    };
    for (&(_, pulse), &fails) in points.iter().zip(&failures) {
        let empirical = fails as f64 / trials as f64;
        let analytic = wer::write_error_rate(&model, drive, pulse);
        println!(
            "  pulse {:>6}: empirical {:>9.2e} ({fails:>4} failures)   analytic {:>9.2e}",
            pulse.to_string(),
            empirical,
            analytic,
        );
    }
    println!();

    // ---- Temperature ---------------------------------------------------
    println!("TEMPERATURE (Table I fixes 27 °C; first-order extension)");
    let thermal = ThermalModel::default();
    for celsius in [-40.0, 27.0, 85.0, 125.0] {
        let t = Temperature::from_celsius(celsius);
        let params = thermal.at_temperature(&nominal, t);
        let mut config = base.clone();
        config.mtj = params.clone();
        let ok = ProposedLatch::new(config)
            .simulate_restore([true, false])
            .map(|r| r.bits == [true, false])
            .unwrap_or(false);
        println!(
            "  {:>7}: TMR {:>5.0} %  Ic {:>7}  retention {:>12}  restore {}",
            t.to_string(),
            params.tmr_zero_bias() * 100.0,
            params.critical_current().to_string(),
            params.retention_time().to_string(),
            if ok { "ok" } else { "FAILS" },
        );
    }
    Ok(())
}
