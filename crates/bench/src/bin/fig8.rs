//! Regenerates **Fig. 8** — the layout of the proposed 2-bit
//! non-volatile latch (and the 1-bit baseline for comparison), written
//! as SVG files into `target/figures/`.

use layout::{cells, svg, DesignRules};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rules = DesignRules::n40();
    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir)?;

    println!("FIG 8: NV COMPONENT LAYOUTS (12-track cells, up to M2)\n");
    for (layout, paper_area) in [
        (cells::proposed_2bit_layout(&rules), 3.696),
        (cells::standard_1bit_layout(&rules), 5.635 / 2.0),
    ] {
        let violations = layout.check();
        assert!(violations.is_empty(), "DRC: {violations:?}");
        let path = out_dir.join(format!("fig8_{}.svg", layout.name().to_lowercase()));
        std::fs::write(&path, svg::render(&layout, 220.0))?;
        println!(
            "{:<10} {:>6.3} × {:>5.3} µm = {:>6.3} µm² (paper {paper_area:.3}), \
             {} MTJ pads, P/N columns {}/{} → {}",
            layout.name(),
            layout.width().micro_meters(),
            layout.height().micro_meters(),
            layout.area().square_micro_meters(),
            layout.mtj_count(),
            layout.p_plan().columns,
            layout.n_plan().columns,
            path.display(),
        );
    }

    let pair = cells::standard_pair_layout_area(&rules);
    let prop = cells::proposed_2bit_layout(&rules).area();
    println!(
        "\ntwo 1-bit components (with spacing): {:.3} µm² (paper 5.635)",
        pair.square_micro_meters()
    );
    println!(
        "cell-level area saving: {:.1} % (paper 34.4 %)",
        (1.0 - prop / pair) * 100.0
    );
    println!(
        "merge threshold (2× 1-bit width): {} (paper 3.35 µm)",
        cells::merge_threshold(&rules)
    );
    Ok(())
}
