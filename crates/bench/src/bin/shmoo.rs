//! Rare-event shmoo driver: the WER-vs-pulse-width-vs-σ(Isw)(-vs-T)
//! surface from the importance-sampled tail engine.
//!
//! Usage: `shmoo [--quick] [--jobs <N>] [--lanes <L>] [--json <path>]
//! [--check]`.
//!
//! Default mode runs the full surface (deepest point: typical-die WER
//! 1e-11, i.e. population WER ≤ 1e-9 at ≤ 1e4 samples/point) plus the
//! shallow-regime brute-force cross-check, prints the table and — with
//! `--json` — writes the run report whose `rare_event` section backs
//! the committed `BENCH_report.json` baseline. `--quick` shrinks the
//! surface to the two headline points.
//!
//! `--check` runs the differential suite instead: cross-check
//! agreement, deep-tail resolution inside the sample budget, and
//! jobs × lanes bit-identity of the tilted sampler; any failure is
//! printed and the process exits nonzero. This is the mode `ci.sh`
//! runs (with `--quick`).

use nvff_bench::shmoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    telemetry::init_from_env();
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let mut opts = if quick {
        shmoo::ShmooOptions::quick()
    } else {
        shmoo::ShmooOptions::default()
    };
    opts.jobs = nvff_bench::jobs_from_args();
    opts.lanes = nvff_bench::lanes_from_args();

    if std::env::args().skip(1).any(|a| a == "--check") {
        println!(
            "differential check: {}-point surface, cross-check + jobs x lanes bit-identity",
            opts.wer_targets.len()
                * opts.sigma_switching_currents.len()
                * opts.temperatures_c.len()
        );
        let failures = shmoo::check(&opts);
        if failures.is_empty() {
            println!("ok: IS agrees with brute force and is bit-identical across jobs/lanes");
            return Ok(());
        }
        for f in &failures {
            eprintln!("FAIL {f}");
        }
        return Err(format!("{} rare-event checks failed", failures.len()).into());
    }

    let json_path = nvff_bench::json_path_from_args();
    if json_path.is_some() {
        telemetry::ensure_collecting();
    }
    let mut run = telemetry::RunReport::new("shmoo");
    let span = telemetry::span("shmoo");
    let report = shmoo::run(&opts);
    drop(span);
    print!("{}", report.markdown());
    if !report.crosscheck.agrees {
        return Err("brute-force cross-check fell outside the IS confidence interval".into());
    }
    run.add(report.section());
    let snap = telemetry::finish();
    if let Some(path) = json_path {
        run.write(&path, &snap)?;
        println!("run report written to {}", path.display());
    }
    Ok(())
}
