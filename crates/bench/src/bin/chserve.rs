//! Characterization-service loopback benchmark.
//!
//! Usage: `chserve [--quick] [--json <path>] [--clients <N>]
//! [--workers <N>]`. Boots an in-process `nvff-serve` on
//! `127.0.0.1:0` and measures three phases over real sockets: cold
//! (every request a distinct fingerprint → a simulation), warm (the
//! same set replayed → cache hits), and coalesced (many concurrent
//! clients on one fresh key → single-flight sharing). With `--json`,
//! the `chserve` section of the run report records throughput and
//! latency quantiles per phase plus the cache-counter deltas.

use std::time::Instant;

use nvff_bench::chserve::{run, ChserveOptions};

fn usize_flag(name: &str) -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return args.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return v.parse().ok();
        }
    }
    None
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    telemetry::init_from_env();
    let json_path = nvff_bench::json_path_from_args();
    telemetry::ensure_collecting();

    let mut options = if std::env::args().any(|a| a == "--quick") {
        ChserveOptions::quick()
    } else {
        ChserveOptions::default()
    };
    if let Some(clients) = usize_flag("--clients") {
        options.clients = clients.max(1);
    }
    if let Some(workers) = usize_flag("--workers") {
        options.workers = workers.max(1);
    }

    let mut run_report = telemetry::RunReport::new("chserve");
    let root_span = telemetry::span("chserve");
    let start = Instant::now();

    eprintln!(
        "driving characterization service: {} circuits x {} analyses, {} clients, {} workers...",
        options.circuits, options.analyses_per_circuit, options.clients, options.workers
    );
    let report = run(&options)?;

    println!("# Characterization service (loopback)\n");
    println!("{}", report.markdown());

    let mut section = report.section();
    section.push("wall_s", start.elapsed().as_secs_f64());
    run_report.add(section);

    drop(root_span);
    let snap = telemetry::finish();
    if let Some(path) = json_path {
        run_report.write(&path, &snap)?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
