//! The ablation studies DESIGN.md calls out — each probes one design
//! decision of the paper.
//!
//! 1. **Merge-threshold sweep** — how the 2-bit coverage and the
//!    system-level area saving respond to the closeness limit around
//!    the paper's 3.35 µm.
//! 2. **Pairing strategy** — greedy-closest (the paper's script) versus
//!    the degree-aware matcher.
//! 3. **Control scheme** — explicit Fig. 6 signals versus the Fig. 7
//!    single-PC controller (distinct nets and measured read energy).
//! 4. **Shared write path** — why the paper does *not* merge write
//!    circuitry: driving both complementary MTJ pairs in series halves
//!    the write current below the switching threshold and the store
//!    fails outright.
//!
//! Usage: `ablations [--jobs <N>]`. The control-scheme and sizing
//! studies are independent simulation points, so they fan out over a
//! sweep pool; stdout is rendered after ordered collection and is
//! byte-identical for every `--jobs` value.

use cells::proposed::ControlScheme;
use cells::{LatchConfig, ProposedLatch};
use merge::{MergeOptions, Strategy};
use mtj::{Mtj, MtjParams, MtjState, WritePolarity};
use netlist::{benchmarks, CellLibrary};
use nvff::system::{roll_up, SystemCosts};
use place::placer::{self, PlacerOptions};
use spice::{analysis, Circuit, SourceWaveform};
use units::{Length, Time, Voltage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jobs = nvff_bench::jobs_from_args();
    threshold_sweep();
    pairing_strategies();
    control_schemes(jobs)?;
    shared_write_path()?;
    sizing_sweep(jobs)?;
    Ok(())
}

/// Ablation 1: merge coverage and area saving vs distance threshold.
fn threshold_sweep() {
    println!("ABLATION 1: MERGE-THRESHOLD SWEEP (s13207, paper limit = 3.35 µm)");
    let spec = benchmarks::by_name("s13207").expect("benchmark");
    let netlist = benchmarks::generate_scaled(spec, 20_000);
    let lib = CellLibrary::n40();
    let placed = placer::place(&netlist, &lib, &PlacerOptions::default());
    let costs = SystemCosts::paper();
    for threshold_um in [1.0, 2.0, 3.35, 5.0, 8.0, 12.0] {
        let plan = merge::plan(
            &placed,
            &MergeOptions {
                threshold: Length::from_micro_meters(threshold_um),
                strategy: Strategy::GreedyClosest,
            },
        );
        let row = roll_up(spec.name, spec.flip_flops, plan.merged_pairs(), &costs);
        println!(
            "  threshold {:>5.2} µm: pairs {:>4} coverage {:>5.1} %  area saving {:>5.2} %",
            threshold_um,
            plan.merged_pairs(),
            plan.merge_fraction() * 100.0,
            row.area_improvement() * 100.0,
        );
    }
    println!();
}

/// Ablation 2: pairing strategies on every benchmark.
fn pairing_strategies() {
    println!("ABLATION 2: PAIRING STRATEGY (greedy-closest vs degree-aware)");
    let lib = CellLibrary::n40();
    for spec in &benchmarks::Benchmark::ALL[..7] {
        let netlist = benchmarks::generate_scaled(*spec, 20_000);
        let placed = placer::place(&netlist, &lib, &PlacerOptions::default());
        let counts: Vec<usize> = [Strategy::GreedyClosest, Strategy::DegreeAware]
            .iter()
            .map(|&strategy| {
                merge::plan(
                    &placed,
                    &MergeOptions {
                        strategy,
                        ..MergeOptions::default()
                    },
                )
                .merged_pairs()
            })
            .collect();
        println!(
            "  {:<8} greedy {:>4}  degree-aware {:>4}  ({:+} pairs)",
            spec.name,
            counts[0],
            counts[1],
            counts[1] as i64 - counts[0] as i64,
        );
    }
    println!();
}

/// Ablation 3: explicit vs optimized control scheme. The two schemes
/// simulate as a two-point sweep grid.
fn control_schemes(jobs: usize) -> Result<(), cells::CellError> {
    println!("ABLATION 3: CONTROL SCHEME (Fig. 6 explicit vs Fig. 7 optimized)");
    let grid = sweep::Grid::new(vec![ControlScheme::Explicit, ControlScheme::Optimized]);
    let opts = sweep::SweepOptions {
        jobs,
        span_label: "ablations.scheme",
        ..sweep::SweepOptions::default()
    };
    let outcome = sweep::run(&grid, &opts, |_ctx, &scheme| {
        let latch = ProposedLatch::with_scheme(LatchConfig::default(), scheme);
        let out = latch.simulate_restore([true, false])?;
        Ok::<_, cells::CellError>(format!(
            "  {scheme:?}: bits {:?}, supply energy {}, total (with controls) {}, delay {}",
            out.bits, out.supply_energy, out.energy, out.read_delay,
        ))
    });
    for line in outcome.results {
        println!("{}", line?);
    }
    println!("  (the optimized scheme derives P4/N4 from one PC̄ net — fewer control nets)\n");
    Ok(())
}

/// Ablation 4: a hypothetical shared write path (both complementary
/// pairs in series behind one driver pair) — the write current falls
/// under the switching threshold and no MTJ reverses.
fn shared_write_path() -> Result<(), Box<dyn std::error::Error>> {
    println!("ABLATION 4: SHARED WRITE PATH (why write circuits stay per-bit)");
    let params = MtjParams::date2018();
    let vdd = Voltage::from_volts(1.1);

    // Dedicated path: one complementary pair (2 MTJs in series).
    let dedicated = drive_series_mtjs(&params, vdd, 2)?;
    // Shared path: both pairs in series (4 MTJs) behind the same driver.
    let shared = drive_series_mtjs(&params, vdd, 4)?;

    println!(
        "  dedicated (2 MTJs in series): {} reversals — store {}",
        dedicated,
        if dedicated == 2 { "succeeds" } else { "FAILS" },
    );
    println!(
        "  shared    (4 MTJs in series): {} reversals — store {}",
        shared,
        if shared == 4 { "succeeds" } else { "FAILS" },
    );
    println!(
        "  series resistance doubles, the write current halves below Ic = {}, and the\n  \
         shared store never completes — the quantitative case for the paper's choice.\n",
        params.critical_current(),
    );
    Ok(())
}

/// Ablation 5: sense-amplifier sizing — the cross-coupled NMOS width
/// trades read delay against energy; the paper's "custom design" claim
/// rests on picking a sane point of this curve. The four widths fan out
/// as one sweep grid; lines print in grid (width) order regardless of
/// which simulation finishes first.
fn sizing_sweep(jobs: usize) -> Result<(), cells::CellError> {
    println!("ABLATION 5: SENSE-AMP SIZING (cross-coupled NMOS width)");
    let grid = sweep::Grid::new(vec![240.0f64, 360.0, 480.0, 720.0]);
    let opts = sweep::SweepOptions {
        jobs,
        span_label: "ablations.sizing",
        ..sweep::SweepOptions::default()
    };
    let outcome = sweep::run(&grid, &opts, |_ctx, &nmos_nm| {
        let mut config = LatchConfig::default();
        config.sizing.cross_nmos = Length::from_nano_meters(nmos_nm);
        let latch = ProposedLatch::new(config);
        let out = latch.simulate_restore([true, false])?;
        Ok::<_, cells::CellError>(format!(
            "  W(N1/N2) = {:>4.0} nm: read delay {:>9}  supply energy {:>9}  \
             energy·delay {:>7.1} fJ·ns",
            nmos_nm,
            out.read_delay.to_string(),
            out.supply_energy.to_string(),
            out.supply_energy.femto_joules() * out.read_delay.nano_seconds(),
        ))
    });
    for line in outcome.results {
        println!("{}", line?);
    }
    println!("  (the default 360 nm sits at the energy·delay knee)\n");
    Ok(())
}

/// Drives `n_series` alternating-polarity MTJs (initially all holding
/// the value to overwrite) from a 1.1 V source for 10 ns; returns how
/// many reversed.
fn drive_series_mtjs(
    params: &MtjParams,
    vdd: Voltage,
    n_series: usize,
) -> Result<usize, Box<dyn std::error::Error>> {
    let mut ckt = Circuit::new();
    let top = ckt.node("top");
    ckt.add_voltage_source("VW", top, Circuit::GROUND, SourceWaveform::dc(vdd))?;
    let mut prev = top;
    for k in 0..n_series {
        let next = if k + 1 == n_series {
            Circuit::GROUND
        } else {
            ckt.node(&format!("m{k}"))
        };
        // Alternating polarity, as the complementary pairs are wired;
        // start opposite to the write target so every device must flip.
        let polarity = if k.is_multiple_of(2) {
            WritePolarity::PositiveSetsAntiParallel
        } else {
            WritePolarity::PositiveSetsParallel
        };
        let initial = match polarity {
            WritePolarity::PositiveSetsAntiParallel => MtjState::Parallel,
            WritePolarity::PositiveSetsParallel => MtjState::AntiParallel,
        };
        ckt.add_mtj(
            &format!("X{k}"),
            prev,
            next,
            Mtj::new(params.clone(), initial, polarity),
        )?;
        prev = next;
    }
    let result = analysis::transient(
        &mut ckt,
        Time::from_nano_seconds(10.0),
        Time::from_pico_seconds(50.0),
    )?;
    Ok(result.mtj_events().len())
}
