//! Regenerates **Fig. 6** (and Fig. 7's optimized variant) — the
//! working sequences of the proposed multi-bit latch: the store phase's
//! write-current pulse and the restore phase's pre-charge/evaluate
//! cadence, as ASCII waveforms plus CSV dumps in `target/figures/`.
//!
//! Usage: `fig6 [--explicit]` (default uses the Fig. 7 optimized
//! controller; `--explicit` the three-signal Fig. 6 scheme).

use cells::proposed::ControlScheme;
use cells::{LatchConfig, ProposedLatch};
use nvff_bench::{ascii_waveform, traces_to_csv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scheme = if std::env::args().any(|a| a == "--explicit") {
        ControlScheme::Explicit
    } else {
        ControlScheme::Optimized
    };
    let latch = ProposedLatch::with_scheme(LatchConfig::default(), scheme);
    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir)?;

    // ---- Restore sequence (Fig. 6b) --------------------------------
    println!("FIG 6(b): RESTORE SEQUENCE — stored bits [1, 0], {scheme:?} controller\n");
    let (result, controls) = latch.restore_traces([true, false])?;
    let times = result.times();
    let mut csv_traces = Vec::new();
    let mut keep = Vec::new();
    for node in ["pcv_b", "pcg", "ren", "sel_b", "mtj_read", "mtj_read_b"] {
        let trace = result.node(node)?;
        keep.push((node, trace.values().to_vec()));
    }
    for (node, values) in &keep {
        println!("{}", ascii_waveform(node, times, values, 96, 6));
        csv_traces.push((*node, values.as_slice()));
    }
    let csv = traces_to_csv(times, &csv_traces);
    let restore_path = out_dir.join("fig6_restore.csv");
    std::fs::write(&restore_path, csv)?;
    println!(
        "evaluation windows: lower pair {} → {}, upper pair {} → {}",
        controls.eval0_start, controls.eval0_end, controls.eval1_start, controls.eval1_end
    );
    println!("csv: {}\n", restore_path.display());

    // ---- Store sequence (Fig. 6a) ----------------------------------
    println!("FIG 6(a): STORE SEQUENCE — writing [1, 0] over [0, 1]\n");
    let (store_result, store_controls) = latch.store_traces([true, false], [false, true])?;
    let times = store_result.times();
    let mut keep = Vec::new();
    for node in ["wen", "a3", "a4", "tl", "tr"] {
        let trace = store_result.node(node)?;
        keep.push((node, trace.values().to_vec()));
    }
    for (node, values) in &keep {
        println!("{}", ascii_waveform(node, times, values, 96, 6));
    }
    println!("MTJ reversal events:");
    for ev in store_result.mtj_events() {
        println!("  t = {:>8}  {} → {}", ev.time, ev.device, ev.state);
    }
    let csv = traces_to_csv(
        times,
        &keep
            .iter()
            .map(|(n, v)| (*n, v.as_slice()))
            .collect::<Vec<_>>(),
    );
    let store_path = out_dir.join("fig6_store.csv");
    std::fs::write(&store_path, csv)?;
    println!(
        "write window {} → {}; csv: {}",
        store_controls.write_start,
        store_controls.write_end,
        store_path.display()
    );
    Ok(())
}
