//! Regenerates **Fig. 6** (and Fig. 7's optimized variant) — the
//! working sequences of the proposed multi-bit latch: the store phase's
//! write-current pulse and the restore phase's pre-charge/evaluate
//! cadence, as ASCII waveforms plus CSV dumps in `target/figures/`.
//!
//! Usage: `fig6 [--explicit] [--jobs <N>]` (default uses the Fig. 7
//! optimized controller; `--explicit` the three-signal Fig. 6 scheme).
//! The restore and store transients are independent, so they run as a
//! two-point sweep grid — `--jobs 2` simulates them concurrently, each
//! worker owning its own latch. Output is rendered after ordered
//! collection and is byte-identical for every `--jobs` value.

use std::fmt::Write as _;

use cells::proposed::ControlScheme;
use cells::{LatchConfig, ProposedLatch};
use nvff_bench::{ascii_waveform, traces_to_csv};

/// The two independent transients of the figure, as sweep grid points.
#[derive(Debug, Clone, Copy)]
enum Phase {
    Restore,
    Store,
}

/// Renders the restore phase: stdout text plus the CSV body.
fn render_restore(latch: &ProposedLatch) -> Result<(String, String), String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIG 6(b): RESTORE SEQUENCE — stored bits [1, 0], {:?} controller\n",
        latch.scheme()
    );
    let (result, controls) = latch
        .restore_traces([true, false])
        .map_err(|e| e.to_string())?;
    let times = result.times();
    let mut csv_traces = Vec::new();
    let mut keep = Vec::new();
    for node in ["pcv_b", "pcg", "ren", "sel_b", "mtj_read", "mtj_read_b"] {
        let trace = result.node(node).map_err(|e| e.to_string())?;
        keep.push((node, trace.values().to_vec()));
    }
    for (node, values) in &keep {
        let _ = writeln!(out, "{}", ascii_waveform(node, times, values, 96, 6));
        csv_traces.push((*node, values.as_slice()));
    }
    let csv = traces_to_csv(times, &csv_traces);
    let _ = writeln!(
        out,
        "evaluation windows: lower pair {} → {}, upper pair {} → {}",
        controls.eval0_start, controls.eval0_end, controls.eval1_start, controls.eval1_end
    );
    Ok((out, csv))
}

/// Renders the store phase: stdout text plus the CSV body.
fn render_store(latch: &ProposedLatch) -> Result<(String, String), String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIG 6(a): STORE SEQUENCE — writing [1, 0] over [0, 1]\n"
    );
    let (store_result, store_controls) = latch
        .store_traces([true, false], [false, true])
        .map_err(|e| e.to_string())?;
    let times = store_result.times();
    let mut keep = Vec::new();
    for node in ["wen", "a3", "a4", "tl", "tr"] {
        let trace = store_result.node(node).map_err(|e| e.to_string())?;
        keep.push((node, trace.values().to_vec()));
    }
    for (node, values) in &keep {
        let _ = writeln!(out, "{}", ascii_waveform(node, times, values, 96, 6));
    }
    let _ = writeln!(out, "MTJ reversal events:");
    for ev in store_result.mtj_events() {
        let _ = writeln!(out, "  t = {:>8}  {} → {}", ev.time, ev.device, ev.state);
    }
    let csv = traces_to_csv(
        times,
        &keep
            .iter()
            .map(|(n, v)| (*n, v.as_slice()))
            .collect::<Vec<_>>(),
    );
    let _ = writeln!(
        out,
        "write window {} → {}",
        store_controls.write_start, store_controls.write_end
    );
    Ok((out, csv))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scheme = if std::env::args().any(|a| a == "--explicit") {
        ControlScheme::Explicit
    } else {
        ControlScheme::Optimized
    };
    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir)?;

    // Restore first: the printed figure leads with 6(b), so grid order
    // is [Restore, Store] and the collector restores print order even
    // when the store transient finishes first.
    let grid = sweep::Grid::new(vec![Phase::Restore, Phase::Store]);
    let opts = sweep::SweepOptions {
        jobs: nvff_bench::jobs_from_args(),
        span_label: "fig6.phase",
        ..sweep::SweepOptions::default()
    };
    let outcome = sweep::run_with_state(
        &grid,
        &opts,
        |_| ProposedLatch::with_scheme(LatchConfig::default(), scheme),
        |latch, _ctx, phase| match phase {
            Phase::Restore => render_restore(latch),
            Phase::Store => render_store(latch),
        },
        None,
    );
    let mut rendered = outcome.results.into_iter();
    let (restore_text, restore_csv) = rendered.next().expect("restore phase")?;
    let (store_text, store_csv) = rendered.next().expect("store phase")?;

    print!("{restore_text}");
    let restore_path = out_dir.join("fig6_restore.csv");
    std::fs::write(&restore_path, restore_csv)?;
    println!("csv: {}\n", restore_path.display());

    print!("{store_text}");
    let store_path = out_dir.join("fig6_store.csv");
    std::fs::write(&store_path, store_csv)?;
    println!("csv: {}", store_path.display());
    Ok(())
}
