//! Regenerates **Table I** — the circuit-level setup.

fn main() {
    let setup = cells::CircuitSetup::date2018();
    println!("TABLE I: CIRCUIT-LEVEL SETUP");
    println!("{setup}");
    println!("CMOS process: 40 nm LP class, VDD {:.1} V", setup.tech.vdd);
    println!(
        "MTJ retention (Δ = {:.0}): {}",
        setup.mtj.thermal_stability(),
        setup.mtj.retention_time()
    );
}
