//! Regenerates **Table III** — system-level area and read energy for the
//! 13 benchmarks, all flip-flops backed by 1-bit NV components versus
//! the merged 2-bit flow.
//!
//! Two modes are always printed:
//!
//! * **replay** — the paper's published merge counts with the paper's
//!   per-cell costs: reproduces every published number exactly (the
//!   arithmetic verification);
//! * **measured** — this repository's full flow: synthetic benchmark →
//!   placement → neighbour-pair merge, rolled up with the same costs so
//!   the merge quality is the only difference.
//!
//! Usage: `table3 [--full] [--own-costs]`. `--full` synthesizes the
//! complete combinational clouds (slower for b18/b19); the default caps
//! them at 40 k gates, which does not change flip-flop clustering
//! statistics materially. `--own-costs` uses this repository's measured
//! cell costs instead of the paper's constants.

use netlist::benchmarks::Benchmark;
use nvff::paper;
use nvff::system::{self, EvaluationMode, SystemCosts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "--full");
    let own_costs = std::env::args().any(|a| a == "--own-costs");
    let max_gates = if full { usize::MAX } else { 40_000 };

    let costs = if own_costs {
        eprintln!("characterizing cells for measured costs...");
        SystemCosts::measured()?
    } else {
        SystemCosts::paper()
    };
    println!(
        "per-cell costs: area {:.3}/{:.3} µm², read energy {:.3}/{:.3} fJ ({})",
        costs.area_1bit.square_micro_meters(),
        costs.area_2bit.square_micro_meters(),
        costs.energy_1bit.femto_joules(),
        costs.energy_2bit.femto_joules(),
        if own_costs {
            "measured"
        } else {
            "paper Table II typical"
        },
    );

    println!("\nTABLE III (replay: paper merge counts)");
    let replay = system::table3(&costs, EvaluationMode::Replay);
    for row in &replay {
        println!("{row}");
    }
    let (area, energy) = system::average_improvements(&replay);
    println!(
        "average improvement: area {:.2} % (paper 26 %), energy {:.2} % (paper 14 %)",
        area * 100.0,
        energy * 100.0
    );

    println!("\nTABLE III (measured: this repository's place-and-merge flow)");
    let mut measured = Vec::new();
    for spec in Benchmark::ALL {
        eprintln!("  placing and merging {}...", spec.name);
        let row = system::evaluate_measured(spec, &costs, max_gates);
        println!("{row}");
        measured.push(row);
    }
    let (area_m, energy_m) = system::average_improvements(&measured);
    println!(
        "average improvement: area {:.2} %, energy {:.2} %",
        area_m * 100.0,
        energy_m * 100.0
    );

    println!("\nmerge-count comparison (measured vs paper):");
    for (row, published) in measured.iter().zip(paper::table3()) {
        println!(
            "  {:<8} measured pairs {:>5} ({:>5.1} % of FFs)   paper {:>5} ({:>5.1} %)",
            row.name,
            row.merged_pairs,
            row.merge_fraction() * 100.0,
            published.merged_pairs,
            2.0 * published.merged_pairs as f64 / published.total_ffs as f64 * 100.0,
        );
    }
    Ok(())
}
