//! Lane-batched Monte-Carlo benchmark driver.
//!
//! Usage: `simd_mc [--jobs <N>] [--lanes <L>] [--trials <T>] [--json
//! <path>] [--check]`.
//!
//! Default mode times the WER grid under the four engine configurations
//! (scalar serial, threads only, lanes serial, lanes × threads) and
//! prints the comparison; with `--json` it also writes the run report
//! whose `simd_mc` section backs the committed `BENCH_report.json`
//! baseline.
//!
//! `--check` runs the differential suite instead: the grid's failure
//! counts for every supported lane width × worker count combination
//! must equal the scalar serial reference *exactly*; any divergence is
//! printed and the process exits nonzero. This is the mode `ci.sh`
//! runs.

use nvff_bench::simd_mc;

/// Extracts `--trials <T>` from the command line (`0`/absent = the
/// benchmark default).
fn trials_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = if a == "--trials" {
            args.next()
        } else {
            a.strip_prefix("--trials=").map(str::to_owned)
        };
        if let Some(v) = value {
            match v.trim().parse::<usize>() {
                Ok(n) => return n,
                Err(_) => {
                    eprintln!("warning: ignoring unparsable --trials value {v:?}");
                    return 0;
                }
            }
        }
    }
    0
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    telemetry::init_from_env();
    if std::env::args().skip(1).any(|a| a == "--check") {
        let trials = match trials_from_args() {
            0 => 200,
            t => t,
        };
        println!(
            "differential check: {} lane widths x 2 worker counts, {trials} trials/point",
            mtj::lanes::SUPPORTED_LANE_COUNTS.len()
        );
        let mismatches = simd_mc::check(trials, 2018, 3);
        if mismatches.is_empty() {
            println!("ok: every lane/jobs combination is bit-identical to scalar serial");
            return Ok(());
        }
        for m in &mismatches {
            eprintln!("MISMATCH {m}");
        }
        return Err(format!("{} lane/jobs combinations diverged", mismatches.len()).into());
    }

    let json_path = nvff_bench::json_path_from_args();
    if json_path.is_some() {
        telemetry::ensure_collecting();
    }
    let mut opts = simd_mc::SimdMcOptions {
        jobs: nvff_bench::jobs_from_args(),
        lanes: nvff_bench::lanes_from_args(),
        ..simd_mc::SimdMcOptions::default()
    };
    if trials_from_args() > 0 {
        opts.trials = trials_from_args();
    }
    let mut run = telemetry::RunReport::new("simd_mc");
    let span = telemetry::span("simd_mc");
    let report = simd_mc::run(&opts);
    drop(span);
    print!("{}", report.markdown());
    if !report.bit_identical {
        return Err("lane-batched results diverged from the scalar reference".into());
    }
    run.add(report.section());
    let snap = telemetry::finish();
    if let Some(path) = json_path {
        run.write(&path, &snap)?;
        println!("run report written to {}", path.display());
    }
    Ok(())
}
