//! Shared report formatting for the benchmark harness binaries.
//!
//! Each binary regenerates one table or figure of the paper:
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I — circuit-level setup |
//! | `table2` | Table II — cell comparison across corners |
//! | `table3` | Table III — system-level results (replay + measured) |
//! | `fig6`   | Fig. 6 — store/restore working sequences (waveforms) |
//! | `fig8`   | Fig. 8 — layout of the proposed 2-bit cell (SVG) |
//! | `fig9`   | Fig. 9 — s344 floorplan with mergeable flip-flops (SVG) |
//! | `ablations` | the design-choice studies listed in DESIGN.md |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chserve;
pub mod shmoo;
pub mod simd_mc;

/// Extracts the `--json <path>` argument from the process command line
/// (the machine-readable run-report mode shared by the bench binaries).
///
/// # Examples
///
/// ```
/// // No --json flag in the test harness's own argv.
/// assert_eq!(nvff_bench::json_path_from_args(), None);
/// ```
#[must_use]
pub fn json_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next().map(std::path::PathBuf::from);
        }
        if let Some(path) = a.strip_prefix("--json=") {
            return Some(std::path::PathBuf::from(path));
        }
    }
    None
}

/// Extracts the `--jobs <N>` argument from the process command line —
/// the shared worker-count flag of the bench binaries. Returns `0`
/// (auto: one worker per hardware thread) when absent; `--jobs 1`
/// selects the serial path.
///
/// # Examples
///
/// ```
/// // No --jobs flag in the test harness's own argv → auto.
/// assert_eq!(nvff_bench::jobs_from_args(), 0);
/// ```
#[must_use]
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = if a == "--jobs" {
            args.next()
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            Some(v.to_owned())
        } else {
            continue;
        };
        return value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("warning: --jobs expects an integer; using auto");
            0
        });
    }
    0
}

/// Extracts the `--lanes <L>` argument from the process command line —
/// the SIMD lane count of the lane-batched Monte-Carlo kernels.
/// Returns `0` (auto: `NVFF_LANES` or the built-in default) when
/// absent; `--lanes 1` selects the scalar reference kernel. The lane
/// count never changes results, only throughput.
///
/// # Examples
///
/// ```
/// // No --lanes flag in the test harness's own argv → auto.
/// assert_eq!(nvff_bench::lanes_from_args(), 0);
/// ```
#[must_use]
pub fn lanes_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = if a == "--lanes" {
            args.next()
        } else if let Some(v) = a.strip_prefix("--lanes=") {
            Some(v.to_owned())
        } else {
            continue;
        };
        return value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("warning: --lanes expects an integer; using auto");
            0
        });
    }
    0
}

/// A running `/metrics` sidecar owned by a bench binary — see
/// [`serve_from_args`]. Keep it alive for the duration of the run and
/// call [`finish`](ServeGuard::finish) after the results are written.
pub struct ServeGuard {
    server: serve::MetricsServer,
    linger: std::time::Duration,
}

impl ServeGuard {
    /// The address the sidecar actually bound (resolves `--serve`
    /// port `0`).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// Ends the sidecar: if `--serve-linger <secs>` was given, keeps
    /// serving for up to that long (released early by
    /// `GET /quitquitquit`) so a scraper can collect the final state,
    /// then shuts the server down.
    pub fn finish(mut self) {
        if !self.linger.is_zero() {
            eprintln!(
                "serving http://{}/metrics for up to {:.0}s more (GET /quitquitquit to release)",
                self.server.local_addr(),
                self.linger.as_secs_f64(),
            );
            self.server.wait_quit(Some(self.linger));
        }
        self.server.shutdown();
    }
}

/// Starts the `/metrics` sidecar when `--serve <addr>` is on the
/// process command line; returns `None` when the flag is absent.
///
/// Companion flags: `--serve-addr-file <path>` writes the bound address
/// (one line) so scripts can discover an OS-assigned port, and
/// `--serve-linger <secs>` keeps the server up after the run finishes
/// (see [`ServeGuard::finish`]). Serving implies telemetry collection —
/// a scrape of an empty registry would be pointless — so this calls
/// [`telemetry::ensure_collecting`]. Exits the process on a bind
/// failure: a requested-but-dead metrics endpoint should not fail
/// silently.
///
/// # Examples
///
/// ```
/// // No --serve flag in the test harness's own argv.
/// assert!(nvff_bench::serve_from_args().is_none());
/// ```
#[must_use]
pub fn serve_from_args() -> Option<ServeGuard> {
    let mut addr: Option<String> = None;
    let mut addr_file: Option<std::path::PathBuf> = None;
    let mut linger = std::time::Duration::ZERO;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--serve" => addr = args.next(),
            "--serve-addr-file" => addr_file = args.next().map(std::path::PathBuf::from),
            "--serve-linger" => {
                let secs: f64 = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("warning: --serve-linger expects seconds; using 0");
                    0.0
                });
                linger = std::time::Duration::from_secs_f64(secs.max(0.0));
            }
            _ => {
                if let Some(v) = a.strip_prefix("--serve=") {
                    addr = Some(v.to_owned());
                }
            }
        }
    }
    let addr = addr?;
    telemetry::ensure_collecting();
    let server = match serve::MetricsServer::bind(addr.as_str()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: --serve {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("serving http://{}/metrics", server.local_addr());
    if let Some(path) = addr_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", server.local_addr())) {
            eprintln!("warning: --serve-addr-file {}: {e}", path.display());
        }
    }
    Some(ServeGuard { server, linger })
}

/// Appends a [`sweep::RunSummary`] to a run-report section as the
/// `parallel.*` fields of the `nvff-run-report/1` schema: worker count,
/// wall-clock vs cumulative solver-side job time, and realized speedup.
pub fn push_parallel_summary(section: &mut telemetry::Section, summary: &sweep::RunSummary) {
    section.push("parallel.workers", summary.workers as u64);
    section.push("parallel.points", summary.points as u64);
    section.push("parallel.resumed", summary.resumed as u64);
    section.push("parallel.wall_s", summary.wall_s);
    section.push("parallel.busy_s", summary.busy_s);
    section.push("parallel.speedup", summary.speedup());
}

/// Appends the [`spice::SolverStats`] counters to a run-report
/// section under `<prefix>` names — the bench side of the telemetry
/// boundary (the telemetry crate stays ignorant of solver types).
pub fn push_solver_stats(
    section: &mut telemetry::Section,
    prefix: &str,
    stats: spice::SolverStats,
) {
    section.push(
        &format!("{prefix}newton_iterations"),
        stats.newton_iterations,
    );
    section.push(
        &format!("{prefix}lu_factorizations"),
        stats.lu_factorizations,
    );
    section.push(&format!("{prefix}accepted_steps"), stats.accepted_steps);
    section.push(&format!("{prefix}rejected_steps"), stats.rejected_steps);
    section.push(&format!("{prefix}step_halvings"), stats.step_halvings);
    section.push(&format!("{prefix}pattern_reuses"), stats.pattern_reuses);
    section.push(&format!("{prefix}lte_rejections"), stats.lte_rejections);
    section.push(&format!("{prefix}source_steps"), stats.source_steps);
}

/// Formats a measured-vs-paper comparison line: value, reference, and
/// the ratio between them.
///
/// # Examples
///
/// ```
/// let line = nvff_bench::compare_line("read energy [fJ]", 4.9, 4.587);
/// assert!(line.contains("4.9"));
/// assert!(line.contains("1.07"));
/// ```
#[must_use]
pub fn compare_line(label: &str, measured: f64, paper: f64) -> String {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    format!("{label:<34} measured {measured:>10.3}   paper {paper:>10.3}   ratio {ratio:>5.2}")
}

/// Renders an ASCII waveform strip: the trace resampled to `width`
/// columns, quantized to `height` rows (top row = `max`).
///
/// # Panics
///
/// Panics if `width` or `height` is zero or the trace is empty.
#[must_use]
pub fn ascii_waveform(
    name: &str,
    times: &[f64],
    values: &[f64],
    width: usize,
    height: usize,
) -> String {
    assert!(width > 0 && height > 0, "width and height must be positive");
    assert!(!times.is_empty(), "empty trace");
    let t0 = times[0];
    let t1 = *times.last().expect("nonempty");
    let vmin = values.iter().copied().fold(f64::INFINITY, f64::min);
    let vmax = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (vmax - vmin).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (col, _) in (0..width).enumerate() {
        let t = t0 + (t1 - t0) * col as f64 / (width - 1).max(1) as f64;
        let v = spice::measure::interpolate(times, values, t);
        let row = ((vmax - v) / span * (height - 1) as f64).round() as usize;
        grid[row.min(height - 1)][col] = '•';
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{vmax:>7.2} ")
        } else if r == height - 1 {
            format!("{vmin:>7.2} ")
        } else {
            " ".repeat(8)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>8} {}\n", "", name));
    out
}

/// Writes trace columns as CSV (`time` plus one column per trace).
///
/// # Panics
///
/// Panics if the traces have different lengths.
#[must_use]
pub fn traces_to_csv(times: &[f64], traces: &[(&str, &[f64])]) -> String {
    use std::fmt::Write as _;
    for (name, values) in traces {
        assert_eq!(values.len(), times.len(), "trace {name} length mismatch");
    }
    let mut out = String::from("time_s");
    for (name, _) in traces {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for (k, t) in times.iter().enumerate() {
        let _ = write!(out, "{t:.6e}");
        for (_, values) in traces {
            let _ = write!(out, ",{:.6e}", values[k]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_line_formats() {
        let line = compare_line("x", 2.0, 4.0);
        assert!(line.contains("0.50"));
        assert!(compare_line("x", 1.0, 0.0).contains("NaN"));
    }

    #[test]
    fn ascii_waveform_spans_the_range() {
        let times: Vec<f64> = (0..10).map(f64::from).collect();
        let values: Vec<f64> = (0..10).map(|k| f64::from(k % 2)).collect();
        let art = ascii_waveform("clk", &times, &values, 20, 5);
        assert!(art.contains('•'));
        assert!(art.contains("1.00"));
        assert!(art.contains("0.00"));
        assert!(art.contains("clk"));
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        let _ = ascii_waveform("x", &[], &[], 10, 5);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = traces_to_csv(
            &[0.0, 1.0],
            &[("a", &[1.0, 2.0][..]), ("b", &[3.0, 4.0][..])],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,a,b");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("0.0"));
    }
}
