//! Rare-event shmoo benchmark: the WER-vs-pulse-width-vs-σ(Isw)(-vs-T)
//! surface driven by the importance-sampled tail engine
//! ([`mtj::rare`]), with a brute-force cross-check in the regime brute
//! force can still see.
//!
//! The surface axes are *typical-die WER targets* (turned into pulse
//! widths through the reference device's closed-form
//! [`mtj::wer::pulse_for_wer`]), σ(Isw) values and operating
//! temperatures. The deep end of the default grid sits at a typical-die
//! WER of 1e-11, whose variation-averaged population WER lands at or
//! below 1e-9 — the acceptance point the committed baseline holds at
//! ≤ 1e4 samples with a reported confidence interval.
//!
//! Two verdicts ride along in the report:
//!
//! - **cross-check** — at the shallowest target (1e-3 by default), a
//!   Bernoulli-estimator IS run and a variation-aware brute-force run
//!   integrate the same measure; the brute-force point must fall inside
//!   the IS 99 % confidence interval.
//! - **samples-to-target-variance** — per deep-tail row,
//!   [`mtj::rare::TailEstimate::brute_force_equivalent_trials`] over
//!   the IS sample budget: the factor brute force would have to
//!   outspend the tilted sampler to match its variance.
//!
//! The [`ShmooReport::section`] output lands in `BENCH_report.json` as
//! the `rare_event` section; `ci.sh` additionally runs the `shmoo`
//! binary's `--check` mode, which re-runs the cross-check differential
//! and the jobs × lanes bit-identity sweep and exits nonzero on any
//! failure.

use std::time::Instant;

use mtj::rare::{self, Estimator, SurfaceAxes, TailEnv, TailOptions, TailSurfaceRow};
use mtj::{wer, MtjParams, SwitchingModel, ThermalModel, VariationModel};
use telemetry::Section;
use units::Temperature;

/// Knobs for one [`run`].
#[derive(Debug, Clone)]
pub struct ShmooOptions {
    /// Importance-sampled draws per surface point.
    pub samples: usize,
    /// Campaign base seed.
    pub seed: u64,
    /// Worker count (`0` = auto) — workers fan over surface points.
    pub jobs: usize,
    /// SIMD lane width of the tilted sampler (`0` = auto).
    pub lanes: usize,
    /// Cross-entropy pilot rounds of the per-point tilt search.
    pub pilot_rounds: usize,
    /// Samples per pilot round.
    pub pilot_samples: usize,
    /// Typical-die WER targets defining the pulse axis (deepest last).
    pub wer_targets: Vec<f64>,
    /// σ(Isw) axis.
    pub sigma_switching_currents: Vec<f64>,
    /// Temperature axis, °C.
    pub temperatures_c: Vec<f64>,
    /// Brute-force trials of the cross-check arm.
    pub crosscheck_trials: usize,
    /// IS samples of the cross-check arm (Bernoulli estimator).
    pub crosscheck_samples: usize,
}

impl Default for ShmooOptions {
    fn default() -> Self {
        Self {
            samples: 10_000,
            seed: 2018,
            jobs: 0,
            lanes: 0,
            pilot_rounds: 3,
            pilot_samples: 512,
            wer_targets: vec![1e-3, 1e-5, 1e-7, 1e-9, 1e-11],
            sigma_switching_currents: vec![0.04, 0.06],
            temperatures_c: vec![27.0, 85.0],
            crosscheck_trials: 30_000,
            crosscheck_samples: 3000,
        }
    }
}

impl ShmooOptions {
    /// The CI / report configuration: a 2-point surface (the shallow
    /// cross-check regime and the deep tail) that finishes in seconds.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            samples: 2000,
            pilot_rounds: 2,
            pilot_samples: 256,
            wer_targets: vec![1e-3, 1e-11],
            sigma_switching_currents: vec![0.06],
            temperatures_c: vec![27.0],
            crosscheck_trials: 12_000,
            crosscheck_samples: 2000,
            ..Self::default()
        }
    }

    /// The surface axes this configuration sweeps.
    #[must_use]
    pub fn axes(&self, params: &MtjParams) -> SurfaceAxes {
        let model = SwitchingModel::new(params);
        let drive = params.nominal_write_current();
        SurfaceAxes {
            pulses: self
                .wer_targets
                .iter()
                .map(|&t| wer::pulse_for_wer(&model, drive, t))
                .collect(),
            sigma_switching_currents: self.sigma_switching_currents.clone(),
            temperatures: self
                .temperatures_c
                .iter()
                .map(|&c| Temperature::from_celsius(c))
                .collect(),
        }
    }

    fn tail_options(&self) -> TailOptions {
        TailOptions {
            samples: self.samples,
            seed: self.seed,
            jobs: self.jobs,
            lanes: self.lanes,
            pilot_rounds: self.pilot_rounds,
            pilot_samples: self.pilot_samples,
            ..TailOptions::default()
        }
    }
}

/// The cross-check verdict: IS vs brute force in the shallow regime.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// Typical-die WER target of the cross-check pulse.
    pub target: f64,
    /// IS (Bernoulli) population-WER estimate.
    pub is_wer: f64,
    /// IS 99 % confidence interval bounds.
    pub ci_lo: f64,
    /// Upper bound of the same interval.
    pub ci_hi: f64,
    /// Brute-force population-WER point estimate.
    pub brute_wer: f64,
    /// Brute-force trials spent.
    pub brute_trials: usize,
    /// The verdict: brute force inside the IS interval.
    pub agrees: bool,
    /// Wall-clock of the IS arm, seconds.
    pub is_wall_s: f64,
    /// Wall-clock of the brute-force arm, seconds.
    pub brute_wall_s: f64,
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct ShmooReport {
    /// Surface rows in [`SurfaceAxes::points`] order.
    pub rows: Vec<TailSurfaceRow>,
    /// Samples per surface point.
    pub samples: usize,
    /// Workers the surface sweep used.
    pub workers: usize,
    /// Surface wall-clock, seconds.
    pub surface_wall_s: f64,
    /// The shallow-regime differential.
    pub crosscheck: CrossCheck,
}

impl ShmooReport {
    /// The deepest resolved row: smallest nonzero WER on the surface.
    #[must_use]
    pub fn deepest(&self) -> Option<&TailSurfaceRow> {
        self.rows
            .iter()
            .filter(|r| r.estimate.wer > 0.0)
            .min_by(|a, b| a.estimate.wer.total_cmp(&b.estimate.wer))
    }

    /// Brute-force trials that the deepest row's variance would cost.
    #[must_use]
    pub fn deep_brute_force_equivalent_trials(&self) -> f64 {
        self.deepest()
            .map_or(f64::NAN, |r| r.estimate.brute_force_equivalent_trials())
    }

    /// Samples-to-target-variance advantage at the deepest row:
    /// brute-force-equivalent trials over the IS sample budget.
    #[must_use]
    pub fn deep_speedup_vs_brute_force(&self) -> f64 {
        self.deep_brute_force_equivalent_trials() / self.samples.max(1) as f64
    }

    /// Minimum WER resolved anywhere on the surface (`NaN` if none).
    #[must_use]
    pub fn min_wer(&self) -> f64 {
        self.deepest().map_or(f64::NAN, |r| r.estimate.wer)
    }

    /// Markdown block for `REPORT.md`.
    #[must_use]
    pub fn markdown(&self) -> String {
        let mut md = String::new();
        md.push_str(&format!(
            "{} surface points x {} samples/point ({} workers), surface wall {:.2} s\n\n",
            self.rows.len(),
            self.samples,
            self.workers,
            self.surface_wall_s,
        ));
        md.push_str(
            "| pulse (ns) | sigma(Isw) | T (C) | tilt |mu| | WER | 99% CI | \
             contrib. ESS | bf-equivalent trials |\n|--:|--:|--:|--:|--:|:--|--:|--:|\n",
        );
        for row in &self.rows {
            let e = &row.estimate;
            md.push_str(&format!(
                "| {:.3} | {:.3} | {:.0} | {:.2} | {:.3e} | [{:.2e}, {:.2e}] | {:.0} | {:.2e} |\n",
                row.point.pulse.seconds() * 1e9,
                row.point.sigma_switching_current,
                row.point.temperature.celsius(),
                row.tilt.magnitude(),
                e.wer,
                e.ci.lo,
                e.ci.hi,
                e.contribution_ess,
                e.brute_force_equivalent_trials(),
            ));
        }
        let c = &self.crosscheck;
        md.push_str(&format!(
            "\n* deepest WER resolved: {:.3e} at {} samples \
             (brute-force equivalent {:.2e} trials, {:.0}x the IS budget)\n\
             * cross-check at typical-die 1e-3 regime: IS {:.3e} \
             [{:.2e}, {:.2e}] vs brute force {:.3e} ({} trials) — {}\n",
            self.min_wer(),
            self.samples,
            self.deep_brute_force_equivalent_trials(),
            self.deep_speedup_vs_brute_force(),
            c.is_wer,
            c.ci_lo,
            c.ci_hi,
            c.brute_wer,
            c.brute_trials,
            if c.agrees { "agrees" } else { "DISAGREES" },
        ));
        md
    }

    /// The `rare_event` section for `BENCH_report.json`.
    #[must_use]
    pub fn section(&self) -> Section {
        let deep_ci = self.deepest().map(|r| r.estimate.ci);
        Section::new("rare_event")
            .metric("points", self.rows.len() as u64)
            .metric("samples_per_point", self.samples as u64)
            .metric("workers", self.workers as u64)
            .metric("surface_wall_s", self.surface_wall_s)
            .metric("min_wer", self.min_wer())
            .metric("min_wer_ci_lo", deep_ci.map_or(f64::NAN, |ci| ci.lo))
            .metric("min_wer_ci_hi", deep_ci.map_or(f64::NAN, |ci| ci.hi))
            .metric(
                "bf_equivalent_trials",
                self.deep_brute_force_equivalent_trials(),
            )
            .metric("speedup_vs_brute_force", self.deep_speedup_vs_brute_force())
            .metric("crosscheck_target", self.crosscheck.target)
            .metric("crosscheck_is_wer", self.crosscheck.is_wer)
            .metric("crosscheck_brute_wer", self.crosscheck.brute_wer)
            .metric("crosscheck_ci_lo", self.crosscheck.ci_lo)
            .metric("crosscheck_ci_hi", self.crosscheck.ci_hi)
            .metric(
                "crosscheck_brute_trials",
                self.crosscheck.brute_trials as u64,
            )
            .metric("crosscheck_agrees", u64::from(self.crosscheck.agrees))
            .metric("crosscheck_is_wall_s", self.crosscheck.is_wall_s)
            .metric("crosscheck_brute_wall_s", self.crosscheck.brute_wall_s)
    }
}

/// Runs the cross-check differential: both arms integrate the same
/// variation measure at the same pulse; the IS arm runs the Bernoulli
/// estimator so its interval reflects genuine trial noise.
fn crosscheck(env: &TailEnv, opts: &ShmooOptions) -> CrossCheck {
    let target = opts
        .wer_targets
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1e-3);
    let pulse = wer::pulse_for_wer(&env.reference_model(), env.current(), target);

    let t0 = Instant::now();
    let is = rare::estimate_tail(
        env,
        pulse,
        &TailOptions {
            samples: opts.crosscheck_samples,
            seed: opts.seed ^ 0x5348_4d4f_4f58, // "SHMOOX"
            jobs: opts.jobs,
            lanes: opts.lanes,
            estimator: Estimator::Bernoulli,
            pilot_rounds: opts.pilot_rounds,
            pilot_samples: opts.pilot_samples,
            ..TailOptions::default()
        },
    );
    let is_wall_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let (bf, _) = rare::varied_wer_grid(
        env,
        &[pulse],
        opts.crosscheck_trials,
        opts.seed ^ 0x42_52_55_54_45, // "BRUTE"
        opts.jobs,
    );
    let brute_wall_s = t0.elapsed().as_secs_f64();

    let brute_wer = bf[0].wer();
    CrossCheck {
        target,
        is_wer: is.estimate.wer,
        ci_lo: is.estimate.ci.lo,
        ci_hi: is.estimate.ci.hi,
        brute_wer,
        brute_trials: opts.crosscheck_trials,
        agrees: is.estimate.ci.contains(brute_wer),
        is_wall_s,
        brute_wall_s,
    }
}

/// Runs the full shmoo: the tail surface plus the cross-check arm.
#[must_use]
pub fn run(opts: &ShmooOptions) -> ShmooReport {
    let params = MtjParams::date2018();
    let variation = VariationModel::default();
    let thermal = ThermalModel::default();
    let drive = params.nominal_write_current();
    let axes = opts.axes(&params);

    let t0 = Instant::now();
    let surface = rare::tail_surface(
        &params,
        &variation,
        &thermal,
        drive,
        &axes,
        &opts.tail_options(),
        None,
    )
    .expect("uncheckpointed surface cannot fail");
    let surface_wall_s = t0.elapsed().as_secs_f64();

    let env = TailEnv::new(&params, variation, drive);
    let crosscheck = crosscheck(&env, opts);

    ShmooReport {
        rows: surface.rows,
        samples: opts.samples,
        workers: surface.summary.workers,
        surface_wall_s,
        crosscheck,
    }
}

/// Differential check behind `shmoo --check`: the shallow-regime
/// cross-check must agree, the deep tail must resolve inside its sample
/// budget, and the tilted sampler must be bit-identical across a
/// jobs × lanes sweep. Returns human-readable failures (empty = pass).
#[must_use]
pub fn check(opts: &ShmooOptions) -> Vec<String> {
    let mut failures = Vec::new();
    let report = run(opts);

    let c = &report.crosscheck;
    if !c.agrees {
        failures.push(format!(
            "cross-check: brute force {:.3e} outside IS 99% CI [{:.2e}, {:.2e}]",
            c.brute_wer, c.ci_lo, c.ci_hi
        ));
    }
    match report.deepest() {
        None => failures.push("no surface point resolved a nonzero WER".into()),
        Some(row) => {
            let e = &row.estimate;
            if !(e.wer.is_finite() && e.ci.lo > 0.0 && e.ci.hi.is_finite()) {
                failures.push(format!(
                    "deep tail unresolved: wer {:.3e}, ci [{:.2e}, {:.2e}]",
                    e.wer, e.ci.lo, e.ci.hi
                ));
            }
            if e.samples as usize > opts.samples {
                failures.push(format!(
                    "deep tail overspent its budget: {} > {}",
                    e.samples, opts.samples
                ));
            }
        }
    }

    // Bit-identity of one tail point across jobs × lanes, adaptive tilt
    // search included.
    let params = MtjParams::date2018();
    let env = TailEnv::new(
        &params,
        VariationModel::default(),
        params.nominal_write_current(),
    );
    let pulse = wer::pulse_for_wer(&env.reference_model(), env.current(), 1e-5);
    let point_opts = |jobs: usize, lanes: usize| TailOptions {
        samples: 600,
        seed: opts.seed,
        jobs,
        lanes,
        pilot_rounds: 2,
        pilot_samples: 128,
        ..TailOptions::default()
    };
    let reference = rare::estimate_tail(&env, pulse, &point_opts(1, 1));
    for (jobs, lanes) in [(2, 8), (4, 64), (1, 16)] {
        let got = rare::estimate_tail(&env, pulse, &point_opts(jobs, lanes));
        if got.estimate != reference.estimate || got.tilt != reference.tilt {
            failures.push(format!(
                "tilted sampler diverges from serial scalar at jobs={jobs} lanes={lanes}"
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ShmooOptions {
        ShmooOptions {
            samples: 400,
            pilot_rounds: 1,
            pilot_samples: 64,
            wer_targets: vec![1e-3, 1e-7],
            sigma_switching_currents: vec![0.06],
            temperatures_c: vec![27.0],
            crosscheck_trials: 4000,
            crosscheck_samples: 800,
            ..ShmooOptions::default()
        }
    }

    #[test]
    fn a_tiny_shmoo_is_well_formed_and_cross_checks() {
        let report = run(&tiny());
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| r.estimate.samples == 400));
        assert!(
            report.crosscheck.agrees,
            "crosscheck: {:?}",
            report.crosscheck
        );
        assert!(report.min_wer() > 0.0);
        assert!(report.deep_speedup_vs_brute_force() > 1.0);
        let md = report.markdown();
        assert!(md.contains("bf-equivalent"));
        assert!(md.contains("agrees"));
    }

    #[test]
    fn the_differential_check_passes_on_the_tiny_configuration() {
        assert!(check(&tiny()).is_empty());
    }

    #[test]
    fn quick_axes_cover_the_deep_tail() {
        let opts = ShmooOptions::quick();
        let axes = opts.axes(&MtjParams::date2018());
        assert_eq!(axes.pulses.len(), 2);
        // Longer pulse = deeper typical-die target.
        assert!(axes.pulses[1] > axes.pulses[0]);
        assert!(opts.samples <= 10_000);
    }
}
