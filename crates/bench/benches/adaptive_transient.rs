//! Step-control benchmark: adaptive LTE-driven stepping against the
//! legacy fixed grid, on the proposed-latch restore transient.
//!
//! Both variants run the identical workload (sparse LU, warm
//! [`SimulationSession`], snapshot-rewound between iterations), so the
//! ratio isolates the step-count win: the restore waveform is mostly
//! flat plateau punctuated by control edges, and the LTE controller
//! spends steps only where the solution actually moves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cells::{LatchConfig, ProposedLatch};
use spice::analysis::{self, StartCondition, StepControl, TransientOptions};
use spice::{SimulationSession, SolverKind};

fn options(step_control: StepControl) -> TransientOptions {
    TransientOptions {
        start: StartCondition::Zero,
        step_control,
        ..TransientOptions::default()
    }
}

fn bench_restore_step_control(c: &mut Criterion) {
    let latch = ProposedLatch::new(LatchConfig::default());
    let step = latch.config().time_step;
    for (name, control) in [
        ("proposed_restore_fixed_dt", StepControl::Fixed),
        ("proposed_restore_adaptive_lte", StepControl::Adaptive),
    ] {
        let (ckt, controls) = latch.restore_circuit([true, false]).expect("build");
        let snap = ckt.snapshot();
        let mut session = SimulationSession::with_solver(ckt, SolverKind::Sparse);
        c.bench_function(name, |b| {
            b.iter(|| {
                session.circuit_mut().restore(&snap);
                let result = session
                    .transient_with_options(controls.total, step, options(control))
                    .expect("restore transient");
                black_box(result.sample_count())
            });
        });
        // The two policies agree on the physics (pinned at interpolation
        // tolerance by the spice crate's `adaptive_equivalence` suite),
        // so the timing ratio is pure step-count economics.
        black_box(analysis::mtj_states(session.circuit()));
    }
}

criterion_group!(benches, bench_restore_step_control);
criterion_main!(benches);
