//! Solver-engine benchmark: the static-symbolic sparse LU against the
//! dense partial-pivoted LU, on the single hottest simulation of the
//! Table II sweep — one proposed-latch restore transient.
//!
//! Both variants run the identical workload through a warm
//! [`SimulationSession`] (snapshot-rewound between iterations), so the
//! ratio isolates the per-iteration assemble + factor + solve cost:
//! the dense engine eliminates the full n×n matrix every Newton
//! iteration, the sparse engine refactors in the frozen pattern and
//! pays one symbolic build per analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cells::{LatchConfig, ProposedLatch};
use spice::analysis::{self, StartCondition, TransientOptions};
use spice::{SimulationSession, SolverKind};

fn cold_start_options() -> TransientOptions {
    TransientOptions {
        start: StartCondition::Zero,
        ..TransientOptions::default()
    }
}

fn bench_restore_solvers(c: &mut Criterion) {
    let latch = ProposedLatch::new(LatchConfig::default());
    let step = latch.config().time_step;
    for (name, solver) in [
        ("proposed_restore_dense_lu", SolverKind::Dense),
        ("proposed_restore_sparse_lu", SolverKind::Sparse),
    ] {
        let (ckt, controls) = latch.restore_circuit([true, false]).expect("build");
        let snap = ckt.snapshot();
        let mut session = SimulationSession::with_solver(ckt, solver);
        c.bench_function(name, |b| {
            b.iter(|| {
                session.circuit_mut().restore(&snap);
                let result = session
                    .transient_with_options(controls.total, step, cold_start_options())
                    .expect("restore transient");
                black_box(result.sample_count())
            });
        });
        // The two engines agree on the physics (pinned at tolerance in
        // the spice crate's `sparse_equivalence` suite), so the timing
        // ratio is pure solver cost.
        black_box(analysis::mtj_states(session.circuit()));
    }
}

criterion_group!(benches, bench_restore_solvers);
criterion_main!(benches);
