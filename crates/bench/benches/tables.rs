//! Criterion benchmarks of the table/figure regeneration paths —
//! one per experiment, exercising exactly the code the report binaries
//! run (at reduced scope so a `cargo bench` pass stays minutes-scale).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cells::{LatchConfig, ProposedLatch, StandardLatch};
use layout::{cells as nv_cells, svg, DesignRules};
use netlist::{benchmarks, CellLibrary};
use nvff::system::{self, EvaluationMode, SystemCosts};
use place::placer::{self, PlacerOptions};

/// Table I: setup assembly and formatting.
fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_setup", |b| {
        b.iter(|| black_box(cells::CircuitSetup::date2018().to_string()));
    });
}

/// Table II (one restore of each design at the typical corner — the
/// unit of work the corner sweep repeats).
fn bench_table2(c: &mut Criterion) {
    let config = LatchConfig::default();
    c.bench_function("table2_standard_restore", |b| {
        let latch = StandardLatch::new(config.clone());
        b.iter(|| black_box(latch.simulate_restore([true]).expect("restore")));
    });
    c.bench_function("table2_proposed_restore", |b| {
        let latch = ProposedLatch::new(config.clone());
        b.iter(|| black_box(latch.simulate_restore([true, false]).expect("restore")));
    });
}

/// Table III: replay of all rows, and the measured flow on s344.
fn bench_table3(c: &mut Criterion) {
    let costs = SystemCosts::paper();
    c.bench_function("table3_replay_all", |b| {
        b.iter(|| black_box(system::table3(&costs, EvaluationMode::Replay)));
    });
    let spec = benchmarks::by_name("s344").expect("benchmark");
    c.bench_function("table3_measured_s344", |b| {
        b.iter(|| black_box(system::evaluate_measured(spec, &costs, usize::MAX)));
    });
}

/// Fig. 6: one full restore waveform capture.
fn bench_fig6(c: &mut Criterion) {
    let latch = ProposedLatch::new(LatchConfig::default());
    c.bench_function("fig6_restore_traces", |b| {
        b.iter(|| black_box(latch.restore_traces([true, false]).expect("traces")));
    });
}

/// Fig. 8: layout synthesis and SVG rendering.
fn bench_fig8(c: &mut Criterion) {
    let rules = DesignRules::n40();
    c.bench_function("fig8_layout_and_svg", |b| {
        b.iter(|| {
            let layout = nv_cells::proposed_2bit_layout(&rules);
            black_box(svg::render(&layout, 220.0))
        });
    });
}

/// Fig. 9: place-and-merge on s344.
fn bench_fig9(c: &mut Criterion) {
    let netlist = benchmarks::generate(benchmarks::by_name("s344").expect("benchmark"));
    let lib = CellLibrary::n40();
    c.bench_function("fig9_place_and_merge_s344", |b| {
        b.iter(|| {
            let placed = placer::place(&netlist, &lib, &PlacerOptions::default());
            black_box(merge::plan(&placed, &merge::MergeOptions::default()))
        });
    });
}

criterion_group!(
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_table3, bench_fig6, bench_fig8, bench_fig9
);
criterion_main!(tables);
