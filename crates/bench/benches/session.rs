//! Engine-comparison benchmarks: the reusable [`SimulationSession`]
//! path against the straight-line reference engine
//! (`spice::analysis::reference`, the pre-rearchitecture seed solver).
//!
//! Two granularities, both on the Table II characterization path:
//!
//! * one proposed-latch restore transient (the single hottest
//!   simulation of the sweep), and
//! * one full per-corner characterization unit — the four restore
//!   patterns, a worst-case store and the leakage operating point the
//!   corner sweep repeats at every grid point.
//!
//! The `*_reference_rebuild` variants do what the seed engine did:
//! rebuild the circuit and reallocate every solver buffer per run. The
//! `*_session_reuse` variants reuse one latch's cached session. Both
//! produce bit-identical waveforms (enforced by the
//! `session_equivalence` test suite in the spice crate), so the ratio
//! is pure engine overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cells::{LatchConfig, ProposedLatch};
use spice::analysis::{self, reference};

const RESTORE_PATTERNS: [[bool; 2]; 4] =
    [[false, false], [false, true], [true, false], [true, true]];

fn cold_start_options() -> analysis::TransientOptions {
    analysis::TransientOptions {
        start: analysis::StartCondition::Zero,
        ..analysis::TransientOptions::default()
    }
}

/// The seed path for one restore: rebuild the circuit, then run the
/// reference engine (which reallocates its matrix, RHS and iterate
/// buffers every Newton iteration and clones the capacitor list every
/// step).
fn restore_via_reference(latch: &ProposedLatch, stored: [bool; 2]) -> usize {
    let (mut ckt, controls) = latch.restore_circuit(stored).expect("build");
    let result = reference::transient_with_options(
        &mut ckt,
        controls.total,
        latch.config().time_step,
        cold_start_options(),
    )
    .expect("reference restore");
    result.sample_count()
}

fn store_via_reference(latch: &ProposedLatch) -> usize {
    let (mut ckt, controls) = latch
        .store_circuit([true, false], [false, true])
        .expect("build");
    let step = latch.config().time_step * 5.0;
    let result = reference::transient(&mut ckt, controls.total, step).expect("reference store");
    result.sample_count()
}

fn bench_proposed_restore(c: &mut Criterion) {
    let latch = ProposedLatch::new(LatchConfig::default());
    c.bench_function("proposed_restore_reference_rebuild", |b| {
        b.iter(|| black_box(restore_via_reference(&latch, [true, false])));
    });
    let session_latch = ProposedLatch::new(LatchConfig::default());
    c.bench_function("proposed_restore_session_reuse", |b| {
        b.iter(|| {
            let (result, _) = session_latch
                .restore_traces([true, false])
                .expect("restore");
            black_box(result.sample_count())
        });
    });
}

fn bench_table2_corner_unit(c: &mut Criterion) {
    let latch = ProposedLatch::new(LatchConfig::default());
    c.bench_function("table2_corner_unit_reference_rebuild", |b| {
        b.iter(|| {
            let mut samples = 0;
            for stored in RESTORE_PATTERNS {
                samples += restore_via_reference(&latch, stored);
            }
            samples += store_via_reference(&latch);
            let mut idle = latch.idle_circuit().expect("build");
            let op = reference::op(&mut idle).expect("reference op");
            black_box(op.branch_current("VDD"));
            black_box(samples)
        });
    });
    let session_latch = ProposedLatch::new(LatchConfig::default());
    c.bench_function("table2_corner_unit_session_reuse", |b| {
        b.iter(|| {
            let mut samples = 0;
            for stored in RESTORE_PATTERNS {
                let (result, _) = session_latch.restore_traces(stored).expect("restore");
                samples += result.sample_count();
            }
            let (result, _) = session_latch
                .store_traces([true, false], [false, true])
                .expect("store");
            samples += result.sample_count();
            black_box(session_latch.leakage().expect("leakage"));
            black_box(samples)
        });
    });
}

criterion_group!(benches, bench_proposed_restore, bench_table2_corner_unit);
criterion_main!(benches);
