//! Criterion benchmarks of the substrate hot paths: the device model,
//! the MNA solver, transient stepping, placement and pairing. These
//! track the performance of the machinery that regenerates the paper's
//! tables.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use merge::{MergeOptions, Strategy};
use mtj::{MtjParams, SwitchingModel};
use netlist::{benchmarks, CellLibrary};
use place::placer::{self, PlacerOptions};
use spice::{analysis, Circuit, SourceWaveform, Technology};
use units::{Capacitance, Current, Resistance, Time, Voltage};

fn bench_mosfet_model(c: &mut Criterion) {
    let tech = Technology::tsmc40lp();
    c.bench_function("mosfet_evaluate", |b| {
        b.iter(|| {
            let op = tech.nmos.evaluate(
                black_box(0.8),
                black_box(0.6),
                black_box(0.0),
                200e-9,
                40e-9,
            );
            black_box(op.id)
        });
    });
}

fn bench_mtj_switching(c: &mut Criterion) {
    let params = MtjParams::date2018();
    let model = SwitchingModel::new(&params);
    c.bench_function("mtj_switching_time", |b| {
        b.iter(|| black_box(model.mean_switching_time(black_box(Current::from_micro_amps(63.0)))));
    });
}

fn rc_ladder(stages: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.add_voltage_source(
        "VIN",
        prev,
        Circuit::GROUND,
        SourceWaveform::dc(Voltage::from_volts(1.0)),
    )
    .expect("source");
    for k in 0..stages {
        let next = ckt.node(&format!("n{k}"));
        ckt.add_resistor(
            &format!("R{k}"),
            prev,
            next,
            Resistance::from_kilo_ohms(1.0),
        )
        .expect("resistor");
        ckt.add_capacitor(
            &format!("C{k}"),
            next,
            Circuit::GROUND,
            Capacitance::from_femto_farads(10.0),
        )
        .expect("capacitor");
        prev = next;
    }
    ckt
}

fn bench_transient(c: &mut Criterion) {
    c.bench_function("transient_rc_ladder_20", |b| {
        b.iter(|| {
            let mut ckt = rc_ladder(20);
            let res = analysis::transient(
                &mut ckt,
                Time::from_nano_seconds(1.0),
                Time::from_pico_seconds(10.0),
            )
            .expect("transient");
            black_box(res.sample_count())
        });
    });
}

fn bench_operating_point(c: &mut Criterion) {
    c.bench_function("op_rc_ladder_50", |b| {
        b.iter(|| {
            let mut ckt = rc_ladder(50);
            black_box(analysis::op(&mut ckt).expect("op"))
        });
    });
}

fn bench_placement(c: &mut Criterion) {
    let spec = benchmarks::by_name("s5378").expect("benchmark");
    let netlist = benchmarks::generate_scaled(spec, 2779);
    let lib = CellLibrary::n40();
    c.bench_function("place_s5378", |b| {
        b.iter(|| {
            black_box(placer::place(
                &netlist,
                &lib,
                &PlacerOptions {
                    refine_passes: 0,
                    ..PlacerOptions::default()
                },
            ))
        });
    });
}

fn bench_pairing(c: &mut Criterion) {
    let spec = benchmarks::by_name("s13207").expect("benchmark");
    let netlist = benchmarks::generate_scaled(spec, 8000);
    let lib = CellLibrary::n40();
    let placed = placer::place(&netlist, &lib, &PlacerOptions::default());
    c.bench_function("merge_pairing_s13207", |b| {
        b.iter(|| {
            black_box(merge::plan(
                &placed,
                &MergeOptions {
                    strategy: Strategy::GreedyClosest,
                    ..MergeOptions::default()
                },
            ))
        });
    });
}

criterion_group!(
    name = substrate;
    config = Criterion::default().sample_size(20);
    targets = bench_mosfet_model,
        bench_mtj_switching,
        bench_transient,
        bench_operating_point,
        bench_placement,
        bench_pairing
);
criterion_main!(substrate);
