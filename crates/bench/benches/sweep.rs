//! Sweep-engine benchmarks: serial versus 4-worker Monte-Carlo
//! throughput on a small write-error-rate grid.
//!
//! The workload is `mtj::wer::monte_carlo_wer_grid` — six
//! `(current, pulse)` points, each running a few hundred stochastic
//! writes with its own counter-seeded RNG. The serial and parallel
//! variants produce bit-identical estimates (enforced by the WER grid
//! tests), so the timing ratio is pure scheduling: what the chunked
//! worker pool buys, and what its cursor/channel overhead costs, on a
//! grid small enough that both matter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mtj::{wer, MtjParams, SwitchingModel};
use units::{Current, Time};

const TRIALS: usize = 200;
const SEED: u64 = 41;

fn wer_points(params: &MtjParams) -> Vec<(Current, Time)> {
    let model = SwitchingModel::new(params);
    let drive = params.nominal_write_current();
    let tau = model.mean_switching_time(drive);
    (1..=6)
        .map(|k| (drive, tau * (f64::from(k) * 0.5)))
        .collect()
}

fn bench_mc_wer(c: &mut Criterion) {
    let params = MtjParams::date2018();
    let points = wer_points(&params);

    c.bench_function("mc_wer_grid_serial", |b| {
        b.iter(|| {
            let (estimates, _) =
                wer::monte_carlo_wer_grid(&params, black_box(&points), TRIALS, SEED, 1);
            black_box(estimates)
        });
    });

    c.bench_function("mc_wer_grid_4_workers", |b| {
        b.iter(|| {
            let (estimates, _) =
                wer::monte_carlo_wer_grid(&params, black_box(&points), TRIALS, SEED, 4);
            black_box(estimates)
        });
    });
}

criterion_group!(benches, bench_mc_wer);
criterion_main!(benches);
