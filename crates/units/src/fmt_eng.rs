//! Engineering-notation formatting shared by all quantity types.

/// Formats `value` (in base SI units) with an engineering prefix and `unit`
/// symbol, e.g. `format_engineering(1.87e-10, "s")` → `"187 ps"`.
///
/// Values are snapped to the prefix ladder from yocto (`1e-24`) to yotta
/// (`1e24`); exact zero renders as `"0 <unit>"`. Mantissas are printed with
/// up to four significant digits, trimming trailing zeros, which is enough
/// to reproduce every figure quoted in the paper (e.g. `4.587 fJ`).
///
/// # Examples
///
/// ```
/// use units::format_engineering;
///
/// assert_eq!(format_engineering(1.1, "V"), "1.1 V");
/// assert_eq!(format_engineering(70e-6, "A"), "70 µA");
/// assert_eq!(format_engineering(4.587e-15, "J"), "4.587 fJ");
/// assert_eq!(format_engineering(0.0, "W"), "0 W");
/// assert_eq!(format_engineering(-3.1e-9, "s"), "-3.1 ns");
/// ```
pub fn format_engineering(value: f64, unit: &str) -> String {
    if value == 0.0 {
        return format!("0 {unit}");
    }
    if !value.is_finite() {
        return format!("{value} {unit}");
    }
    const PREFIXES: [(f64, &str); 17] = [
        (1e24, "Y"),
        (1e21, "Z"),
        (1e18, "E"),
        (1e15, "P"),
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1e0, ""),
        (1e-3, "m"),
        (1e-6, "µ"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
        (1e-18, "a"),
        (1e-21, "z"),
        (1e-24, "y"),
    ];
    let magnitude = value.abs();
    // Pick the largest prefix whose scale does not exceed the magnitude;
    // clamp to the ladder ends so 1e-30 still prints (in yocto).
    let (scale, prefix) = PREFIXES
        .iter()
        .find(|(scale, _)| magnitude >= *scale * (1.0 - 1e-12))
        .copied()
        .unwrap_or(PREFIXES[PREFIXES.len() - 1]);
    let mantissa = value / scale;
    let text = trim_mantissa(mantissa);
    format!("{text} {prefix}{unit}")
}

/// Renders a mantissa with 4 significant digits, trimming trailing zeros.
fn trim_mantissa(mantissa: f64) -> String {
    // |mantissa| is in [1, 1000) except at ladder ends; pick decimals so
    // that the total significant digits are 4.
    let digits_before = if mantissa.abs() >= 100.0 {
        3
    } else if mantissa.abs() >= 10.0 {
        2
    } else {
        1
    };
    let decimals = 4usize.saturating_sub(digits_before);
    let mut text = format!("{mantissa:.decimals$}");
    if text.contains('.') {
        while text.ends_with('0') {
            text.pop();
        }
        if text.ends_with('.') {
            text.pop();
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_has_no_prefix() {
        assert_eq!(format_engineering(0.0, "V"), "0 V");
    }

    #[test]
    fn base_units_render_unprefixed() {
        assert_eq!(format_engineering(1.1, "V"), "1.1 V");
        assert_eq!(format_engineering(27.0, "°C"), "27 °C");
    }

    #[test]
    fn small_values_pick_sub_unit_prefixes() {
        assert_eq!(format_engineering(37e-6, "A"), "37 µA");
        assert_eq!(format_engineering(104e-15, "J"), "104 fJ");
        assert_eq!(format_engineering(1.565e-9, "W"), "1.565 nW");
    }

    #[test]
    fn large_values_pick_super_unit_prefixes() {
        assert_eq!(format_engineering(11_000.0, "Ω"), "11 kΩ");
        assert_eq!(format_engineering(2.5e9, "Hz"), "2.5 GHz");
    }

    #[test]
    fn negative_values_keep_sign() {
        assert_eq!(format_engineering(-0.45, "V"), "-450 mV");
    }

    #[test]
    fn mantissa_keeps_four_significant_digits() {
        assert_eq!(format_engineering(4.5871e-15, "J"), "4.587 fJ");
        assert_eq!(format_engineering(123.456e-12, "s"), "123.5 ps");
    }

    #[test]
    fn non_finite_values_do_not_panic() {
        assert_eq!(format_engineering(f64::INFINITY, "V"), "inf V");
        assert!(format_engineering(f64::NAN, "V").contains("NaN"));
    }

    #[test]
    fn below_ladder_clamps_to_yocto() {
        let text = format_engineering(1e-27, "J");
        assert!(text.ends_with("yJ"), "{text}");
    }
}
