//! Quantity newtypes and their dimensional arithmetic.

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::fmt_eng::format_engineering;

/// Defines one quantity newtype over `f64` with the shared scalar algebra.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal, $base_ctor:ident, $base_getter:ident,
        [ $( ($ctor:ident, $getter:ident, $scale:expr) ),* $(,)? ]
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            #[doc = concat!("Creates a value from base units (", $unit, ").")]
            ///
            /// # Examples
            ///
            /// ```
            #[doc = concat!("let q = units::", stringify!($name), "::", stringify!($base_ctor), "(1.5);")]
            #[doc = concat!("assert_eq!(q.", stringify!($base_getter), "(), 1.5);")]
            /// ```
            #[must_use]
            pub const fn $base_ctor(value: f64) -> Self {
                Self(value)
            }

            #[doc = concat!("Returns the value in base units (", $unit, ").")]
            #[must_use]
            pub const fn $base_getter(self) -> f64 {
                self.0
            }

            $(
                #[doc = concat!("Creates a value from the prefixed unit (×", stringify!($scale), " ", $unit, ").")]
                #[must_use]
                pub fn $ctor(value: f64) -> Self {
                    Self(value * $scale)
                }

                #[doc = concat!("Returns the value in the prefixed unit (×", stringify!($scale), " ", $unit, ").")]
                #[must_use]
                pub fn $getter(self) -> f64 {
                    self.0 / $scale
                }
            )*

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other` (NaN-propagating via
            /// `f64::max` semantics: NaN loses).
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns `true` if the underlying value is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&format_engineering(self.0, $unit))
            }
        }

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                self.0.partial_cmp(&other.0)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Electric potential, stored in volts.
    Voltage, "V", from_volts, volts,
    [(from_milli_volts, milli_volts, 1e-3)]
);

quantity!(
    /// Electric current, stored in amperes.
    Current, "A", from_amps, amps,
    [
        (from_milli_amps, milli_amps, 1e-3),
        (from_micro_amps, micro_amps, 1e-6),
        (from_nano_amps, nano_amps, 1e-9),
        (from_pico_amps, pico_amps, 1e-12),
    ]
);

quantity!(
    /// Electrical resistance, stored in ohms.
    Resistance, "Ω", from_ohms, ohms,
    [
        (from_kilo_ohms, kilo_ohms, 1e3),
        (from_mega_ohms, mega_ohms, 1e6),
    ]
);

quantity!(
    /// Capacitance, stored in farads.
    Capacitance, "F", from_farads, farads,
    [
        (from_pico_farads, pico_farads, 1e-12),
        (from_femto_farads, femto_farads, 1e-15),
        (from_atto_farads, atto_farads, 1e-18),
    ]
);

quantity!(
    /// Time, stored in seconds.
    Time, "s", from_seconds, seconds,
    [
        (from_micro_seconds, micro_seconds, 1e-6),
        (from_nano_seconds, nano_seconds, 1e-9),
        (from_pico_seconds, pico_seconds, 1e-12),
        (from_femto_seconds, femto_seconds, 1e-15),
    ]
);

quantity!(
    /// Energy, stored in joules.
    Energy, "J", from_joules, joules,
    [
        (from_pico_joules, pico_joules, 1e-12),
        (from_femto_joules, femto_joules, 1e-15),
        (from_atto_joules, atto_joules, 1e-18),
    ]
);

quantity!(
    /// Power, stored in watts.
    Power, "W", from_watts, watts,
    [
        (from_milli_watts, milli_watts, 1e-3),
        (from_micro_watts, micro_watts, 1e-6),
        (from_nano_watts, nano_watts, 1e-9),
        (from_pico_watts, pico_watts, 1e-12),
    ]
);

quantity!(
    /// Electric charge, stored in coulombs.
    Charge, "C", from_coulombs, coulombs,
    [(from_femto_coulombs, femto_coulombs, 1e-15)]
);

quantity!(
    /// Length, stored in metres.
    Length, "m", from_meters, meters,
    [
        (from_micro_meters, micro_meters, 1e-6),
        (from_nano_meters, nano_meters, 1e-9),
    ]
);

quantity!(
    /// Frequency, stored in hertz.
    Frequency, "Hz", from_hertz, hertz,
    [
        (from_mega_hertz, mega_hertz, 1e6),
        (from_giga_hertz, giga_hertz, 1e9),
    ]
);

/// Planar area, stored in square metres.
///
/// Areas in physical design are usually quoted in µm²; see
/// [`Area::from_square_micro_meters`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Area(f64);

impl Area {
    /// The zero area.
    pub const ZERO: Self = Self(0.0);

    /// Creates an area from square metres.
    #[must_use]
    pub const fn from_square_meters(value: f64) -> Self {
        Self(value)
    }

    /// Returns the area in square metres.
    #[must_use]
    pub const fn square_meters(self) -> f64 {
        self.0
    }

    /// Creates an area from square micrometres (the standard-cell unit).
    ///
    /// # Examples
    ///
    /// ```
    /// let cell = units::Area::from_square_micro_meters(3.696);
    /// assert!((cell.square_micro_meters() - 3.696).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn from_square_micro_meters(value: f64) -> Self {
        Self(value * 1e-12)
    }

    /// Returns the area in square micrometres.
    #[must_use]
    pub fn square_micro_meters(self) -> f64 {
        self.0 / 1e-12
    }

    /// Returns the absolute value.
    #[must_use]
    pub fn abs(self) -> Self {
        Self(self.0.abs())
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Engineering prefixes do not compose for squared units; report µm².
        write!(f, "{:.3} µm²", self.square_micro_meters())
    }
}

impl PartialOrd for Area {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

impl Add for Area {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Area {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Area {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<f64> for Area {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<f64> for Area {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Div for Area {
    type Output = f64;
    fn div(self, rhs: Self) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Area {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|a| a.0).sum())
    }
}

/// Temperature, stored in degrees Celsius (the unit circuit setups quote).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Temperature(f64);

impl Temperature {
    /// Absolute zero expressed in Celsius.
    pub const ABSOLUTE_ZERO: Self = Self(-273.15);

    /// Creates a temperature from degrees Celsius.
    #[must_use]
    pub const fn from_celsius(value: f64) -> Self {
        Self(value)
    }

    /// Returns the temperature in degrees Celsius.
    #[must_use]
    pub const fn celsius(self) -> f64 {
        self.0
    }

    /// Returns the temperature in kelvin.
    ///
    /// # Examples
    ///
    /// ```
    /// let room = units::Temperature::from_celsius(27.0);
    /// assert!((room.kelvin() - 300.15).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn kelvin(self) -> f64 {
        self.0 + 273.15
    }

    /// Creates a temperature from kelvin.
    #[must_use]
    pub fn from_kelvin(value: f64) -> Self {
        Self(value - 273.15)
    }

    /// Thermal voltage `kT/q` at this temperature.
    #[must_use]
    pub fn thermal_voltage(self) -> Voltage {
        const BOLTZMANN: f64 = 1.380_649e-23;
        const ELECTRON_CHARGE: f64 = 1.602_176_634e-19;
        Voltage::from_volts(BOLTZMANN * self.kelvin() / ELECTRON_CHARGE)
    }
}

impl fmt::Display for Temperature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} °C", self.0)
    }
}

impl PartialOrd for Temperature {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

// ---------------------------------------------------------------------------
// Cross-quantity relations (Ohm's law, power, charge, geometry).
// ---------------------------------------------------------------------------

impl Div<Current> for Voltage {
    type Output = Resistance;
    /// Ohm's law: `R = V / I`.
    fn div(self, rhs: Current) -> Resistance {
        Resistance::from_ohms(self.volts() / rhs.amps())
    }
}

impl Div<Resistance> for Voltage {
    type Output = Current;
    /// Ohm's law: `I = V / R`.
    fn div(self, rhs: Resistance) -> Current {
        Current::from_amps(self.volts() / rhs.ohms())
    }
}

impl Mul<Resistance> for Current {
    type Output = Voltage;
    /// Ohm's law: `V = I · R`.
    fn mul(self, rhs: Resistance) -> Voltage {
        Voltage::from_volts(self.amps() * rhs.ohms())
    }
}

impl Mul<Current> for Voltage {
    type Output = Power;
    /// Instantaneous power: `P = V · I`.
    fn mul(self, rhs: Current) -> Power {
        Power::from_watts(self.volts() * rhs.amps())
    }
}

impl Mul<Time> for Power {
    type Output = Energy;
    /// Energy over an interval: `E = P · t`.
    fn mul(self, rhs: Time) -> Energy {
        Energy::from_joules(self.watts() * rhs.seconds())
    }
}

impl Div<Time> for Energy {
    type Output = Power;
    /// Average power: `P = E / t`.
    fn div(self, rhs: Time) -> Power {
        Power::from_watts(self.joules() / rhs.seconds())
    }
}

impl Mul<Voltage> for Capacitance {
    type Output = Charge;
    /// Stored charge: `Q = C · V`.
    fn mul(self, rhs: Voltage) -> Charge {
        Charge::from_coulombs(self.farads() * rhs.volts())
    }
}

impl Mul<Time> for Current {
    type Output = Charge;
    /// Transferred charge: `Q = I · t`.
    fn mul(self, rhs: Time) -> Charge {
        Charge::from_coulombs(self.amps() * rhs.seconds())
    }
}

impl Div<Time> for Charge {
    type Output = Current;
    /// Average current: `I = Q / t`.
    fn div(self, rhs: Time) -> Current {
        Current::from_amps(self.coulombs() / rhs.seconds())
    }
}

impl Mul<Length> for Length {
    type Output = Area;
    /// Rectangle area: `A = w · h`.
    fn mul(self, rhs: Length) -> Area {
        Area::from_square_meters(self.meters() * rhs.meters())
    }
}

impl Div<Length> for Area {
    type Output = Length;
    /// Rectangle side: `w = A / h`.
    fn div(self, rhs: Length) -> Length {
        Length::from_meters(self.square_meters() / rhs.meters())
    }
}

impl Time {
    /// Reciprocal: `f = 1 / t`.
    ///
    /// # Examples
    ///
    /// ```
    /// let period = units::Time::from_nano_seconds(1.0);
    /// assert!((period.to_frequency().giga_hertz() - 1.0).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn to_frequency(self) -> Frequency {
        Frequency::from_hertz(1.0 / self.seconds())
    }
}

impl Frequency {
    /// Reciprocal: `t = 1 / f`.
    #[must_use]
    pub fn to_period(self) -> Time {
        Time::from_seconds(1.0 / self.hertz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn ohms_law_round_trips() {
        let v = Voltage::from_volts(1.1);
        let r = Resistance::from_kilo_ohms(11.0);
        let i = v / r;
        assert!((i.micro_amps() - 100.0).abs() < EPS);
        let back = i * r;
        assert!((back.volts() - 1.1).abs() < EPS);
        assert!(((v / i).ohms() - 11_000.0).abs() < 1e-6);
    }

    #[test]
    fn power_times_time_is_energy() {
        let p = Power::from_micro_watts(2.0);
        let t = Time::from_nano_seconds(3.0);
        let e = p * t;
        assert!((e.femto_joules() - 6.0).abs() < 1e-9);
        assert!(((e / t).micro_watts() - 2.0).abs() < EPS);
    }

    #[test]
    fn charge_relations() {
        let c = Capacitance::from_femto_farads(2.0);
        let v = Voltage::from_volts(1.1);
        let q = c * v;
        assert!((q.femto_coulombs() - 2.2).abs() < EPS);

        let i = Current::from_micro_amps(70.0);
        let t = Time::from_nano_seconds(2.0);
        assert!(((i * t).coulombs() - 140e-15).abs() < 1e-24);
        assert!(((q / t).amps() - 1.1e-6).abs() < 1e-12);
    }

    #[test]
    fn geometry_relations() {
        let w = Length::from_micro_meters(1.675);
        let h = Length::from_micro_meters(2.0);
        let a = w * h;
        assert!((a.square_micro_meters() - 3.35).abs() < EPS);
        assert!(((a / h).micro_meters() - 1.675).abs() < EPS);
    }

    #[test]
    fn frequency_period_round_trip() {
        let f = Frequency::from_mega_hertz(20.0);
        let t = f.to_period();
        assert!((t.nano_seconds() - 50.0).abs() < EPS);
        assert!((t.to_frequency().mega_hertz() - 20.0).abs() < EPS);
    }

    #[test]
    fn scalar_algebra() {
        let mut e = Energy::from_femto_joules(2.0);
        e += Energy::from_femto_joules(3.0);
        assert!((e.femto_joules() - 5.0).abs() < EPS);
        e -= Energy::from_femto_joules(1.0);
        assert!((e.femto_joules() - 4.0).abs() < EPS);
        assert!(((-e).femto_joules() + 4.0).abs() < EPS);
        assert!(((e * 2.0).femto_joules() - 8.0).abs() < EPS);
        assert!(((2.0 * e).femto_joules() - 8.0).abs() < EPS);
        assert!(((e / 2.0).femto_joules() - 2.0).abs() < EPS);
        assert!((e / Energy::from_femto_joules(2.0) - 2.0).abs() < EPS);
    }

    #[test]
    fn sums_accumulate() {
        let total: Energy = (1..=4)
            .map(|k| Energy::from_femto_joules(f64::from(k)))
            .sum();
        assert!((total.femto_joules() - 10.0).abs() < EPS);
        let area: Area = [1.0, 2.5]
            .iter()
            .map(|&a| Area::from_square_micro_meters(a))
            .sum();
        assert!((area.square_micro_meters() - 3.5).abs() < EPS);
    }

    #[test]
    fn ordering_and_extrema() {
        let a = Time::from_pico_seconds(187.0);
        let b = Time::from_pico_seconds(360.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!((-a).abs(), a);
    }

    #[test]
    fn temperature_conversions() {
        let t = Temperature::from_celsius(27.0);
        assert!((t.kelvin() - 300.15).abs() < 1e-9);
        assert!((Temperature::from_kelvin(300.15).celsius() - 27.0).abs() < 1e-9);
        // kT/q at 300 K is about 25.9 mV.
        let vt = t.thermal_voltage();
        assert!(vt.milli_volts() > 25.0 && vt.milli_volts() < 27.0);
    }

    #[test]
    fn display_uses_engineering_notation() {
        assert_eq!(Voltage::from_volts(1.1).to_string(), "1.1 V");
        assert_eq!(Current::from_micro_amps(37.0).to_string(), "37 µA");
        assert_eq!(Time::from_pico_seconds(600.0).to_string(), "600 ps");
        assert_eq!(Energy::from_femto_joules(104.0).to_string(), "104 fJ");
        assert_eq!(Power::from_pico_watts(4998.0).to_string(), "4.998 nW");
        assert_eq!(
            Area::from_square_micro_meters(5.635).to_string(),
            "5.635 µm²"
        );
        assert_eq!(Temperature::from_celsius(27.0).to_string(), "27 °C");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Voltage::default(), Voltage::ZERO);
        assert_eq!(Area::default(), Area::ZERO);
    }
}
