//! Typed physical quantities for circuit-level and physical-design modelling.
//!
//! Every quantity is a newtype over `f64` storing the value in its base SI
//! unit (volts, amperes, seconds, …). Construction helpers accept the SI
//! prefixes that actually occur in the spintronic flip-flop design space
//! (`Voltage::from_volts(1.1)`, `Current::from_micro_amps(70.0)`,
//! `Time::from_pico_seconds(187.0)`), and [`Display`] renders engineering
//! notation so simulation reports read like a datasheet.
//!
//! Dimensional arithmetic is implemented for the products and quotients
//! that appear in the codebase: `V / I = R`, `V * I = P`, `P * t = E`,
//! `C * V = Q`, `Q / t = I`, `Length * Length = Area`, and so on. This is
//! deliberately not a full dimensional-analysis framework — it is the small,
//! auditable set of relations a circuit simulator needs, kept honest by the
//! type system (see C-NEWTYPE).
//!
//! # Examples
//!
//! ```
//! use units::{Voltage, Resistance, Time};
//!
//! let vdd = Voltage::from_volts(1.1);
//! let r_p = Resistance::from_kilo_ohms(5.0);
//! let i = vdd / r_p;
//! assert!((i.amps() - 220e-6).abs() < 1e-12);
//!
//! let delay = Time::from_pico_seconds(187.0);
//! assert_eq!(format!("{delay}"), "187 ps");
//! ```
//!
//! [`Display`]: core::fmt::Display

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fmt_eng;
mod quantities;

pub use fmt_eng::format_engineering;
pub use quantities::{
    Area, Capacitance, Charge, Current, Energy, Frequency, Length, Power, Resistance, Temperature,
    Time, Voltage,
};
