//! Programmatic circuit construction.

use std::collections::HashMap;

use mtj::{Mtj, MtjState};
use units::{Capacitance, Length, Resistance};

use crate::device::Device;
pub use crate::device::NodeId;
use crate::error::SpiceError;
use crate::mosfet::{MosfetModel, Technology};
use crate::source::SourceWaveform;

/// A flat transistor-level circuit: named nodes plus a device list.
///
/// Nodes are created on demand with [`Circuit::node`]; ground pre-exists
/// as [`Circuit::GROUND`]. Builder methods validate device parameters and
/// reject duplicate instance names, so a constructed circuit is always
/// analyzable (up to topology errors like floating nodes, which surface
/// as [`SpiceError::SingularMatrix`] at analysis time).
///
/// # Examples
///
/// A resistive divider:
///
/// ```
/// use spice::{Circuit, SourceWaveform, analysis};
/// use units::{Resistance, Voltage};
///
/// # fn main() -> Result<(), spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("vin");
/// let mid = ckt.node("mid");
/// ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(Voltage::from_volts(2.0)));
/// ckt.add_resistor("R1", vin, mid, Resistance::from_kilo_ohms(1.0));
/// ckt.add_resistor("R2", mid, Circuit::GROUND, Resistance::from_kilo_ohms(3.0));
/// let op = analysis::op(&mut ckt)?;
/// assert!((op.voltage(mid) - 1.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_lookup: HashMap<String, usize>,
    devices: Vec<Device>,
    vsource_count: usize,
}

/// The mutable run state of a [`Circuit`], captured by
/// [`Circuit::snapshot`]: MTJ device state and source waveforms, keyed
/// by device index.
///
/// Everything else in a circuit (topology, passive values, MOSFET
/// geometry) is immutable during analysis, so this is all that needs
/// saving to replay a simulation from the same starting point.
#[derive(Debug, Clone)]
pub struct CircuitSnapshot {
    mtjs: Vec<(usize, Mtj)>,
    waves: Vec<(usize, SourceWaveform)>,
}

impl Circuit {
    /// The ground node.
    pub const GROUND: NodeId = NodeId::GROUND;

    /// Creates an empty circuit containing only the ground node.
    #[must_use]
    pub fn new() -> Self {
        let mut c = Self {
            node_names: Vec::new(),
            node_lookup: HashMap::new(),
            devices: Vec::new(),
            vsource_count: 0,
        };
        c.node_names.push("0".to_owned());
        c.node_lookup.insert("0".to_owned(), 0);
        c
    }

    /// Returns the node named `name`, creating it if necessary.
    /// The names `"0"` and `"gnd"` both resolve to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Self::GROUND;
        }
        if let Some(&idx) = self.node_lookup.get(name) {
            return NodeId(idx);
        }
        let idx = self.node_names.len();
        self.node_names.push(name.to_owned());
        self.node_lookup.insert(name.to_owned(), idx);
        NodeId(idx)
    }

    /// Looks up an existing node without creating it.
    #[must_use]
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(Self::GROUND);
        }
        self.node_lookup.get(name).map(|&i| NodeId(i))
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` did not come from this circuit.
    #[must_use]
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Number of nodes including ground.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of voltage sources (MNA branch unknowns).
    #[must_use]
    pub fn vsource_count(&self) -> usize {
        self.vsource_count
    }

    /// The devices, in insertion order.
    #[must_use]
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Mutable device access (used by the transient engine to advance MTJ
    /// state; public so callers can precondition MTJ states between
    /// analyses).
    pub fn devices_mut(&mut self) -> &mut [Device] {
        &mut self.devices
    }

    /// Number of MOSFETs — Table II's "# of transistors" metric.
    #[must_use]
    pub fn transistor_count(&self) -> usize {
        self.devices.iter().filter(|d| d.is_transistor()).count()
    }

    /// Magnetisation state of the named MTJ device, if present.
    #[must_use]
    pub fn mtj_state(&self, name: &str) -> Option<MtjState> {
        self.devices.iter().find_map(|d| match d {
            Device::Mtj {
                name: n, device, ..
            } if n == name => Some(device.state()),
            _ => None,
        })
    }

    /// Sets the magnetisation state of the named MTJ device (test
    /// preconditioning before a restore-phase simulation).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownTrace`] if no MTJ has that name.
    pub fn set_mtj_state(&mut self, name: &str, state: MtjState) -> Result<(), SpiceError> {
        for d in &mut self.devices {
            if let Device::Mtj {
                name: n, device, ..
            } = d
            {
                if n == name {
                    device.set_state(state);
                    return Ok(());
                }
            }
        }
        Err(SpiceError::UnknownTrace { name: name.into() })
    }

    fn check_name(&self, name: &str) -> Result<(), SpiceError> {
        if self.devices.iter().any(|d| d.name() == name) {
            Err(SpiceError::DuplicateDevice { name: name.into() })
        } else {
            Ok(())
        }
    }

    fn check_node(&self, device: &str, node: NodeId) -> Result<(), SpiceError> {
        if node.0 < self.node_names.len() {
            Ok(())
        } else {
            Err(SpiceError::UnknownNode {
                device: device.into(),
            })
        }
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names, foreign nodes, and non-positive or
    /// non-finite resistance.
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        r: Resistance,
    ) -> Result<(), SpiceError> {
        self.check_name(name)?;
        self.check_node(name, a)?;
        self.check_node(name, b)?;
        if !(r.ohms() > 0.0 && r.ohms().is_finite()) {
            return Err(SpiceError::InvalidDevice {
                device: name.into(),
                reason: format!("resistance must be positive and finite, got {r}"),
            });
        }
        self.devices.push(Device::Resistor {
            name: name.into(),
            a,
            b,
            ohms: r.ohms(),
        });
        Ok(())
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names, foreign nodes, and non-positive or
    /// non-finite capacitance.
    pub fn add_capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        c: Capacitance,
    ) -> Result<(), SpiceError> {
        self.check_name(name)?;
        self.check_node(name, a)?;
        self.check_node(name, b)?;
        if !(c.farads() > 0.0 && c.farads().is_finite()) {
            return Err(SpiceError::InvalidDevice {
                device: name.into(),
                reason: format!("capacitance must be positive and finite, got {c}"),
            });
        }
        self.devices.push(Device::Capacitor {
            name: name.into(),
            a,
            b,
            farads: c.farads(),
        });
        Ok(())
    }

    /// Adds an independent voltage source (`pos` − `neg` = waveform).
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and foreign nodes.
    pub fn add_voltage_source(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        wave: SourceWaveform,
    ) -> Result<(), SpiceError> {
        self.check_name(name)?;
        self.check_node(name, pos)?;
        self.check_node(name, neg)?;
        let branch = self.vsource_count;
        self.vsource_count += 1;
        self.devices.push(Device::VoltageSource {
            name: name.into(),
            pos,
            neg,
            wave,
            branch,
        });
        Ok(())
    }

    /// Adds an independent current source (current flows `pos` → `neg`
    /// through the source; the waveform value is in amperes).
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and foreign nodes.
    pub fn add_current_source(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        wave: SourceWaveform,
    ) -> Result<(), SpiceError> {
        self.check_name(name)?;
        self.check_node(name, pos)?;
        self.check_node(name, neg)?;
        self.devices.push(Device::CurrentSource {
            name: name.into(),
            pos,
            neg,
            wave,
        });
        Ok(())
    }

    /// Adds a MOSFET with an explicit model.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names, foreign nodes, and non-positive width or
    /// length.
    #[allow(clippy::too_many_arguments)]
    pub fn add_mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        model: MosfetModel,
        w: Length,
        l: Length,
    ) -> Result<(), SpiceError> {
        self.check_name(name)?;
        self.check_node(name, d)?;
        self.check_node(name, g)?;
        self.check_node(name, s)?;
        if w.meters() <= 0.0 || l.meters() <= 0.0 {
            return Err(SpiceError::InvalidDevice {
                device: name.into(),
                reason: "width and length must be positive".into(),
            });
        }
        self.devices.push(Device::Mosfet {
            name: name.into(),
            d,
            g,
            s,
            model,
            w: w.meters(),
            l: l.meters(),
        });
        Ok(())
    }

    /// Adds an N-channel MOSFET from a technology at minimum length.
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::add_mosfet`].
    pub fn add_nmos(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        tech: &Technology,
        w: Length,
    ) -> Result<(), SpiceError> {
        self.add_mosfet(name, d, g, s, tech.nmos, w, Length::from_meters(tech.l_min))
    }

    /// Adds a P-channel MOSFET from a technology at minimum length.
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::add_mosfet`].
    pub fn add_pmos(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        tech: &Technology,
        w: Length,
    ) -> Result<(), SpiceError> {
        self.add_mosfet(name, d, g, s, tech.pmos, w, Length::from_meters(tech.l_min))
    }

    /// Adds a magnetic tunnel junction (positive current direction a→b).
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and foreign nodes.
    pub fn add_mtj(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        device: Mtj,
    ) -> Result<(), SpiceError> {
        self.check_name(name)?;
        self.check_node(name, a)?;
        self.check_node(name, b)?;
        self.devices.push(Device::Mtj {
            name: name.into(),
            a,
            b,
            device,
        });
        Ok(())
    }

    /// Sets the waveform of the named voltage or current source.
    ///
    /// This is the cheap way to re-aim an existing circuit at a new
    /// stimulus between [`SimulationSession`](crate::SimulationSession)
    /// runs, instead of rebuilding the whole circuit.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownTrace`] if no source has that name.
    pub fn set_source_waveform(
        &mut self,
        name: &str,
        wave: SourceWaveform,
    ) -> Result<(), SpiceError> {
        for d in &mut self.devices {
            match d {
                Device::VoltageSource {
                    name: n, wave: w, ..
                }
                | Device::CurrentSource {
                    name: n, wave: w, ..
                } if n == name => {
                    *w = wave;
                    return Ok(());
                }
                _ => {}
            }
        }
        Err(SpiceError::UnknownTrace { name: name.into() })
    }

    /// Captures the circuit's mutable run state: every MTJ device (full
    /// magnetisation state, not just P/AP) and every source waveform.
    ///
    /// Together with [`Circuit::restore`] this brackets a simulation so
    /// the same circuit — and a [`SimulationSession`](crate::SimulationSession)
    /// wrapping it — can be reused for the next run without rebuilding:
    /// analyses mutate nothing else.
    #[must_use]
    pub fn snapshot(&self) -> CircuitSnapshot {
        let mut mtjs = Vec::new();
        let mut waves = Vec::new();
        for (i, d) in self.devices.iter().enumerate() {
            match d {
                Device::Mtj { device, .. } => mtjs.push((i, device.clone())),
                Device::VoltageSource { wave, .. } | Device::CurrentSource { wave, .. } => {
                    waves.push((i, wave.clone()));
                }
                _ => {}
            }
        }
        CircuitSnapshot { mtjs, waves }
    }

    /// Restores the run state captured by [`Circuit::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a different circuit (device
    /// indices or kinds no longer line up).
    pub fn restore(&mut self, snap: &CircuitSnapshot) {
        for (i, mtj) in &snap.mtjs {
            match self.devices.get_mut(*i) {
                Some(Device::Mtj { device, .. }) => *device = mtj.clone(),
                _ => panic!("snapshot does not match this circuit"),
            }
        }
        for (i, wave) in &snap.waves {
            match self.devices.get_mut(*i) {
                Some(Device::VoltageSource { wave: w, .. })
                | Some(Device::CurrentSource { wave: w, .. }) => *w = wave.clone(),
                _ => panic!("snapshot does not match this circuit"),
            }
        }
    }

    /// Size of the MNA unknown vector: non-ground nodes plus one branch
    /// current per voltage source.
    #[must_use]
    pub fn unknown_count(&self) -> usize {
        (self.node_count() - 1) + self.vsource_count
    }

    /// MNA unknown index of a node's voltage (`None` for ground).
    #[must_use]
    pub fn voltage_index(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.0 - 1)
        }
    }

    /// MNA unknown index of a voltage-source branch current.
    #[must_use]
    pub fn branch_index(&self, branch: usize) -> usize {
        (self.node_count() - 1) + branch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtj::{MtjParams, WritePolarity};
    use units::Voltage;

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), Circuit::GROUND);
        assert_eq!(c.node("gnd"), Circuit::GROUND);
        assert_eq!(c.node("GND"), Circuit::GROUND);
        assert_eq!(c.find_node("0"), Some(Circuit::GROUND));
    }

    #[test]
    fn nodes_are_interned() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        let b = c.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.find_node("b"), Some(b));
        assert_eq!(c.find_node("zzz"), None);
    }

    #[test]
    fn duplicate_device_names_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R1", a, Circuit::GROUND, Resistance::from_ohms(1.0))
            .expect("first R1");
        let err = c
            .add_resistor("R1", a, Circuit::GROUND, Resistance::from_ohms(2.0))
            .unwrap_err();
        assert!(matches!(err, SpiceError::DuplicateDevice { .. }));
    }

    #[test]
    fn nonphysical_parameters_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert!(c
            .add_resistor("R", a, Circuit::GROUND, Resistance::from_ohms(0.0))
            .is_err());
        assert!(c
            .add_capacitor("C", a, Circuit::GROUND, Capacitance::from_farads(-1.0))
            .is_err());
        let t = Technology::tsmc40lp();
        assert!(c
            .add_nmos("M", a, a, Circuit::GROUND, &t, Length::from_meters(0.0))
            .is_err());
    }

    #[test]
    fn unknown_vector_layout() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(Voltage::ZERO))
            .expect("V1");
        c.add_voltage_source("V2", b, Circuit::GROUND, SourceWaveform::dc(Voltage::ZERO))
            .expect("V2");
        assert_eq!(c.vsource_count(), 2);
        assert_eq!(c.unknown_count(), 4); // 2 nodes + 2 branches
        assert_eq!(c.voltage_index(Circuit::GROUND), None);
        assert_eq!(c.voltage_index(a), Some(0));
        assert_eq!(c.voltage_index(b), Some(1));
        assert_eq!(c.branch_index(0), 2);
        assert_eq!(c.branch_index(1), 3);
    }

    #[test]
    fn transistor_count_counts_mosfets_only() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let t = Technology::tsmc40lp();
        c.add_nmos(
            "M1",
            a,
            a,
            Circuit::GROUND,
            &t,
            Length::from_nano_meters(200.0),
        )
        .expect("M1");
        c.add_pmos(
            "M2",
            a,
            a,
            Circuit::GROUND,
            &t,
            Length::from_nano_meters(200.0),
        )
        .expect("M2");
        c.add_resistor("R1", a, Circuit::GROUND, Resistance::from_ohms(5.0))
            .expect("R1");
        assert_eq!(c.transistor_count(), 2);
    }

    #[test]
    fn source_waveform_can_be_retargeted() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0))
            .expect("V1");
        c.add_current_source("I1", a, Circuit::GROUND, SourceWaveform::Dc(1e-6))
            .expect("I1");
        c.set_source_waveform("V1", SourceWaveform::Dc(2.0))
            .expect("retarget V1");
        c.set_source_waveform("I1", SourceWaveform::Dc(2e-6))
            .expect("retarget I1");
        assert!(c
            .set_source_waveform("nope", SourceWaveform::Dc(0.0))
            .is_err());
        let waves: Vec<_> = c
            .devices()
            .iter()
            .filter_map(|d| match d {
                Device::VoltageSource { wave, .. } | Device::CurrentSource { wave, .. } => {
                    Some(wave.clone())
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            waves,
            vec![SourceWaveform::Dc(2.0), SourceWaveform::Dc(2e-6)]
        );
    }

    #[test]
    fn snapshot_restores_mtj_state_and_waveforms() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let params = MtjParams::date2018();
        c.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0))
            .expect("V1");
        c.add_mtj(
            "X1",
            a,
            Circuit::GROUND,
            Mtj::new(params, MtjState::Parallel, WritePolarity::default()),
        )
        .expect("X1");
        let snap = c.snapshot();
        c.set_mtj_state("X1", MtjState::AntiParallel).expect("flip");
        c.set_source_waveform("V1", SourceWaveform::Dc(0.0))
            .expect("retune");
        c.restore(&snap);
        assert_eq!(c.mtj_state("X1"), Some(MtjState::Parallel));
        let wave = c
            .devices()
            .iter()
            .find_map(|d| match d {
                Device::VoltageSource { wave, .. } => Some(wave.clone()),
                _ => None,
            })
            .expect("V1 present");
        assert_eq!(wave, SourceWaveform::Dc(1.0));
    }

    #[test]
    #[should_panic(expected = "snapshot does not match this circuit")]
    fn restoring_a_foreign_snapshot_panics() {
        let mut donor = Circuit::new();
        let a = donor.node("a");
        donor
            .add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0))
            .expect("V1");
        let snap = donor.snapshot();
        let mut other = Circuit::new();
        let b = other.node("b");
        other
            .add_resistor("R1", b, Circuit::GROUND, Resistance::from_ohms(1.0))
            .expect("R1");
        other.restore(&snap);
    }

    #[test]
    fn mtj_state_round_trip() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let params = MtjParams::date2018();
        let dev = Mtj::new(params, MtjState::Parallel, WritePolarity::default());
        c.add_mtj("X1", a, Circuit::GROUND, dev).expect("X1");
        assert_eq!(c.mtj_state("X1"), Some(MtjState::Parallel));
        c.set_mtj_state("X1", MtjState::AntiParallel).expect("set");
        assert_eq!(c.mtj_state("X1"), Some(MtjState::AntiParallel));
        assert!(c.set_mtj_state("nope", MtjState::Parallel).is_err());
        assert_eq!(c.mtj_state("nope"), None);
    }
}
