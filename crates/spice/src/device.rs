//! Circuit elements and their parameters.

use mtj::Mtj;

use crate::mosfet::MosfetModel;
use crate::source::SourceWaveform;

/// Node handle within a [`crate::Circuit`]. `NodeId(0)` is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground node (reference potential, always index 0).
    pub const GROUND: NodeId = NodeId(0);

    /// Returns `true` for the ground node.
    #[must_use]
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// Raw index into the circuit's node table.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// One circuit element.
///
/// Devices are created through the [`crate::Circuit`] builder methods,
/// which validate parameters and enforce unique names; the enum itself is
/// exposed read-only for inspection (e.g. counting transistors of a cell).
#[derive(Debug, Clone)]
pub enum Device {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// Device name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// Device name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads.
        farads: f64,
    },
    /// Independent voltage source; adds one MNA branch unknown.
    VoltageSource {
        /// Device name.
        name: String,
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Waveform in volts.
        wave: SourceWaveform,
        /// Branch-current index (assigned by the circuit).
        branch: usize,
    },
    /// Independent current source driving current from `pos` through the
    /// source to `neg` (SPICE convention).
    CurrentSource {
        /// Device name.
        name: String,
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Waveform in amperes.
        wave: SourceWaveform,
    },
    /// MOSFET (drain, gate, source; bulk tied to the supply rail implied
    /// by the model polarity).
    Mosfet {
        /// Device name.
        name: String,
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Compact model parameters.
        model: MosfetModel,
        /// Drawn channel width, metres.
        w: f64,
        /// Drawn channel length, metres.
        l: f64,
    },
    /// Magnetic tunnel junction between `a` and `b`; its resistance
    /// follows the magnetisation state and transient analysis integrates
    /// switching progress from the branch current (positive a→b).
    Mtj {
        /// Device name.
        name: String,
        /// First terminal (current into this terminal is positive).
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// The stateful junction.
        device: Mtj,
    },
}

impl Device {
    /// The device's instance name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Self::Resistor { name, .. }
            | Self::Capacitor { name, .. }
            | Self::VoltageSource { name, .. }
            | Self::CurrentSource { name, .. }
            | Self::Mosfet { name, .. }
            | Self::Mtj { name, .. } => name,
        }
    }

    /// `true` for MOSFET devices — convenient for transistor counting,
    /// one of Table II's reported metrics.
    #[must_use]
    pub fn is_transistor(&self) -> bool {
        matches!(self, Self::Mosfet { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::Technology;

    #[test]
    fn ground_is_node_zero() {
        assert!(NodeId::GROUND.is_ground());
        assert_eq!(NodeId::GROUND.index(), 0);
        assert!(!NodeId(3).is_ground());
    }

    #[test]
    fn names_and_kind_queries() {
        let r = Device::Resistor {
            name: "R1".into(),
            a: NodeId(1),
            b: NodeId(0),
            ohms: 100.0,
        };
        assert_eq!(r.name(), "R1");
        assert!(!r.is_transistor());

        let m = Device::Mosfet {
            name: "M1".into(),
            d: NodeId(1),
            g: NodeId(2),
            s: NodeId(0),
            model: Technology::tsmc40lp().nmos,
            w: 200e-9,
            l: 40e-9,
        };
        assert!(m.is_transistor());
        assert_eq!(m.name(), "M1");
    }
}
