//! Operating-point, DC-sweep and transient analyses.
//!
//! All analyses share one assembly routine that stamps the linearized
//! device equations into a dense MNA system `A·x = z`, where `x` holds the
//! non-ground node voltages followed by one branch current per voltage
//! source. Nonlinear devices (MOSFETs, bias-dependent MTJs) are iterated
//! with Newton–Raphson; robustness comes from three standard measures:
//!
//! * a `gmin` conductance from every node to ground, stepped from large to
//!   tiny for the operating point (gmin stepping);
//! * per-iteration voltage-step damping (clamped updates), which keeps the
//!   exponential device models inside their representable range;
//! * transient step halving when a time step refuses to converge.
//!
//! Capacitors enter the transient system through backward-Euler or
//! trapezoidal companion models. MTJ magnetisation is advanced *after*
//! each accepted step from the solved branch current, so a write pulse
//! switches the device mid-simulation and later steps see the new
//! resistance — the behaviour the store-phase simulations rely on.

use mtj::MtjState;
use units::{Current, Time};

use crate::circuit::{Circuit, NodeId};
use crate::device::Device;
use crate::error::SpiceError;
use crate::linalg::DenseMatrix;
use crate::result::{MtjEvent, TransientResult};

/// Integration method for capacitor companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// First-order, L-stable — never rings on switching events. The
    /// default, matching SPICE practice for strongly switching circuits.
    #[default]
    BackwardEuler,
    /// Second-order, A-stable — more accurate on smooth waveforms but can
    /// ring on sharp edges.
    Trapezoidal,
}

/// How the transient obtains its initial state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartCondition {
    /// Solve a DC operating point with sources at their `t = 0` values.
    #[default]
    OperatingPoint,
    /// Start from all node voltages at zero (cold power-up).
    Zero,
}

/// Tunable transient-analysis options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Companion-model integrator.
    pub integrator: Integrator,
    /// Initial-state policy.
    pub start: StartCondition,
    /// Newton iteration limit per solve.
    pub max_newton_iterations: usize,
    /// Maximum times a non-converging step is halved before giving up.
    pub max_step_halvings: usize,
}

impl Default for TransientOptions {
    fn default() -> Self {
        Self {
            integrator: Integrator::BackwardEuler,
            start: StartCondition::OperatingPoint,
            max_newton_iterations: 200,
            max_step_halvings: 12,
        }
    }
}

/// Minimum shunt conductance retained in every analysis (SPICE's GMIN).
const GMIN_FLOOR: f64 = 1e-12;
/// Absolute node-voltage convergence tolerance, volts.
const VNTOL: f64 = 1e-6;
/// Relative convergence tolerance.
const RELTOL: f64 = 1e-4;
/// Absolute branch-current convergence tolerance, amperes.
const ABSTOL: f64 = 1e-10;
/// Per-iteration clamp on node-voltage updates, volts.
const VSTEP_MAX: f64 = 0.3;

/// Solved DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct OpResult {
    voltages: Vec<f64>,
    branch_currents: Vec<(String, f64)>,
}

impl OpResult {
    /// Node voltage in volts (0 for ground).
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.voltages[node.index()]
    }

    /// Branch current of the named voltage source, if present.
    ///
    /// Positive current flows from the positive terminal *into* the
    /// source (MNA convention); a battery delivering power therefore
    /// reports a negative branch current.
    #[must_use]
    pub fn branch_current(&self, source: &str) -> Option<f64> {
        self.branch_currents
            .iter()
            .find(|(n, _)| n == source)
            .map(|&(_, i)| i)
    }
}

/// Capacitor instance flattened for companion stamping (explicit caps
/// plus MOSFET parasitics).
#[derive(Debug, Clone)]
struct CapInstance {
    ia: Option<usize>,
    ib: Option<usize>,
    farads: f64,
    v_prev: f64,
    i_prev: f64,
}

/// Computes a node voltage from the unknown vector (`None` = ground).
fn vof(x: &[f64], idx: Option<usize>) -> f64 {
    idx.map_or(0.0, |i| x[i])
}

/// Stamps every device's linearized equation at iterate `x` and time `t`.
fn assemble(
    ckt: &Circuit,
    x: &[f64],
    t: f64,
    gmin: f64,
    caps: Option<&(Vec<CapInstance>, Integrator, f64)>,
    a: &mut DenseMatrix,
    z: &mut [f64],
) {
    a.clear();
    z.fill(0.0);
    let n_nodes = ckt.node_count() - 1;

    // gmin shunts keep otherwise-floating nodes weakly grounded.
    for i in 0..n_nodes {
        a.add(i, i, gmin.max(GMIN_FLOOR));
    }

    let vidx = |node: NodeId| ckt.voltage_index(node);

    for dev in ckt.devices() {
        match dev {
            Device::Resistor { a: na, b: nb, ohms, .. } => {
                stamp_conductance(a, vidx(*na), vidx(*nb), 1.0 / ohms);
            }
            Device::Capacitor { .. } => {
                // Stamped through the flattened companion list below.
            }
            Device::VoltageSource {
                pos, neg, wave, branch, ..
            } => {
                let br = ckt.branch_index(*branch);
                if let Some(ip) = vidx(*pos) {
                    a.add(ip, br, 1.0);
                    a.add(br, ip, 1.0);
                }
                if let Some(in_) = vidx(*neg) {
                    a.add(in_, br, -1.0);
                    a.add(br, in_, -1.0);
                }
                z[br] = wave.value_at(t);
            }
            Device::CurrentSource { pos, neg, wave, .. } => {
                let i = wave.value_at(t);
                if let Some(ip) = vidx(*pos) {
                    z[ip] -= i;
                }
                if let Some(in_) = vidx(*neg) {
                    z[in_] += i;
                }
            }
            Device::Mosfet {
                d, g, s, model, w, l, ..
            } => {
                let (id_, ig, is_) = (vidx(*d), vidx(*g), vidx(*s));
                let vg = vof(x, ig);
                let vd = vof(x, id_);
                let vs = vof(x, is_);
                let op = model.evaluate(vg, vd, vs, *w, *l);
                // Channel current leaves the drain, enters the source:
                //   i_d = id0 + ∂i/∂vg·Δvg + ∂i/∂vd·Δvd + ∂i/∂vs·Δvs
                let ieq = op.id - op.di_dvg * vg - op.di_dvd * vd - op.di_dvs * vs;
                if let Some(r) = id_ {
                    if let Some(c) = ig {
                        a.add(r, c, op.di_dvg);
                    }
                    a.add(r, r, op.di_dvd);
                    if let Some(c) = is_ {
                        a.add(r, c, op.di_dvs);
                    }
                    z[r] -= ieq;
                }
                if let Some(r) = is_ {
                    if let Some(c) = ig {
                        a.add(r, c, -op.di_dvg);
                    }
                    if let Some(c) = id_ {
                        a.add(r, c, -op.di_dvd);
                    }
                    a.add(r, r, -op.di_dvs);
                    z[r] += ieq;
                }
            }
            Device::Mtj {
                a: na, b: nb, device, ..
            } => {
                let (ia, ib) = (vidx(*na), vidx(*nb));
                let bias = vof(x, ia) - vof(x, ib);
                let r = device.resistance(units::Voltage::from_volts(bias));
                stamp_conductance(a, ia, ib, 1.0 / r.ohms());
            }
        }
    }

    // Capacitor companions (transient only).
    if let Some((cap_list, integrator, dt)) = caps {
        for cap in cap_list {
            let (geq, ieq) = match integrator {
                Integrator::BackwardEuler => {
                    let geq = cap.farads / dt;
                    (geq, geq * cap.v_prev)
                }
                Integrator::Trapezoidal => {
                    let geq = 2.0 * cap.farads / dt;
                    (geq, geq * cap.v_prev + cap.i_prev)
                }
            };
            stamp_conductance(a, cap.ia, cap.ib, geq);
            if let Some(i) = cap.ia {
                z[i] += ieq;
            }
            if let Some(i) = cap.ib {
                z[i] -= ieq;
            }
        }
    }
}

/// Conductance stamp between two (possibly ground) nodes.
fn stamp_conductance(a: &mut DenseMatrix, ia: Option<usize>, ib: Option<usize>, g: f64) {
    if let Some(i) = ia {
        a.add(i, i, g);
        if let Some(j) = ib {
            a.add(i, j, -g);
        }
    }
    if let Some(j) = ib {
        a.add(j, j, g);
        if let Some(i) = ia {
            a.add(j, i, -g);
        }
    }
}

/// Newton–Raphson solve at a fixed time; returns the converged unknowns.
#[allow(clippy::too_many_arguments)]
fn newton(
    ckt: &Circuit,
    analysis: &'static str,
    x0: &[f64],
    t: f64,
    gmin: f64,
    caps: Option<&(Vec<CapInstance>, Integrator, f64)>,
    max_iter: usize,
) -> Result<Vec<f64>, SpiceError> {
    let n = ckt.unknown_count();
    let n_nodes = ckt.node_count() - 1;
    let mut a = DenseMatrix::zeros(n);
    let mut z = vec![0.0; n];
    let mut x = x0.to_vec();

    for _iter in 0..max_iter {
        assemble(ckt, &x, t, gmin, caps, &mut a, &mut z);
        let Some(x_new) = a.solve(&z) else {
            return Err(SpiceError::SingularMatrix { analysis, time: t });
        };
        let mut converged = true;
        for i in 0..n {
            let mut delta = x_new[i] - x[i];
            let tol = if i < n_nodes {
                // Damp voltage updates so exponential models stay sane.
                if delta.abs() > VSTEP_MAX {
                    delta = delta.signum() * VSTEP_MAX;
                    converged = false;
                }
                VNTOL + RELTOL * x_new[i].abs()
            } else {
                ABSTOL + RELTOL * x_new[i].abs()
            };
            if delta.abs() > tol {
                converged = false;
            }
            x[i] += delta;
        }
        if converged {
            return Ok(x);
        }
    }
    Err(SpiceError::NonConvergence {
        analysis,
        time: t,
        iterations: max_iter,
    })
}

/// Extracts an [`OpResult`] from a raw unknown vector.
fn op_result_from(ckt: &Circuit, x: &[f64]) -> OpResult {
    let mut voltages = vec![0.0; ckt.node_count()];
    voltages[1..ckt.node_count()].copy_from_slice(&x[..ckt.node_count() - 1]);
    let branch_currents = ckt
        .devices()
        .iter()
        .filter_map(|d| match d {
            Device::VoltageSource { name, branch, .. } => {
                Some((name.clone(), x[ckt.branch_index(*branch)]))
            }
            _ => None,
        })
        .collect();
    OpResult {
        voltages,
        branch_currents,
    }
}

/// Solves the DC operating point with sources at their `t = 0` values.
///
/// Uses gmin stepping: a strong shunt conductance is first added from
/// every node to ground and progressively relaxed to the 1 pS floor,
/// tracking the solution with Newton at each stage.
///
/// # Errors
///
/// [`SpiceError::SingularMatrix`] for degenerate topologies and
/// [`SpiceError::NonConvergence`] if Newton fails even at the strongest
/// shunt.
pub fn op(ckt: &mut Circuit) -> Result<OpResult, SpiceError> {
    let x = op_unknowns(ckt, 0.0)?;
    Ok(op_result_from(ckt, &x))
}

/// Raw gmin-stepped operating-point solve at time `t`.
fn op_unknowns(ckt: &Circuit, t: f64) -> Result<Vec<f64>, SpiceError> {
    let n = ckt.unknown_count();
    let mut x = vec![0.0; n];
    let gmin_ladder = [1e-2, 1e-4, 1e-6, 1e-8, 1e-10, GMIN_FLOOR];
    for (stage, &gmin) in gmin_ladder.iter().enumerate() {
        match newton(ckt, "op", &x, t, gmin, None, 400) {
            Ok(solution) => x = solution,
            Err(e) if stage == 0 => return Err(e),
            Err(_) => {
                // Keep the last converged (more heavily shunted) solution
                // and continue down the ladder; final stage must succeed.
                if gmin <= GMIN_FLOOR {
                    return newton(ckt, "op", &x, t, GMIN_FLOOR, None, 800);
                }
            }
        }
    }
    Ok(x)
}

/// Sweeps the DC value of the named voltage source, solving the operating
/// point at each level with warm-started continuation (each solution seeds
/// the next — essential for tracing bistable transfer curves).
///
/// # Errors
///
/// [`SpiceError::UnknownTrace`] if no voltage source has that name,
/// [`SpiceError::InvalidAnalysis`] for an empty sweep, and any Newton
/// failure from the underlying solves.
pub fn dc_sweep(
    ckt: &mut Circuit,
    source: &str,
    values: &[f64],
) -> Result<Vec<OpResult>, SpiceError> {
    if values.is_empty() {
        return Err(SpiceError::InvalidAnalysis {
            reason: "dc sweep needs at least one source value".into(),
        });
    }
    // Confirm the source exists before mutating anything.
    let exists = ckt
        .devices()
        .iter()
        .any(|d| matches!(d, Device::VoltageSource { name, .. } if name == source));
    if !exists {
        return Err(SpiceError::UnknownTrace {
            name: source.into(),
        });
    }

    let original = ckt
        .devices()
        .iter()
        .find_map(|d| match d {
            Device::VoltageSource { name, wave, .. } if name == source => Some(wave.clone()),
            _ => None,
        })
        .expect("source existence checked above");

    let mut results = Vec::with_capacity(values.len());
    let mut x = vec![0.0; ckt.unknown_count()];
    let mut warm = false;
    for &v in values {
        set_source_dc(ckt, source, v);
        let solved = if warm {
            newton(ckt, "dc", &x, 0.0, GMIN_FLOOR, None, 400)
                .or_else(|_| op_unknowns(ckt, 0.0))
        } else {
            op_unknowns(ckt, 0.0)
        };
        match solved {
            Ok(sol) => {
                x = sol;
                warm = true;
                results.push(op_result_from(ckt, &x));
            }
            Err(e) => {
                restore_source(ckt, source, original);
                return Err(e);
            }
        }
    }
    restore_source(ckt, source, original);
    Ok(results)
}

fn set_source_dc(ckt: &mut Circuit, source: &str, v: f64) {
    for d in ckt.devices_mut() {
        if let Device::VoltageSource { name, wave, .. } = d {
            if name == source {
                *wave = crate::source::SourceWaveform::Dc(v);
            }
        }
    }
}

fn restore_source(ckt: &mut Circuit, source: &str, original: crate::source::SourceWaveform) {
    for d in ckt.devices_mut() {
        if let Device::VoltageSource { name, wave, .. } = d {
            if name == source {
                *wave = original;
                return;
            }
        }
    }
}

/// Runs a transient analysis with default options.
///
/// See [`transient_with_options`] for knobs and error conditions.
///
/// # Errors
///
/// Propagates every error of [`transient_with_options`].
pub fn transient(
    ckt: &mut Circuit,
    stop: Time,
    step: Time,
) -> Result<TransientResult, SpiceError> {
    transient_with_options(ckt, stop, step, TransientOptions::default())
}

/// Runs a transient analysis from 0 to `stop` with nominal step `step`.
///
/// Steps are shortened to land exactly on source-waveform breakpoints so
/// control edges are never skipped, and halved (up to
/// `options.max_step_halvings` times) when Newton refuses to converge.
/// After every accepted step each MTJ device integrates its switching
/// progress from the solved branch current; reversals are recorded as
/// [`MtjEvent`]s in the result.
///
/// # Errors
///
/// [`SpiceError::InvalidAnalysis`] for a non-positive window or step;
/// [`SpiceError::NonConvergence`] / [`SpiceError::SingularMatrix`] from
/// the inner solves.
pub fn transient_with_options(
    ckt: &mut Circuit,
    stop: Time,
    step: Time,
    options: TransientOptions,
) -> Result<TransientResult, SpiceError> {
    let stop_s = stop.seconds();
    let dt_nominal = step.seconds();
    if stop_s <= 0.0 || dt_nominal <= 0.0 || stop_s.is_nan() || dt_nominal.is_nan() {
        return Err(SpiceError::InvalidAnalysis {
            reason: format!("stop ({stop}) and step ({step}) must be positive"),
        });
    }
    if dt_nominal > stop_s {
        return Err(SpiceError::InvalidAnalysis {
            reason: format!("step ({step}) exceeds the analysis window ({stop})"),
        });
    }

    // Initial state.
    let mut x = match options.start {
        StartCondition::OperatingPoint => op_unknowns(ckt, 0.0)?,
        StartCondition::Zero => vec![0.0; ckt.unknown_count()],
    };

    // Flatten capacitors (explicit + MOSFET parasitics) with history.
    let mut caps: Vec<CapInstance> = Vec::new();
    for dev in ckt.devices() {
        match dev {
            Device::Capacitor { a, b, farads, .. } => {
                caps.push(CapInstance {
                    ia: ckt.voltage_index(*a),
                    ib: ckt.voltage_index(*b),
                    farads: *farads,
                    v_prev: 0.0,
                    i_prev: 0.0,
                });
            }
            Device::Mosfet {
                d, g, s, model, w, l, ..
            } => {
                let cgs = model.cgs(*w, *l);
                let cj = model.cjunction(*w);
                let (di, gi, si) = (
                    ckt.voltage_index(*d),
                    ckt.voltage_index(*g),
                    ckt.voltage_index(*s),
                );
                caps.push(CapInstance { ia: gi, ib: si, farads: cgs, v_prev: 0.0, i_prev: 0.0 });
                caps.push(CapInstance { ia: gi, ib: di, farads: cgs, v_prev: 0.0, i_prev: 0.0 });
                caps.push(CapInstance { ia: di, ib: None, farads: cj, v_prev: 0.0, i_prev: 0.0 });
                caps.push(CapInstance { ia: si, ib: None, farads: cj, v_prev: 0.0, i_prev: 0.0 });
            }
            _ => {}
        }
    }
    for cap in &mut caps {
        cap.v_prev = vof(&x, cap.ia) - vof(&x, cap.ib);
    }

    // Result storage.
    let mut recorder = TransientResult::recorder(ckt);
    recorder.push(0.0, &x, ckt);
    let mut events: Vec<MtjEvent> = Vec::new();

    let mut t = 0.0_f64;
    while t < stop_s - 1e-18 {
        // Candidate step: nominal, clipped to breakpoints and the window.
        let mut dt = dt_nominal.min(stop_s - t);
        if let Some(bp) = next_breakpoint(ckt, t) {
            if bp > t + 1e-18 && bp < t + dt {
                dt = bp - t;
            }
        }

        // Solve with step halving on non-convergence.
        let mut halvings = 0;
        let (x_new, dt_used) = loop {
            let companion = (caps.clone(), options.integrator, dt);
            match newton(
                ckt,
                "tran",
                &x,
                t + dt,
                GMIN_FLOOR,
                Some(&companion),
                options.max_newton_iterations,
            ) {
                Ok(sol) => break (sol, dt),
                Err(e) => {
                    halvings += 1;
                    if halvings > options.max_step_halvings {
                        return Err(e);
                    }
                    dt *= 0.5;
                }
            }
        };
        t += dt_used;
        x = x_new;

        // Update capacitor history.
        for cap in &mut caps {
            let v_now = vof(&x, cap.ia) - vof(&x, cap.ib);
            let i_now = match options.integrator {
                Integrator::BackwardEuler => cap.farads / dt_used * (v_now - cap.v_prev),
                Integrator::Trapezoidal => {
                    2.0 * cap.farads / dt_used * (v_now - cap.v_prev) - cap.i_prev
                }
            };
            cap.v_prev = v_now;
            cap.i_prev = i_now;
        }

        // Advance MTJ magnetisation from the solved branch currents.
        let voltage_pairs: Vec<(usize, Option<usize>, Option<usize>)> = ckt
            .devices()
            .iter()
            .enumerate()
            .filter_map(|(i, d)| match d {
                Device::Mtj { a, b, .. } => {
                    Some((i, ckt.voltage_index(*a), ckt.voltage_index(*b)))
                }
                _ => None,
            })
            .collect();
        for (dev_idx, ia, ib) in voltage_pairs {
            let bias = vof(&x, ia) - vof(&x, ib);
            if let Device::Mtj { name, device, .. } = &mut ckt.devices_mut()[dev_idx] {
                let r = device.resistance(units::Voltage::from_volts(bias));
                let i = Current::from_amps(bias / r.ohms());
                if device.advance(i, Time::from_seconds(dt_used)) {
                    events.push(MtjEvent {
                        time: Time::from_seconds(t),
                        device: name.clone(),
                        state: device.state(),
                    });
                }
            }
        }

        recorder.push(t, &x, ckt);
    }

    Ok(recorder.finish(events))
}

/// Earliest source breakpoint strictly after `t`, across all sources.
fn next_breakpoint(ckt: &Circuit, t: f64) -> Option<f64> {
    ckt.devices()
        .iter()
        .filter_map(|d| match d {
            Device::VoltageSource { wave, .. } | Device::CurrentSource { wave, .. } => {
                wave.next_breakpoint(t)
            }
            _ => None,
        })
        .min_by(|a, b| a.partial_cmp(b).expect("breakpoints are finite"))
}

/// Returns the MTJ states currently held by a circuit, in device order.
#[must_use]
pub fn mtj_states(ckt: &Circuit) -> Vec<(String, MtjState)> {
    ckt.devices()
        .iter()
        .filter_map(|d| match d {
            Device::Mtj { name, device, .. } => Some((name.clone(), device.state())),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::Technology;
    use crate::source::SourceWaveform;
    use units::{Capacitance, Length, Resistance, Voltage};

    fn volts(v: f64) -> Voltage {
        Voltage::from_volts(v)
    }

    #[test]
    fn divider_op() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let mid = ckt.node("mid");
        ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(volts(2.0)))
            .expect("V1");
        ckt.add_resistor("R1", vin, mid, Resistance::from_kilo_ohms(1.0))
            .expect("R1");
        ckt.add_resistor("R2", mid, Circuit::GROUND, Resistance::from_kilo_ohms(3.0))
            .expect("R2");
        let op = op(&mut ckt).expect("op");
        // The 1 pS gmin shunt perturbs the ideal 1.5 V by ~1 nV.
        assert!((op.voltage(mid) - 1.5).abs() < 1e-6);
        assert!((op.voltage(vin) - 2.0).abs() < 1e-12);
        // Battery delivers 0.5 mA: branch current is −0.5 mA by convention.
        let i = op.branch_current("V1").expect("branch");
        assert!((i + 0.5e-3).abs() < 1e-9, "i = {i}");
        assert_eq!(op.branch_current("nope"), None);
    }

    #[test]
    fn op_handles_mtj_divider() {
        use mtj::{Mtj, MtjParams, WritePolarity};
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        let mid = ckt.node("mid");
        ckt.add_voltage_source("V1", top, Circuit::GROUND, SourceWaveform::dc(volts(1.1)))
            .expect("V1");
        let p = MtjParams::date2018();
        ckt.add_mtj(
            "X1",
            top,
            mid,
            Mtj::new(p.clone(), MtjState::Parallel, WritePolarity::default()),
        )
        .expect("X1");
        ckt.add_mtj(
            "X2",
            mid,
            Circuit::GROUND,
            Mtj::new(p, MtjState::AntiParallel, WritePolarity::default()),
        )
        .expect("X2");
        let op = op(&mut ckt).expect("op");
        // P (5k) on top, AP (~11k, reduced by bias) below: mid sits above
        // the 6.9/16ths point but below VDD.
        let v = op.voltage(mid);
        assert!(v > 0.6 && v < 0.85, "v = {v}");
    }

    #[test]
    fn rc_step_matches_analytic() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source(
            "VIN",
            inp,
            Circuit::GROUND,
            SourceWaveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 0.0,
                rise: 1e-15,
                fall: 1e-15,
                width: 1.0,
            },
        )
        .expect("VIN");
        ckt.add_resistor("R1", inp, out, Resistance::from_kilo_ohms(1.0))
            .expect("R1");
        ckt.add_capacitor("C1", out, Circuit::GROUND, Capacitance::from_pico_farads(1.0))
            .expect("C1");
        // τ = 1 ns; simulate 3 ns with 5 ps steps.
        let res = transient(
            &mut ckt,
            Time::from_nano_seconds(3.0),
            Time::from_pico_seconds(5.0),
        )
        .expect("transient");
        let out_trace = res.node("out").expect("trace");
        for &t_ns in &[0.5, 1.0, 2.0] {
            let measured = out_trace.value_at(t_ns * 1e-9);
            let analytic = 1.0 - (-t_ns).exp();
            assert!(
                (measured - analytic).abs() < 0.01,
                "t = {t_ns} ns: {measured} vs {analytic}"
            );
        }
    }

    #[test]
    fn trapezoidal_is_more_accurate_on_rc() {
        let build = || {
            let mut ckt = Circuit::new();
            let inp = ckt.node("in");
            let out = ckt.node("out");
            ckt.add_voltage_source(
                "VIN",
                inp,
                Circuit::GROUND,
                SourceWaveform::Pulse {
                    v0: 0.0,
                    v1: 1.0,
                    delay: 0.0,
                    rise: 1e-15,
                    fall: 1e-15,
                    width: 1.0,
                },
            )
            .expect("VIN");
            ckt.add_resistor("R1", inp, out, Resistance::from_kilo_ohms(1.0))
                .expect("R1");
            ckt.add_capacitor("C1", out, Circuit::GROUND, Capacitance::from_pico_farads(1.0))
                .expect("C1");
            ckt
        };
        let sim = |integrator| {
            let mut ckt = build();
            let res = transient_with_options(
                &mut ckt,
                Time::from_nano_seconds(1.0),
                Time::from_pico_seconds(50.0),
                TransientOptions {
                    integrator,
                    ..TransientOptions::default()
                },
            )
            .expect("transient");
            let v = res.node("out").expect("out").value_at(1e-9);
            (v - (1.0 - (-1.0f64).exp())).abs()
        };
        let err_be = sim(Integrator::BackwardEuler);
        let err_trap = sim(Integrator::Trapezoidal);
        assert!(err_trap < err_be, "trap {err_trap} vs BE {err_be}");
    }

    #[test]
    fn inverter_switches() {
        let tech = Technology::tsmc40lp();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("VDD", vdd, Circuit::GROUND, SourceWaveform::dc(volts(1.1)))
            .expect("VDD");
        ckt.add_voltage_source("VIN", vin, Circuit::GROUND, SourceWaveform::dc(volts(0.0)))
            .expect("VIN");
        ckt.add_pmos("MP", out, vin, vdd, &tech, Length::from_nano_meters(400.0))
            .expect("MP");
        ckt.add_nmos("MN", out, vin, Circuit::GROUND, &tech, Length::from_nano_meters(200.0))
            .expect("MN");

        let low_in = op(&mut ckt).expect("op");
        assert!(low_in.voltage(out) > 1.05, "out = {}", low_in.voltage(out));

        // Sweep the input: output must cross from high to low.
        let sweep: Vec<f64> = (0..=22).map(|k| f64::from(k) * 0.05).collect();
        let results = dc_sweep(&mut ckt, "VIN", &sweep).expect("sweep");
        let first = results.first().expect("nonempty").voltage(out);
        let last = results.last().expect("nonempty").voltage(out);
        assert!(first > 1.0 && last < 0.1, "VTC ends: {first} / {last}");
        // Monotone non-increasing VTC.
        for pair in results.windows(2) {
            assert!(pair[1].voltage(out) <= pair[0].voltage(out) + 1e-6);
        }
    }

    #[test]
    fn ring_oscillator_oscillates_at_a_plausible_frequency() {
        // A 5-stage inverter ring has no stable DC state; the transient
        // must oscillate with period ≈ 2·N·t_p. This exercises the
        // regenerative dynamics the sense amplifiers depend on.
        let tech = Technology::tsmc40lp();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_voltage_source("VDD", vdd, Circuit::GROUND, SourceWaveform::dc(volts(1.1)))
            .expect("VDD");
        let n_stages = 5;
        let nodes: Vec<_> = (0..n_stages).map(|k| ckt.node(&format!("r{k}"))).collect();
        // A kick source breaks the symmetric metastable start: it holds
        // node r0 low briefly, then releases through a large resistor.
        let kick = ckt.node("kick");
        ckt.add_voltage_source(
            "VKICK",
            kick,
            Circuit::GROUND,
            SourceWaveform::Pulse {
                v0: 0.0,
                v1: 1.1,
                delay: 50e-12,
                rise: 10e-12,
                fall: 10e-12,
                width: 10.0, // stays high after the kick
            },
        )
        .expect("VKICK");
        ckt.add_resistor("RKICK", kick, nodes[0], Resistance::from_kilo_ohms(30.0))
            .expect("RKICK");
        for k in 0..n_stages {
            let inp = nodes[k];
            let out = nodes[(k + 1) % n_stages];
            ckt.add_pmos(
                &format!("MP{k}"),
                out,
                inp,
                vdd,
                &tech,
                Length::from_nano_meters(400.0),
            )
            .expect("pmos");
            ckt.add_nmos(
                &format!("MN{k}"),
                out,
                inp,
                Circuit::GROUND,
                &tech,
                Length::from_nano_meters(200.0),
            )
            .expect("nmos");
            ckt.add_capacitor(
                &format!("CL{k}"),
                out,
                Circuit::GROUND,
                Capacitance::from_femto_farads(2.0),
            )
            .expect("load");
        }
        let res = transient(
            &mut ckt,
            Time::from_nano_seconds(4.0),
            Time::from_pico_seconds(4.0),
        )
        .expect("transient");
        let trace = res.node("r2").expect("r2");
        let crossings = crate::measure::crossings(
            trace.times(),
            trace.values(),
            0.55,
            crate::measure::Edge::Rising,
        );
        assert!(
            crossings.len() >= 4,
            "ring did not oscillate: {} rising crossings",
            crossings.len()
        );
        // Period from the last two rising crossings (settled region).
        let period = crossings[crossings.len() - 1] - crossings[crossings.len() - 2];
        // 5 stages × ~2 × (tens of ps per stage with 2 fF loads).
        assert!(
            (50e-12..2e-9).contains(&period),
            "period = {period:.3e} s"
        );
    }

    #[test]
    fn dc_sweep_validates_inputs() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(volts(1.0)))
            .expect("V1");
        ckt.add_resistor("R1", a, Circuit::GROUND, Resistance::from_ohms(100.0))
            .expect("R1");
        assert!(matches!(
            dc_sweep(&mut ckt, "V1", &[]),
            Err(SpiceError::InvalidAnalysis { .. })
        ));
        assert!(matches!(
            dc_sweep(&mut ckt, "VX", &[1.0]),
            Err(SpiceError::UnknownTrace { .. })
        ));
        // Waveform restored after sweep.
        let _ = dc_sweep(&mut ckt, "V1", &[0.0, 0.5]).expect("sweep");
        let wave = ckt
            .devices()
            .iter()
            .find_map(|d| match d {
                Device::VoltageSource { wave, .. } => Some(wave.clone()),
                _ => None,
            })
            .expect("source");
        assert_eq!(wave, SourceWaveform::Dc(1.0));
    }

    #[test]
    fn transient_validates_window() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(volts(1.0)))
            .expect("V1");
        ckt.add_resistor("R1", a, Circuit::GROUND, Resistance::from_ohms(100.0))
            .expect("R1");
        assert!(transient(&mut ckt, Time::ZERO, Time::from_pico_seconds(1.0)).is_err());
        assert!(
            transient(&mut ckt, Time::from_pico_seconds(1.0), Time::from_nano_seconds(1.0))
                .is_err()
        );
    }

    #[test]
    fn singular_topology_reports_error() {
        // Two ideal sources in parallel with different values.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(volts(1.0)))
            .expect("V1");
        ckt.add_voltage_source("V2", a, Circuit::GROUND, SourceWaveform::dc(volts(2.0)))
            .expect("V2");
        assert!(matches!(
            op(&mut ckt),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn breakpoints_are_not_skipped() {
        // A 10 ps control pulse inside a 1 ns window stepped at 100 ps
        // must still be resolved thanks to breakpoint alignment.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::pulse(
                volts(0.0),
                volts(1.0),
                Time::from_pico_seconds(450.0),
                Time::from_pico_seconds(1.0),
                Time::from_pico_seconds(1.0),
                Time::from_pico_seconds(10.0),
            ),
        )
        .expect("V1");
        ckt.add_resistor("R1", a, Circuit::GROUND, Resistance::from_ohms(1000.0))
            .expect("R1");
        let res = transient(
            &mut ckt,
            Time::from_nano_seconds(1.0),
            Time::from_pico_seconds(100.0),
        )
        .expect("transient");
        let trace = res.node("a").expect("a");
        assert!(trace.max() > 0.99, "pulse missed: max = {}", trace.max());
    }

    #[test]
    fn current_source_drives_expected_voltage() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_current_source("I1", Circuit::GROUND, a, SourceWaveform::Dc(1e-3))
            .expect("I1");
        ckt.add_resistor("R1", a, Circuit::GROUND, Resistance::from_kilo_ohms(2.0))
            .expect("R1");
        let op = op(&mut ckt).expect("op");
        // 1 mA pushed into node a across 2 kΩ → 2 V.
        assert!((op.voltage(a) - 2.0).abs() < 1e-6, "v = {}", op.voltage(a));
    }

    #[test]
    fn mtj_switches_during_transient_write() {
        use mtj::{Mtj, MtjParams, WritePolarity};
        // Drive ~70 µA through a P-state MTJ for 3 ns: it must switch to
        // AP, and the event must be recorded near t ≈ 2 ns.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let p = MtjParams::date2018();
        let i_write = p.nominal_write_current().amps();
        ckt.add_current_source("IW", Circuit::GROUND, a, SourceWaveform::Dc(i_write))
            .expect("IW");
        ckt.add_mtj(
            "X1",
            a,
            Circuit::GROUND,
            Mtj::new(p, MtjState::Parallel, WritePolarity::default()),
        )
        .expect("X1");
        let res = transient(
            &mut ckt,
            Time::from_nano_seconds(4.0),
            Time::from_pico_seconds(20.0),
        )
        .expect("transient");
        assert_eq!(ckt.mtj_state("X1"), Some(MtjState::AntiParallel));
        assert_eq!(res.mtj_events().len(), 1);
        let ev = &res.mtj_events()[0];
        assert_eq!(ev.device, "X1");
        assert_eq!(ev.state, MtjState::AntiParallel);
        assert!(
            (ev.time.nano_seconds() - 2.0).abs() < 0.3,
            "switched at {}",
            ev.time
        );
    }

    #[test]
    fn mtj_states_helper_lists_devices() {
        use mtj::{Mtj, MtjParams, WritePolarity};
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let p = MtjParams::date2018();
        ckt.add_mtj(
            "X1",
            a,
            Circuit::GROUND,
            Mtj::new(p, MtjState::AntiParallel, WritePolarity::default()),
        )
        .expect("X1");
        let states = mtj_states(&ckt);
        assert_eq!(states, vec![("X1".to_owned(), MtjState::AntiParallel)]);
    }
}
