//! MNA system assembly: the [`Stamp`] trait, the pre-resolved
//! [`StampPlan`], and the shared [`assemble`] routine.
//!
//! A `StampPlan` is built once per circuit topology. It resolves every
//! device's unknown indices (node voltage rows/columns, branch-current
//! rows) ahead of time, flattens the capacitor list (explicit capacitors
//! plus MOSFET parasitics) into companion descriptors, and records the
//! side tables the analyses need each step: MTJ terminal indices, the
//! devices carrying source waveforms, and a name-sorted branch-current
//! table. Assembling the system at an iterate then walks the plan's
//! stamps — no per-iteration device matching, index resolution, or
//! allocation.
//!
//! Stamps read *live* device parameters (waveforms, MTJ resistance,
//! MOSFET bias point) through the circuit on every call, so mutations
//! made between runs via [`Circuit::devices_mut`] or the snapshot API
//! are always honoured.

use crate::circuit::Circuit;
use crate::device::Device;
use crate::linalg::{DenseMatrix, SparsePattern};

use super::{Integrator, GMIN_FLOOR};

/// Computes a node voltage from the unknown vector (`None` = ground).
pub(super) fn vof(x: &[f64], idx: Option<usize>) -> f64 {
    idx.map_or(0.0, |i| x[i])
}

/// The assembly target a stamp writes its matrix entries into: the
/// dense MNA matrix, the CSR value array of a frozen [`SparsePattern`],
/// or a structure probe that records which `(row, col)` pairs a stamp
/// *could* touch (used once at plan-build time to freeze the pattern).
///
/// An enum rather than a generic keeps [`Stamp`] object-safe — the plan
/// stores `Box<dyn Stamp>` — at the cost of one predictable branch per
/// matrix add.
pub(super) enum MatrixRef<'a> {
    /// Stamp into a dense matrix (the oracle path).
    Dense(&'a mut DenseMatrix),
    /// Stamp into the CSR values backing a frozen pattern.
    Sparse {
        pattern: &'a SparsePattern,
        values: &'a mut Vec<f64>,
    },
    /// Record structural positions only; values are ignored.
    Probe(&'a mut Vec<(u32, u32)>),
}

impl MatrixRef<'_> {
    /// Adds `value` at (`row`, `col`) — the stamp primitive.
    #[inline]
    pub(super) fn add(&mut self, row: usize, col: usize, value: f64) {
        match self {
            MatrixRef::Dense(a) => a.add(row, col, value),
            MatrixRef::Sparse { pattern, values } => pattern.add_into(values, row, col, value),
            MatrixRef::Probe(entries) => entries.push((row as u32, col as u32)),
        }
    }

    /// Resets every entry to zero, keeping allocations (no-op for the
    /// probe, which accumulates positions).
    fn clear(&mut self) {
        match self {
            MatrixRef::Dense(a) => a.clear(),
            MatrixRef::Sparse { values, .. } => values.fill(0.0),
            MatrixRef::Probe(_) => {}
        }
    }
}

/// Conductance stamp between two (possibly ground) nodes.
pub(super) fn stamp_conductance(
    a: &mut MatrixRef<'_>,
    ia: Option<usize>,
    ib: Option<usize>,
    g: f64,
) {
    if let Some(i) = ia {
        a.add(i, i, g);
        if let Some(j) = ib {
            a.add(i, j, -g);
        }
    }
    if let Some(j) = ib {
        a.add(j, j, g);
        if let Some(i) = ia {
            a.add(j, i, -g);
        }
    }
}

/// Evaluation context shared by every stamp in one assembly pass.
#[derive(Debug, Clone, Copy)]
pub(super) struct EvalCtx {
    /// Simulation time the waveforms are evaluated at.
    pub t: f64,
    /// Scale applied to every independent source value — 1.0 in normal
    /// operation, ramped 0 → 1 by the source-stepping recovery ladder.
    pub src_scale: f64,
}

impl EvalCtx {
    pub(super) fn at(t: f64) -> Self {
        Self { t, src_scale: 1.0 }
    }
}

/// One device's contribution to the linearized MNA system, with its
/// unknown indices resolved at plan-build time.
///
/// `dev` on each implementor is the device's index in
/// [`Circuit::devices`]; parameters that can change between runs are
/// read through it on every call.
pub(super) trait Stamp: std::fmt::Debug + Send + Sync {
    /// Adds this device's linearized equations at iterate `x`, in the
    /// time/scale context `ctx`.
    fn stamp(&self, ckt: &Circuit, x: &[f64], ctx: EvalCtx, a: &mut MatrixRef<'_>, z: &mut [f64]);
}

#[derive(Debug)]
struct ResistorStamp {
    dev: usize,
    ia: Option<usize>,
    ib: Option<usize>,
}

impl Stamp for ResistorStamp {
    fn stamp(
        &self,
        ckt: &Circuit,
        _x: &[f64],
        _ctx: EvalCtx,
        a: &mut MatrixRef<'_>,
        _z: &mut [f64],
    ) {
        let Device::Resistor { ohms, .. } = &ckt.devices()[self.dev] else {
            unreachable!("stamp plan out of sync with circuit");
        };
        stamp_conductance(a, self.ia, self.ib, 1.0 / ohms);
    }
}

#[derive(Debug)]
struct VoltageSourceStamp {
    dev: usize,
    ip: Option<usize>,
    in_: Option<usize>,
    br: usize,
}

impl Stamp for VoltageSourceStamp {
    fn stamp(&self, ckt: &Circuit, _x: &[f64], ctx: EvalCtx, a: &mut MatrixRef<'_>, z: &mut [f64]) {
        let Device::VoltageSource { wave, .. } = &ckt.devices()[self.dev] else {
            unreachable!("stamp plan out of sync with circuit");
        };
        if let Some(ip) = self.ip {
            a.add(ip, self.br, 1.0);
            a.add(self.br, ip, 1.0);
        }
        if let Some(in_) = self.in_ {
            a.add(in_, self.br, -1.0);
            a.add(self.br, in_, -1.0);
        }
        z[self.br] = ctx.src_scale * wave.value_at(ctx.t);
    }
}

#[derive(Debug)]
struct CurrentSourceStamp {
    dev: usize,
    ip: Option<usize>,
    in_: Option<usize>,
}

impl Stamp for CurrentSourceStamp {
    fn stamp(
        &self,
        ckt: &Circuit,
        _x: &[f64],
        ctx: EvalCtx,
        _a: &mut MatrixRef<'_>,
        z: &mut [f64],
    ) {
        let Device::CurrentSource { wave, .. } = &ckt.devices()[self.dev] else {
            unreachable!("stamp plan out of sync with circuit");
        };
        let i = ctx.src_scale * wave.value_at(ctx.t);
        if let Some(ip) = self.ip {
            z[ip] -= i;
        }
        if let Some(in_) = self.in_ {
            z[in_] += i;
        }
    }
}

#[derive(Debug)]
struct MosfetStamp {
    dev: usize,
    id: Option<usize>,
    ig: Option<usize>,
    is_: Option<usize>,
}

impl Stamp for MosfetStamp {
    fn stamp(&self, ckt: &Circuit, x: &[f64], _ctx: EvalCtx, a: &mut MatrixRef<'_>, z: &mut [f64]) {
        let Device::Mosfet { model, w, l, .. } = &ckt.devices()[self.dev] else {
            unreachable!("stamp plan out of sync with circuit");
        };
        let (id_, ig, is_) = (self.id, self.ig, self.is_);
        let vg = vof(x, ig);
        let vd = vof(x, id_);
        let vs = vof(x, is_);
        let op = model.evaluate(vg, vd, vs, *w, *l);
        // Channel current leaves the drain, enters the source:
        //   i_d = id0 + ∂i/∂vg·Δvg + ∂i/∂vd·Δvd + ∂i/∂vs·Δvs
        let ieq = op.id - op.di_dvg * vg - op.di_dvd * vd - op.di_dvs * vs;
        if let Some(r) = id_ {
            if let Some(c) = ig {
                a.add(r, c, op.di_dvg);
            }
            a.add(r, r, op.di_dvd);
            if let Some(c) = is_ {
                a.add(r, c, op.di_dvs);
            }
            z[r] -= ieq;
        }
        if let Some(r) = is_ {
            if let Some(c) = ig {
                a.add(r, c, -op.di_dvg);
            }
            if let Some(c) = id_ {
                a.add(r, c, -op.di_dvd);
            }
            a.add(r, r, -op.di_dvs);
            z[r] += ieq;
        }
    }
}

#[derive(Debug)]
struct MtjStamp {
    dev: usize,
    ia: Option<usize>,
    ib: Option<usize>,
}

impl Stamp for MtjStamp {
    fn stamp(
        &self,
        ckt: &Circuit,
        x: &[f64],
        _ctx: EvalCtx,
        a: &mut MatrixRef<'_>,
        _z: &mut [f64],
    ) {
        let Device::Mtj { device, .. } = &ckt.devices()[self.dev] else {
            unreachable!("stamp plan out of sync with circuit");
        };
        let bias = vof(x, self.ia) - vof(x, self.ib);
        let r = device.resistance(units::Voltage::from_volts(bias));
        stamp_conductance(a, self.ia, self.ib, 1.0 / r.ohms());
    }
}

/// A flattened capacitor with resolved terminals (transient companion
/// stamping); the geometry never changes, only the per-step history in
/// [`CapState`].
#[derive(Debug, Clone, Copy)]
pub(super) struct CapDescriptor {
    pub ia: Option<usize>,
    pub ib: Option<usize>,
    pub farads: f64,
}

/// Per-capacitor integration history, stored in the workspace.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CapState {
    pub v_prev: f64,
    pub i_prev: f64,
}

/// Companion-model context for one transient Newton solve: borrowed
/// capacitor histories plus the integrator and step size.
pub(super) struct Companions<'a> {
    pub states: &'a [CapState],
    pub integrator: Integrator,
    pub dt: f64,
}

/// An MTJ's device index and terminal unknowns, pre-resolved for the
/// post-step magnetisation advance.
#[derive(Debug, Clone, Copy)]
pub(super) struct MtjSlot {
    pub dev: usize,
    pub ia: Option<usize>,
    pub ib: Option<usize>,
}

/// Everything an analysis needs that depends only on circuit *topology*,
/// resolved once and reused across Newton iterations, time steps, sweep
/// points and repeated runs.
#[derive(Debug)]
pub(crate) struct StampPlan {
    stamps: Vec<Box<dyn Stamp>>,
    pub(super) caps: Vec<CapDescriptor>,
    pub(super) mtjs: Vec<MtjSlot>,
    /// Device indices of waveform-carrying sources (breakpoint scan).
    pub(super) wave_devs: Vec<usize>,
    /// `(source name, branch unknown index)`, sorted by name.
    pub(super) branches: Vec<(String, usize)>,
    pub(super) n_nodes: usize,
    pub(super) n_unknowns: usize,
    device_count: usize,
    /// Structural nonzero pattern of the assembled matrix, frozen at
    /// plan-build time by a probe assembly pass with companions armed —
    /// a superset shared by op, DC and transient assembly (companion
    /// slots simply hold exact zeros outside transients).
    pub(super) sparse: SparsePattern,
}

impl StampPlan {
    /// Resolves every device of `ckt` into stamps and side tables.
    pub(crate) fn build(ckt: &Circuit) -> Self {
        let n_nodes = ckt.node_count() - 1;
        let mut stamps: Vec<Box<dyn Stamp>> = Vec::with_capacity(ckt.devices().len());
        let mut caps = Vec::new();
        let mut mtjs = Vec::new();
        let mut wave_devs = Vec::new();
        let mut branches = Vec::new();
        let vidx = |node| ckt.voltage_index(node);

        for (dev, d) in ckt.devices().iter().enumerate() {
            match d {
                Device::Resistor { a, b, .. } => {
                    stamps.push(Box::new(ResistorStamp {
                        dev,
                        ia: vidx(*a),
                        ib: vidx(*b),
                    }));
                }
                Device::Capacitor { a, b, farads, .. } => {
                    caps.push(CapDescriptor {
                        ia: vidx(*a),
                        ib: vidx(*b),
                        farads: *farads,
                    });
                }
                Device::VoltageSource {
                    name,
                    pos,
                    neg,
                    branch,
                    ..
                } => {
                    let br = ckt.branch_index(*branch);
                    stamps.push(Box::new(VoltageSourceStamp {
                        dev,
                        ip: vidx(*pos),
                        in_: vidx(*neg),
                        br,
                    }));
                    branches.push((name.clone(), br));
                    wave_devs.push(dev);
                }
                Device::CurrentSource { pos, neg, .. } => {
                    stamps.push(Box::new(CurrentSourceStamp {
                        dev,
                        ip: vidx(*pos),
                        in_: vidx(*neg),
                    }));
                    wave_devs.push(dev);
                }
                Device::Mosfet {
                    d,
                    g,
                    s,
                    model,
                    w,
                    l,
                    ..
                } => {
                    let (di, gi, si) = (vidx(*d), vidx(*g), vidx(*s));
                    stamps.push(Box::new(MosfetStamp {
                        dev,
                        id: di,
                        ig: gi,
                        is_: si,
                    }));
                    // Parasitics, flattened in the same order the seed
                    // engine used: gate-source, gate-drain, junctions.
                    let cgs = model.cgs(*w, *l);
                    let cj = model.cjunction(*w);
                    caps.push(CapDescriptor {
                        ia: gi,
                        ib: si,
                        farads: cgs,
                    });
                    caps.push(CapDescriptor {
                        ia: gi,
                        ib: di,
                        farads: cgs,
                    });
                    caps.push(CapDescriptor {
                        ia: di,
                        ib: None,
                        farads: cj,
                    });
                    caps.push(CapDescriptor {
                        ia: si,
                        ib: None,
                        farads: cj,
                    });
                }
                Device::Mtj { a, b, .. } => {
                    let (ia, ib) = (vidx(*a), vidx(*b));
                    stamps.push(Box::new(MtjStamp { dev, ia, ib }));
                    mtjs.push(MtjSlot { dev, ia, ib });
                }
            }
        }
        branches.sort_by(|l, r| l.0.cmp(&r.0));
        let mut plan = Self {
            stamps,
            caps,
            mtjs,
            wave_devs,
            branches,
            n_nodes,
            n_unknowns: ckt.unknown_count(),
            device_count: ckt.devices().len(),
            sparse: SparsePattern::default(),
        };
        // Probe pass: run one assembly with a position-recording target
        // to freeze the structural pattern. Companions are armed (any
        // positive dt works — values are discarded) so the pattern
        // covers transient assembly too; `x = 0` is safe because stamp
        // *structure* is bias-independent. Voltage-source branch rows
        // have no diagonal, so the gmin loop must span only node rows,
        // exactly as `assemble` stamps it.
        let x = vec![0.0; plan.n_unknowns];
        let mut z = vec![0.0; plan.n_unknowns];
        let states = vec![CapState::default(); plan.caps.len()];
        let companions = Companions {
            states: &states,
            integrator: Integrator::BackwardEuler,
            dt: 1.0,
        };
        let mut entries = Vec::new();
        assemble(
            &plan,
            ckt,
            &x,
            EvalCtx::at(0.0),
            GMIN_FLOOR,
            Some(&companions),
            &mut MatrixRef::Probe(&mut entries),
            &mut z,
        );
        plan.sparse = SparsePattern::from_entries(plan.n_unknowns, entries);
        plan
    }

    /// Whether the circuit's topology no longer matches this plan
    /// (devices or unknowns were added since the plan was built).
    pub(crate) fn is_stale(&self, ckt: &Circuit) -> bool {
        self.device_count != ckt.devices().len() || self.n_unknowns != ckt.unknown_count()
    }
}

/// Stamps every device's linearized equation at iterate `x` and time
/// `t`, walking the pre-resolved plan. The stamping order — gmin
/// diagonal, devices in insertion order, capacitor companions — matches
/// the original single-pass assembler exactly, so accumulated
/// floating-point sums are bit-identical.
#[allow(clippy::too_many_arguments)]
pub(super) fn assemble(
    plan: &StampPlan,
    ckt: &Circuit,
    x: &[f64],
    ctx: EvalCtx,
    gmin: f64,
    companions: Option<&Companions<'_>>,
    a: &mut MatrixRef<'_>,
    z: &mut [f64],
) {
    a.clear();
    z.fill(0.0);

    // gmin shunts keep otherwise-floating nodes weakly grounded.
    for i in 0..plan.n_nodes {
        a.add(i, i, gmin.max(GMIN_FLOOR));
    }

    for stamp in &plan.stamps {
        stamp.stamp(ckt, x, ctx, a, z);
    }

    // Capacitor companions (transient only).
    if let Some(c) = companions {
        for (cap, state) in plan.caps.iter().zip(c.states.iter()) {
            let (geq, ieq) = match c.integrator {
                Integrator::BackwardEuler => {
                    let geq = cap.farads / c.dt;
                    (geq, geq * state.v_prev)
                }
                Integrator::Trapezoidal => {
                    let geq = 2.0 * cap.farads / c.dt;
                    (geq, geq * state.v_prev + state.i_prev)
                }
            };
            stamp_conductance(a, cap.ia, cap.ib, geq);
            if let Some(i) = cap.ia {
                z[i] += ieq;
            }
            if let Some(i) = cap.ib {
                z[i] -= ieq;
            }
        }
    }
}
