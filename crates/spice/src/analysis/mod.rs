//! Operating-point, DC-sweep and transient analyses.
//!
//! All analyses share one assembly routine that stamps the linearized
//! device equations into a dense MNA system `A·x = z`, where `x` holds the
//! non-ground node voltages followed by one branch current per voltage
//! source. Nonlinear devices (MOSFETs, bias-dependent MTJs) are iterated
//! with Newton–Raphson; robustness comes from three standard measures:
//!
//! * a `gmin` conductance from every node to ground, stepped from large to
//!   tiny for the operating point (gmin stepping);
//! * per-iteration voltage-step damping (clamped updates), which keeps the
//!   exponential device models inside their representable range;
//! * transient step halving when a time step refuses to converge.
//!
//! Capacitors enter the transient system through backward-Euler or
//! trapezoidal companion models. MTJ magnetisation is advanced *after*
//! each accepted step from the solved branch current, so a write pulse
//! switches the device mid-simulation and later steps see the new
//! resistance — the behaviour the store-phase simulations rely on.
//!
//! # Architecture
//!
//! The engine is organised around a reusable [`SimulationSession`]:
//!
//! * [`assembly`](self) — each device is resolved once into a stamp with
//!   pre-computed unknown indices; a `StampPlan` collects them along
//!   with the flattened capacitor list, MTJ slots and branch table;
//! * `newton` — the Newton–Raphson core, gmin ladder and DC sweep,
//!   iterating in place on workspace buffers;
//! * `transient` — the time-stepping loop, with capacitor histories
//!   held in the workspace instead of cloned per step;
//! * [`session`](SimulationSession) — ties a circuit to its plan and
//!   workspace, and accumulates [`SolverStats`];
//! * [`reference`] — the original per-call engine, frozen as a
//!   correctness oracle and benchmark baseline.
//!
//! The free functions below ([`op`], [`dc_sweep`], [`transient`],
//! [`transient_with_options`]) keep the historical one-shot API: each
//! builds a throwaway session. Repeated simulation of the same circuit
//! — corner sweeps, margin scans, repeated restore/store runs — should
//! hold a [`SimulationSession`] instead.

use mtj::MtjState;
use units::Time;

use crate::circuit::{Circuit, NodeId};
use crate::device::Device;
use crate::error::SpiceError;
use crate::result::TransientResult;

mod assembly;
pub mod lanes;
mod newton;
pub mod reference;
mod session;
mod transient;

pub use session::{SimulationSession, SolverKind, SolverStats};
pub use transient::LTE_TRTOL;

use assembly::StampPlan;
use session::Workspace;

/// Integration method for capacitor companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// First-order, L-stable — never rings on switching events. The
    /// default, matching SPICE practice for strongly switching circuits.
    #[default]
    BackwardEuler,
    /// Second-order, A-stable — more accurate on smooth waveforms but can
    /// ring on sharp edges.
    Trapezoidal,
}

/// How the transient obtains its initial state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartCondition {
    /// Solve a DC operating point with sources at their `t = 0` values.
    #[default]
    OperatingPoint,
    /// Start from all node voltages at zero (cold power-up).
    Zero,
}

/// Time-step policy for transient analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepControl {
    /// LTE-controlled stepping: the nominal `step` seeds the first step,
    /// then the local truncation error estimated from the
    /// divided-difference predictor grows `dt` (up to
    /// [`TransientOptions::dt_max`]) on smooth stretches and shrinks it
    /// on edges, rejecting steps whose error exceeds
    /// `abstol + reltol·|x|`.
    Adaptive,
    /// Uniform stepping at exactly the requested `step` (clipped only to
    /// breakpoints and the window end) — the engine's historical
    /// behaviour, still bit-reproducible for golden comparisons.
    Fixed,
}

impl StepControl {
    /// Resolves the process default: `NVFF_TRANSIENT=fixed` selects
    /// uniform stepping, anything else (including unset) the adaptive
    /// controller. Read once and cached — the per-transient env lookup
    /// would otherwise show up in the warm-session allocation/latency
    /// profile.
    #[must_use]
    pub fn from_env() -> Self {
        static CACHE: std::sync::OnceLock<StepControl> = std::sync::OnceLock::new();
        *CACHE.get_or_init(|| match std::env::var("NVFF_TRANSIENT") {
            Ok(v) if v.eq_ignore_ascii_case("fixed") => Self::Fixed,
            _ => Self::Adaptive,
        })
    }
}

impl Default for StepControl {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Tunable transient-analysis options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Companion-model integrator.
    pub integrator: Integrator,
    /// Initial-state policy.
    pub start: StartCondition,
    /// Newton iteration limit per solve.
    pub max_newton_iterations: usize,
    /// Maximum times a non-converging step is halved before giving up.
    /// Also sets the adaptive controller's smallest step:
    /// `step · 0.5^max_step_halvings`.
    pub max_step_halvings: usize,
    /// Time-step policy ([`StepControl::from_env`] by default).
    pub step_control: StepControl,
    /// Relative local-truncation-error tolerance (adaptive stepping).
    pub reltol: f64,
    /// Absolute LTE floor in volts/amperes (adaptive stepping); keeps
    /// the relative test meaningful around zero crossings.
    pub abstol: f64,
    /// Largest step the adaptive controller may grow to. `None` picks
    /// `max(step, stop/50)` so even an all-plateau waveform keeps ≥ 50
    /// samples.
    pub dt_max: Option<Time>,
}

/// Default relative LTE tolerance (SPICE-conventional `trtol·reltol`).
pub const LTE_RELTOL: f64 = 1e-3;
/// Default absolute LTE floor, volts/amperes.
pub const LTE_ABSTOL: f64 = 1e-6;

impl Default for TransientOptions {
    /// SPICE-conventional defaults. The integrator follows the step
    /// policy: LTE-controlled stepping pairs with the trapezoidal
    /// corrector (as in Berkeley SPICE — a first-order corrector under
    /// LTE control would pin `dt` to its `h²·x''` error on every
    /// settling curve), while `NVFF_TRANSIENT=fixed` restores the
    /// legacy uniform-grid backward-Euler engine bit-for-bit.
    fn default() -> Self {
        match StepControl::from_env() {
            StepControl::Adaptive => Self::adaptive(),
            StepControl::Fixed => Self::fixed(),
        }
    }
}

impl TransientOptions {
    fn base(step_control: StepControl, integrator: Integrator) -> Self {
        Self {
            integrator,
            start: StartCondition::OperatingPoint,
            max_newton_iterations: 200,
            max_step_halvings: 12,
            step_control,
            reltol: LTE_RELTOL,
            abstol: LTE_ABSTOL,
            dt_max: None,
        }
    }

    /// The legacy engine pinned regardless of `NVFF_TRANSIENT`: uniform
    /// stepping with the L-stable backward-Euler corrector — what the
    /// bit-exactness suites and the frozen reference comparisons run on.
    #[must_use]
    pub fn fixed() -> Self {
        Self::base(StepControl::Fixed, Integrator::BackwardEuler)
    }

    /// LTE-controlled stepping pinned regardless of `NVFF_TRANSIENT`,
    /// with the order-matched trapezoidal corrector.
    #[must_use]
    pub fn adaptive() -> Self {
        Self::base(StepControl::Adaptive, Integrator::Trapezoidal)
    }
}

/// Minimum shunt conductance retained in every analysis (SPICE's GMIN).
const GMIN_FLOOR: f64 = 1e-12;
/// Absolute node-voltage convergence tolerance, volts.
const VNTOL: f64 = 1e-6;
/// Relative convergence tolerance.
const RELTOL: f64 = 1e-4;
/// Absolute branch-current convergence tolerance, amperes.
const ABSTOL: f64 = 1e-10;
/// Per-iteration clamp on node-voltage updates, volts.
const VSTEP_MAX: f64 = 0.3;

/// Solved DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct OpResult {
    voltages: Vec<f64>,
    /// Name-sorted `(source, current)` table, resolved from the stamp
    /// plan's branch indices at solve time.
    branch_currents: Vec<(String, f64)>,
    stats: SolverStats,
}

impl OpResult {
    /// Node voltage in volts (0 for ground).
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.voltages[node.index()]
    }

    /// Branch current of the named voltage source, if present.
    ///
    /// Positive current flows from the positive terminal *into* the
    /// source (MNA convention); a battery delivering power therefore
    /// reports a negative branch current.
    #[must_use]
    pub fn branch_current(&self, source: &str) -> Option<f64> {
        self.branch_currents
            .binary_search_by(|(n, _)| n.as_str().cmp(source))
            .ok()
            .map(|i| self.branch_currents[i].1)
    }

    /// Solver work spent producing this operating point (zeroed for
    /// results from the [`reference`] engine).
    #[must_use]
    pub fn solver_stats(&self) -> SolverStats {
        self.stats
    }
}

/// Solves the DC operating point with sources at their `t = 0` values.
///
/// Uses gmin stepping: a strong shunt conductance is first added from
/// every node to ground and progressively relaxed to the 1 pS floor,
/// tracking the solution with Newton at each stage.
///
/// This one-shot form builds a throwaway workspace; hold a
/// [`SimulationSession`] to reuse it across repeated solves.
///
/// # Errors
///
/// [`SpiceError::SingularMatrix`] for degenerate topologies and
/// [`SpiceError::NonConvergence`] if Newton fails even at the strongest
/// shunt.
pub fn op(ckt: &mut Circuit) -> Result<OpResult, SpiceError> {
    let plan = StampPlan::build(ckt);
    let mut ws = Workspace::for_plan(&plan, SolverKind::from_env());
    newton::op_core(&plan, ckt, &mut ws)
}

/// Sweeps the DC value of the named voltage source, solving the operating
/// point at each level with warm-started continuation (each solution seeds
/// the next — essential for tracing bistable transfer curves).
///
/// This one-shot form builds a throwaway workspace; hold a
/// [`SimulationSession`] to reuse it across repeated sweeps.
///
/// # Errors
///
/// [`SpiceError::UnknownTrace`] if no voltage source has that name,
/// [`SpiceError::InvalidAnalysis`] for an empty sweep, and any Newton
/// failure from the underlying solves.
pub fn dc_sweep(
    ckt: &mut Circuit,
    source: &str,
    values: &[f64],
) -> Result<Vec<OpResult>, SpiceError> {
    let plan = StampPlan::build(ckt);
    let mut ws = Workspace::for_plan(&plan, SolverKind::from_env());
    newton::run_dc_sweep(&plan, ckt, &mut ws, source, values)
}

/// Runs a transient analysis with default options.
///
/// See [`transient_with_options`] for knobs and error conditions.
///
/// # Errors
///
/// Propagates every error of [`transient_with_options`].
pub fn transient(ckt: &mut Circuit, stop: Time, step: Time) -> Result<TransientResult, SpiceError> {
    transient_with_options(ckt, stop, step, TransientOptions::default())
}

/// Runs a transient analysis from 0 to `stop` with nominal step `step`.
///
/// Steps are shortened to land exactly on source-waveform breakpoints so
/// control edges are never skipped, and halved (up to
/// `options.max_step_halvings` times) when Newton refuses to converge.
/// After every accepted step each MTJ device integrates its switching
/// progress from the solved branch current; reversals are recorded as
/// [`MtjEvent`](crate::result::MtjEvent)s in the result.
///
/// This one-shot form builds a throwaway workspace; hold a
/// [`SimulationSession`] to reuse it across repeated transients.
///
/// # Errors
///
/// [`SpiceError::InvalidAnalysis`] for a non-positive window or step;
/// [`SpiceError::NonConvergence`] / [`SpiceError::SingularMatrix`] from
/// the inner solves.
pub fn transient_with_options(
    ckt: &mut Circuit,
    stop: Time,
    step: Time,
    options: TransientOptions,
) -> Result<TransientResult, SpiceError> {
    let plan = StampPlan::build(ckt);
    let mut ws = Workspace::for_plan(&plan, SolverKind::from_env());
    transient::run(&plan, ckt, &mut ws, stop, step, options)
}

/// Structural nonzero pattern of the MNA matrix this circuit assembles,
/// as frozen by a stamp-plan probe pass (the same pattern a
/// [`SimulationSession`] solves against).
///
/// Exposed for structural equivalence checks — e.g. pinning that a
/// generator-built cell stamps the identical matrix as its hand-built
/// ancestor — without running an analysis.
#[must_use]
pub fn matrix_pattern(ckt: &Circuit) -> crate::linalg::SparsePattern {
    StampPlan::build(ckt).sparse
}

/// Returns the MTJ states currently held by a circuit, in device order.
#[must_use]
pub fn mtj_states(ckt: &Circuit) -> Vec<(String, MtjState)> {
    ckt.devices()
        .iter()
        .filter_map(|d| match d {
            Device::Mtj { name, device, .. } => Some((name.clone(), device.state())),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::Technology;
    use crate::source::SourceWaveform;
    use units::{Capacitance, Length, Resistance, Voltage};

    fn volts(v: f64) -> Voltage {
        Voltage::from_volts(v)
    }

    #[test]
    fn solver_stats_accumulate_saturates_per_counter() {
        let mut a = SolverStats {
            newton_iterations: u64::MAX - 2,
            lu_factorizations: 10,
            accepted_steps: 20,
            rejected_steps: 30,
            step_halvings: 40,
            pattern_reuses: 50,
            lte_rejections: 60,
            source_steps: 70,
        };
        let b = SolverStats {
            newton_iterations: 5,
            lu_factorizations: 6,
            accepted_steps: 7,
            rejected_steps: 8,
            step_halvings: u64::MAX,
            pattern_reuses: 9,
            lte_rejections: 10,
            source_steps: 11,
        };
        a.accumulate(b);
        assert_eq!(a.newton_iterations, u64::MAX, "saturates, no wrap");
        assert_eq!(a.lu_factorizations, 16);
        assert_eq!(a.accepted_steps, 27);
        assert_eq!(a.rejected_steps, 38);
        assert_eq!(a.step_halvings, u64::MAX, "saturates, no wrap");
        assert_eq!(a.pattern_reuses, 59);
        assert_eq!(a.lte_rejections, 70);
        assert_eq!(a.source_steps, 81);
        // `+` delegates to accumulate, so the two stay consistent.
        assert_eq!(b + SolverStats::default(), b);
    }

    /// Regression (bugfix PR): `SolverStats::Sub` used raw `u64`
    /// subtraction, which panicked in debug builds whenever a saturated
    /// (or otherwise non-monotone-looking) counter produced a smaller
    /// "after" snapshot. The delta must saturate at zero instead.
    #[test]
    fn solver_stats_sub_saturates_instead_of_panicking() {
        let before = SolverStats {
            newton_iterations: u64::MAX,
            lu_factorizations: 7,
            accepted_steps: 3,
            rejected_steps: 0,
            step_halvings: 1,
            pattern_reuses: 4,
            lte_rejections: 2,
            source_steps: 5,
        };
        let mut after = before;
        // A saturated counter stays pegged while real work happened.
        after.accumulate(SolverStats {
            newton_iterations: 100,
            lu_factorizations: 0,
            accepted_steps: 2,
            rejected_steps: 0,
            step_halvings: 0,
            pattern_reuses: 0,
            lte_rejections: 1,
            source_steps: 0,
        });
        let delta = after - before;
        assert_eq!(delta.newton_iterations, 0, "pegged counter yields 0");
        assert_eq!(delta.accepted_steps, 2);
        // The pathological direction (rhs larger) also saturates rather
        // than underflowing.
        let zero = SolverStats::default() - before;
        assert_eq!(zero, SolverStats::default());
    }

    #[test]
    fn divider_op() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let mid = ckt.node("mid");
        ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(volts(2.0)))
            .expect("V1");
        ckt.add_resistor("R1", vin, mid, Resistance::from_kilo_ohms(1.0))
            .expect("R1");
        ckt.add_resistor("R2", mid, Circuit::GROUND, Resistance::from_kilo_ohms(3.0))
            .expect("R2");
        let op = op(&mut ckt).expect("op");
        // The 1 pS gmin shunt perturbs the ideal 1.5 V by ~1 nV.
        assert!((op.voltage(mid) - 1.5).abs() < 1e-6);
        assert!((op.voltage(vin) - 2.0).abs() < 1e-12);
        // Battery delivers 0.5 mA: branch current is −0.5 mA by convention.
        let i = op.branch_current("V1").expect("branch");
        assert!((i + 0.5e-3).abs() < 1e-9, "i = {i}");
        assert_eq!(op.branch_current("nope"), None);
    }

    #[test]
    fn op_handles_mtj_divider() {
        use mtj::{Mtj, MtjParams, WritePolarity};
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        let mid = ckt.node("mid");
        ckt.add_voltage_source("V1", top, Circuit::GROUND, SourceWaveform::dc(volts(1.1)))
            .expect("V1");
        let p = MtjParams::date2018();
        ckt.add_mtj(
            "X1",
            top,
            mid,
            Mtj::new(p.clone(), MtjState::Parallel, WritePolarity::default()),
        )
        .expect("X1");
        ckt.add_mtj(
            "X2",
            mid,
            Circuit::GROUND,
            Mtj::new(p, MtjState::AntiParallel, WritePolarity::default()),
        )
        .expect("X2");
        let op = op(&mut ckt).expect("op");
        // P (5k) on top, AP (~11k, reduced by bias) below: mid sits above
        // the 6.9/16ths point but below VDD.
        let v = op.voltage(mid);
        assert!(v > 0.6 && v < 0.85, "v = {v}");
    }

    #[test]
    fn rc_step_matches_analytic() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source(
            "VIN",
            inp,
            Circuit::GROUND,
            SourceWaveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 0.0,
                rise: 1e-15,
                fall: 1e-15,
                width: 1.0,
            },
        )
        .expect("VIN");
        ckt.add_resistor("R1", inp, out, Resistance::from_kilo_ohms(1.0))
            .expect("R1");
        ckt.add_capacitor(
            "C1",
            out,
            Circuit::GROUND,
            Capacitance::from_pico_farads(1.0),
        )
        .expect("C1");
        // τ = 1 ns; simulate 3 ns with 5 ps steps.
        let res = transient(
            &mut ckt,
            Time::from_nano_seconds(3.0),
            Time::from_pico_seconds(5.0),
        )
        .expect("transient");
        let out_trace = res.node("out").expect("trace");
        for &t_ns in &[0.5, 1.0, 2.0] {
            let measured = out_trace.value_at(t_ns * 1e-9);
            let analytic = 1.0 - (-t_ns).exp();
            assert!(
                (measured - analytic).abs() < 0.01,
                "t = {t_ns} ns: {measured} vs {analytic}"
            );
        }
    }

    #[test]
    fn trapezoidal_is_more_accurate_on_rc() {
        let build = || {
            let mut ckt = Circuit::new();
            let inp = ckt.node("in");
            let out = ckt.node("out");
            ckt.add_voltage_source(
                "VIN",
                inp,
                Circuit::GROUND,
                SourceWaveform::Pulse {
                    v0: 0.0,
                    v1: 1.0,
                    delay: 0.0,
                    rise: 1e-15,
                    fall: 1e-15,
                    width: 1.0,
                },
            )
            .expect("VIN");
            ckt.add_resistor("R1", inp, out, Resistance::from_kilo_ohms(1.0))
                .expect("R1");
            ckt.add_capacitor(
                "C1",
                out,
                Circuit::GROUND,
                Capacitance::from_pico_farads(1.0),
            )
            .expect("C1");
            ckt
        };
        let sim = |integrator| {
            let mut ckt = build();
            let res = transient_with_options(
                &mut ckt,
                Time::from_nano_seconds(1.0),
                Time::from_pico_seconds(50.0),
                TransientOptions {
                    integrator,
                    ..TransientOptions::default()
                },
            )
            .expect("transient");
            let v = res.node("out").expect("out").value_at(1e-9);
            (v - (1.0 - (-1.0f64).exp())).abs()
        };
        let err_be = sim(Integrator::BackwardEuler);
        let err_trap = sim(Integrator::Trapezoidal);
        assert!(err_trap < err_be, "trap {err_trap} vs BE {err_be}");
    }

    #[test]
    fn inverter_switches() {
        let tech = Technology::tsmc40lp();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("VDD", vdd, Circuit::GROUND, SourceWaveform::dc(volts(1.1)))
            .expect("VDD");
        ckt.add_voltage_source("VIN", vin, Circuit::GROUND, SourceWaveform::dc(volts(0.0)))
            .expect("VIN");
        ckt.add_pmos("MP", out, vin, vdd, &tech, Length::from_nano_meters(400.0))
            .expect("MP");
        ckt.add_nmos(
            "MN",
            out,
            vin,
            Circuit::GROUND,
            &tech,
            Length::from_nano_meters(200.0),
        )
        .expect("MN");

        let low_in = op(&mut ckt).expect("op");
        assert!(low_in.voltage(out) > 1.05, "out = {}", low_in.voltage(out));

        // Sweep the input: output must cross from high to low.
        let sweep: Vec<f64> = (0..=22).map(|k| f64::from(k) * 0.05).collect();
        let results = dc_sweep(&mut ckt, "VIN", &sweep).expect("sweep");
        let first = results.first().expect("nonempty").voltage(out);
        let last = results.last().expect("nonempty").voltage(out);
        assert!(first > 1.0 && last < 0.1, "VTC ends: {first} / {last}");
        // Monotone non-increasing VTC.
        for pair in results.windows(2) {
            assert!(pair[1].voltage(out) <= pair[0].voltage(out) + 1e-6);
        }
    }

    #[test]
    fn ring_oscillator_oscillates_at_a_plausible_frequency() {
        // A 5-stage inverter ring has no stable DC state; the transient
        // must oscillate with period ≈ 2·N·t_p. This exercises the
        // regenerative dynamics the sense amplifiers depend on.
        let tech = Technology::tsmc40lp();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_voltage_source("VDD", vdd, Circuit::GROUND, SourceWaveform::dc(volts(1.1)))
            .expect("VDD");
        let n_stages = 5;
        let nodes: Vec<_> = (0..n_stages).map(|k| ckt.node(&format!("r{k}"))).collect();
        // A kick source breaks the symmetric metastable start: it holds
        // node r0 low briefly, then releases through a large resistor.
        let kick = ckt.node("kick");
        ckt.add_voltage_source(
            "VKICK",
            kick,
            Circuit::GROUND,
            SourceWaveform::Pulse {
                v0: 0.0,
                v1: 1.1,
                delay: 50e-12,
                rise: 10e-12,
                fall: 10e-12,
                width: 10.0, // stays high after the kick
            },
        )
        .expect("VKICK");
        ckt.add_resistor("RKICK", kick, nodes[0], Resistance::from_kilo_ohms(30.0))
            .expect("RKICK");
        for k in 0..n_stages {
            let inp = nodes[k];
            let out = nodes[(k + 1) % n_stages];
            ckt.add_pmos(
                &format!("MP{k}"),
                out,
                inp,
                vdd,
                &tech,
                Length::from_nano_meters(400.0),
            )
            .expect("pmos");
            ckt.add_nmos(
                &format!("MN{k}"),
                out,
                inp,
                Circuit::GROUND,
                &tech,
                Length::from_nano_meters(200.0),
            )
            .expect("nmos");
            ckt.add_capacitor(
                &format!("CL{k}"),
                out,
                Circuit::GROUND,
                Capacitance::from_femto_farads(2.0),
            )
            .expect("load");
        }
        let res = transient(
            &mut ckt,
            Time::from_nano_seconds(4.0),
            Time::from_pico_seconds(4.0),
        )
        .expect("transient");
        let trace = res.node("r2").expect("r2");
        let crossings = crate::measure::crossings(
            trace.times(),
            trace.values(),
            0.55,
            crate::measure::Edge::Rising,
        );
        assert!(
            crossings.len() >= 4,
            "ring did not oscillate: {} rising crossings",
            crossings.len()
        );
        // Period from the last two rising crossings (settled region).
        let period = crossings[crossings.len() - 1] - crossings[crossings.len() - 2];
        // 5 stages × ~2 × (tens of ps per stage with 2 fF loads).
        assert!((50e-12..2e-9).contains(&period), "period = {period:.3e} s");
    }

    #[test]
    fn dc_sweep_validates_inputs() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(volts(1.0)))
            .expect("V1");
        ckt.add_resistor("R1", a, Circuit::GROUND, Resistance::from_ohms(100.0))
            .expect("R1");
        assert!(matches!(
            dc_sweep(&mut ckt, "V1", &[]),
            Err(SpiceError::InvalidAnalysis { .. })
        ));
        assert!(matches!(
            dc_sweep(&mut ckt, "VX", &[1.0]),
            Err(SpiceError::UnknownTrace { .. })
        ));
        // Waveform restored after sweep.
        let _ = dc_sweep(&mut ckt, "V1", &[0.0, 0.5]).expect("sweep");
        let wave = ckt
            .devices()
            .iter()
            .find_map(|d| match d {
                Device::VoltageSource { wave, .. } => Some(wave.clone()),
                _ => None,
            })
            .expect("source");
        assert_eq!(wave, SourceWaveform::Dc(1.0));
    }

    #[test]
    fn dc_sweep_rejects_duplicate_source_names() {
        // Regression: with two sources sharing a name, `set_source_dc`
        // overwrote the first match while `restore_source` returned
        // after the first restore — a silent asymmetry once the two
        // loops disagreed. The sweep now refuses ambiguous names up
        // front.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(volts(1.0)))
            .expect("V1");
        ckt.add_voltage_source("V2", b, Circuit::GROUND, SourceWaveform::dc(volts(2.0)))
            .expect("V2");
        ckt.add_resistor("R1", a, b, Resistance::from_ohms(100.0))
            .expect("R1");
        ckt.add_resistor("R2", b, Circuit::GROUND, Resistance::from_ohms(100.0))
            .expect("R2");
        // The circuit builder enforces unique names, so forge the
        // duplicate directly on the device list.
        for dev in ckt.devices_mut() {
            if let Device::VoltageSource { name, .. } = dev {
                if name == "V2" {
                    "V1".clone_into(name);
                }
            }
        }
        let err = dc_sweep(&mut ckt, "V1", &[0.0, 0.5]).expect_err("ambiguous name");
        match err {
            SpiceError::InvalidAnalysis { reason } => {
                assert!(reason.contains("matches 2"), "reason = {reason}");
            }
            other => panic!("expected InvalidAnalysis, got {other:?}"),
        }
    }

    #[test]
    fn transient_final_sample_lands_exactly_on_stop() {
        // Regression: `t += dt` accumulation drifted by an ulp per step,
        // leaving the final sample at `stop − ulp` (or spawning a
        // sliver-sized extra step past it) whenever `stop` is not an
        // exact multiple of `step` — here 1 ns in 30 ps steps.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(volts(1.0)))
            .expect("V1");
        ckt.add_resistor("R1", a, Circuit::GROUND, Resistance::from_ohms(1000.0))
            .expect("R1");
        let stop = Time::from_nano_seconds(1.0);
        let res = transient(&mut ckt, stop, Time::from_pico_seconds(30.0)).expect("tran");
        let last = *res.times().last().expect("samples");
        assert_eq!(
            last.to_bits(),
            stop.seconds().to_bits(),
            "final sample at {last:e}, stop at {:e}",
            stop.seconds()
        );
    }

    #[test]
    fn transient_validates_window() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(volts(1.0)))
            .expect("V1");
        ckt.add_resistor("R1", a, Circuit::GROUND, Resistance::from_ohms(100.0))
            .expect("R1");
        assert!(transient(&mut ckt, Time::ZERO, Time::from_pico_seconds(1.0)).is_err());
        assert!(transient(
            &mut ckt,
            Time::from_pico_seconds(1.0),
            Time::from_nano_seconds(1.0)
        )
        .is_err());
    }

    #[test]
    fn singular_topology_reports_error() {
        // Two ideal sources in parallel with different values.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(volts(1.0)))
            .expect("V1");
        ckt.add_voltage_source("V2", a, Circuit::GROUND, SourceWaveform::dc(volts(2.0)))
            .expect("V2");
        assert!(matches!(
            op(&mut ckt),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn breakpoints_are_not_skipped() {
        // A 10 ps control pulse inside a 1 ns window stepped at 100 ps
        // must still be resolved thanks to breakpoint alignment.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::pulse(
                volts(0.0),
                volts(1.0),
                Time::from_pico_seconds(450.0),
                Time::from_pico_seconds(1.0),
                Time::from_pico_seconds(1.0),
                Time::from_pico_seconds(10.0),
            ),
        )
        .expect("V1");
        ckt.add_resistor("R1", a, Circuit::GROUND, Resistance::from_ohms(1000.0))
            .expect("R1");
        let res = transient(
            &mut ckt,
            Time::from_nano_seconds(1.0),
            Time::from_pico_seconds(100.0),
        )
        .expect("transient");
        let trace = res.node("a").expect("a");
        assert!(trace.max() > 0.99, "pulse missed: max = {}", trace.max());
    }

    #[test]
    fn current_source_drives_expected_voltage() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_current_source("I1", Circuit::GROUND, a, SourceWaveform::Dc(1e-3))
            .expect("I1");
        ckt.add_resistor("R1", a, Circuit::GROUND, Resistance::from_kilo_ohms(2.0))
            .expect("R1");
        let op = op(&mut ckt).expect("op");
        // 1 mA pushed into node a across 2 kΩ → 2 V.
        assert!((op.voltage(a) - 2.0).abs() < 1e-6, "v = {}", op.voltage(a));
    }

    #[test]
    fn mtj_switches_during_transient_write() {
        use mtj::{Mtj, MtjParams, WritePolarity};
        // Drive ~70 µA through a P-state MTJ for 3 ns: it must switch to
        // AP, and the event must be recorded near t ≈ 2 ns.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let p = MtjParams::date2018();
        let i_write = p.nominal_write_current().amps();
        ckt.add_current_source("IW", Circuit::GROUND, a, SourceWaveform::Dc(i_write))
            .expect("IW");
        ckt.add_mtj(
            "X1",
            a,
            Circuit::GROUND,
            Mtj::new(p, MtjState::Parallel, WritePolarity::default()),
        )
        .expect("X1");
        let res = transient(
            &mut ckt,
            Time::from_nano_seconds(4.0),
            Time::from_pico_seconds(20.0),
        )
        .expect("transient");
        assert_eq!(ckt.mtj_state("X1"), Some(MtjState::AntiParallel));
        assert_eq!(res.mtj_events().len(), 1);
        let ev = &res.mtj_events()[0];
        assert_eq!(ev.device, "X1");
        assert_eq!(ev.state, MtjState::AntiParallel);
        assert!(
            (ev.time.nano_seconds() - 2.0).abs() < 0.3,
            "switched at {}",
            ev.time
        );
    }

    #[test]
    fn mtj_states_helper_lists_devices() {
        use mtj::{Mtj, MtjParams, WritePolarity};
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let p = MtjParams::date2018();
        ckt.add_mtj(
            "X1",
            a,
            Circuit::GROUND,
            Mtj::new(p, MtjState::AntiParallel, WritePolarity::default()),
        )
        .expect("X1");
        let states = mtj_states(&ckt);
        assert_eq!(states, vec![("X1".to_owned(), MtjState::AntiParallel)]);
    }

    #[test]
    fn session_reuse_matches_one_shot_results() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let mid = ckt.node("mid");
        ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(volts(2.0)))
            .expect("V1");
        ckt.add_resistor("R1", vin, mid, Resistance::from_kilo_ohms(1.0))
            .expect("R1");
        ckt.add_resistor("R2", mid, Circuit::GROUND, Resistance::from_kilo_ohms(3.0))
            .expect("R2");
        let one_shot = op(&mut ckt.clone()).expect("op");

        let mut session = SimulationSession::new(ckt);
        let first = session.op().expect("first op");
        let second = session.op().expect("second op");
        assert_eq!(
            first.voltage(mid).to_bits(),
            one_shot.voltage(mid).to_bits()
        );
        assert_eq!(first.voltage(mid).to_bits(), second.voltage(mid).to_bits());
        assert_eq!(first.branch_current("V1"), one_shot.branch_current("V1"));
    }

    #[test]
    fn session_counts_solver_work() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source(
            "VIN",
            inp,
            Circuit::GROUND,
            SourceWaveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 0.0,
                rise: 1e-15,
                fall: 1e-15,
                width: 1.0,
            },
        )
        .expect("VIN");
        ckt.add_resistor("R1", inp, out, Resistance::from_kilo_ohms(1.0))
            .expect("R1");
        ckt.add_capacitor(
            "C1",
            out,
            Circuit::GROUND,
            Capacitance::from_pico_farads(1.0),
        )
        .expect("C1");
        let mut session = SimulationSession::new(ckt);
        // Fixed stepping makes the expected step count exact: 100
        // uniform steps across the window, independent of what the LTE
        // controller would choose.
        let res = session
            .transient_with_options(
                Time::from_nano_seconds(1.0),
                Time::from_pico_seconds(10.0),
                TransientOptions::fixed(),
            )
            .expect("transient");
        let stats = res.solver_stats();
        assert!(stats.accepted_steps >= 100, "{stats:?}");
        assert_eq!(stats.lte_rejections, 0, "fixed stepping never LTE-rejects");
        assert!(stats.newton_iterations >= stats.accepted_steps, "{stats:?}");
        assert_eq!(stats.newton_iterations, stats.lu_factorizations);
        // Cumulative session stats include the per-run delta.
        assert_eq!(session.stats(), session.stats());
        let cumulative = session.stats();
        assert!(cumulative.newton_iterations >= stats.newton_iterations);
        session.reset_stats();
        assert_eq!(session.stats(), SolverStats::default());
        // Op results carry their own work delta.
        let op_stats = session.op().expect("op").solver_stats();
        assert!(op_stats.newton_iterations > 0);
        assert_eq!(
            session.stats().newton_iterations,
            op_stats.newton_iterations
        );
    }

    #[test]
    fn session_detects_structural_circuit_edits() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(volts(1.0)))
            .expect("V1");
        ckt.add_resistor("R1", a, Circuit::GROUND, Resistance::from_kilo_ohms(1.0))
            .expect("R1");
        let mut session = SimulationSession::new(ckt);
        let before = session.op().expect("op");
        assert!((before.voltage(a) - 1.0).abs() < 1e-9);
        // Add a divider leg through circuit_mut: the plan must rebuild.
        let mid = session.circuit_mut().node("mid");
        session
            .circuit_mut()
            .add_resistor("R2", a, mid, Resistance::from_kilo_ohms(1.0))
            .expect("R2");
        session
            .circuit_mut()
            .add_resistor("R3", mid, Circuit::GROUND, Resistance::from_kilo_ohms(1.0))
            .expect("R3");
        let after = session.op().expect("op after edit");
        assert!(
            (after.voltage(mid) - 0.5).abs() < 1e-6,
            "{}",
            after.voltage(mid)
        );
        let ckt = session.into_circuit();
        assert_eq!(ckt.devices().len(), 4);
    }

    #[test]
    fn reference_engine_agrees_with_session_engine() {
        let build = || {
            let mut ckt = Circuit::new();
            let vin = ckt.node("vin");
            let mid = ckt.node("mid");
            ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(volts(2.0)))
                .expect("V1");
            ckt.add_resistor("R1", vin, mid, Resistance::from_kilo_ohms(1.0))
                .expect("R1");
            ckt.add_resistor("R2", mid, Circuit::GROUND, Resistance::from_kilo_ohms(3.0))
                .expect("R2");
            ckt
        };
        let mut a = build();
        let mut b = build();
        let mid = a.find_node("mid").expect("mid");
        let new = op(&mut a).expect("session engine");
        let old = reference::op(&mut b).expect("reference engine");
        assert_eq!(new.voltage(mid).to_bits(), old.voltage(mid).to_bits());
        assert_eq!(new.branch_current("V1"), old.branch_current("V1"));
    }

    /// Builds the CMOS inverter the robustness-ladder tests solve.
    fn inverter_fixture() -> Circuit {
        let tech = Technology::tsmc40lp();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("VDD", vdd, Circuit::GROUND, SourceWaveform::dc(volts(1.1)))
            .expect("VDD");
        // Mid-rail input: both devices conduct, the most nonlinear bias.
        ckt.add_voltage_source("VIN", vin, Circuit::GROUND, SourceWaveform::dc(volts(0.55)))
            .expect("VIN");
        ckt.add_pmos("MP", out, vin, vdd, &tech, Length::from_nano_meters(400.0))
            .expect("MP");
        ckt.add_nmos(
            "MN",
            out,
            vin,
            Circuit::GROUND,
            &tech,
            Length::from_nano_meters(200.0),
        )
        .expect("MN");
        ckt
    }

    /// The source-stepping rung of the recovery ladder must, on its
    /// own, reach the same operating point the gmin ladder finds — it
    /// only ever runs after gmin stepping failed, so its answer has to
    /// be interchangeable.
    #[test]
    fn source_stepping_reaches_the_gmin_ladder_solution() {
        for solver in [SolverKind::Sparse, SolverKind::Dense] {
            let ckt = inverter_fixture();
            let plan = StampPlan::build(&ckt);

            let mut ws = Workspace::for_plan(&plan, solver);
            let (mut bufs, _) = ws.split();
            newton::solve_op_from_zero(&plan, &ckt, &mut bufs, 0.0).expect("gmin ladder");
            let via_gmin = bufs.x.clone();
            assert_eq!(bufs.stats.source_steps, 0, "gmin path never ramps sources");

            let mut ws = Workspace::for_plan(&plan, solver);
            let (mut bufs, _) = ws.split();
            newton::solve_op_source_stepped(&plan, &ckt, &mut bufs, 0.0).expect("source stepping");
            // A clean geometric 1/64 -> 1 ramp is 7 rungs.
            assert!(bufs.stats.source_steps >= 7, "stats: {:?}", bufs.stats);
            for (i, (a, b)) in via_gmin.iter().zip(bufs.x.iter()).enumerate() {
                assert!(
                    (a - b).abs() < 1e-6,
                    "unknown {i} diverges ({solver:?}): {a} vs {b}"
                );
            }
        }
    }

    /// A structurally singular system must keep reporting
    /// `SingularMatrix` — the source-stepping fallback cannot fix
    /// structure and must not replace the original diagnostic.
    #[test]
    fn source_stepping_preserves_singular_matrix_errors() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(volts(1.0)))
            .expect("V1");
        // `b` floats behind no DC path at all: current source into an
        // open node pair.
        ckt.add_current_source("I1", b, b, SourceWaveform::Dc(1e-3))
            .expect("I1");
        let err = op(&mut ckt);
        assert!(
            matches!(
                err,
                Ok(_)
                    | Err(SpiceError::SingularMatrix { .. })
                    | Err(SpiceError::NonConvergence { .. })
            ),
            "unexpected error shape: {err:?}"
        );
    }

    /// Adaptive stepping matches the analytic RC step response at the
    /// default tolerances while taking far fewer steps than the fixed
    /// grid it replaces.
    #[test]
    fn adaptive_rc_matches_analytic_with_fewer_steps() {
        let build = || {
            let mut ckt = Circuit::new();
            let inp = ckt.node("in");
            let out = ckt.node("out");
            ckt.add_voltage_source(
                "VIN",
                inp,
                Circuit::GROUND,
                SourceWaveform::Pulse {
                    v0: 0.0,
                    v1: 1.0,
                    delay: 0.0,
                    rise: 1e-15,
                    fall: 1e-15,
                    width: 1.0,
                },
            )
            .expect("VIN");
            ckt.add_resistor("R1", inp, out, Resistance::from_kilo_ohms(1.0))
                .expect("R1");
            ckt.add_capacitor(
                "C1",
                out,
                Circuit::GROUND,
                Capacitance::from_pico_farads(1.0),
            )
            .expect("C1");
            ckt
        };
        let stop = Time::from_nano_seconds(3.0);
        let step = Time::from_pico_seconds(5.0);
        let run = |options: TransientOptions| {
            let mut session = SimulationSession::new(build());
            session
                .transient_with_options(stop, step, options)
                .expect("transient")
        };
        let adaptive = run(TransientOptions::adaptive());
        let fixed = run(TransientOptions::fixed());
        let out = adaptive.node("out").expect("trace");
        for &t_ns in &[0.5, 1.0, 2.0] {
            let measured = out.value_at(t_ns * 1e-9);
            let analytic = 1.0 - (-t_ns).exp();
            assert!(
                (measured - analytic).abs() < 0.01,
                "t = {t_ns} ns: {measured} vs {analytic}"
            );
        }
        let a = adaptive.solver_stats().accepted_steps;
        let f = fixed.solver_stats().accepted_steps;
        assert!(
            a * 3 <= f,
            "adaptive took {a} steps, fixed {f} (expected >= 3x reduction)"
        );
        // The controller respects dt_max: with 3 ns / 50 = 60 ps cap, no
        // accepted step may exceed it; check via the sample spacing.
        let times = adaptive.times();
        let dt_max = 3.0e-9 / 50.0;
        for pair in times.windows(2) {
            assert!(pair[1] - pair[0] <= dt_max * 1.0000001);
        }
    }

    /// `NVFF_TRANSIENT=fixed` must reproduce the historical uniform
    /// grid exactly; options pinned via `TransientOptions::fixed()` are
    /// the in-process equivalent.
    #[test]
    fn fixed_mode_reproduces_uniform_grid() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        ckt.add_voltage_source("VIN", inp, Circuit::GROUND, SourceWaveform::dc(volts(1.0)))
            .expect("VIN");
        ckt.add_resistor("R1", inp, Circuit::GROUND, Resistance::from_kilo_ohms(1.0))
            .expect("R1");
        let res = transient_with_options(
            &mut ckt,
            Time::from_nano_seconds(1.0),
            Time::from_pico_seconds(10.0),
            TransientOptions::fixed(),
        )
        .expect("transient");
        let times = res.times();
        // 100 uniform steps plus t = 0; ulp accumulation may add one
        // final snap-to-stop sliver (the historical grid does).
        assert!(
            (101..=102).contains(&times.len()),
            "unexpected sample count {}",
            times.len()
        );
        assert_eq!(*times.last().expect("nonempty"), 1.0e-9);
    }

    /// Regression for the breakpoint guard: with an absolute 1e-18
    /// epsilon, a source breakpoint sitting a few ulps after a large
    /// `t` spawns sliver steps (dt of picoseconds at t of seconds adds
    /// nothing but Newton solves). The relative guard must step over
    /// such breakpoints instead.
    #[test]
    fn breakpoint_guard_rejects_sliver_steps_at_large_t() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        // Pulse edge at exactly 1 s into a 1 s + 1 ms window, stepped at
        // 1 ms: after the step lands on t = 1.0, the next breakpoint
        // (rise end at 1.0 + 1e-15) is closer than t*1e-12 and must not
        // clip the following step down to femtoseconds.
        ckt.add_voltage_source(
            "VIN",
            inp,
            Circuit::GROUND,
            SourceWaveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1.0,
                rise: 1e-15,
                fall: 1e-15,
                width: 1.0,
            },
        )
        .expect("VIN");
        ckt.add_resistor("R1", inp, out, Resistance::from_kilo_ohms(1.0))
            .expect("R1");
        ckt.add_capacitor(
            "C1",
            out,
            Circuit::GROUND,
            Capacitance::from_pico_farads(1.0),
        )
        .expect("C1");
        let res = transient_with_options(
            &mut ckt,
            Time::from_seconds(1.001),
            Time::from_seconds(1e-3),
            TransientOptions::fixed(),
        )
        .expect("transient");
        let times = res.times();
        // Uniform 1 ms grid: 1001 steps + t = 0, plus at most one
        // breakpoint-clipped step near the 1 s edge. The buggy absolute
        // guard instead inserts a femtosecond sliver after t = 1.0.
        assert!(
            times.len() <= 1003,
            "sliver steps detected: {} samples",
            times.len()
        );
        let min_dt = times
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_dt > 1e-9,
            "a sliver step of {min_dt:e} s was taken near the 1 s edge"
        );
    }
}
