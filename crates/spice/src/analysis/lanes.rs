//! Masked lane-batched Newton and transient stepping over the
//! lane-replicated sparse LU.
//!
//! The scalar solver pipeline is assemble → factor → solve → damped
//! update → convergence test. This module runs that pipeline for
//! `LANES` parameter samples in lockstep: one `[f64; LANES]` block per
//! structural nonzero and per unknown, one symbolic factorization for
//! the whole batch ([`SymbolicLuLanes`]), and **per-lane masks** where
//! the scalar path has booleans:
//!
//! * a lane that converges stops receiving updates (its iterate is
//!   frozen at exactly the value the scalar Newton would have returned)
//!   while slower lanes keep iterating;
//! * a lane whose pivots decay or whose solution goes non-finite is
//!   marked failed and masked out, without disturbing the arithmetic of
//!   healthy lanes;
//! * in the transient driver, a lane that reaches its own stop step
//!   retires — its solution freezes — while longer-running lanes
//!   continue.
//!
//! Assembly stays with the caller as a closure over the lane value
//! blocks (stamp with [`SparsePattern::add_into_all`] for shared
//! topology and [`SparsePattern::add_into_lane`] for the per-lane
//! devices), which keeps this module independent of any particular
//! device set.
//!
//! # Numeric contract
//!
//! For a given lane, the iterate sequence — damping clamp, tolerance
//! split at `n_nodes`, update application — reproduces the scalar
//! Newton core ([`super::newton`]) operation for operation. The
//! differential tests pin lane-count invariance: lane `l` of a
//! `LANES`-wide run is bit-identical to the same problem run at
//! `LANES = 1`.

use crate::linalg::lanes::{all_lanes, SymbolicLuLanes};
use crate::linalg::SparsePattern;

use super::{ABSTOL, RELTOL, VNTOL, VSTEP_MAX};

/// Options shared by [`newton_lanes`] and [`transient_lanes`].
#[derive(Debug, Clone, Copy)]
pub struct LaneNewtonOptions {
    /// Unknowns `0..n_nodes` are node voltages: their updates are
    /// clamped to the scalar engine's per-iteration voltage step and
    /// tested against the voltage tolerances; the rest are branch
    /// currents under the current tolerances.
    pub n_nodes: usize,
    /// Lockstep iteration budget per Newton solve.
    pub max_iter: usize,
}

impl Default for LaneNewtonOptions {
    /// All unknowns treated as node voltages, with the transient
    /// engine's default iteration budget.
    fn default() -> Self {
        Self {
            n_nodes: usize::MAX,
            max_iter: 200,
        }
    }
}

/// Per-lane outcome of a [`newton_lanes`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneNewtonReport {
    /// Lanes that met the convergence test within the iteration budget.
    pub converged: u64,
    /// Lanes dropped by the linear solver (decayed pivot, non-finite
    /// solution, or a batch-wide singularity). Disjoint from
    /// `converged`; lanes in neither mask ran out of iterations.
    pub failed: u64,
    /// Lockstep iterations performed (shared by all lanes).
    pub iterations: usize,
}

/// Reusable lane-replicated buffers for [`newton_lanes`] /
/// [`transient_lanes`]: the iterate, the assembly targets, and the
/// symbolic LU engine. After warm-up no call allocates.
#[derive(Debug, Clone, Default)]
pub struct LaneWorkspace<const LANES: usize> {
    /// The iterate: one solution per lane per unknown. Seed it with the
    /// initial condition before the first call; on return it holds each
    /// lane's final (frozen-at-convergence or frozen-at-retirement)
    /// solution.
    pub x: Vec<[f64; LANES]>,
    values: Vec<[f64; LANES]>,
    z: Vec<[f64; LANES]>,
    x_new: Vec<[f64; LANES]>,
    engine: SymbolicLuLanes<LANES>,
}

impl<const LANES: usize> LaneWorkspace<LANES> {
    /// Creates an empty workspace; buffers grow on first use.
    ///
    /// # Panics
    ///
    /// Panics if `LANES` is 0 or exceeds 64 (masks are `u64`).
    #[must_use]
    pub fn new() -> Self {
        assert!(
            (1..=64).contains(&LANES),
            "lane count {LANES} outside 1..=64"
        );
        Self::default()
    }

    /// Drops the engine's frozen pivot order (pattern change).
    pub fn invalidate(&mut self) {
        self.engine.invalidate();
    }
}

/// Masked lane-batched Newton solve: iterates `ws.x` in place for every
/// lane in `active`, in lockstep, until each lane individually
/// converges, fails, or the iteration budget runs out.
///
/// `assemble` is called once per lockstep iteration with the current
/// iterate and zeroed `(values, z)` lane blocks laid out per `pattern`;
/// it must stamp the linearized system `J·x_new = z` for every lane
/// (converged lanes included — their entries are simply never applied).
///
/// Lanes outside `active` are untouched: not assembled *into* `ws.x`,
/// not updated, not reported.
pub fn newton_lanes<const LANES: usize>(
    pattern: &SparsePattern,
    ws: &mut LaneWorkspace<LANES>,
    opts: &LaneNewtonOptions,
    active: u64,
    mut assemble: impl FnMut(&[[f64; LANES]], &mut [[f64; LANES]], &mut [[f64; LANES]]),
) -> LaneNewtonReport {
    let n = pattern.dim();
    let LaneWorkspace {
        x,
        values,
        z,
        x_new,
        engine,
    } = ws;
    assert_eq!(x.len(), n, "iterate length mismatch");
    values.resize(pattern.nnz(), [0.0; LANES]);
    z.resize(n, [0.0; LANES]);

    let mut pending = active & all_lanes(LANES);
    let mut converged = 0u64;
    let mut failed = 0u64;
    let mut iterations = 0usize;
    while pending != 0 && iterations < opts.max_iter {
        iterations += 1;
        for v in values.iter_mut() {
            *v = [0.0; LANES];
        }
        for zi in z.iter_mut() {
            *zi = [0.0; LANES];
        }
        assemble(x, values, z);
        let Some(report) = engine.factor_and_solve(pattern, values, z, x_new) else {
            // Reference lane singular at build time: the whole batch is
            // unsolvable this iteration.
            failed |= pending;
            break;
        };
        failed |= pending & !report.ok;
        pending &= report.ok;
        // Damped update + convergence test, the scalar sequence per
        // lane: clamp node-voltage deltas, apply, and a lane converges
        // only when every unknown's delta is inside tolerance.
        let mut still = 0u64;
        for (i, (xi, xn)) in x.iter_mut().zip(x_new.iter()).enumerate() {
            for l in 0..LANES {
                if pending >> l & 1 == 0 {
                    continue;
                }
                let mut delta = xn[l] - xi[l];
                let tol = if i < opts.n_nodes {
                    if delta.abs() > VSTEP_MAX {
                        delta = delta.signum() * VSTEP_MAX;
                        still |= 1 << l;
                    }
                    VNTOL + RELTOL * xn[l].abs()
                } else {
                    ABSTOL + RELTOL * xn[l].abs()
                };
                if delta.abs() > tol {
                    still |= 1 << l;
                }
                xi[l] += delta;
            }
        }
        converged |= pending & !still;
        pending &= still;
    }
    LaneNewtonReport {
        converged,
        failed,
        iterations,
    }
}

/// Per-lane outcome of a [`transient_lanes`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneTransientReport {
    /// Lanes that ran every one of their steps (retiring on schedule).
    pub completed: u64,
    /// Lanes stopped early by a Newton failure; their solution in
    /// `ws.x` is the last accepted step.
    pub failed: u64,
    /// Total lockstep Newton iterations across all steps.
    pub newton_iterations: usize,
}

/// Fixed-step lane-batched transient: advances every lane through its
/// own number of steps, in lockstep, with per-lane retirement.
///
/// Lane `l` takes `stop_step[l]` steps; once it has, it retires and its
/// solution freezes while longer-running lanes continue (the driver
/// runs until the longest lane finishes). `assemble` is called per
/// Newton iteration with `(step, x_prev, x_iter, values, z)` — the
/// caller derives its integrator companions from `x_prev`, the previous
/// accepted solution. `observe` runs after each accepted step with the
/// step index, the full iterate, and the mask of lanes that actually
/// advanced on that step.
///
/// A lane whose Newton solve fails (or stops converging) is rolled back
/// to its last accepted solution and marked failed; the others are
/// unaffected — the lane analogue of the scalar engine aborting the
/// whole run.
pub fn transient_lanes<const LANES: usize>(
    pattern: &SparsePattern,
    ws: &mut LaneWorkspace<LANES>,
    opts: &LaneNewtonOptions,
    stop_step: &[usize; LANES],
    mut assemble: impl FnMut(
        usize,
        &[[f64; LANES]],
        &[[f64; LANES]],
        &mut [[f64; LANES]],
        &mut [[f64; LANES]],
    ),
    mut observe: impl FnMut(usize, &[[f64; LANES]], u64),
) -> LaneTransientReport {
    let n = pattern.dim();
    assert_eq!(ws.x.len(), n, "iterate length mismatch");
    let total_steps = stop_step.iter().copied().max().unwrap_or(0);
    let mut alive = all_lanes(LANES);
    let mut newton_iterations = 0usize;
    let mut x_prev = vec![[0.0; LANES]; n];
    for step in 0..total_steps {
        let mut stepping = 0u64;
        for (l, &stop) in stop_step.iter().enumerate() {
            if step < stop {
                stepping |= 1 << l;
            }
        }
        stepping &= alive;
        if stepping == 0 {
            break;
        }
        x_prev.copy_from_slice(&ws.x);
        let report = newton_lanes(pattern, ws, opts, stepping, |x, values, z| {
            assemble(step, &x_prev, x, values, z);
        });
        newton_iterations += report.iterations;
        let bad = stepping & !report.converged;
        if bad != 0 {
            // Roll failed lanes back to their last accepted solution
            // and retire them; healthy lanes keep their new step.
            for (xi, prev) in ws.x.iter_mut().zip(x_prev.iter()) {
                for l in 0..LANES {
                    if bad >> l & 1 == 1 {
                        xi[l] = prev[l];
                    }
                }
            }
            alive &= !bad;
        }
        observe(step, &ws.x, stepping & !bad);
    }
    LaneTransientReport {
        completed: alive,
        failed: all_lanes(LANES) & !alive,
        newton_iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-node backward-Euler RC discharge, per-lane resistance:
    /// `(C/dt + 1/R_l)·v = (C/dt)·v_prev`.
    struct Rc {
        a: f64, // C/dt
        g: [f64; 8],
    }

    fn rc_pattern() -> SparsePattern {
        SparsePattern::from_entries(1, vec![(0, 0)])
    }

    fn rc_assemble<const LANES: usize>(
        a: f64,
        g: &[f64],
        pattern: &SparsePattern,
        x_prev: &[[f64; LANES]],
        values: &mut [[f64; LANES]],
        z: &mut [[f64; LANES]],
    ) {
        pattern.add_into_all(values, 0, 0, a);
        for (l, &gl) in g.iter().enumerate() {
            pattern.add_into_lane(values, 0, 0, l, gl);
        }
        for l in 0..LANES {
            z[0][l] += a * x_prev[0][l];
        }
    }

    #[test]
    fn lane_transient_is_bit_identical_to_its_single_lane_runs() {
        const LANES: usize = 8;
        let rc = Rc {
            a: 1e-9 / 1e-10,
            g: [0.5, 1.0, 2.0, 4.0, 8.0, 0.25, 3.0, 1.5],
        };
        let pattern = rc_pattern();
        let opts = LaneNewtonOptions {
            n_nodes: 1,
            max_iter: 50,
        };
        let steps = 40;

        let mut ws = LaneWorkspace::<LANES>::new();
        ws.x = vec![[1.0; LANES]];
        let report = transient_lanes(
            &pattern,
            &mut ws,
            &opts,
            &[steps; LANES],
            |_, x_prev, _, values, z| rc_assemble(rc.a, &rc.g, &pattern, x_prev, values, z),
            |_, _, _| {},
        );
        assert_eq!(report.completed, all_lanes(LANES));
        assert_eq!(report.failed, 0);

        for lane in 0..LANES {
            let mut solo = LaneWorkspace::<1>::new();
            solo.x = vec![[1.0]];
            let g = [rc.g[lane]];
            let solo_report = transient_lanes(
                &pattern,
                &mut solo,
                &opts,
                &[steps],
                |_, x_prev, _, values, z| rc_assemble(rc.a, &g, &pattern, x_prev, values, z),
                |_, _, _| {},
            );
            assert_eq!(solo_report.completed, 1);
            assert_eq!(
                ws.x[0][lane].to_bits(),
                solo.x[0][0].to_bits(),
                "lane {lane}: {} vs {}",
                ws.x[0][lane],
                solo.x[0][0]
            );
        }

        // Sanity against the analytic recurrence v ← v·a/(a+g).
        for lane in 0..LANES {
            let ratio = rc.a / (rc.a + rc.g[lane]);
            let want = ratio.powi(steps as i32);
            assert!(
                (ws.x[0][lane] - want).abs() <= 1e-9 * want.abs(),
                "lane {lane}: {} vs analytic {want}",
                ws.x[0][lane]
            );
        }
    }

    #[test]
    fn newton_converges_nonlinear_lanes_at_their_own_pace() {
        // Per-lane diode-style equation g·v + Is·(exp(v/vt) − 1) = I,
        // linearized the SPICE way; drive currents differ per lane so
        // convergence takes a different number of damped iterations.
        const LANES: usize = 4;
        let (g, is, vt) = (1e-3, 1e-14, 0.025);
        let drives = [1e-4, 1e-3, 5e-3, 2e-2];
        let pattern = rc_pattern();
        let opts = LaneNewtonOptions {
            n_nodes: 1,
            max_iter: 200,
        };
        let assemble = |drives: &[f64],
                        x: &[[f64; LANES]],
                        values: &mut [[f64; LANES]],
                        z: &mut [[f64; LANES]]| {
            for (l, &i_drive) in drives.iter().enumerate() {
                let v = x[0][l];
                let e = is * (v / vt).exp();
                let geq = g + e / vt;
                let ieq = (e - is) - (e / vt) * v;
                values[0][l] += geq;
                z[0][l] += i_drive - ieq;
            }
        };

        let mut ws = LaneWorkspace::<LANES>::new();
        ws.x = vec![[0.0; LANES]];
        let report = newton_lanes(
            &pattern,
            &mut ws,
            &opts,
            all_lanes(LANES),
            |x, values, z| assemble(&drives, x, values, z),
        );
        assert_eq!(report.converged, all_lanes(LANES), "{report:?}");
        assert_eq!(report.failed, 0);

        for (lane, &drive) in drives.iter().enumerate() {
            // Residual check: the solved voltage satisfies the device
            // equation to Newton tolerance (VNTOL on v maps to roughly
            // geq·VNTOL in current — stay an order above that).
            let v = ws.x[0][lane];
            let res = g * v + is * ((v / vt).exp() - 1.0) - drive;
            assert!(res.abs() < 1e-6, "lane {lane}: residual {res}");

            // And lane-count invariance, bit for bit: the same problem
            // at LANES = 1 freezes at the identical iterate even though
            // the wide run kept iterating other lanes after this one
            // converged.
            let mut solo = LaneWorkspace::<1>::new();
            solo.x = vec![[0.0]];
            let solo_drive = [drive];
            let solo_report = newton_lanes(&pattern, &mut solo, &opts, 1, |x, values, z| {
                let mut vv = [[0.0f64; LANES]; 1];
                let mut zz = [[0.0f64; LANES]; 1];
                let mut xx = [[0.0f64; LANES]; 1];
                xx[0][0] = x[0][0];
                assemble(&solo_drive, &xx, &mut vv, &mut zz);
                values[0][0] += vv[0][0];
                z[0][0] += zz[0][0];
            });
            assert_eq!(solo_report.converged, 1);
            assert_eq!(
                ws.x[0][lane].to_bits(),
                solo.x[0][0].to_bits(),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn retired_lanes_freeze_while_others_run_on() {
        const LANES: usize = 4;
        let rc = Rc {
            a: 10.0,
            g: [1.0; 8],
        };
        let pattern = rc_pattern();
        let opts = LaneNewtonOptions {
            n_nodes: 1,
            max_iter: 50,
        };
        let stop = [5usize, 10, 20, 40];
        let mut ws = LaneWorkspace::<LANES>::new();
        ws.x = vec![[1.0; LANES]];
        let mut frozen_at_retirement = [0.0f64; LANES];
        let report = transient_lanes(
            &pattern,
            &mut ws,
            &opts,
            &stop,
            |_, x_prev, _, values, z| {
                rc_assemble(rc.a, &rc.g[..LANES], &pattern, x_prev, values, z)
            },
            |step, x, advanced| {
                for (l, &s) in stop.iter().enumerate() {
                    assert_eq!(
                        advanced >> l & 1 == 1,
                        step < s,
                        "step {step} lane {l} advance mask"
                    );
                    if step + 1 == s {
                        frozen_at_retirement[l] = x[0][l];
                    }
                }
            },
        );
        assert_eq!(report.completed, all_lanes(LANES));
        // Every lane's final value is exactly the value it retired at,
        // and each matches its own single-lane run bit for bit.
        for (l, (&stop_l, &frozen)) in stop.iter().zip(frozen_at_retirement.iter()).enumerate() {
            assert_eq!(ws.x[0][l].to_bits(), frozen.to_bits(), "lane {l}");
            let mut solo = LaneWorkspace::<1>::new();
            solo.x = vec![[1.0]];
            transient_lanes(
                &pattern,
                &mut solo,
                &opts,
                &[stop_l],
                |_, x_prev, _, values, z| {
                    rc_assemble(rc.a, &rc.g[..1], &pattern, x_prev, values, z)
                },
                |_, _, _| {},
            );
            assert_eq!(ws.x[0][l].to_bits(), solo.x[0][0].to_bits(), "lane {l}");
        }
    }

    #[test]
    fn a_singular_lane_fails_without_poisoning_the_rest() {
        // Lane 2's conductance is exactly zero: its 1×1 system is
        // singular, so it must land in the failed mask while the other
        // lanes converge to their scalar-identical solutions.
        const LANES: usize = 3;
        let pattern = rc_pattern();
        let opts = LaneNewtonOptions {
            n_nodes: 1,
            max_iter: 20,
        };
        let g = [2.0, 0.0, 4.0];
        let mut ws = LaneWorkspace::<LANES>::new();
        ws.x = vec![[0.0; LANES]];
        let report = newton_lanes(
            &pattern,
            &mut ws,
            &opts,
            all_lanes(LANES),
            |_, values, z| {
                for l in 0..LANES {
                    values[0][l] += g[l];
                    z[0][l] += 1.0;
                }
            },
        );
        assert_eq!(report.failed, 0b010, "{report:?}");
        assert_eq!(report.converged, 0b101);
        assert!((ws.x[0][0] - 0.5).abs() < 1e-12);
        assert!((ws.x[0][2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn inactive_lanes_are_never_touched() {
        const LANES: usize = 4;
        let pattern = rc_pattern();
        let opts = LaneNewtonOptions {
            n_nodes: 1,
            max_iter: 20,
        };
        let mut ws = LaneWorkspace::<LANES>::new();
        ws.x = vec![[7.5; LANES]];
        let report = newton_lanes(&pattern, &mut ws, &opts, 0b0101, |_, values, z| {
            for l in 0..LANES {
                values[0][l] += 1.0;
                z[0][l] += 2.0;
            }
        });
        assert_eq!(report.converged, 0b0101);
        assert_eq!(ws.x[0][1], 7.5, "masked lane must stay frozen");
        assert_eq!(ws.x[0][3], 7.5);
        assert!((ws.x[0][0] - 2.0).abs() < 1e-9);
    }
}
