//! The reusable [`SimulationSession`] and its solver workspace.
//!
//! A session owns a circuit together with everything the analyses would
//! otherwise rebuild per call: the [`StampPlan`](super::assembly::StampPlan)
//! of pre-resolved device stamps and the [`Workspace`] of solver buffers
//! (MNA matrix, RHS, iterate vectors, LU scratch, capacitor histories).
//! Running a second analysis — the next Newton iteration, time step,
//! DC-sweep point, or an entirely new transient — reuses those
//! allocations, which is what makes repeated corner-sweep simulation
//! cheap.

use std::ops::{Add, AddAssign, Sub};

use units::Time;

use crate::circuit::Circuit;
use crate::error::SpiceError;
use crate::linalg::{DenseMatrix, LuScratch, SymbolicLu};
use crate::result::TransientResult;

use super::assembly::{CapState, StampPlan};
use super::newton::{EngineBufs, SolverBufs};
use super::{newton, transient, OpResult, TransientOptions};

/// Which LU engine a session's Newton solves run on.
///
/// [`SolverKind::Sparse`] is the default: a static symbolic
/// factorization with a frozen pivot order, refactored in-pattern every
/// iteration. [`SolverKind::Dense`] is the partial-pivoted dense LU the
/// engine grew up on, kept as the correctness oracle and for
/// pathological matrices where re-pivoting every iteration is worth its
/// cost. The `NVFF_SOLVER=dense` environment variable flips the
/// process-wide default, which is how the CI cross-checks the two paths
/// on identical workloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SolverKind {
    /// Static-pattern sparse LU (symbolic factorization reused across
    /// Newton iterations, automatic re-pivot on pivot decay).
    #[default]
    Sparse,
    /// Dense LU with partial pivoting on every factorization.
    Dense,
}

impl SolverKind {
    /// Resolves the process default: `NVFF_SOLVER=dense` selects the
    /// dense oracle, anything else (including unset) the sparse engine.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("NVFF_SOLVER") {
            Ok(v) if v.eq_ignore_ascii_case("dense") => Self::Dense,
            _ => Self::Sparse,
        }
    }
}

/// Cumulative solver work counters.
///
/// Exposed per analysis on [`OpResult::solver_stats`] and
/// [`TransientResult::solver_stats`](crate::result::TransientResult::solver_stats),
/// and cumulatively on [`SimulationSession::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Newton–Raphson iterations performed.
    pub newton_iterations: u64,
    /// Dense LU factorizations (one per Newton iteration).
    pub lu_factorizations: u64,
    /// Transient time steps accepted.
    pub accepted_steps: u64,
    /// Transient steps rejected — by Newton non-convergence or by the
    /// LTE controller (each triggers a retry at a smaller step, or the
    /// analysis error).
    pub rejected_steps: u64,
    /// Times a transient step was halved after a Newton rejection.
    pub step_halvings: u64,
    /// Factorizations that reused the frozen symbolic pattern (sparse
    /// engine only; always 0 on the dense path). The gap between this
    /// and `lu_factorizations` counts symbolic builds and re-pivots.
    pub pattern_reuses: u64,
    /// Converged transient steps rejected because the estimated local
    /// truncation error exceeded `abstol + reltol·|x|` (adaptive
    /// stepping only; a subset of `rejected_steps`).
    pub lte_rejections: u64,
    /// Source-stepping Newton solves run after the gmin ladder exhausted
    /// (each ramps the independent sources one rung up the geometric
    /// 0 → nominal schedule).
    pub source_steps: u64,
}

impl SolverStats {
    /// Folds another stats record into this one, saturating at
    /// `u64::MAX` per counter. The saturating arithmetic makes the fold
    /// safe for whole-campaign aggregation (Monte-Carlo sweeps, bench
    /// report totals) where `+` could in principle overflow.
    pub fn accumulate(&mut self, other: Self) {
        self.newton_iterations = self
            .newton_iterations
            .saturating_add(other.newton_iterations);
        self.lu_factorizations = self
            .lu_factorizations
            .saturating_add(other.lu_factorizations);
        self.accepted_steps = self.accepted_steps.saturating_add(other.accepted_steps);
        self.rejected_steps = self.rejected_steps.saturating_add(other.rejected_steps);
        self.step_halvings = self.step_halvings.saturating_add(other.step_halvings);
        self.pattern_reuses = self.pattern_reuses.saturating_add(other.pattern_reuses);
        self.lte_rejections = self.lte_rejections.saturating_add(other.lte_rejections);
        self.source_steps = self.source_steps.saturating_add(other.source_steps);
    }
}

impl Add for SolverStats {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        let mut sum = self;
        sum.accumulate(rhs);
        sum
    }
}

impl AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for SolverStats {
    type Output = Self;

    /// Per-counter saturating difference. The before/after delta pattern
    /// in `op_core`/`run_dc_sweep`/`transient::run` subtracts snapshots
    /// of the same monotone counters, but once a cumulative counter has
    /// saturated at `u64::MAX` via [`SolverStats::accumulate`] the later
    /// snapshot can equal the earlier one while intermediate work was
    /// done — a raw `-` would then panic in debug builds (and wrap in
    /// release) for a counter that is merely pegged. Saturating at zero
    /// keeps the delta well-defined.
    fn sub(self, rhs: Self) -> Self {
        Self {
            newton_iterations: self.newton_iterations.saturating_sub(rhs.newton_iterations),
            lu_factorizations: self.lu_factorizations.saturating_sub(rhs.lu_factorizations),
            accepted_steps: self.accepted_steps.saturating_sub(rhs.accepted_steps),
            rejected_steps: self.rejected_steps.saturating_sub(rhs.rejected_steps),
            step_halvings: self.step_halvings.saturating_sub(rhs.step_halvings),
            pattern_reuses: self.pattern_reuses.saturating_sub(rhs.pattern_reuses),
            lte_rejections: self.lte_rejections.saturating_sub(rhs.lte_rejections),
            source_steps: self.source_steps.saturating_sub(rhs.source_steps),
        }
    }
}

/// Solver working storage sized for one circuit: allocated when the plan
/// is built, reused by every subsequent solve.
#[derive(Debug)]
pub(crate) struct Workspace {
    pub(super) solver: SolverKind,
    pub(super) a: DenseMatrix,
    /// CSR value array backing the plan's frozen pattern (sparse path).
    pub(super) csr_values: Vec<f64>,
    /// Symbolic factorization, built lazily on the first sparse solve.
    pub(super) symbolic: SymbolicLu,
    pub(super) z: Vec<f64>,
    pub(super) x: Vec<f64>,
    pub(super) x_new: Vec<f64>,
    pub(super) x_save: Vec<f64>,
    pub(super) lu: LuScratch,
    pub(super) cap_states: Vec<CapState>,
    /// Accepted solution one step back (LTE predictor history).
    pub(super) x_prev: Vec<f64>,
    /// Accepted solution two steps back (LTE predictor history).
    pub(super) x_prev2: Vec<f64>,
    /// Accepted solution three steps back (quadratic-predictor history).
    pub(super) x_prev3: Vec<f64>,
    pub(super) stats: SolverStats,
}

/// The transient loop's slice of the workspace, split off so Newton can
/// own the solver buffers while the step controller holds the capacitor
/// and predictor histories mutably.
pub(super) struct TransientScratch<'w> {
    pub cap_states: &'w mut Vec<CapState>,
    pub x_prev: &'w mut Vec<f64>,
    pub x_prev2: &'w mut Vec<f64>,
    pub x_prev3: &'w mut Vec<f64>,
}

impl Workspace {
    /// Allocates buffers sized for `plan`'s system, solving with the
    /// given engine.
    pub(crate) fn for_plan(plan: &StampPlan, solver: SolverKind) -> Self {
        let n = plan.n_unknowns;
        Self {
            solver,
            a: DenseMatrix::zeros(n),
            csr_values: vec![0.0; plan.sparse.nnz()],
            symbolic: SymbolicLu::new(),
            z: vec![0.0; n],
            x: vec![0.0; n],
            x_new: Vec::with_capacity(n),
            x_save: Vec::with_capacity(n),
            lu: LuScratch::for_dim(n),
            cap_states: vec![CapState::default(); plan.caps.len()],
            x_prev: Vec::with_capacity(n),
            x_prev2: Vec::with_capacity(n),
            x_prev3: Vec::with_capacity(n),
            stats: SolverStats::default(),
        }
    }

    /// Splits the workspace into the Newton-solver buffers and the
    /// capacitor histories, so a transient can hold both mutably (the
    /// companion context borrows the histories while Newton owns the
    /// rest).
    ///
    /// Called exactly once per top-level analysis, which makes it the
    /// seam for dropping the frozen pivot order: every analysis starts
    /// from a cold symbolic factorization, so its solver stats are a
    /// pure function of the circuit and the analysis — independent of
    /// what the session ran before (the same determinism contract the
    /// parallel sweep engine relies on). The cost is one pivot-order
    /// freeze per analysis, amortized over its thousands of
    /// pattern-reusing refactorizations; the buffers stay allocated.
    pub(super) fn split(&mut self) -> (SolverBufs<'_>, TransientScratch<'_>) {
        self.symbolic.invalidate();
        let Self {
            solver,
            a,
            csr_values,
            symbolic,
            z,
            x,
            x_new,
            x_save,
            lu,
            cap_states,
            x_prev,
            x_prev2,
            x_prev3,
            stats,
        } = self;
        let engine = match solver {
            SolverKind::Dense => EngineBufs::Dense { a, lu },
            SolverKind::Sparse => EngineBufs::Sparse {
                values: csr_values,
                symbolic,
            },
        };
        (
            SolverBufs {
                engine,
                z,
                x,
                x_new,
                x_save,
                stats,
            },
            TransientScratch {
                cap_states,
                x_prev,
                x_prev2,
                x_prev3,
            },
        )
    }
}

/// A circuit bound to a reusable solver workspace.
///
/// Construct once, then run any number of analyses against the same
/// circuit; the MNA matrix, vectors, LU scratch, per-device stamp plan
/// and capacitor histories are allocated a single time and reused. The
/// one-shot free functions ([`op`](super::op), [`transient`](super::transient),
/// …) are thin wrappers that build a throwaway session per call.
///
/// Between runs the circuit may be mutated through
/// [`SimulationSession::circuit_mut`] — retuning source waveforms,
/// preconditioning MTJ states, or restoring a
/// [`CircuitSnapshot`](crate::circuit::CircuitSnapshot). Parameter
/// changes like these reuse the existing plan; structural changes
/// (adding devices or nodes) are detected and trigger a transparent
/// rebuild on the next analysis.
///
/// # Examples
///
/// ```
/// use spice::{Circuit, SimulationSession, SourceWaveform};
/// use units::{Resistance, Voltage};
///
/// # fn main() -> Result<(), spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("vin");
/// let mid = ckt.node("mid");
/// ckt.add_voltage_source("V1", vin, Circuit::GROUND,
///     SourceWaveform::dc(Voltage::from_volts(2.0)))?;
/// ckt.add_resistor("R1", vin, mid, Resistance::from_kilo_ohms(1.0))?;
/// ckt.add_resistor("R2", mid, Circuit::GROUND, Resistance::from_kilo_ohms(3.0))?;
///
/// let mut session = SimulationSession::new(ckt);
/// let op = session.op()?;
/// let mid = session.circuit().find_node("mid").expect("mid exists");
/// assert!((op.voltage(mid) - 1.5).abs() < 1e-6);
/// // A second solve reuses every buffer of the first.
/// let again = session.op()?;
/// assert_eq!(op.voltage(mid), again.voltage(mid));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SimulationSession {
    ckt: Circuit,
    plan: StampPlan,
    ws: Workspace,
    /// Human-readable circuit label carried into flight-recorder
    /// post-mortem dumps (e.g. `proposed_2bit`).
    label: String,
}

impl SimulationSession {
    /// Builds a session for `ckt` with the process-default solver
    /// engine ([`SolverKind::from_env`]): resolves the stamp plan and
    /// allocates the solver workspace.
    #[must_use]
    pub fn new(ckt: Circuit) -> Self {
        Self::with_solver(ckt, SolverKind::from_env())
    }

    /// Builds a session for `ckt` pinned to a specific solver engine,
    /// ignoring the environment — how the equivalence tests hold the
    /// dense oracle fixed while the sparse path evolves.
    #[must_use]
    pub fn with_solver(ckt: Circuit, solver: SolverKind) -> Self {
        let plan = StampPlan::build(&ckt);
        let ws = Workspace::for_plan(&plan, solver);
        Self {
            ckt,
            plan,
            ws,
            label: "circuit".to_owned(),
        }
    }

    /// Sets the circuit label carried into post-mortem dumps (builder
    /// style).
    #[must_use]
    pub fn with_label(mut self, label: &str) -> Self {
        self.set_label(label);
        self
    }

    /// Sets the circuit label carried into post-mortem dumps.
    pub fn set_label(&mut self, label: &str) {
        self.label = label.to_owned();
    }

    /// The session's circuit label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The LU engine this session's solves run on.
    #[must_use]
    pub fn solver_kind(&self) -> SolverKind {
        self.ws.solver
    }

    /// The session's circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.ckt
    }

    /// Mutable access to the circuit, for retuning waveforms or device
    /// state between runs. Structural edits (new devices or nodes) cause
    /// a plan rebuild on the next analysis.
    pub fn circuit_mut(&mut self) -> &mut Circuit {
        &mut self.ckt
    }

    /// Consumes the session, returning the circuit (with whatever MTJ
    /// state the analyses left it in).
    #[must_use]
    pub fn into_circuit(self) -> Circuit {
        self.ckt
    }

    /// Total solver work since the session was created (or since
    /// [`SimulationSession::reset_stats`]).
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        self.ws.stats
    }

    /// Zeroes the cumulative work counters.
    pub fn reset_stats(&mut self) {
        self.ws.stats = SolverStats::default();
    }

    fn refresh(&mut self) {
        if self.plan.is_stale(&self.ckt) {
            let stats = self.ws.stats;
            let solver = self.ws.solver;
            self.plan = StampPlan::build(&self.ckt);
            self.ws = Workspace::for_plan(&self.plan, solver);
            self.ws.stats = stats;
        }
    }

    /// The session-level failure seam: when a solver error *surfaces*
    /// to the caller (as opposed to a recovered gmin/source-stepping
    /// rung, which also fails Newton internally), dump the flight
    /// recorder as a JSON post-mortem. No-op unless a post-mortem
    /// directory is configured (`NVFF_POSTMORTEM` or
    /// `telemetry::flight::set_postmortem_dir`).
    fn postmortem_on_failure<T>(
        &self,
        analysis: &'static str,
        result: Result<T, SpiceError>,
    ) -> Result<T, SpiceError> {
        if let Err(e) = &result {
            let time_s = match e {
                SpiceError::NonConvergence { time, .. }
                | SpiceError::SingularMatrix { time, .. } => *time,
                _ => return result,
            };
            let s = self.ws.stats;
            let stats = [
                ("newton_iterations", s.newton_iterations),
                ("lu_factorizations", s.lu_factorizations),
                ("accepted_steps", s.accepted_steps),
                ("rejected_steps", s.rejected_steps),
                ("step_halvings", s.step_halvings),
                ("pattern_reuses", s.pattern_reuses),
                ("lte_rejections", s.lte_rejections),
                ("source_steps", s.source_steps),
            ];
            let pm = telemetry::flight::Postmortem {
                circuit: &self.label,
                analysis,
                error: &e.to_string(),
                time_s,
                stats: &stats,
            };
            if let Some(path) = telemetry::flight::dump(&pm) {
                telemetry::counter("spice.postmortems", 1);
                eprintln!(
                    "spice: {analysis} failed on {:?}; post-mortem written to {}",
                    self.label,
                    path.display()
                );
            }
        }
        result
    }

    /// Solves the DC operating point (see [`op`](super::op)).
    ///
    /// # Errors
    ///
    /// Same conditions as [`op`](super::op).
    pub fn op(&mut self) -> Result<OpResult, SpiceError> {
        self.refresh();
        let result = newton::op_core(&self.plan, &self.ckt, &mut self.ws);
        self.postmortem_on_failure("op", result)
    }

    /// Sweeps the DC value of the named voltage source (see
    /// [`dc_sweep`](super::dc_sweep)).
    ///
    /// # Errors
    ///
    /// Same conditions as [`dc_sweep`](super::dc_sweep).
    pub fn dc_sweep(&mut self, source: &str, values: &[f64]) -> Result<Vec<OpResult>, SpiceError> {
        self.refresh();
        let result = newton::run_dc_sweep(&self.plan, &mut self.ckt, &mut self.ws, source, values);
        self.postmortem_on_failure("dc", result)
    }

    /// Runs a transient analysis with default options (see
    /// [`transient`](super::transient)).
    ///
    /// # Errors
    ///
    /// Same conditions as [`transient`](super::transient).
    pub fn transient(&mut self, stop: Time, step: Time) -> Result<TransientResult, SpiceError> {
        self.transient_with_options(stop, step, TransientOptions::default())
    }

    /// Runs a transient analysis (see
    /// [`transient_with_options`](super::transient_with_options)).
    ///
    /// # Errors
    ///
    /// Same conditions as [`transient_with_options`](super::transient_with_options).
    pub fn transient_with_options(
        &mut self,
        stop: Time,
        step: Time,
        options: TransientOptions,
    ) -> Result<TransientResult, SpiceError> {
        self.refresh();
        let result = transient::run(&self.plan, &mut self.ckt, &mut self.ws, stop, step, options);
        self.postmortem_on_failure("tran", result)
    }
}
