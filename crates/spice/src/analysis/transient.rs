//! Transient analysis loop over a prepared plan and workspace.
//!
//! Numerically identical to the original engine (see
//! [`super::reference`]): the same companion models, breakpoint
//! alignment, step halving and post-step MTJ advance — but the
//! capacitor histories live in the workspace (no per-step clone of the
//! companion list), the MTJ terminal indices come pre-resolved from the
//! plan (no per-step device scan), and every Newton solve runs in the
//! reused buffers.

use units::{Current, Time};

use crate::circuit::Circuit;
use crate::device::Device;
use crate::error::SpiceError;
use crate::result::{MtjEvent, TransientResult};

use super::assembly::{vof, Companions, StampPlan};
use super::newton::{newton, solve_op_from_zero};
use super::session::Workspace;
use super::{StartCondition, TransientOptions, GMIN_FLOOR};

/// Runs a transient from 0 to `stop` with nominal step `step` against a
/// prepared plan and workspace (see
/// [`transient_with_options`](super::transient_with_options) for the
/// semantics).
pub(super) fn run(
    plan: &StampPlan,
    ckt: &mut Circuit,
    ws: &mut Workspace,
    stop: Time,
    step: Time,
    options: TransientOptions,
) -> Result<TransientResult, SpiceError> {
    let _span = telemetry::span("spice.transient");
    // Hoisted enabled check for the per-step histogram below.
    let tel = telemetry::enabled();
    let stop_s = stop.seconds();
    let dt_nominal = step.seconds();
    if stop_s <= 0.0 || dt_nominal <= 0.0 || stop_s.is_nan() || dt_nominal.is_nan() {
        return Err(SpiceError::InvalidAnalysis {
            reason: format!("stop ({stop}) and step ({step}) must be positive"),
        });
    }
    if dt_nominal > stop_s {
        return Err(SpiceError::InvalidAnalysis {
            reason: format!("step ({step}) exceeds the analysis window ({stop})"),
        });
    }

    let stats_before = ws.stats;
    let (mut bufs, cap_states) = ws.split();

    // Initial state.
    match options.start {
        StartCondition::OperatingPoint => solve_op_from_zero(plan, ckt, &mut bufs, 0.0)?,
        StartCondition::Zero => bufs.zero_x(plan.n_unknowns),
    }

    // Reset capacitor histories (explicit caps + MOSFET parasitics were
    // flattened into the plan) to the initial node voltages.
    cap_states.clear();
    cap_states.resize(plan.caps.len(), super::assembly::CapState::default());
    for (cap, state) in plan.caps.iter().zip(cap_states.iter_mut()) {
        state.v_prev = vof(bufs.x, cap.ia) - vof(bufs.x, cap.ib);
    }

    // Result storage.
    let mut recorder = TransientResult::recorder(ckt);
    recorder.push(0.0, bufs.x, ckt);
    let mut events: Vec<MtjEvent> = Vec::new();

    let mut t = 0.0_f64;
    while t < stop_s {
        // Candidate step: nominal, clipped to breakpoints and the window.
        let remaining = stop_s - t;
        let mut dt = dt_nominal.min(remaining);
        if let Some(bp) = next_breakpoint(plan, ckt, t) {
            if bp > t + 1e-18 && bp < t + dt {
                dt = bp - t;
            }
        }

        // Solve with step halving on non-convergence.
        let mut halvings = 0;
        let dt_used = loop {
            bufs.save_x();
            let companions = Companions {
                states: cap_states,
                integrator: options.integrator,
                dt,
            };
            match newton(
                plan,
                ckt,
                &mut bufs,
                "tran",
                t + dt,
                GMIN_FLOOR,
                Some(&companions),
                options.max_newton_iterations,
            ) {
                Ok(()) => {
                    bufs.stats.accepted_steps += 1;
                    break dt;
                }
                Err(e) => {
                    bufs.stats.rejected_steps += 1;
                    halvings += 1;
                    if halvings > options.max_step_halvings {
                        return Err(e);
                    }
                    bufs.stats.step_halvings += 1;
                    bufs.restore_x();
                    dt *= 0.5;
                }
            }
        };
        // Snap the final step exactly onto the requested stop time:
        // accumulating `t += dt_used` drifts by an ulp per step, which
        // used to leave the last sample at `stop − ulp` (or spawn a
        // sliver-sized extra step past it). A step that consumed the
        // whole remaining window *is* the final step by construction —
        // `dt` was clipped to `remaining` above and only shrinks.
        t = if dt_used >= remaining {
            stop_s
        } else {
            t + dt_used
        };
        if tel {
            telemetry::histogram("spice.dt_s", dt_used);
        }

        // Update capacitor history.
        for (cap, state) in plan.caps.iter().zip(cap_states.iter_mut()) {
            let v_now = vof(bufs.x, cap.ia) - vof(bufs.x, cap.ib);
            let i_now = match options.integrator {
                super::Integrator::BackwardEuler => cap.farads / dt_used * (v_now - state.v_prev),
                super::Integrator::Trapezoidal => {
                    2.0 * cap.farads / dt_used * (v_now - state.v_prev) - state.i_prev
                }
            };
            state.v_prev = v_now;
            state.i_prev = i_now;
        }

        // Advance MTJ magnetisation from the solved branch currents; the
        // terminal indices were resolved once at plan build.
        for slot in &plan.mtjs {
            let bias = vof(bufs.x, slot.ia) - vof(bufs.x, slot.ib);
            if let Device::Mtj { name, device, .. } = &mut ckt.devices_mut()[slot.dev] {
                let r = device.resistance(units::Voltage::from_volts(bias));
                let i = Current::from_amps(bias / r.ohms());
                if device.advance(i, Time::from_seconds(dt_used)) {
                    events.push(MtjEvent {
                        time: Time::from_seconds(t),
                        device: name.clone(),
                        state: device.state(),
                    });
                }
            }
        }

        recorder.push(t, bufs.x, ckt);
    }

    // The snap above guarantees the loop exits exactly at `stop_s`, so
    // the recorder's final sample sits on the requested stop time.
    debug_assert!(
        t == stop_s,
        "transient ended at {t:?}, expected exactly {stop_s:?}"
    );

    Ok(recorder.finish(events, *bufs.stats - stats_before))
}

/// Earliest source breakpoint strictly after `t`, across all sources.
fn next_breakpoint(plan: &StampPlan, ckt: &Circuit, t: f64) -> Option<f64> {
    plan.wave_devs
        .iter()
        .filter_map(|&dev| match &ckt.devices()[dev] {
            Device::VoltageSource { wave, .. } | Device::CurrentSource { wave, .. } => {
                wave.next_breakpoint(t)
            }
            _ => None,
        })
        .min_by(|a, b| a.partial_cmp(b).expect("breakpoints are finite"))
}
