//! Transient analysis loop over a prepared plan and workspace.
//!
//! Two step policies share one loop (see
//! [`StepControl`](super::StepControl)):
//!
//! * **Fixed** — numerically identical to the original engine (see
//!   [`super::reference`]): uniform nominal steps, breakpoint
//!   alignment, Newton step halving and the post-step MTJ advance.
//! * **Adaptive** (default) — the same loop plus a local-truncation-
//!   error controller. Each converged step is compared against the
//!   linear divided-difference predictor extrapolated from the two
//!   previous accepted solutions; the worst per-unknown error ratio
//!   against `abstol + reltol·|x|` accepts or rejects the step and
//!   chooses the next `dt`, growing up to `dt_max` on plateaus and
//!   shrinking into edges. Breakpoints reset the predictor history
//!   (the waveform derivative is discontinuous across them) and drop
//!   `dt` back to nominal so control edges are always resolved.
//!
//! In both modes the capacitor histories live in the workspace (no
//! per-step clone of the companion list), the MTJ terminal indices come
//! pre-resolved from the plan, and every Newton solve runs in reused
//! buffers.

use units::{Current, Time};

use crate::circuit::Circuit;
use crate::device::Device;
use crate::error::SpiceError;
use crate::result::{MtjEvent, TransientResult};

use super::assembly::{vof, Companions, StampPlan};
use super::newton::{newton, solve_op_from_zero};
use super::session::Workspace;
use super::{StartCondition, StepControl, TransientOptions, GMIN_FLOOR};

/// Relative part of the breakpoint guard: a breakpoint closer to `t`
/// than `t·BP_REL_EPS` is indistinguishable from `t` at double
/// precision scale and must not spawn a sliver step.
const BP_REL_EPS: f64 = 1e-12;
/// Absolute floor of the breakpoint guard (keeps `t = 0` working).
const BP_ABS_EPS: f64 = 1e-18;

/// Smallest distance (relative to `t`) a breakpoint must keep from the
/// current time to be worth clipping a step to. The historical guard
/// was the absolute `BP_ABS_EPS` alone, which at large `t` admits
/// sliver steps of a few ulps — each one burns a Newton solve and a
/// divided-by-`dt` companion update at `dt ≈ 1e-18`.
fn breakpoint_eps(t: f64) -> f64 {
    (t.abs() * BP_REL_EPS).max(BP_ABS_EPS)
}

/// Safety factor on the LTE-derived step proposal, per SPICE practice:
/// aim below the tolerance so the next step is unlikely to reject.
const LTE_SAFETY: f64 = 0.9;
/// SPICE's `trtol` relaxation on the divided-difference estimate. The
/// estimate systematically over-states the true truncation error (it
/// bounds the third derivative by a second difference of already-damped
/// corrector values), and every production SPICE divides it out;
/// 7 is the Berkeley default. Public because differential test
/// harnesses derive their pairwise agreement budgets from it: an
/// accepted step may carry estimated LTE up to `trtol · tol`.
pub const LTE_TRTOL: f64 = 7.0;
/// Largest per-step growth of `dt` — doubling keeps the predictor
/// history relevant and the controller stable.
const LTE_GROWTH_MAX: f64 = 2.0;
/// Smallest shrink applied on an LTE rejection.
const LTE_SHRINK_MIN: f64 = 0.1;
/// When `dt_max` is not given: `stop / DEFAULT_DTMAX_DIV`, so even an
/// all-plateau waveform keeps at least this many samples.
const DEFAULT_DTMAX_DIV: f64 = 50.0;

/// The adaptive controller's per-step state: the last three accepted
/// solutions and the step sizes between them.
struct LteState<'w> {
    /// Accepted points available (0..=3); the LTE test needs 2, the
    /// quadratic (trapezoidal-order) predictor 3.
    depth: usize,
    /// Step from `x_prev2` to `x_prev`.
    dt_prev: f64,
    /// Step from `x_prev3` to `x_prev2`.
    dt_prev2: f64,
    x_prev: &'w mut Vec<f64>,
    x_prev2: &'w mut Vec<f64>,
    x_prev3: &'w mut Vec<f64>,
}

impl LteState<'_> {
    /// Restart the predictor from the single point `x` — used at `t = 0`
    /// and after every breakpoint (the source derivative is
    /// discontinuous across one, so extrapolating over it is
    /// meaningless).
    fn reset_to(&mut self, x: &[f64]) {
        self.depth = 1;
        self.x_prev.clear();
        self.x_prev.extend_from_slice(x);
    }

    /// Record the accepted solution `x` after a step of `dt`.
    fn push(&mut self, x: &[f64], dt: f64) {
        std::mem::swap(self.x_prev2, self.x_prev3);
        std::mem::swap(self.x_prev, self.x_prev2);
        self.x_prev.clear();
        self.x_prev.extend_from_slice(x);
        self.dt_prev2 = self.dt_prev;
        self.dt_prev = dt;
        self.depth = (self.depth + 1).min(3);
    }

    /// Worst per-node ratio of estimated LTE to tolerance for the
    /// converged solution `x` after a step of `dt`; `None` while the
    /// history is too shallow to extrapolate.
    ///
    /// The estimate is the SPICE corrector-minus-predictor device, with
    /// the predictor order matched to the corrector order (the Milne
    /// principle): backward Euler extrapolates linearly through the two
    /// previous points, so the gap measures `h²·x''` — its error scale —
    /// and trapezoidal extrapolates quadratically through three, so the
    /// gap measures `h³·x'''`. (A linear predictor under trap would pin
    /// the estimate to the `x''` of any settling exponential and forbid
    /// growth on plateaus the second-order corrector integrates almost
    /// exactly.) The divided-difference coefficients below scale each
    /// gap to the corrector's local truncation error, relaxed by
    /// [`LTE_TRTOL`]. Until the trap history is three deep the linear
    /// predictor with the conservative `dt/(3·(dt+dt_prev))` coefficient
    /// fills in.
    ///
    /// Only the first `n_nodes` unknowns — the node voltages — are
    /// tested. MNA branch currents are algebraic variables, not
    /// integrated states: they jump legitimately at source corners, and
    /// holding a µA–mA supply current to the ampere-scale `abstol`
    /// would drive the controller far below any useful step.
    fn error_ratio(
        &self,
        x: &[f64],
        n_nodes: usize,
        dt: f64,
        options: &TransientOptions,
    ) -> Option<f64> {
        if self.depth < 2 {
            return None;
        }
        let h1 = self.dt_prev;
        let h2 = self.dt_prev2;
        let quadratic = options.integrator == super::Integrator::Trapezoidal && self.depth >= 3;
        let coeff = if quadratic {
            // gap = dt(dt+h1)(dt+h1+h2)/6 · x''' vs LTE = dt³/12 · x'''.
            dt * dt / (2.0 * (dt + h1) * (dt + h1 + h2))
        } else {
            match options.integrator {
                // gap = dt(dt+h1)/2 · x'' vs LTE = dt²/2 · x''.
                super::Integrator::BackwardEuler => dt / (dt + h1),
                super::Integrator::Trapezoidal => dt / (3.0 * (dt + h1)),
            }
        } / LTE_TRTOL;
        // Quadratic Newton-form term: p(t+dt) = x₀ + dt·f[0,1] +
        // dt(dt+h1)·f[0,1,2].
        let curv = dt * (dt + h1) / (h1 + h2);
        let mut worst = 0.0_f64;
        for (i, &xi) in x.iter().enumerate().take(n_nodes) {
            let d01 = (self.x_prev[i] - self.x_prev2[i]) / h1;
            let mut predicted = self.x_prev[i] + d01 * dt;
            if quadratic {
                let d12 = (self.x_prev2[i] - self.x_prev3[i]) / h2;
                predicted += curv * (d01 - d12);
            }
            let err = (xi - predicted).abs() * coeff;
            let tol = options.abstol + options.reltol * xi.abs().max(self.x_prev[i].abs());
            worst = worst.max(err / tol);
        }
        Some(worst)
    }
}

/// Runs a transient from 0 to `stop` with nominal step `step` against a
/// prepared plan and workspace (see
/// [`transient_with_options`](super::transient_with_options) for the
/// semantics).
pub(super) fn run(
    plan: &StampPlan,
    ckt: &mut Circuit,
    ws: &mut Workspace,
    stop: Time,
    step: Time,
    options: TransientOptions,
) -> Result<TransientResult, SpiceError> {
    let _span = telemetry::span("spice.transient");
    // Hoisted enabled checks for the per-step instrumentation below.
    let tel = telemetry::enabled();
    let fl = telemetry::flight::active();
    let stop_s = stop.seconds();
    let dt_nominal = step.seconds();
    if stop_s <= 0.0 || dt_nominal <= 0.0 || stop_s.is_nan() || dt_nominal.is_nan() {
        return Err(SpiceError::InvalidAnalysis {
            reason: format!("stop ({stop}) and step ({step}) must be positive"),
        });
    }
    if dt_nominal > stop_s {
        return Err(SpiceError::InvalidAnalysis {
            reason: format!("step ({step}) exceeds the analysis window ({stop})"),
        });
    }
    let adaptive = options.step_control == StepControl::Adaptive;
    if adaptive && !(options.reltol > 0.0 && options.abstol > 0.0) {
        return Err(SpiceError::InvalidAnalysis {
            reason: format!(
                "adaptive stepping needs positive tolerances (reltol = {}, abstol = {})",
                options.reltol, options.abstol
            ),
        });
    }
    let dt_max = match options.dt_max {
        Some(m) => m.seconds(),
        None => (stop_s / DEFAULT_DTMAX_DIV).max(dt_nominal),
    };
    // Written to also reject a NaN `dt_max` (every comparison fails).
    if adaptive
        && !matches!(
            dt_max.partial_cmp(&dt_nominal),
            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
        )
    {
        return Err(SpiceError::InvalidAnalysis {
            reason: format!("dt_max ({dt_max:e} s) must be at least the nominal step ({step})"),
        });
    }
    // Newton non-convergence may halve far below the nominal step for
    // robustness (`max_step_halvings` bounds that ladder); the LTE
    // controller never does. The nominal step is the user's resolution
    // floor — the controller only *coarsens* beyond it where the LTE
    // test certifies the plateau, and falls back to the nominal grid
    // (the fixed engine's accuracy) at edges. Refining below the
    // requested grid is the user's call via the nominal step, not the
    // controller's.
    let lte_floor = dt_nominal;

    let stats_before = ws.stats;
    let (mut bufs, scratch) = ws.split();
    let cap_states = scratch.cap_states;

    // Initial state.
    match options.start {
        StartCondition::OperatingPoint => solve_op_from_zero(plan, ckt, &mut bufs, 0.0)?,
        StartCondition::Zero => bufs.zero_x(plan.n_unknowns),
    }

    // Reset capacitor histories (explicit caps + MOSFET parasitics were
    // flattened into the plan) to the initial node voltages.
    cap_states.clear();
    cap_states.resize(plan.caps.len(), super::assembly::CapState::default());
    for (cap, state) in plan.caps.iter().zip(cap_states.iter_mut()) {
        state.v_prev = vof(bufs.x, cap.ia) - vof(bufs.x, cap.ib);
    }

    let mut lte = LteState {
        depth: 0,
        dt_prev: dt_nominal,
        dt_prev2: dt_nominal,
        x_prev: scratch.x_prev,
        x_prev2: scratch.x_prev2,
        x_prev3: scratch.x_prev3,
    };
    lte.reset_to(bufs.x);

    // Result storage.
    let mut recorder = TransientResult::recorder(ckt);
    recorder.push(0.0, bufs.x, ckt);
    let mut events: Vec<MtjEvent> = Vec::new();

    let mut t = 0.0_f64;
    // The controller's proposal for the next step (always `dt_nominal`
    // under fixed stepping).
    let mut dt_next = dt_nominal;
    while t < stop_s {
        // Candidate step: proposed, clipped to breakpoints and the window.
        let remaining = stop_s - t;
        let mut dt = dt_next.min(remaining);
        // Distance to the breakpoint this step was clipped to, if any —
        // consumed after acceptance to restart the predictor history.
        let mut bp_dt = None;
        if let Some(bp) = next_breakpoint(plan, ckt, t) {
            if bp > t + breakpoint_eps(t) && bp < t + dt {
                dt = bp - t;
                bp_dt = Some(dt);
            }
        }

        // Solve, halving on non-convergence and shrinking on excessive
        // truncation error.
        let mut halvings = 0;
        let dt_used = loop {
            bufs.save_x();
            let companions = Companions {
                states: cap_states,
                integrator: options.integrator,
                dt,
            };
            match newton(
                plan,
                ckt,
                &mut bufs,
                "tran",
                t + dt,
                GMIN_FLOOR,
                Some(&companions),
                options.max_newton_iterations,
                1.0,
            ) {
                Ok(()) => {
                    if adaptive {
                        if let Some(ratio) = lte.error_ratio(bufs.x, plan.n_nodes, dt, &options) {
                            if tel {
                                telemetry::histogram("spice.lte_ratio", ratio);
                            }
                            if ratio > 1.0 && dt > lte_floor {
                                // Converged but too inaccurate: reject and
                                // retry at the LTE-suggested size (floored
                                // at the nominal grid so the loop always
                                // terminates).
                                bufs.stats.rejected_steps += 1;
                                bufs.stats.lte_rejections += 1;
                                if fl {
                                    telemetry::flight::record_always(
                                        telemetry::flight::EventKind::LteReject,
                                        t + dt,
                                        ratio,
                                    );
                                }
                                bufs.restore_x();
                                dt = (dt * shrink_factor(ratio, options.integrator)).max(lte_floor);
                                continue;
                            }
                            dt_next = grow_dt(dt, ratio, options.integrator);
                        } else {
                            // Too little history to judge: hold the size.
                            dt_next = dt;
                        }
                    }
                    bufs.stats.accepted_steps += 1;
                    break dt;
                }
                Err(e) => {
                    bufs.stats.rejected_steps += 1;
                    halvings += 1;
                    if halvings > options.max_step_halvings {
                        return Err(e);
                    }
                    bufs.stats.step_halvings += 1;
                    if fl {
                        telemetry::flight::record_always(
                            telemetry::flight::EventKind::StepHalve,
                            t + dt,
                            dt,
                        );
                    }
                    bufs.restore_x();
                    dt *= 0.5;
                }
            }
        };
        // Snap the final step exactly onto the requested stop time:
        // accumulating `t += dt_used` drifts by an ulp per step, which
        // used to leave the last sample at `stop − ulp` (or spawn a
        // sliver-sized extra step past it). A step that consumed the
        // whole remaining window *is* the final step by construction —
        // `dt` was clipped to `remaining` above and only shrinks.
        t = if dt_used >= remaining {
            stop_s
        } else {
            t + dt_used
        };
        if tel {
            telemetry::histogram("spice.dt_s", dt_used);
        }
        if fl {
            telemetry::flight::record_always(telemetry::flight::EventKind::StepAccept, t, dt_used);
        }

        if adaptive {
            if bp_dt.is_some_and(|clip| dt_used >= clip) {
                // Landed on a source breakpoint: the waveform derivative
                // jumps here, so extrapolation across it is meaningless
                // and the upcoming edge needs nominal-resolution steps.
                lte.reset_to(bufs.x);
                dt_next = dt_nominal;
            } else {
                lte.push(bufs.x, dt_used);
            }
            dt_next = dt_next.clamp(lte_floor, dt_max);
        }

        // Update capacitor history.
        for (cap, state) in plan.caps.iter().zip(cap_states.iter_mut()) {
            let v_now = vof(bufs.x, cap.ia) - vof(bufs.x, cap.ib);
            let i_now = match options.integrator {
                super::Integrator::BackwardEuler => cap.farads / dt_used * (v_now - state.v_prev),
                super::Integrator::Trapezoidal => {
                    2.0 * cap.farads / dt_used * (v_now - state.v_prev) - state.i_prev
                }
            };
            state.v_prev = v_now;
            state.i_prev = i_now;
        }

        // Advance MTJ magnetisation from the solved branch currents; the
        // terminal indices were resolved once at plan build.
        for slot in &plan.mtjs {
            let bias = vof(bufs.x, slot.ia) - vof(bufs.x, slot.ib);
            if let Device::Mtj { name, device, .. } = &mut ckt.devices_mut()[slot.dev] {
                let r = device.resistance(units::Voltage::from_volts(bias));
                let i = Current::from_amps(bias / r.ohms());
                if device.advance(i, Time::from_seconds(dt_used)) {
                    events.push(MtjEvent {
                        time: Time::from_seconds(t),
                        device: name.clone(),
                        state: device.state(),
                    });
                }
            }
        }

        recorder.push(t, bufs.x, ckt);
    }

    // The snap above guarantees the loop exits exactly at `stop_s`, so
    // the recorder's final sample sits on the requested stop time.
    debug_assert!(
        t == stop_s,
        "transient ended at {t:?}, expected exactly {stop_s:?}"
    );

    Ok(recorder.finish(events, *bufs.stats - stats_before))
}

/// Local error order of the integrator (`LTE ∝ dt^order`), which sets
/// the exponent of the step-size update.
fn lte_order(integrator: super::Integrator) -> f64 {
    match integrator {
        super::Integrator::BackwardEuler => 2.0,
        super::Integrator::Trapezoidal => 3.0,
    }
}

/// Step multiplier after an LTE rejection at error ratio `ratio > 1`.
fn shrink_factor(ratio: f64, integrator: super::Integrator) -> f64 {
    (LTE_SAFETY / ratio.powf(1.0 / lte_order(integrator))).clamp(LTE_SHRINK_MIN, 0.5)
}

/// Next-step proposal after accepting a step of `dt` at error ratio
/// `ratio ≤ 1`. A ratio of exactly zero (bit-flat plateau) maps to the
/// growth cap through the `inf.min(GROWTH_MAX)` path.
fn grow_dt(dt: f64, ratio: f64, integrator: super::Integrator) -> f64 {
    let factor = (LTE_SAFETY / ratio.powf(1.0 / lte_order(integrator))).min(LTE_GROWTH_MAX);
    // Never propose *shrinking* after an accepted step — the edge case
    // `ratio` slightly below 1 would otherwise jitter the size down.
    dt * factor.max(1.0)
}

/// Earliest source breakpoint strictly after `t`, across all sources.
fn next_breakpoint(plan: &StampPlan, ckt: &Circuit, t: f64) -> Option<f64> {
    plan.wave_devs
        .iter()
        .filter_map(|&dev| match &ckt.devices()[dev] {
            Device::VoltageSource { wave, .. } | Device::CurrentSource { wave, .. } => {
                wave.next_breakpoint(t)
            }
            _ => None,
        })
        .min_by(|a, b| a.partial_cmp(b).expect("breakpoints are finite"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakpoint_guard_scales_with_t() {
        // At small t the historical absolute floor is preserved…
        assert_eq!(breakpoint_eps(0.0), BP_ABS_EPS);
        assert_eq!(breakpoint_eps(1e-9), BP_ABS_EPS);
        // …while at large t the guard tracks the ulp scale instead of
        // admitting 1e-18-sized sliver steps.
        assert!(breakpoint_eps(1.0) >= 1e-12);
        assert!(breakpoint_eps(1e6) >= 1e-6);
    }

    #[test]
    fn flat_plateau_grows_and_edge_shrinks() {
        let opts = TransientOptions::adaptive();
        // Perfectly predicted solution → ratio 0 → growth capped at 2×.
        assert_eq!(grow_dt(1e-12, 0.0, opts.integrator), 2e-12);
        // Error right at tolerance → hold (never shrink on accept).
        assert_eq!(grow_dt(1e-12, 1.0, opts.integrator), 1e-12);
        // Large violation → strong shrink, clamped at the minimum.
        assert_eq!(shrink_factor(1e6, opts.integrator), LTE_SHRINK_MIN);
        // Mild violation → gentle shrink below the ceiling.
        let f = shrink_factor(2.0, opts.integrator);
        assert!(f > LTE_SHRINK_MIN && f <= 0.5 + 1e-12, "factor {f}");
    }
}
