//! The original per-call analysis engine, kept as a frozen baseline.
//!
//! This module is the SPICE engine as it existed before the
//! [`SimulationSession`](super::SimulationSession) rearchitecture:
//! every call re-matches devices, re-resolves node indices, allocates
//! the MNA matrix, RHS and iterate vectors per Newton solve, and clones
//! the flattened capacitor list per time step. It is deliberately
//! self-contained (its own assembler, Newton loop and transient loop)
//! so it can serve two jobs:
//!
//! * **correctness oracle** — the equivalence tests check the session
//!   engine produces bit-for-bit identical waveforms;
//! * **benchmark baseline** — the criterion benches measure the
//!   session's workspace reuse against this engine.
//!
//! Results carry zeroed [`SolverStats`](super::SolverStats); only the
//! session engine counts work. New code should use the session engine
//! (or the free functions in [`super`], which wrap it).

use mtj::MtjState;
use units::{Current, Time};

use crate::circuit::Circuit;
use crate::device::Device;
use crate::error::SpiceError;
use crate::linalg::DenseMatrix;
use crate::result::{MtjEvent, TransientResult};

use super::session::SolverStats;
use super::{
    Integrator, OpResult, StartCondition, TransientOptions, ABSTOL, GMIN_FLOOR, RELTOL, VNTOL,
    VSTEP_MAX,
};

/// Capacitor instance flattened for companion stamping (explicit caps
/// plus MOSFET parasitics).
#[derive(Debug, Clone)]
struct CapInstance {
    ia: Option<usize>,
    ib: Option<usize>,
    farads: f64,
    v_prev: f64,
    i_prev: f64,
}

/// Computes a node voltage from the unknown vector (`None` = ground).
fn vof(x: &[f64], idx: Option<usize>) -> f64 {
    idx.map_or(0.0, |i| x[i])
}

/// Stamps every device's linearized equation at iterate `x` and time `t`.
fn assemble(
    ckt: &Circuit,
    x: &[f64],
    t: f64,
    gmin: f64,
    caps: Option<&(Vec<CapInstance>, Integrator, f64)>,
    a: &mut DenseMatrix,
    z: &mut [f64],
) {
    a.clear();
    z.fill(0.0);
    let n_nodes = ckt.node_count() - 1;

    // gmin shunts keep otherwise-floating nodes weakly grounded.
    for i in 0..n_nodes {
        a.add(i, i, gmin.max(GMIN_FLOOR));
    }

    let vidx = |node| ckt.voltage_index(node);

    for dev in ckt.devices() {
        match dev {
            Device::Resistor {
                a: na, b: nb, ohms, ..
            } => {
                stamp_conductance(a, vidx(*na), vidx(*nb), 1.0 / ohms);
            }
            Device::Capacitor { .. } => {
                // Stamped through the flattened companion list below.
            }
            Device::VoltageSource {
                pos,
                neg,
                wave,
                branch,
                ..
            } => {
                let br = ckt.branch_index(*branch);
                if let Some(ip) = vidx(*pos) {
                    a.add(ip, br, 1.0);
                    a.add(br, ip, 1.0);
                }
                if let Some(in_) = vidx(*neg) {
                    a.add(in_, br, -1.0);
                    a.add(br, in_, -1.0);
                }
                z[br] = wave.value_at(t);
            }
            Device::CurrentSource { pos, neg, wave, .. } => {
                let i = wave.value_at(t);
                if let Some(ip) = vidx(*pos) {
                    z[ip] -= i;
                }
                if let Some(in_) = vidx(*neg) {
                    z[in_] += i;
                }
            }
            Device::Mosfet {
                d,
                g,
                s,
                model,
                w,
                l,
                ..
            } => {
                let (id_, ig, is_) = (vidx(*d), vidx(*g), vidx(*s));
                let vg = vof(x, ig);
                let vd = vof(x, id_);
                let vs = vof(x, is_);
                let op = model.evaluate(vg, vd, vs, *w, *l);
                // Channel current leaves the drain, enters the source:
                //   i_d = id0 + ∂i/∂vg·Δvg + ∂i/∂vd·Δvd + ∂i/∂vs·Δvs
                let ieq = op.id - op.di_dvg * vg - op.di_dvd * vd - op.di_dvs * vs;
                if let Some(r) = id_ {
                    if let Some(c) = ig {
                        a.add(r, c, op.di_dvg);
                    }
                    a.add(r, r, op.di_dvd);
                    if let Some(c) = is_ {
                        a.add(r, c, op.di_dvs);
                    }
                    z[r] -= ieq;
                }
                if let Some(r) = is_ {
                    if let Some(c) = ig {
                        a.add(r, c, -op.di_dvg);
                    }
                    if let Some(c) = id_ {
                        a.add(r, c, -op.di_dvd);
                    }
                    a.add(r, r, -op.di_dvs);
                    z[r] += ieq;
                }
            }
            Device::Mtj {
                a: na,
                b: nb,
                device,
                ..
            } => {
                let (ia, ib) = (vidx(*na), vidx(*nb));
                let bias = vof(x, ia) - vof(x, ib);
                let r = device.resistance(units::Voltage::from_volts(bias));
                stamp_conductance(a, ia, ib, 1.0 / r.ohms());
            }
        }
    }

    // Capacitor companions (transient only).
    if let Some((cap_list, integrator, dt)) = caps {
        for cap in cap_list {
            let (geq, ieq) = match integrator {
                Integrator::BackwardEuler => {
                    let geq = cap.farads / dt;
                    (geq, geq * cap.v_prev)
                }
                Integrator::Trapezoidal => {
                    let geq = 2.0 * cap.farads / dt;
                    (geq, geq * cap.v_prev + cap.i_prev)
                }
            };
            stamp_conductance(a, cap.ia, cap.ib, geq);
            if let Some(i) = cap.ia {
                z[i] += ieq;
            }
            if let Some(i) = cap.ib {
                z[i] -= ieq;
            }
        }
    }
}

/// The seed engine's LU solver, reproduced verbatim so this baseline
/// stays frozen even as [`crate::linalg`] evolves (the shared solver
/// now skips structurally-zero updates and factors in place; the
/// original cloned the matrix and ran the dense textbook loops).
fn seed_solve(a: &DenseMatrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.dim();
    assert_eq!(b.len(), n, "rhs length mismatch");
    const PIVOT_EPS: f64 = 1e-30;
    let mut lu = a.data().to_vec();
    let mut x: Vec<f64> = b.to_vec();

    for k in 0..n {
        // Pivot selection.
        let mut pivot_row = k;
        let mut pivot_val = lu[k * n + k].abs();
        for r in (k + 1)..n {
            let v = lu[r * n + k].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < PIVOT_EPS {
            return None;
        }
        if pivot_row != k {
            for j in 0..n {
                lu.swap(k * n + j, pivot_row * n + j);
            }
            x.swap(k, pivot_row);
        }
        // Elimination of rows below k, RHS included.
        let pivot = lu[k * n + k];
        for r in (k + 1)..n {
            let factor = lu[r * n + k] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in k..n {
                lu[r * n + j] -= factor * lu[k * n + j];
            }
            x[r] -= factor * x[k];
        }
    }
    // Back substitution.
    for k in (0..n).rev() {
        let mut acc = x[k];
        for j in (k + 1)..n {
            acc -= lu[k * n + j] * x[j];
        }
        x[k] = acc / lu[k * n + k];
    }
    if x.iter().any(|v| !v.is_finite()) {
        return None;
    }
    Some(x)
}

/// Conductance stamp between two (possibly ground) nodes.
fn stamp_conductance(a: &mut DenseMatrix, ia: Option<usize>, ib: Option<usize>, g: f64) {
    if let Some(i) = ia {
        a.add(i, i, g);
        if let Some(j) = ib {
            a.add(i, j, -g);
        }
    }
    if let Some(j) = ib {
        a.add(j, j, g);
        if let Some(i) = ia {
            a.add(j, i, -g);
        }
    }
}

/// Newton–Raphson solve at a fixed time; returns the converged unknowns.
#[allow(clippy::too_many_arguments)]
fn newton(
    ckt: &Circuit,
    analysis: &'static str,
    x0: &[f64],
    t: f64,
    gmin: f64,
    caps: Option<&(Vec<CapInstance>, Integrator, f64)>,
    max_iter: usize,
) -> Result<Vec<f64>, SpiceError> {
    let n = ckt.unknown_count();
    let n_nodes = ckt.node_count() - 1;
    let mut a = DenseMatrix::zeros(n);
    let mut z = vec![0.0; n];
    let mut x = x0.to_vec();

    for _iter in 0..max_iter {
        assemble(ckt, &x, t, gmin, caps, &mut a, &mut z);
        let Some(x_new) = seed_solve(&a, &z) else {
            return Err(SpiceError::SingularMatrix { analysis, time: t });
        };
        let mut converged = true;
        for i in 0..n {
            let mut delta = x_new[i] - x[i];
            let tol = if i < n_nodes {
                // Damp voltage updates so exponential models stay sane.
                if delta.abs() > VSTEP_MAX {
                    delta = delta.signum() * VSTEP_MAX;
                    converged = false;
                }
                VNTOL + RELTOL * x_new[i].abs()
            } else {
                ABSTOL + RELTOL * x_new[i].abs()
            };
            if delta.abs() > tol {
                converged = false;
            }
            x[i] += delta;
        }
        if converged {
            return Ok(x);
        }
    }
    Err(SpiceError::NonConvergence {
        analysis,
        time: t,
        iterations: max_iter,
    })
}

/// Extracts an [`OpResult`] from a raw unknown vector.
fn op_result_from(ckt: &Circuit, x: &[f64]) -> OpResult {
    let mut voltages = vec![0.0; ckt.node_count()];
    voltages[1..ckt.node_count()].copy_from_slice(&x[..ckt.node_count() - 1]);
    let mut branch_currents: Vec<(String, f64)> = ckt
        .devices()
        .iter()
        .filter_map(|d| match d {
            Device::VoltageSource { name, branch, .. } => {
                Some((name.clone(), x[ckt.branch_index(*branch)]))
            }
            _ => None,
        })
        .collect();
    // The result type keeps its table name-sorted for lookup.
    branch_currents.sort_by(|l, r| l.0.cmp(&r.0));
    OpResult {
        voltages,
        branch_currents,
        stats: SolverStats::default(),
    }
}

/// Solves the DC operating point with the per-call engine.
///
/// Identical semantics to [`super::op`], without workspace reuse.
///
/// # Errors
///
/// Same conditions as [`super::op`].
pub fn op(ckt: &mut Circuit) -> Result<OpResult, SpiceError> {
    let x = op_unknowns(ckt, 0.0)?;
    Ok(op_result_from(ckt, &x))
}

/// Raw gmin-stepped operating-point solve at time `t`.
fn op_unknowns(ckt: &Circuit, t: f64) -> Result<Vec<f64>, SpiceError> {
    let n = ckt.unknown_count();
    let mut x = vec![0.0; n];
    let gmin_ladder = [1e-2, 1e-4, 1e-6, 1e-8, 1e-10, GMIN_FLOOR];
    for (stage, &gmin) in gmin_ladder.iter().enumerate() {
        match newton(ckt, "op", &x, t, gmin, None, 400) {
            Ok(solution) => x = solution,
            Err(e) if stage == 0 => return Err(e),
            Err(_) => {
                // Keep the last converged (more heavily shunted) solution
                // and continue down the ladder; final stage must succeed.
                if gmin <= GMIN_FLOOR {
                    return newton(ckt, "op", &x, t, GMIN_FLOOR, None, 800);
                }
            }
        }
    }
    Ok(x)
}

/// Sweeps the DC value of the named voltage source with the per-call
/// engine.
///
/// Identical semantics to [`super::dc_sweep`], without workspace reuse.
///
/// # Errors
///
/// Same conditions as [`super::dc_sweep`].
pub fn dc_sweep(
    ckt: &mut Circuit,
    source: &str,
    values: &[f64],
) -> Result<Vec<OpResult>, SpiceError> {
    if values.is_empty() {
        return Err(SpiceError::InvalidAnalysis {
            reason: "dc sweep needs at least one source value".into(),
        });
    }
    // Confirm the source exists before mutating anything.
    let exists = ckt
        .devices()
        .iter()
        .any(|d| matches!(d, Device::VoltageSource { name, .. } if name == source));
    if !exists {
        return Err(SpiceError::UnknownTrace {
            name: source.into(),
        });
    }

    let original = ckt
        .devices()
        .iter()
        .find_map(|d| match d {
            Device::VoltageSource { name, wave, .. } if name == source => Some(wave.clone()),
            _ => None,
        })
        .expect("source existence checked above");

    let mut results = Vec::with_capacity(values.len());
    let mut x = vec![0.0; ckt.unknown_count()];
    let mut warm = false;
    for &v in values {
        super::newton::set_source_dc(ckt, source, v);
        let solved = if warm {
            newton(ckt, "dc", &x, 0.0, GMIN_FLOOR, None, 400).or_else(|_| op_unknowns(ckt, 0.0))
        } else {
            op_unknowns(ckt, 0.0)
        };
        match solved {
            Ok(sol) => {
                x = sol;
                warm = true;
                results.push(op_result_from(ckt, &x));
            }
            Err(e) => {
                super::newton::restore_source(ckt, source, &original);
                return Err(e);
            }
        }
    }
    super::newton::restore_source(ckt, source, &original);
    Ok(results)
}

/// Runs a transient with the legacy engine's options (uniform stepping,
/// backward Euler) using the per-call engine.
///
/// This module is the frozen oracle: it pins
/// [`TransientOptions::fixed`] rather than the process default, so its
/// behaviour never shifts with `NVFF_TRANSIENT` or with the adaptive
/// controller's defaults.
///
/// # Errors
///
/// Propagates every error of [`transient_with_options`].
pub fn transient(ckt: &mut Circuit, stop: Time, step: Time) -> Result<TransientResult, SpiceError> {
    transient_with_options(ckt, stop, step, TransientOptions::fixed())
}

/// Runs a transient analysis with the per-call engine.
///
/// Identical semantics to [`super::transient_with_options`], without
/// workspace reuse: the capacitor companion list is cloned per step and
/// every Newton solve allocates its own system.
///
/// # Errors
///
/// Same conditions as [`super::transient_with_options`].
pub fn transient_with_options(
    ckt: &mut Circuit,
    stop: Time,
    step: Time,
    options: TransientOptions,
) -> Result<TransientResult, SpiceError> {
    let stop_s = stop.seconds();
    let dt_nominal = step.seconds();
    if stop_s <= 0.0 || dt_nominal <= 0.0 || stop_s.is_nan() || dt_nominal.is_nan() {
        return Err(SpiceError::InvalidAnalysis {
            reason: format!("stop ({stop}) and step ({step}) must be positive"),
        });
    }
    if dt_nominal > stop_s {
        return Err(SpiceError::InvalidAnalysis {
            reason: format!("step ({step}) exceeds the analysis window ({stop})"),
        });
    }

    // Initial state.
    let mut x = match options.start {
        StartCondition::OperatingPoint => op_unknowns(ckt, 0.0)?,
        StartCondition::Zero => vec![0.0; ckt.unknown_count()],
    };

    // Flatten capacitors (explicit + MOSFET parasitics) with history.
    let mut caps: Vec<CapInstance> = Vec::new();
    for dev in ckt.devices() {
        match dev {
            Device::Capacitor { a, b, farads, .. } => {
                caps.push(CapInstance {
                    ia: ckt.voltage_index(*a),
                    ib: ckt.voltage_index(*b),
                    farads: *farads,
                    v_prev: 0.0,
                    i_prev: 0.0,
                });
            }
            Device::Mosfet {
                d,
                g,
                s,
                model,
                w,
                l,
                ..
            } => {
                let cgs = model.cgs(*w, *l);
                let cj = model.cjunction(*w);
                let (di, gi, si) = (
                    ckt.voltage_index(*d),
                    ckt.voltage_index(*g),
                    ckt.voltage_index(*s),
                );
                caps.push(CapInstance {
                    ia: gi,
                    ib: si,
                    farads: cgs,
                    v_prev: 0.0,
                    i_prev: 0.0,
                });
                caps.push(CapInstance {
                    ia: gi,
                    ib: di,
                    farads: cgs,
                    v_prev: 0.0,
                    i_prev: 0.0,
                });
                caps.push(CapInstance {
                    ia: di,
                    ib: None,
                    farads: cj,
                    v_prev: 0.0,
                    i_prev: 0.0,
                });
                caps.push(CapInstance {
                    ia: si,
                    ib: None,
                    farads: cj,
                    v_prev: 0.0,
                    i_prev: 0.0,
                });
            }
            _ => {}
        }
    }
    for cap in &mut caps {
        cap.v_prev = vof(&x, cap.ia) - vof(&x, cap.ib);
    }

    // Result storage.
    let mut recorder = TransientResult::recorder(ckt);
    recorder.push(0.0, &x, ckt);
    let mut events: Vec<MtjEvent> = Vec::new();

    let mut t = 0.0_f64;
    while t < stop_s {
        // Candidate step: nominal, clipped to breakpoints and the window.
        let remaining = stop_s - t;
        let mut dt = dt_nominal.min(remaining);
        if let Some(bp) = next_breakpoint(ckt, t) {
            if bp > t + 1e-18 && bp < t + dt {
                dt = bp - t;
            }
        }

        // Solve with step halving on non-convergence.
        let mut halvings = 0;
        let (x_new, dt_used) = loop {
            let companion = (caps.clone(), options.integrator, dt);
            match newton(
                ckt,
                "tran",
                &x,
                t + dt,
                GMIN_FLOOR,
                Some(&companion),
                options.max_newton_iterations,
            ) {
                Ok(sol) => break (sol, dt),
                Err(e) => {
                    halvings += 1;
                    if halvings > options.max_step_halvings {
                        return Err(e);
                    }
                    dt *= 0.5;
                }
            }
        };
        // Snap the final step exactly onto the requested stop time,
        // mirroring the session engine's fix (the two must stay
        // bit-identical, time axis included).
        t = if dt_used >= remaining {
            stop_s
        } else {
            t + dt_used
        };
        x = x_new;

        // Update capacitor history.
        for cap in &mut caps {
            let v_now = vof(&x, cap.ia) - vof(&x, cap.ib);
            let i_now = match options.integrator {
                Integrator::BackwardEuler => cap.farads / dt_used * (v_now - cap.v_prev),
                Integrator::Trapezoidal => {
                    2.0 * cap.farads / dt_used * (v_now - cap.v_prev) - cap.i_prev
                }
            };
            cap.v_prev = v_now;
            cap.i_prev = i_now;
        }

        // Advance MTJ magnetisation from the solved branch currents.
        let voltage_pairs: Vec<(usize, Option<usize>, Option<usize>)> = ckt
            .devices()
            .iter()
            .enumerate()
            .filter_map(|(i, d)| match d {
                Device::Mtj { a, b, .. } => Some((i, ckt.voltage_index(*a), ckt.voltage_index(*b))),
                _ => None,
            })
            .collect();
        for (dev_idx, ia, ib) in voltage_pairs {
            let bias = vof(&x, ia) - vof(&x, ib);
            if let Device::Mtj { name, device, .. } = &mut ckt.devices_mut()[dev_idx] {
                let r = device.resistance(units::Voltage::from_volts(bias));
                let i = Current::from_amps(bias / r.ohms());
                if device.advance(i, Time::from_seconds(dt_used)) {
                    events.push(MtjEvent {
                        time: Time::from_seconds(t),
                        device: name.clone(),
                        state: device.state(),
                    });
                }
            }
        }

        recorder.push(t, &x, ckt);
    }

    Ok(recorder.finish(events, SolverStats::default()))
}

/// Earliest source breakpoint strictly after `t`, across all sources.
fn next_breakpoint(ckt: &Circuit, t: f64) -> Option<f64> {
    ckt.devices()
        .iter()
        .filter_map(|d| match d {
            Device::VoltageSource { wave, .. } | Device::CurrentSource { wave, .. } => {
                wave.next_breakpoint(t)
            }
            _ => None,
        })
        .min_by(|a, b| a.partial_cmp(b).expect("breakpoints are finite"))
}

/// Returns the MTJ states currently held by a circuit, in device order.
#[must_use]
pub fn mtj_states(ckt: &Circuit) -> Vec<(String, MtjState)> {
    super::mtj_states(ckt)
}
