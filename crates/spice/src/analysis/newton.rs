//! Newton–Raphson core, gmin-stepped operating point and DC sweep —
//! all operating in place on pre-allocated workspace buffers.
//!
//! The arithmetic here reproduces the original allocating engine
//! operation for operation (see [`super::reference`]); the only change
//! is *where* intermediates live. The iterate evolves in `bufs.x`
//! directly, so callers that need the pre-solve state on failure (the
//! gmin ladder, transient step halving) save it to `bufs.x_save` first.

use crate::circuit::Circuit;
use crate::device::Device;
use crate::error::SpiceError;
use crate::linalg::{DenseMatrix, LuScratch, SparseSolveOutcome, SymbolicLu};

use super::assembly::{assemble, Companions, EvalCtx, MatrixRef, StampPlan};
use super::session::{SolverStats, Workspace};
use super::{OpResult, ABSTOL, GMIN_FLOOR, RELTOL, VNTOL, VSTEP_MAX};

/// The LU engine's per-solve storage: either the dense matrix plus its
/// factorization scratch, or the CSR values plus the symbolic object
/// whose frozen pattern they are refactored in.
pub(super) enum EngineBufs<'w> {
    Dense {
        a: &'w mut DenseMatrix,
        lu: &'w mut LuScratch,
    },
    Sparse {
        values: &'w mut Vec<f64>,
        symbolic: &'w mut SymbolicLu,
    },
}

/// Mutable views over the workspace fields the Newton solver touches.
///
/// Borrowed (rather than owning `&mut Workspace`) so the transient loop
/// can hold the capacitor histories separately — see
/// [`Workspace::split`].
pub(super) struct SolverBufs<'w> {
    pub engine: EngineBufs<'w>,
    pub z: &'w mut Vec<f64>,
    pub x: &'w mut Vec<f64>,
    pub x_new: &'w mut Vec<f64>,
    pub x_save: &'w mut Vec<f64>,
    pub stats: &'w mut SolverStats,
}

impl SolverBufs<'_> {
    /// Copies the current iterate aside (ladder stages and transient
    /// steps restore it on a failed solve).
    pub(super) fn save_x(&mut self) {
        self.x_save.clear();
        self.x_save.extend_from_slice(self.x);
    }

    /// Restores the iterate saved by [`SolverBufs::save_x`].
    pub(super) fn restore_x(&mut self) {
        self.x.clear();
        self.x.extend_from_slice(self.x_save);
    }

    /// Resets the iterate to the all-zero starting point.
    pub(super) fn zero_x(&mut self, n: usize) {
        self.x.clear();
        self.x.resize(n, 0.0);
    }
}

/// Newton–Raphson solve at a fixed time, iterating `bufs.x` in place.
///
/// `src_scale` multiplies every independent source value (1.0 in normal
/// operation; the source-stepping ladder ramps it 0 → 1).
///
/// On `Err` the iterate is left mid-update; callers that continue from
/// the previous solution must restore it from `bufs.x_save`.
#[allow(clippy::too_many_arguments)]
pub(super) fn newton(
    plan: &StampPlan,
    ckt: &Circuit,
    bufs: &mut SolverBufs<'_>,
    analysis: &'static str,
    t: f64,
    gmin: f64,
    companions: Option<&Companions<'_>>,
    max_iter: usize,
    src_scale: f64,
) -> Result<(), SpiceError> {
    let n = plan.n_unknowns;
    let n_nodes = plan.n_nodes;
    let ctx = EvalCtx { t, src_scale };
    // One atomic load each, hoisted so the per-iteration
    // instrumentation below is branch-on-bool when tracing is off.
    let tel = telemetry::enabled();
    let fl = telemetry::flight::active();

    for _iter in 0..max_iter {
        bufs.stats.newton_iterations += 1;
        bufs.stats.lu_factorizations += 1;
        let lu_timer = tel.then(std::time::Instant::now);
        let solved = match &mut bufs.engine {
            EngineBufs::Dense { a, lu } => {
                let mut target = MatrixRef::Dense(a);
                assemble(
                    plan,
                    ckt,
                    bufs.x,
                    ctx,
                    gmin,
                    companions,
                    &mut target,
                    bufs.z,
                );
                // `assemble` rebuilds the matrix next iteration anyway,
                // so let the factorization consume it in place instead
                // of paying an n² working-copy memcpy per solve.
                a.solve_in_place(bufs.z, lu, bufs.x_new)
            }
            EngineBufs::Sparse { values, symbolic } => {
                let mut target = MatrixRef::Sparse {
                    pattern: &plan.sparse,
                    values,
                };
                assemble(
                    plan,
                    ckt,
                    bufs.x,
                    ctx,
                    gmin,
                    companions,
                    &mut target,
                    bufs.z,
                );
                match symbolic.factor_and_solve(&plan.sparse, values, bufs.z, bufs.x_new) {
                    None => false,
                    Some(outcome) => {
                        match outcome {
                            SparseSolveOutcome::ReusedPattern => {
                                bufs.stats.pattern_reuses += 1;
                            }
                            SparseSolveOutcome::Built => {
                                telemetry::counter("spice.symbolic_builds", 1);
                                if tel {
                                    telemetry::histogram("spice.csr_nnz", plan.sparse.nnz() as f64);
                                    telemetry::histogram("spice.lu_nnz", symbolic.lu_nnz() as f64);
                                }
                                if fl {
                                    telemetry::flight::record_always(
                                        telemetry::flight::EventKind::SymbolicBuild,
                                        t,
                                        symbolic.lu_nnz() as f64,
                                    );
                                }
                            }
                            SparseSolveOutcome::Repivoted => {
                                telemetry::counter("spice.repivots", 1);
                                if tel {
                                    telemetry::histogram("spice.lu_nnz", symbolic.lu_nnz() as f64);
                                }
                                if fl {
                                    telemetry::flight::record_always(
                                        telemetry::flight::EventKind::Repivot,
                                        t,
                                        symbolic.lu_nnz() as f64,
                                    );
                                }
                            }
                        }
                        true
                    }
                }
            }
        };
        if !solved {
            if fl {
                telemetry::flight::record_always(
                    telemetry::flight::EventKind::SingularMatrix,
                    t,
                    0.0,
                );
            }
            return Err(SpiceError::SingularMatrix { analysis, time: t });
        }
        if let Some(start) = lu_timer {
            telemetry::histogram("spice.lu_solve_s", start.elapsed().as_secs_f64());
        }
        let mut converged = true;
        let mut max_delta = 0.0_f64;
        for i in 0..n {
            let mut delta = bufs.x_new[i] - bufs.x[i];
            let tol = if i < n_nodes {
                // Damp voltage updates so exponential models stay sane.
                if delta.abs() > VSTEP_MAX {
                    delta = delta.signum() * VSTEP_MAX;
                    converged = false;
                }
                VNTOL + RELTOL * bufs.x_new[i].abs()
            } else {
                ABSTOL + RELTOL * bufs.x_new[i].abs()
            };
            if delta.abs() > tol {
                converged = false;
            }
            if tel || fl {
                max_delta = max_delta.max(delta.abs());
            }
            bufs.x[i] += delta;
        }
        if tel {
            // Largest damped update this iteration — the Newton residual
            // proxy the convergence test itself works from.
            telemetry::histogram("spice.newton_delta", max_delta);
        }
        if fl {
            telemetry::flight::record_always(
                telemetry::flight::EventKind::NewtonDelta,
                t,
                max_delta,
            );
        }
        if converged {
            return Ok(());
        }
    }
    if fl {
        telemetry::flight::record_always(
            telemetry::flight::EventKind::NonConvergence,
            t,
            max_iter as f64,
        );
    }
    Err(SpiceError::NonConvergence {
        analysis,
        time: t,
        iterations: max_iter,
    })
}

/// Robust operating-point solve at time `t`, starting from zero; leaves
/// the solution in `bufs.x`.
///
/// Recovery ladder: gmin stepping first (cheap, solves almost every
/// circuit), then source stepping (ramp every independent source from
/// near zero to nominal) when the gmin ladder exhausts without
/// converging. If both fail, the gmin ladder's error is reported — it
/// names the analysis the caller asked for, and for structurally
/// singular systems both rungs fail identically anyway.
pub(super) fn solve_op_from_zero(
    plan: &StampPlan,
    ckt: &Circuit,
    bufs: &mut SolverBufs<'_>,
    t: f64,
) -> Result<(), SpiceError> {
    match solve_op_gmin_stepped(plan, ckt, bufs, t) {
        Ok(()) => Ok(()),
        Err(e) => solve_op_source_stepped(plan, ckt, bufs, t).map_err(|_| e),
    }
}

/// Gmin-stepped operating-point solve at time `t`, starting from zero.
fn solve_op_gmin_stepped(
    plan: &StampPlan,
    ckt: &Circuit,
    bufs: &mut SolverBufs<'_>,
    t: f64,
) -> Result<(), SpiceError> {
    bufs.zero_x(plan.n_unknowns);
    let fl = telemetry::flight::active();
    let gmin_ladder = [1e-2, 1e-4, 1e-6, 1e-8, 1e-10, GMIN_FLOOR];
    for (stage, &gmin) in gmin_ladder.iter().enumerate() {
        telemetry::counter("spice.gmin_rounds", 1);
        if fl {
            telemetry::flight::record_always(telemetry::flight::EventKind::GminRung, t, gmin);
        }
        bufs.save_x();
        match newton(plan, ckt, bufs, "op", t, gmin, None, 400, 1.0) {
            Ok(()) => {}
            Err(e) if stage == 0 => return Err(e),
            Err(_) => {
                // Keep the last converged (more heavily shunted) solution
                // and continue down the ladder; final stage must succeed.
                bufs.restore_x();
                if gmin <= GMIN_FLOOR {
                    return newton(plan, ckt, bufs, "op", t, GMIN_FLOOR, None, 800, 1.0);
                }
            }
        }
    }
    Ok(())
}

/// First rung of the source-stepping schedule, as a fraction of the
/// nominal source values. Starting this low keeps the first solve
/// near-linear (the zero iterate is already the exact solution of the
/// zero-source system).
const SOURCE_STEP_START: f64 = 1.0 / 64.0;
/// Bound on source-stepping Newton solves before giving up — generous
/// next to the ~13 rounds a clean geometric 1/64 → 1 ramp takes, but
/// finite even when every rung needs bisection.
const SOURCE_STEP_MAX_ROUNDS: usize = 48;

/// Source-stepping operating-point solve: ramps every independent
/// source from `SOURCE_STEP_START` of nominal up to nominal on a
/// geometric schedule (doubling on success, bisecting the gap on
/// failure), warm-starting each rung from the previous solution.
pub(super) fn solve_op_source_stepped(
    plan: &StampPlan,
    ckt: &Circuit,
    bufs: &mut SolverBufs<'_>,
    t: f64,
) -> Result<(), SpiceError> {
    bufs.zero_x(plan.n_unknowns);
    let fl = telemetry::flight::active();
    let mut reached = 0.0_f64;
    let mut target = SOURCE_STEP_START;
    for _round in 0..SOURCE_STEP_MAX_ROUNDS {
        telemetry::counter("spice.source_step_rounds", 1);
        bufs.stats.source_steps += 1;
        if fl {
            telemetry::flight::record_always(telemetry::flight::EventKind::SourceRung, t, target);
        }
        bufs.save_x();
        match newton(plan, ckt, bufs, "op", t, GMIN_FLOOR, None, 400, target) {
            Ok(()) => {
                if target >= 1.0 {
                    return Ok(());
                }
                reached = target;
                target = (target * 2.0).min(1.0);
            }
            Err(e) => {
                bufs.restore_x();
                let gap = target - reached;
                if gap <= 1e-4 {
                    // The continuation stalled — the failure is not a
                    // source-magnitude problem.
                    return Err(e);
                }
                target = reached + 0.5 * gap;
            }
        }
    }
    Err(SpiceError::NonConvergence {
        analysis: "op",
        time: t,
        iterations: SOURCE_STEP_MAX_ROUNDS,
    })
}

/// Extracts an [`OpResult`] from the raw unknown vector, using the
/// plan's pre-resolved (and name-sorted) branch table.
pub(super) fn op_result_from(plan: &StampPlan, ckt: &Circuit, x: &[f64]) -> OpResult {
    let mut voltages = vec![0.0; ckt.node_count()];
    voltages[1..ckt.node_count()].copy_from_slice(&x[..ckt.node_count() - 1]);
    let branch_currents = plan
        .branches
        .iter()
        .map(|(name, br)| (name.clone(), x[*br]))
        .collect();
    OpResult {
        voltages,
        branch_currents,
        stats: SolverStats::default(),
    }
}

/// Operating-point analysis against a prepared plan and workspace.
pub(super) fn op_core(
    plan: &StampPlan,
    ckt: &Circuit,
    ws: &mut Workspace,
) -> Result<OpResult, SpiceError> {
    let _span = telemetry::span("spice.op");
    let before = ws.stats;
    let (mut bufs, _) = ws.split();
    solve_op_from_zero(plan, ckt, &mut bufs, 0.0)?;
    let mut result = op_result_from(plan, ckt, bufs.x);
    result.stats = *bufs.stats - before;
    Ok(result)
}

/// DC sweep of the named voltage source with warm-started continuation,
/// against a prepared plan and workspace.
pub(super) fn run_dc_sweep(
    plan: &StampPlan,
    ckt: &mut Circuit,
    ws: &mut Workspace,
    source: &str,
    values: &[f64],
) -> Result<Vec<OpResult>, SpiceError> {
    let _span = telemetry::span("spice.dc_sweep");
    if values.is_empty() {
        return Err(SpiceError::InvalidAnalysis {
            reason: "dc sweep needs at least one source value".into(),
        });
    }
    // Confirm the source exists — and is unambiguous — before mutating
    // anything. The builder API rejects duplicate device names, but
    // `Circuit::devices_mut` allows renames, and a sweep over a
    // duplicated name could not faithfully restore per-source waveforms
    // afterwards (only one original is remembered).
    let matches = ckt
        .devices()
        .iter()
        .filter(|d| matches!(d, Device::VoltageSource { name, .. } if name == source))
        .count();
    if matches == 0 {
        return Err(SpiceError::UnknownTrace {
            name: source.into(),
        });
    }
    if matches > 1 {
        return Err(SpiceError::InvalidAnalysis {
            reason: format!("dc sweep source name {source:?} matches {matches} voltage sources"),
        });
    }

    let original = ckt
        .devices()
        .iter()
        .find_map(|d| match d {
            Device::VoltageSource { name, wave, .. } if name == source => Some(wave.clone()),
            _ => None,
        })
        .expect("source existence checked above");

    let (mut bufs, _) = ws.split();
    let mut results = Vec::with_capacity(values.len());
    let mut warm = false;
    for &v in values {
        set_source_dc(ckt, source, v);
        let before = *bufs.stats;
        let solved = if warm {
            // Warm start from the previous point's solution; fall back to
            // the full gmin ladder (which restarts from zero) on failure.
            newton(plan, ckt, &mut bufs, "dc", 0.0, GMIN_FLOOR, None, 400, 1.0)
                .or_else(|_| solve_op_from_zero(plan, ckt, &mut bufs, 0.0))
        } else {
            solve_op_from_zero(plan, ckt, &mut bufs, 0.0)
        };
        match solved {
            Ok(()) => {
                warm = true;
                let mut r = op_result_from(plan, ckt, bufs.x);
                r.stats = *bufs.stats - before;
                results.push(r);
            }
            Err(e) => {
                restore_source(ckt, source, &original);
                return Err(e);
            }
        }
    }
    restore_source(ckt, source, &original);
    Ok(results)
}

pub(super) fn set_source_dc(ckt: &mut Circuit, source: &str, v: f64) {
    for d in ckt.devices_mut() {
        if let Device::VoltageSource { name, wave, .. } = d {
            if name == source {
                *wave = crate::source::SourceWaveform::Dc(v);
            }
        }
    }
}

/// Restores the waveform of every source matching `source` — the exact
/// mirror of [`set_source_dc`], which also updates every match. An
/// early return after the first hit would leave later duplicates stuck
/// at the final sweep value.
pub(super) fn restore_source(
    ckt: &mut Circuit,
    source: &str,
    original: &crate::source::SourceWaveform,
) {
    for d in ckt.devices_mut() {
        if let Device::VoltageSource { name, wave, .. } = d {
            if name == source {
                *wave = original.clone();
            }
        }
    }
}
