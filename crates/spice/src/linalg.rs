//! Dense linear algebra for the MNA system.
//!
//! Latch-scale circuits produce systems of a few dozen unknowns, where a
//! dense LU factorization with partial pivoting is both the simplest and
//! the fastest option (no fill-in bookkeeping, cache-friendly row access).
//! MNA matrices are nonetheless *structurally* sparse — a handful of
//! entries per row — so the elimination skips updates whose operands are
//! exactly zero: those are value-level no-ops, and dropping them leaves
//! every computed result unchanged while cutting most of the O(n³) work.

/// A dense, row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

/// Reusable working storage for [`DenseMatrix::solve_into`] and
/// [`DenseMatrix::solve_in_place`].
///
/// Holds the factorization's working copy of the matrix and the pivot
/// row's nonzero-column index list, so repeated solves (one per Newton
/// iteration, thousands per transient) perform no heap allocation after
/// the first call.
#[derive(Debug, Clone, Default)]
pub struct LuScratch {
    lu: Vec<f64>,
    nonzero_cols: Vec<u32>,
}

impl LuScratch {
    /// Creates an empty scratch buffer; it grows on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch buffer pre-sized for an `n × n` system.
    #[must_use]
    pub fn for_dim(n: usize) -> Self {
        Self {
            lu: Vec::with_capacity(n * n),
            nonzero_cols: Vec::with_capacity(n),
        }
    }
}

impl DenseMatrix {
    /// Creates an `n × n` zero matrix.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Returns the entry at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col]
    }

    /// Sets the entry at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col] = value;
    }

    /// Adds `value` to the entry at (`row`, `col`) — the *stamp*
    /// operation every MNA device contribution uses.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col] += value;
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Borrows the raw row-major entries.
    ///
    /// Crate-internal: lets the reference engine copy the matrix at the
    /// same cost the seed solver paid (`data.clone()`), keeping it an
    /// honest baseline.
    #[must_use]
    pub(crate) fn data(&self) -> &[f64] {
        &self.data
    }

    /// Solves `A·x = b` via LU with partial pivoting without destroying
    /// `self`.
    ///
    /// Returns `None` if the matrix is numerically singular.
    ///
    /// This is the allocating convenience wrapper over
    /// [`DenseMatrix::solve_into`]; solver loops should hold a
    /// [`LuScratch`] and call `solve_into` (or [`DenseMatrix::solve_in_place`])
    /// instead.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        let mut scratch = LuScratch::new();
        let mut x = Vec::new();
        self.solve_into(b, &mut scratch, &mut x).then_some(x)
    }

    /// Solves `A·x = b` into `x`, reusing `scratch` for the factorization
    /// working copy — no allocation once the scratch buffers have grown
    /// to the system size.
    ///
    /// Returns `false` if the matrix is numerically singular (in which
    /// case the contents of `x` are unspecified). Every arithmetic
    /// operation that is actually performed — pivot selection,
    /// elimination, back substitution — matches the original allocating
    /// solver; the only difference is that updates whose pivot-row
    /// operand is exactly zero are skipped, which leaves all values
    /// unchanged (up to the sign of zero), so results are reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve_into(&self, b: &[f64], scratch: &mut LuScratch, x: &mut Vec<f64>) -> bool {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        scratch.lu.clear();
        scratch.lu.extend_from_slice(&self.data);
        x.clear();
        x.extend_from_slice(b);
        lu_solve_core(&mut scratch.lu, self.n, &mut scratch.nonzero_cols, x)
    }

    /// Solves `A·x = b` into `x`, factoring `self` **in place** — on
    /// return the matrix holds the (partially pivoted) elimination
    /// residue and must be re-stamped before the next use.
    ///
    /// This is the hot-loop entry point: it skips the `n²` working-copy
    /// memcpy that [`DenseMatrix::solve_into`] pays per call, which
    /// matters when the matrix is re-assembled from scratch every Newton
    /// iteration anyway. Arithmetic is identical to `solve_into`.
    ///
    /// Returns `false` if the matrix is numerically singular (in which
    /// case the contents of `x` are unspecified).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve_in_place(&mut self, b: &[f64], scratch: &mut LuScratch, x: &mut Vec<f64>) -> bool {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        x.clear();
        x.extend_from_slice(b);
        lu_solve_core(&mut self.data, self.n, &mut scratch.nonzero_cols, x)
    }

    /// Computes `A·x` (used by tests and residual checks).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the matrix dimension.
    #[must_use]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "vector length mismatch");
        (0..self.n)
            .map(|r| (0..self.n).map(|c| self.data[r * self.n + c] * x[c]).sum())
            .collect()
    }
}

/// LU-with-partial-pivoting factorization and solve, operating directly
/// on a row-major `n × n` buffer with the RHS pre-loaded into `x`.
///
/// MNA matrices carry only a handful of nonzeros per row, so before
/// eliminating below each pivot the core records the pivot row's
/// nonzero columns (right of the diagonal) in `nz` and restricts the
/// update loop to them. A skipped update would have computed
/// `a[r][j] -= factor * 0.0`, a value-level no-op, so every surviving
/// operation — and therefore every result — matches the textbook dense
/// loop. The subdiagonal residue `a[r][k]` is likewise never read again
/// (pivot searches only look at columns > k) and is left unwritten.
///
/// Back substitution stays dense: it is O(n²) and keeps non-finite
/// values flowing into the final singularity check exactly as before.
///
/// Returns `false` if the matrix is numerically singular.
fn lu_solve_core(lu: &mut [f64], n: usize, nz: &mut Vec<u32>, x: &mut [f64]) -> bool {
    const PIVOT_EPS: f64 = 1e-30;
    debug_assert_eq!(lu.len(), n * n);
    debug_assert_eq!(x.len(), n);
    for k in 0..n {
        // Pivot selection.
        let mut pivot_row = k;
        let mut pivot_val = lu[k * n + k].abs();
        for (off, row) in lu[(k + 1) * n..].chunks_exact(n).enumerate() {
            let v = row[k].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = k + 1 + off;
            }
        }
        if pivot_val < PIVOT_EPS {
            return false;
        }
        if pivot_row != k {
            for j in 0..n {
                lu.swap(k * n + j, pivot_row * n + j);
            }
            x.swap(k, pivot_row);
        }
        // Elimination of rows below k, RHS folded in, restricted to the
        // pivot row's nonzero columns.
        let (upper, lower) = lu.split_at_mut((k + 1) * n);
        let row_k = &upper[k * n..(k + 1) * n];
        let pivot = row_k[k];
        nz.clear();
        for (j, &v) in row_k.iter().enumerate().skip(k + 1) {
            if v != 0.0 {
                nz.push(j as u32);
            }
        }
        let (x_upper, x_lower) = x.split_at_mut(k + 1);
        let x_k = x_upper[k];
        for (row_r, x_r) in lower.chunks_exact_mut(n).zip(x_lower.iter_mut()) {
            let factor = row_r[k] / pivot;
            if factor == 0.0 {
                continue;
            }
            for &j in nz.iter() {
                let j = j as usize;
                row_r[j] -= factor * row_k[j];
            }
            *x_r -= factor * x_k;
        }
    }
    // Back substitution.
    for k in (0..n).rev() {
        let row_k = &lu[k * n..(k + 1) * n];
        let mut acc = x[k];
        for (&aj, &xj) in row_k[k + 1..].iter().zip(x[k + 1..].iter()) {
            acc -= aj * xj;
        }
        x[k] = acc / row_k[k];
    }
    x.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_rows(rows: &[&[f64]]) -> DenseMatrix {
        let n = rows.len();
        let mut m = DenseMatrix::zeros(n);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n);
            for (c, &v) in row.iter().enumerate() {
                m.set(r, c, v);
            }
        }
        m
    }

    #[test]
    fn identity_solve() {
        let m = from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = m.solve(&[3.0, 4.0]).expect("nonsingular");
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_a_known_system() {
        let m = from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = m.solve(&[8.0, -11.0, -3.0]).expect("nonsingular");
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expected.iter()) {
            assert!((xi - ei).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let m = from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = m.solve(&[5.0, 7.0]).expect("nonsingular with pivoting");
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let m = from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(m.solve(&[1.0, 2.0]).is_none());
        let z = DenseMatrix::zeros(3);
        assert!(z.solve(&[0.0; 3]).is_none());
    }

    #[test]
    fn solve_does_not_mutate_matrix() {
        let m = from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let copy = m.clone();
        let _ = m.solve(&[10.0, 12.0]);
        assert_eq!(m, copy);
    }

    #[test]
    fn residual_is_tiny_for_ill_conditioned_scaling() {
        // Conductances in a real MNA system span ~1e-12 .. 1e-2 S.
        let m = from_rows(&[
            &[1e-2, -1e-2, 0.0],
            &[-1e-2, 1e-2 + 1e-12, -1e-12],
            &[0.0, -1e-12, 2e-12],
        ]);
        let b = [1e-3, 0.0, 1e-15];
        let x = m.solve(&b).expect("solvable");
        let r = m.mul_vec(&x);
        // The system's condition number is ~1e10; accept residuals small
        // relative to the RHS scale rather than entry-exact.
        let scale = b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (ri, bi) in r.iter().zip(b.iter()) {
            assert!((ri - bi).abs() < 1e-5 * scale, "{r:?}");
        }
    }

    #[test]
    fn stamp_add_accumulates() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 0, 2.5);
        assert_eq!(m.get(0, 0), 3.5);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.dim(), 2);
    }

    #[test]
    #[should_panic(expected = "rhs length mismatch")]
    fn wrong_rhs_length_panics() {
        let m = DenseMatrix::zeros(2);
        let _ = m.solve(&[1.0]);
    }

    #[test]
    fn solve_into_matches_solve_bit_for_bit() {
        // An awkwardly scaled system that forces pivoting and a zero
        // fill-in skip, exercising every branch of the elimination.
        let m = from_rows(&[
            &[0.0, 2.0, 1.0, 0.0],
            &[1e-6, -1.0, 0.5, 0.0],
            &[3.0, 0.25, -2.0, 1e-9],
            &[0.0, 0.0, 1e3, 4.0],
        ]);
        let b = [1.0, -2.5, 3e-3, 0.7];
        let via_alloc = m.solve(&b).expect("nonsingular");
        let mut scratch = LuScratch::for_dim(4);
        let mut x = Vec::new();
        assert!(m.solve_into(&b, &mut scratch, &mut x));
        assert_eq!(via_alloc, x, "solve and solve_into must agree exactly");
        // Reuse the same scratch for a second system of the same size.
        let b2 = [0.0, 1.0, 0.0, -1.0];
        let mut x2 = Vec::new();
        assert!(m.solve_into(&b2, &mut scratch, &mut x2));
        assert_eq!(m.solve(&b2).expect("nonsingular"), x2);
    }

    #[test]
    fn solve_in_place_matches_solve_and_consumes_matrix() {
        let rows: &[&[f64]] = &[
            &[0.0, 2.0, 1.0, 0.0],
            &[1e-6, -1.0, 0.5, 0.0],
            &[3.0, 0.25, -2.0, 1e-9],
            &[0.0, 0.0, 1e3, 4.0],
        ];
        let b = [1.0, -2.5, 3e-3, 0.7];
        let pristine = from_rows(rows);
        let via_alloc = pristine.solve(&b).expect("nonsingular");
        let mut m = from_rows(rows);
        let mut scratch = LuScratch::for_dim(4);
        let mut x = Vec::new();
        assert!(m.solve_in_place(&b, &mut scratch, &mut x));
        assert_eq!(via_alloc, x, "solve and solve_in_place must agree exactly");
        // The matrix now holds elimination residue, not A.
        assert_ne!(m, pristine);
        // Singular systems are still detected.
        let mut s = from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(!s.solve_in_place(&[1.0, 2.0], &mut scratch, &mut x));
    }

    #[test]
    fn solve_into_reports_singularity() {
        let m = from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut scratch = LuScratch::new();
        let mut x = Vec::new();
        assert!(!m.solve_into(&[1.0, 2.0], &mut scratch, &mut x));
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_bounds_panics() {
        let m = DenseMatrix::zeros(2);
        let _ = m.get(2, 0);
    }
}
