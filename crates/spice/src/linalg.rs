//! Dense linear algebra for the MNA system.
//!
//! Latch-scale circuits produce systems of a few dozen unknowns, where a
//! dense LU factorization with partial pivoting is both the simplest and
//! the fastest option (no fill-in bookkeeping, cache-friendly row access).

/// A dense, row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n × n` zero matrix.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Returns the entry at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col]
    }

    /// Sets the entry at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col] = value;
    }

    /// Adds `value` to the entry at (`row`, `col`) — the *stamp*
    /// operation every MNA device contribution uses.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col] += value;
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Solves `A·x = b` via LU with partial pivoting without destroying
    /// `self`.
    ///
    /// Returns `None` if the matrix is numerically singular.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        const PIVOT_EPS: f64 = 1e-30;
        let n = self.n;
        let mut lu = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();

        for k in 0..n {
            // Pivot selection.
            let mut pivot_row = k;
            let mut pivot_val = lu[k * n + k].abs();
            for r in (k + 1)..n {
                let v = lu[r * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < PIVOT_EPS {
                return None;
            }
            if pivot_row != k {
                for j in 0..n {
                    lu.swap(k * n + j, pivot_row * n + j);
                }
                x.swap(k, pivot_row);
            }
            // Elimination of rows below k, RHS included.
            let pivot = lu[k * n + k];
            for r in (k + 1)..n {
                let factor = lu[r * n + k] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in k..n {
                    lu[r * n + j] -= factor * lu[k * n + j];
                }
                x[r] -= factor * x[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut acc = x[k];
            for j in (k + 1)..n {
                acc -= lu[k * n + j] * x[j];
            }
            x[k] = acc / lu[k * n + k];
        }
        if x.iter().any(|v| !v.is_finite()) {
            return None;
        }
        Some(x)
    }

    /// Computes `A·x` (used by tests and residual checks).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the matrix dimension.
    #[must_use]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "vector length mismatch");
        (0..self.n)
            .map(|r| {
                (0..self.n)
                    .map(|c| self.data[r * self.n + c] * x[c])
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_rows(rows: &[&[f64]]) -> DenseMatrix {
        let n = rows.len();
        let mut m = DenseMatrix::zeros(n);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n);
            for (c, &v) in row.iter().enumerate() {
                m.set(r, c, v);
            }
        }
        m
    }

    #[test]
    fn identity_solve() {
        let m = from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = m.solve(&[3.0, 4.0]).expect("nonsingular");
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_a_known_system() {
        let m = from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = m.solve(&[8.0, -11.0, -3.0]).expect("nonsingular");
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expected.iter()) {
            assert!((xi - ei).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let m = from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = m.solve(&[5.0, 7.0]).expect("nonsingular with pivoting");
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let m = from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(m.solve(&[1.0, 2.0]).is_none());
        let z = DenseMatrix::zeros(3);
        assert!(z.solve(&[0.0; 3]).is_none());
    }

    #[test]
    fn solve_does_not_mutate_matrix() {
        let m = from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let copy = m.clone();
        let _ = m.solve(&[10.0, 12.0]);
        assert_eq!(m, copy);
    }

    #[test]
    fn residual_is_tiny_for_ill_conditioned_scaling() {
        // Conductances in a real MNA system span ~1e-12 .. 1e-2 S.
        let m = from_rows(&[
            &[1e-2, -1e-2, 0.0],
            &[-1e-2, 1e-2 + 1e-12, -1e-12],
            &[0.0, -1e-12, 2e-12],
        ]);
        let b = [1e-3, 0.0, 1e-15];
        let x = m.solve(&b).expect("solvable");
        let r = m.mul_vec(&x);
        // The system's condition number is ~1e10; accept residuals small
        // relative to the RHS scale rather than entry-exact.
        let scale = b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (ri, bi) in r.iter().zip(b.iter()) {
            assert!((ri - bi).abs() < 1e-5 * scale, "{r:?}");
        }
    }

    #[test]
    fn stamp_add_accumulates() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 0, 2.5);
        assert_eq!(m.get(0, 0), 3.5);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.dim(), 2);
    }

    #[test]
    #[should_panic(expected = "rhs length mismatch")]
    fn wrong_rhs_length_panics() {
        let m = DenseMatrix::zeros(2);
        let _ = m.solve(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_bounds_panics() {
        let m = DenseMatrix::zeros(2);
        let _ = m.get(2, 0);
    }
}
