//! SPICE-deck text interchange: write a [`Circuit`] as a classic SPICE
//! netlist and parse one back, including hierarchical `.subckt` blocks.
//!
//! The dialect is the familiar element-card format:
//!
//! ```text
//! * comment
//! R1 n1 n2 5k
//! C1 out 0 1.2f
//! V1 in 0 DC 1.1
//! V2 pc 0 PULSE(0 1.1 100p 10p 10p 200p)
//! V3 w  0 PWL(0 0 1n 1.1 2n 0)
//! I1 0 a DC 70u
//! M1 d g s NMOS W=200n L=40n
//! XMTJ1 a b MTJ STATE=AP POL=+AP
//! .SUBCKT DIV2 in out
//! R1 in out 1k
//! R2 out 0 1k
//! .ENDS DIV2
//! XU1 a b DIV2
//! .END
//! ```
//!
//! Engineering suffixes (`f p n u m k meg g t`) are accepted on values.
//! MOSFETs resolve their model from the [`Technology`] in the
//! [`DeckContext`]; the non-standard `X… MTJ` card (exactly two nodes,
//! third token `MTJ`) instantiates an MTJ from the context's parameters
//! with an initial `STATE` (`P`/`AP`) and write polarity `POL` (`+AP` =
//! positive current sets anti-parallel). Any other `X` card is a
//! subcircuit instance: its last token names a previously defined
//! `.subckt`, and [`parse`] flattens top-level instances through
//! [`Circuit::instantiate`] while [`parse_library`] also returns the
//! definitions themselves.
//!
//! Structural `.subckt` errors — duplicate definition names, an
//! unterminated block, a reference to an undefined subcircuit — are
//! rejected with a line-spanned [`SpiceError::DeckSyntax`]. Within one
//! `.subckt` block, element cards print before `X` instance lines; a
//! parse→write round trip canonicalizes to that order.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use mtj::{Mtj, MtjParams, MtjState, WritePolarity};
use units::{Capacitance, Length, Resistance};

use crate::circuit::Circuit;
use crate::device::Device;
use crate::error::SpiceError;
use crate::mosfet::{MosfetKind, Technology};
use crate::source::SourceWaveform;
use crate::subckt::Subckt;

/// Models needed to instantiate technology-dependent cards.
#[derive(Debug, Clone)]
pub struct DeckContext {
    /// MOSFET models (`NMOS`/`PMOS` cards).
    pub tech: Technology,
    /// MTJ parameters (`MTJ` cards).
    pub mtj: MtjParams,
}

impl Default for DeckContext {
    fn default() -> Self {
        Self {
            tech: Technology::tsmc40lp(),
            mtj: MtjParams::date2018(),
        }
    }
}

/// Result of [`parse_library`]: the flattened top-level circuit plus the
/// `.subckt` definitions the deck declared (in declaration order).
#[derive(Debug, Clone)]
pub struct ParsedDeck {
    /// The top-level circuit, with `X` instances already flattened.
    pub circuit: Circuit,
    /// The parsed subcircuit definitions.
    pub subckts: Vec<Arc<Subckt>>,
}

/// Serializes a circuit as a SPICE deck.
///
/// # Examples
///
/// ```
/// use spice::{Circuit, SourceWaveform, deck};
/// use units::{Resistance, Voltage};
///
/// # fn main() -> Result<(), spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(Voltage::from_volts(1.1)))?;
/// ckt.add_resistor("R1", a, Circuit::GROUND, Resistance::from_kilo_ohms(5.0))?;
/// let text = deck::write(&ckt, "divider");
/// assert!(text.contains("R1 a 0 5000"));
/// let back = deck::parse(&text, &deck::DeckContext::default())?;
/// assert_eq!(back.devices().len(), 2);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn write(ckt: &Circuit, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "* {title}");
    write_cards(&mut out, ckt);
    out.push_str(".END\n");
    out
}

/// Serializes one subcircuit definition as a `.subckt` … `.ends` block.
///
/// Body element cards come first, then one `X` line per nested child
/// instance (`X<inst> <bound nodes…> <definition name>`).
#[must_use]
pub fn write_subckt(sub: &Subckt) -> String {
    let mut out = String::new();
    let _ = write!(out, ".SUBCKT {}", sub.name());
    for p in sub.ports() {
        let _ = write!(out, " {p}");
    }
    out.push('\n');
    write_cards(&mut out, sub.body());
    for child in sub.child_instances() {
        let _ = write!(out, "X{}", child.inst());
        for &b in child.bindings() {
            let _ = write!(out, " {}", sub.body().node_name(b));
        }
        let _ = writeln!(out, " {}", child.def().name());
    }
    let _ = writeln!(out, ".ENDS {}", sub.name());
    out
}

/// Serializes a library — `.subckt` definitions followed by the flat
/// top-level circuit — as one deck.
#[must_use]
pub fn write_library(subckts: &[Arc<Subckt>], ckt: &Circuit, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "* {title}");
    for sub in subckts {
        out.push_str(&write_subckt(sub));
    }
    write_cards(&mut out, ckt);
    out.push_str(".END\n");
    out
}

/// Writes every device of `ckt` as one element card, in device order.
fn write_cards(out: &mut String, ckt: &Circuit) {
    let node = |n: crate::NodeId| ckt.node_name(n).to_owned();
    for dev in ckt.devices() {
        match dev {
            Device::Resistor { name, a, b, ohms } => {
                let _ = writeln!(out, "{name} {} {} {ohms}", node(*a), node(*b));
            }
            Device::Capacitor { name, a, b, farads } => {
                let _ = writeln!(out, "{name} {} {} {farads:e}", node(*a), node(*b));
            }
            Device::VoltageSource {
                name,
                pos,
                neg,
                wave,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{name} {} {} {}",
                    node(*pos),
                    node(*neg),
                    waveform_text(wave)
                );
            }
            Device::CurrentSource {
                name,
                pos,
                neg,
                wave,
            } => {
                let _ = writeln!(
                    out,
                    "{name} {} {} {}",
                    node(*pos),
                    node(*neg),
                    waveform_text(wave)
                );
            }
            Device::Mosfet {
                name,
                d,
                g,
                s,
                model,
                w,
                l,
            } => {
                let kind = match model.kind {
                    MosfetKind::Nmos => "NMOS",
                    MosfetKind::Pmos => "PMOS",
                };
                let _ = writeln!(
                    out,
                    "{name} {} {} {} {kind} W={w:e} L={l:e}",
                    node(*d),
                    node(*g),
                    node(*s)
                );
            }
            Device::Mtj { name, a, b, device } => {
                let pol = match device.polarity() {
                    WritePolarity::PositiveSetsAntiParallel => "+AP",
                    WritePolarity::PositiveSetsParallel => "+P",
                };
                let _ = writeln!(
                    out,
                    "X{name} {} {} MTJ STATE={} POL={pol}",
                    node(*a),
                    node(*b),
                    device.state()
                );
            }
        }
    }
}

fn waveform_text(wave: &SourceWaveform) -> String {
    match wave {
        SourceWaveform::Dc(v) => format!("DC {v}"),
        SourceWaveform::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall,
            width,
        } => {
            format!("PULSE({v0} {v1} {delay:e} {rise:e} {fall:e} {width:e})")
        }
        SourceWaveform::Pwl(points) => {
            let mut s = String::from("PWL(");
            for (i, (t, v)) in points.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                let _ = write!(s, "{t:e} {v}");
            }
            s.push(')');
            s
        }
    }
}

/// Parses a SPICE deck into a flat circuit, resolving `.subckt` blocks
/// and flattening top-level `X` instances.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidAnalysis`] for malformed element cards
/// (the offending line is quoted in the message),
/// [`SpiceError::DeckSyntax`] for structural `.subckt` problems, and
/// propagates circuit construction errors (duplicate names,
/// non-physical values).
pub fn parse(text: &str, context: &DeckContext) -> Result<Circuit, SpiceError> {
    parse_library(text, context).map(|deck| deck.circuit)
}

/// Parses a SPICE deck, returning both the flattened top-level circuit
/// and the `.subckt` definitions it declared.
///
/// Definition rules:
///
/// * a `.subckt` name may be defined only once (case-insensitive) —
///   duplicates are rejected with a spanned [`SpiceError::DeckSyntax`]
///   instead of silently taking the last definition;
/// * every `.subckt` must be closed by `.ends` before `.end` or the end
///   of the text;
/// * an `X` instance card may only reference a definition that appeared
///   earlier in the deck (nested definitions are not supported).
///
/// # Errors
///
/// As [`parse`].
pub fn parse_library(text: &str, context: &DeckContext) -> Result<ParsedDeck, SpiceError> {
    let mut ckt = Circuit::new();
    let mut subckts: Vec<Arc<Subckt>> = Vec::new();
    // The `.subckt` block currently being filled, with its opening line.
    let mut open: Option<(Subckt, usize)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let head = tokens[0];

        if head.eq_ignore_ascii_case(".subckt") {
            if let Some((sub, start)) = &open {
                return Err(SpiceError::DeckSyntax {
                    line: lineno,
                    reason: format!(
                        "nested .subckt inside `{}` (opened at line {start}) is not supported",
                        sub.name()
                    ),
                });
            }
            if tokens.len() < 2 {
                return Err(SpiceError::DeckSyntax {
                    line: lineno,
                    reason: "expected `.subckt <name> [ports…]`".into(),
                });
            }
            let name = tokens[1];
            if subckts.iter().any(|s| s.name().eq_ignore_ascii_case(name)) {
                return Err(SpiceError::DeckSyntax {
                    line: lineno,
                    reason: format!("duplicate .subckt definition `{name}`"),
                });
            }
            let sub = Subckt::new(name, &tokens[2..]).map_err(|e| SpiceError::DeckSyntax {
                line: lineno,
                reason: e.to_string(),
            })?;
            open = Some((sub, lineno));
            continue;
        }
        if head.eq_ignore_ascii_case(".ends") {
            let Some((sub, _)) = open.take() else {
                return Err(SpiceError::DeckSyntax {
                    line: lineno,
                    reason: ".ends without an open .subckt block".into(),
                });
            };
            if tokens.len() > 1 && !tokens[1].eq_ignore_ascii_case(sub.name()) {
                return Err(SpiceError::DeckSyntax {
                    line: lineno,
                    reason: format!(
                        ".ends {} does not match the open .subckt {}",
                        tokens[1],
                        sub.name()
                    ),
                });
            }
            subckts.push(Arc::new(sub));
            continue;
        }
        if line.eq_ignore_ascii_case(".end") {
            if let Some((sub, start)) = &open {
                return Err(SpiceError::DeckSyntax {
                    line: *start,
                    reason: format!("unterminated .subckt `{}` (missing .ends)", sub.name()),
                });
            }
            break;
        }
        if line.starts_with('.') {
            // Other dot-cards (analyses) are not part of the circuit.
            continue;
        }

        let first = head.chars().next().expect("nonempty token");
        let is_mtj_card = first.eq_ignore_ascii_case(&'X')
            && tokens.len() >= 4
            && tokens[3].eq_ignore_ascii_case("MTJ");
        if first.eq_ignore_ascii_case(&'X') && !is_mtj_card {
            // Subcircuit instance: X<inst> <nodes…> <definition name>.
            let inst = head.strip_prefix(['X', 'x']).unwrap_or(head);
            if inst.is_empty() || tokens.len() < 2 {
                return Err(SpiceError::DeckSyntax {
                    line: lineno,
                    reason: "expected `X<inst> <nodes…> <subckt name>`".into(),
                });
            }
            let def_name = tokens[tokens.len() - 1];
            let Some(def) = subckts
                .iter()
                .find(|s| s.name().eq_ignore_ascii_case(def_name))
                .cloned()
            else {
                return Err(SpiceError::DeckSyntax {
                    line: lineno,
                    reason: format!(
                        "unknown subckt `{def_name}` (not a prior .subckt definition \
                         or an `X<name> n1 n2 MTJ …` card)"
                    ),
                });
            };
            let node_names = &tokens[1..tokens.len() - 1];
            let spanned = |e: SpiceError| SpiceError::DeckSyntax {
                line: lineno,
                reason: e.to_string(),
            };
            match open.as_mut() {
                Some((sub, _)) => {
                    let bindings: Vec<_> =
                        node_names.iter().map(|n| sub.body_mut().node(n)).collect();
                    sub.add_instance(inst, &def, &bindings).map_err(spanned)?;
                }
                None => {
                    let ports: Vec<_> = node_names.iter().map(|n| ckt.node(n)).collect();
                    ckt.instantiate(inst, &def, &ports).map_err(spanned)?;
                }
            }
            continue;
        }

        let target = match open.as_mut() {
            Some((sub, _)) => sub.body_mut(),
            None => &mut ckt,
        };
        parse_element(&tokens, line, context, target)?;
    }

    if let Some((sub, start)) = open {
        return Err(SpiceError::DeckSyntax {
            line: start,
            reason: format!("unterminated .subckt `{}` (missing .ends)", sub.name()),
        });
    }
    Ok(ParsedDeck {
        circuit: ckt,
        subckts,
    })
}

/// Parses one element card (`R`/`C`/`V`/`I`/`M` or the `X… MTJ` form)
/// into `ckt`.
fn parse_element(
    tokens: &[&str],
    line: &str,
    context: &DeckContext,
    ckt: &mut Circuit,
) -> Result<(), SpiceError> {
    let bad = |line: &str, why: &str| SpiceError::InvalidAnalysis {
        reason: format!("deck line `{line}`: {why}"),
    };
    let name = tokens[0];
    let first = name.chars().next().expect("nonempty token");
    match first.to_ascii_uppercase() {
        'R' => {
            if tokens.len() != 4 {
                return Err(bad(line, "expected R<name> n1 n2 value"));
            }
            let a = ckt.node(tokens[1]);
            let b = ckt.node(tokens[2]);
            let ohms = parse_value(tokens[3]).ok_or_else(|| bad(line, "bad value"))?;
            ckt.add_resistor(name, a, b, Resistance::from_ohms(ohms))?;
        }
        'C' => {
            if tokens.len() != 4 {
                return Err(bad(line, "expected C<name> n1 n2 value"));
            }
            let a = ckt.node(tokens[1]);
            let b = ckt.node(tokens[2]);
            let farads = parse_value(tokens[3]).ok_or_else(|| bad(line, "bad value"))?;
            ckt.add_capacitor(name, a, b, Capacitance::from_farads(farads))?;
        }
        'V' | 'I' => {
            if tokens.len() < 4 {
                return Err(bad(line, "expected source n+ n- waveform"));
            }
            let pos = ckt.node(tokens[1]);
            let neg = ckt.node(tokens[2]);
            let wave = parse_waveform(&tokens[3..]).ok_or_else(|| bad(line, "bad waveform"))?;
            if first.eq_ignore_ascii_case(&'V') {
                ckt.add_voltage_source(name, pos, neg, wave)?;
            } else {
                ckt.add_current_source(name, pos, neg, wave)?;
            }
        }
        'M' => {
            if tokens.len() < 5 {
                return Err(bad(line, "expected M<name> d g s MODEL [W= L=]"));
            }
            let d = ckt.node(tokens[1]);
            let g = ckt.node(tokens[2]);
            let s = ckt.node(tokens[3]);
            let model = match tokens[4].to_ascii_uppercase().as_str() {
                "NMOS" => context.tech.nmos,
                "PMOS" => context.tech.pmos,
                other => return Err(bad(line, &format!("unknown model {other}"))),
            };
            let params = parse_params(&tokens[5..]);
            let w = params.get("W").copied().unwrap_or(200e-9);
            let l = params.get("L").copied().unwrap_or(context.tech.l_min);
            ckt.add_mosfet(
                name,
                d,
                g,
                s,
                model,
                Length::from_meters(w),
                Length::from_meters(l),
            )?;
        }
        'X' => {
            if tokens.len() < 4 || !tokens[3].eq_ignore_ascii_case("MTJ") {
                return Err(bad(line, "only `X<name> n1 n2 MTJ …` element cards exist"));
            }
            let a = ckt.node(tokens[1]);
            let b = ckt.node(tokens[2]);
            let mut state = MtjState::Parallel;
            let mut polarity = WritePolarity::PositiveSetsAntiParallel;
            for t in &tokens[4..] {
                if let Some(v) = t.strip_prefix("STATE=") {
                    state = match v.to_ascii_uppercase().as_str() {
                        "P" => MtjState::Parallel,
                        "AP" => MtjState::AntiParallel,
                        _ => return Err(bad(line, "STATE must be P or AP")),
                    };
                } else if let Some(v) = t.strip_prefix("POL=") {
                    polarity = match v.to_ascii_uppercase().as_str() {
                        "+AP" => WritePolarity::PositiveSetsAntiParallel,
                        "+P" => WritePolarity::PositiveSetsParallel,
                        _ => return Err(bad(line, "POL must be +AP or +P")),
                    };
                }
            }
            let inst = name.strip_prefix(['X', 'x']).unwrap_or(name);
            ckt.add_mtj(inst, a, b, Mtj::new(context.mtj.clone(), state, polarity))?;
        }
        other => {
            return Err(bad(line, &format!("unknown element letter {other}")));
        }
    }
    Ok(())
}

/// Parses `KEY=value` parameter tails.
fn parse_params(tokens: &[&str]) -> HashMap<String, f64> {
    let mut out = HashMap::new();
    for t in tokens {
        if let Some((key, value)) = t.split_once('=') {
            if let Some(v) = parse_value(value) {
                out.insert(key.to_ascii_uppercase(), v);
            }
        }
    }
    out
}

/// Parses a waveform tail: `DC v`, `PULSE(...)` or `PWL(...)` (possibly
/// split across whitespace).
fn parse_waveform(tokens: &[&str]) -> Option<SourceWaveform> {
    let joined = tokens.join(" ");
    let upper = joined.to_ascii_uppercase();
    if let Some(rest) = upper.strip_prefix("DC") {
        return parse_value(rest.trim()).map(SourceWaveform::Dc);
    }
    if upper.starts_with("PULSE") {
        let args = numbers_in_parens(&joined)?;
        if args.len() < 6 {
            return None;
        }
        return Some(SourceWaveform::Pulse {
            v0: args[0],
            v1: args[1],
            delay: args[2],
            rise: args[3],
            fall: args[4],
            width: args[5],
        });
    }
    if upper.starts_with("PWL") {
        let args = numbers_in_parens(&joined)?;
        if args.len() % 2 != 0 {
            return None;
        }
        let points: Vec<(f64, f64)> = args.chunks(2).map(|c| (c[0], c[1])).collect();
        if !points.windows(2).all(|w| w[0].0 < w[1].0) {
            return None;
        }
        return Some(SourceWaveform::Pwl(points));
    }
    // Bare value = DC.
    parse_value(joined.trim()).map(SourceWaveform::Dc)
}

fn numbers_in_parens(text: &str) -> Option<Vec<f64>> {
    let open = text.find('(')?;
    let close = text.rfind(')')?;
    text[open + 1..close]
        .split([' ', ','])
        .filter(|s| !s.is_empty())
        .map(parse_value)
        .collect()
}

/// Parses a number with an optional engineering suffix
/// (`MEG` before `M`, case-insensitive).
#[must_use]
pub fn parse_value(text: &str) -> Option<f64> {
    let t = text.trim();
    if t.is_empty() {
        return None;
    }
    let upper = t.to_ascii_uppercase();
    const SUFFIXES: [(&str, f64); 10] = [
        ("MEG", 1e6),
        ("T", 1e12),
        ("G", 1e9),
        ("K", 1e3),
        ("M", 1e-3),
        ("U", 1e-6),
        ("N", 1e-9),
        ("P", 1e-12),
        ("F", 1e-15),
        ("A", 1e-18),
    ];
    for (suffix, scale) in SUFFIXES {
        if let Some(mantissa) = upper.strip_suffix(suffix) {
            // Avoid eating the exponent marker of scientific notation
            // (e.g. `1e-9` ends with neither a pure number nor suffix).
            if let Ok(v) = mantissa.parse::<f64>() {
                return Some(v * scale);
            }
        }
    }
    upper.parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use units::{Time, Voltage};

    #[test]
    fn value_suffixes() {
        assert_eq!(parse_value("5k"), Some(5000.0));
        assert_eq!(parse_value("1.2f"), Some(1.2e-15));
        assert_eq!(parse_value("70u"), Some(70e-6));
        assert_eq!(parse_value("3meg"), Some(3e6));
        assert_eq!(parse_value("2.5"), Some(2.5));
        assert_eq!(parse_value("1e-9"), Some(1e-9));
        assert_eq!(parse_value("100P"), Some(100e-12));
        assert_eq!(parse_value(""), None);
        assert_eq!(parse_value("abc"), None);
    }

    #[test]
    fn parse_simple_deck_and_solve() {
        let deck = "\
* a divider
V1 in 0 DC 2.0
R1 in mid 1k
R2 mid 0 3k
.END
";
        let mut ckt = parse(deck, &DeckContext::default()).expect("parse");
        let mid = ckt.find_node("mid").expect("mid exists");
        let op = analysis::op(&mut ckt).expect("op");
        assert!((op.voltage(mid) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn round_trip_preserves_topology() {
        use mtj::{Mtj, MtjParams, MtjState, WritePolarity};
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let tech = Technology::tsmc40lp();
        ckt.add_voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::pulse(
                Voltage::ZERO,
                Voltage::from_volts(1.1),
                Time::from_pico_seconds(100.0),
                Time::from_pico_seconds(10.0),
                Time::from_pico_seconds(10.0),
                Time::from_pico_seconds(200.0),
            ),
        )
        .expect("V1");
        ckt.add_resistor("R1", a, b, Resistance::from_kilo_ohms(5.0))
            .expect("R1");
        ckt.add_capacitor(
            "C1",
            b,
            Circuit::GROUND,
            Capacitance::from_femto_farads(2.0),
        )
        .expect("C1");
        ckt.add_nmos(
            "M1",
            b,
            a,
            Circuit::GROUND,
            &tech,
            Length::from_nano_meters(200.0),
        )
        .expect("M1");
        ckt.add_mtj(
            "MTJ1",
            a,
            b,
            Mtj::new(
                MtjParams::date2018(),
                MtjState::AntiParallel,
                WritePolarity::PositiveSetsParallel,
            ),
        )
        .expect("MTJ1");

        let text = write(&ckt, "round trip");
        let back = parse(&text, &DeckContext::default()).expect("parse back");
        assert_eq!(back.devices().len(), ckt.devices().len());
        assert_eq!(back.transistor_count(), 1);
        assert_eq!(back.mtj_state("MTJ1"), Some(MtjState::AntiParallel));
        // And the reparsed circuit simulates.
        let mut back = back;
        let _ = analysis::transient(
            &mut back,
            Time::from_nano_seconds(1.0),
            Time::from_pico_seconds(10.0),
        )
        .expect("transient");
    }

    #[test]
    fn pwl_and_current_sources_parse() {
        let deck = "\
I1 0 a DC 70u
V2 b 0 PWL(0 0 1n 1.1 2n 0)
R1 a 0 1k
R2 b 0 1k
.END
";
        let ckt = parse(deck, &DeckContext::default()).expect("parse");
        assert_eq!(ckt.devices().len(), 4);
        let wave = ckt
            .devices()
            .iter()
            .find_map(|d| match d {
                Device::VoltageSource { name, wave, .. } if name == "V2" => Some(wave.clone()),
                _ => None,
            })
            .expect("V2");
        assert!((wave.value_at(1e-9) - 1.1).abs() < 1e-12);
        assert!((wave.value_at(0.5e-9) - 0.55).abs() < 1e-12);
    }

    #[test]
    fn malformed_cards_are_rejected_with_context() {
        let ctx = DeckContext::default();
        for (deck, needle) in [
            ("R1 a 0\n.END", "expected R"),
            ("Q1 a b c\n.END", "unknown element"),
            ("R1 a 0 fast\n.END", "bad value"),
            ("M1 d g s BJT\n.END", "unknown model"),
            ("X1 a b RES\n.END", "MTJ"),
            ("V1 a 0 PULSE(1 2)\n.END", "bad waveform"),
        ] {
            let err = parse(deck, &ctx).expect_err(deck);
            assert!(err.to_string().contains(needle), "{deck}: {err}");
        }
    }

    #[test]
    fn comments_blank_lines_and_dot_cards_are_skipped() {
        let deck = "\
* title

.TRAN 1p 1n
R1 a 0 1k
.END
R2 b 0 1k
";
        let ckt = parse(deck, &DeckContext::default()).expect("parse");
        // R2 comes after .END and is ignored.
        assert_eq!(ckt.devices().len(), 1);
    }

    #[test]
    fn mosfet_defaults_and_params() {
        let deck = "M1 d g 0 PMOS W=400n\n.END";
        let ckt = parse(deck, &DeckContext::default()).expect("parse");
        match &ckt.devices()[0] {
            Device::Mosfet { model, w, l, .. } => {
                assert_eq!(model.kind, MosfetKind::Pmos);
                assert!((w - 400e-9).abs() < 1e-15);
                assert!((l - 40e-9).abs() < 1e-15);
            }
            other => panic!("expected mosfet, got {other:?}"),
        }
    }

    #[test]
    fn subckt_blocks_parse_and_flatten() {
        let deck = "\
* two chained dividers
.SUBCKT DIV2 in out
R1 in out 1k
R2 out 0 1k
.ENDS DIV2
V1 top 0 DC 2.0
XU1 top mid DIV2
XU2 mid out DIV2
.END
";
        let parsed = parse_library(deck, &DeckContext::default()).expect("parse");
        assert_eq!(parsed.subckts.len(), 1);
        assert_eq!(parsed.subckts[0].ports(), ["in", "out"]);
        let mut ckt = parsed.circuit;
        assert!(ckt.devices().iter().any(|d| d.name() == "U1.R1"));
        assert!(ckt.devices().iter().any(|d| d.name() == "U2.R2"));
        let op = analysis::op(&mut ckt).expect("op");
        let mid = ckt.find_node("mid").expect("mid");
        // Loaded division: R2 of U1 parallels U2's 2k series path.
        let vm = 2.0 * (2.0 / 3.0) / (1.0 + 2.0 / 3.0);
        assert!((op.voltage(mid) - vm).abs() < 1e-9);
    }

    #[test]
    fn subckt_instances_nest_inside_definitions() {
        let deck = "\
.SUBCKT DIV2 in out
R1 in out 1k
R2 out 0 1k
.ENDS
.SUBCKT DIV4 in out
XA in m DIV2
XB m out DIV2
.ENDS
V1 top 0 DC 2.0
XU top out DIV4
.END
";
        let parsed = parse_library(deck, &DeckContext::default()).expect("parse");
        assert_eq!(parsed.subckts.len(), 2);
        assert_eq!(parsed.subckts[1].child_instances().len(), 2);
        let ckt = parsed.circuit;
        assert!(ckt.devices().iter().any(|d| d.name() == "U.A.R1"));
        assert!(ckt.find_node("U.m").is_some());
    }

    #[test]
    fn subckt_round_trips_through_write() {
        let deck = "\
.SUBCKT CELL a b
R1 a m 2k
C1 m 0 1e-15
M1 b a 0 NMOS W=2e-7 L=4e-8
XJ1 m b MTJ STATE=AP POL=+P
.ENDS CELL
.END
";
        let parsed = parse_library(deck, &DeckContext::default()).expect("parse");
        let text = write_subckt(&parsed.subckts[0]);
        let reparsed = parse_library(&text, &DeckContext::default()).expect("reparse");
        let (a, b) = (&parsed.subckts[0], &reparsed.subckts[0]);
        assert_eq!(a.name(), b.name());
        assert_eq!(a.ports(), b.ports());
        assert_eq!(a.body().devices().len(), b.body().devices().len());
        assert_eq!(a.flattened_device_count(), b.flattened_device_count());
        assert_eq!(a.flattened_internal_count(), b.flattened_internal_count());
    }

    #[test]
    fn duplicate_subckt_names_are_rejected_with_span() {
        let deck = "\
.SUBCKT S a
R1 a 0 1k
.ENDS
.SUBCKT S a
R1 a 0 2k
.ENDS
.END
";
        let err = parse(deck, &DeckContext::default()).expect_err("duplicate");
        match err {
            SpiceError::DeckSyntax { line, ref reason } => {
                assert_eq!(line, 4);
                assert!(reason.contains("duplicate"), "{reason}");
            }
            other => panic!("expected DeckSyntax, got {other:?}"),
        }
    }

    #[test]
    fn unterminated_subckt_is_rejected_with_span() {
        for deck in [".SUBCKT S a\nR1 a 0 1k\n.END\n", ".SUBCKT S a\nR1 a 0 1k\n"] {
            let err = parse(deck, &DeckContext::default()).expect_err("unterminated");
            match err {
                SpiceError::DeckSyntax { line, ref reason } => {
                    assert_eq!(line, 1, "span should point at the opening line");
                    assert!(reason.contains("unterminated"), "{reason}");
                }
                other => panic!("expected DeckSyntax, got {other:?}"),
            }
        }
    }

    #[test]
    fn structural_subckt_errors_are_spanned() {
        let ctx = DeckContext::default();
        for (deck, needle) in [
            (".ENDS\n.END", "without an open"),
            (".SUBCKT S a\n.ENDS T\n.END", "does not match"),
            ("X1 a b NOPE\n.END", "unknown subckt"),
            (
                ".SUBCKT S a\nR1 a 0 1k\n.ENDS\nX1 a S\nX1 b S\n.END",
                "already in use",
            ),
            (
                ".SUBCKT S a\n.SUBCKT T b\n.ENDS\n.ENDS\n.END",
                "nested .subckt",
            ),
            (".SUBCKT S a a\n.ENDS\n.END", "duplicate port"),
        ] {
            let err = parse(deck, &ctx).expect_err(deck);
            assert!(
                matches!(err, SpiceError::DeckSyntax { .. }),
                "{deck}: {err:?}"
            );
            assert!(err.to_string().contains(needle), "{deck}: {err}");
        }
    }
}
