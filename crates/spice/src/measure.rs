//! Waveform measurement primitives: interpolation, threshold crossings
//! and numeric integration over sampled traces.
//!
//! These free functions operate on parallel `(times, values)` slices; the
//! [`crate::result::Trace`] view wraps them with a method API. They are
//! the building blocks of every Table II metric: read delay is a
//! threshold crossing, read energy is an integrated supply power product,
//! and leakage is an averaged steady-state power.

/// Edge direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Value passes the threshold going up.
    Rising,
    /// Value passes the threshold going down.
    Falling,
    /// Either direction.
    Either,
}

/// Linear interpolation of a sampled waveform at time `t`, clamped to the
/// first/last sample outside the record.
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths.
#[must_use]
pub fn interpolate(times: &[f64], values: &[f64], t: f64) -> f64 {
    assert_eq!(times.len(), values.len(), "trace slices must be parallel");
    assert!(!times.is_empty(), "cannot interpolate an empty trace");
    if t <= times[0] {
        return values[0];
    }
    if t >= times[times.len() - 1] {
        return values[values.len() - 1];
    }
    let idx = times.partition_point(|&pt| pt <= t);
    let (t0, t1) = (times[idx - 1], times[idx]);
    let (v0, v1) = (values[idx - 1], values[idx]);
    if t1 == t0 {
        return v1;
    }
    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
}

/// All interpolated times at which the waveform crosses `threshold` with
/// the requested `edge`, in order.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn crossings(times: &[f64], values: &[f64], threshold: f64, edge: Edge) -> Vec<f64> {
    assert_eq!(times.len(), values.len(), "trace slices must be parallel");
    let mut out = Vec::new();
    for i in 1..times.len() {
        let (v0, v1) = (values[i - 1], values[i]);
        let rising = v0 < threshold && v1 >= threshold;
        let falling = v0 > threshold && v1 <= threshold;
        let hit = match edge {
            Edge::Rising => rising,
            Edge::Falling => falling,
            Edge::Either => rising || falling,
        };
        if hit {
            let frac = if v1 == v0 {
                1.0
            } else {
                (threshold - v0) / (v1 - v0)
            };
            out.push(times[i - 1] + frac * (times[i] - times[i - 1]));
        }
    }
    out
}

/// First crossing of `threshold` with direction `edge` at or after
/// `after`, if any.
#[must_use]
pub fn first_crossing_after(
    times: &[f64],
    values: &[f64],
    threshold: f64,
    edge: Edge,
    after: f64,
) -> Option<f64> {
    crossings(times, values, threshold, edge)
        .into_iter()
        .find(|&t| t >= after)
}

/// Trapezoidal integral of the waveform over `[from, to]`, with linear
/// interpolation at the window boundaries.
///
/// Returns 0 for an empty or single-sample trace, or when `to ≤ from`.
#[must_use]
pub fn integrate(times: &[f64], values: &[f64], from: f64, to: f64) -> f64 {
    integrate_product(times, values, None, from, to)
}

/// Trapezoidal integral of `a(t)·b(t)` over `[from, to]` (used for
/// instantaneous power `v·i`); passing `None` for `b` integrates `a`
/// alone.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn integrate_product(times: &[f64], a: &[f64], b: Option<&[f64]>, from: f64, to: f64) -> f64 {
    assert_eq!(times.len(), a.len(), "trace slices must be parallel");
    if let Some(b) = b {
        assert_eq!(times.len(), b.len(), "trace slices must be parallel");
    }
    if times.len() < 2 || to <= from {
        return 0.0;
    }
    let eval = |t: f64| -> f64 {
        let va = interpolate(times, a, t);
        match b {
            Some(b) => va * interpolate(times, b, t),
            None => va,
        }
    };
    let lo = from.max(times[0]);
    let hi = to.min(times[times.len() - 1]);
    if hi <= lo {
        return 0.0;
    }
    // Integrate segment by segment, splitting at the window edges.
    let mut total = 0.0;
    let mut t_prev = lo;
    let mut f_prev = eval(lo);
    for (&t, _) in times.iter().zip(a.iter()) {
        if t <= lo {
            continue;
        }
        let t_cur = t.min(hi);
        let f_cur = eval(t_cur);
        total += 0.5 * (f_prev + f_cur) * (t_cur - t_prev);
        t_prev = t_cur;
        f_prev = f_cur;
        if t >= hi {
            break;
        }
    }
    if t_prev < hi {
        let f_hi = eval(hi);
        total += 0.5 * (f_prev + f_hi) * (hi - t_prev);
    }
    total
}

/// Time-average of the waveform over `[from, to]`.
///
/// Returns 0 when the window is empty.
#[must_use]
pub fn average(times: &[f64], values: &[f64], from: f64, to: f64) -> f64 {
    let lo = from.max(times.first().copied().unwrap_or(0.0));
    let hi = to.min(times.last().copied().unwrap_or(0.0));
    if hi <= lo {
        return 0.0;
    }
    integrate(times, values, lo, hi) / (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TIMES: [f64; 5] = [0.0, 1.0, 2.0, 3.0, 4.0];
    const RAMP: [f64; 5] = [0.0, 1.0, 2.0, 3.0, 4.0];
    const TRIANGLE: [f64; 5] = [0.0, 1.0, 0.0, 1.0, 0.0];

    #[test]
    fn interpolation_with_clamping() {
        assert_eq!(interpolate(&TIMES, &RAMP, 1.5), 1.5);
        assert_eq!(interpolate(&TIMES, &RAMP, -1.0), 0.0);
        assert_eq!(interpolate(&TIMES, &RAMP, 9.0), 4.0);
        assert_eq!(interpolate(&TIMES, &RAMP, 2.0), 2.0);
    }

    #[test]
    fn crossing_directions() {
        let rising = crossings(&TIMES, &TRIANGLE, 0.5, Edge::Rising);
        let falling = crossings(&TIMES, &TRIANGLE, 0.5, Edge::Falling);
        let either = crossings(&TIMES, &TRIANGLE, 0.5, Edge::Either);
        assert_eq!(rising, vec![0.5, 2.5]);
        assert_eq!(falling, vec![1.5, 3.5]);
        assert_eq!(either, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn first_crossing_respects_after() {
        assert_eq!(
            first_crossing_after(&TIMES, &TRIANGLE, 0.5, Edge::Rising, 1.0),
            Some(2.5)
        );
        assert_eq!(
            first_crossing_after(&TIMES, &TRIANGLE, 0.5, Edge::Rising, 3.0),
            None
        );
    }

    #[test]
    fn no_crossing_returns_empty() {
        assert!(crossings(&TIMES, &RAMP, 10.0, Edge::Either).is_empty());
    }

    #[test]
    fn integral_of_ramp() {
        // ∫₀⁴ t dt = 8.
        assert!((integrate(&TIMES, &RAMP, 0.0, 4.0) - 8.0).abs() < 1e-12);
        // Sub-window [1, 3]: ∫ t dt = 4.
        assert!((integrate(&TIMES, &RAMP, 1.0, 3.0) - 4.0).abs() < 1e-12);
        // Window boundaries between samples: [0.5, 1.5] → ∫ = 1.0.
        assert!((integrate(&TIMES, &RAMP, 0.5, 1.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn integral_of_product() {
        // ∫₀⁴ t·t dt with piecewise-linear t²-approximation: the trapezoid
        // of the exact product samples overestimates t³/3 slightly; the
        // measurement integrates the product of *linear* interpolants
        // segment-by-segment, evaluated at segment ends, so it equals the
        // trapezoid rule on f(t) = t²: 0.5+1.5·... = 22.
        let v = integrate_product(&TIMES, &RAMP, Some(&RAMP), 0.0, 4.0);
        assert!((v - 22.0).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn degenerate_windows_are_zero() {
        assert_eq!(integrate(&TIMES, &RAMP, 3.0, 1.0), 0.0);
        assert_eq!(integrate(&[0.0], &[1.0], 0.0, 1.0), 0.0);
        assert_eq!(integrate(&TIMES, &RAMP, 10.0, 12.0), 0.0);
    }

    #[test]
    fn averages() {
        assert!((average(&TIMES, &RAMP, 0.0, 4.0) - 2.0).abs() < 1e-12);
        assert!((average(&TIMES, &TRIANGLE, 0.0, 4.0) - 0.5).abs() < 1e-12);
        assert_eq!(average(&TIMES, &RAMP, 5.0, 6.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_slices_panic() {
        let _ = interpolate(&TIMES, &RAMP[..3], 1.0);
    }
}
