//! Simulator error types.

use core::fmt;
use std::error::Error;

/// Errors reported by circuit construction and the analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// The MNA matrix is singular — typically a floating node or a loop
    /// of ideal voltage sources.
    SingularMatrix {
        /// Analysis that failed ("op", "dc", "tran").
        analysis: &'static str,
        /// Simulated time at failure, seconds (0 outside transient).
        time: f64,
    },
    /// Newton iteration failed to converge within the iteration limit
    /// even after step-size reduction.
    NonConvergence {
        /// Analysis that failed.
        analysis: &'static str,
        /// Simulated time at failure, seconds.
        time: f64,
        /// Iterations spent in the final attempt.
        iterations: usize,
    },
    /// A device references a node that does not exist in the circuit.
    UnknownNode {
        /// Offending device name.
        device: String,
    },
    /// A device name was used twice.
    DuplicateDevice {
        /// The repeated name.
        name: String,
    },
    /// A requested trace (node or branch) is not part of the result set.
    UnknownTrace {
        /// The requested trace name.
        name: String,
    },
    /// An analysis parameter is out of range (non-positive stop time,
    /// step larger than the window, empty sweep, …).
    InvalidAnalysis {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A device parameter is non-physical (negative resistance, zero
    /// width, …).
    InvalidDevice {
        /// Offending device name.
        device: String,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A structural error in a SPICE deck, tied to a source line
    /// (duplicate `.subckt` definition, unterminated `.subckt` block,
    /// reference to an undefined subcircuit, …).
    DeckSyntax {
        /// 1-based line number of the offending (or opening) line.
        line: usize,
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SingularMatrix { analysis, time } => {
                write!(
                    f,
                    "singular MNA matrix during {analysis} analysis at t = {time:.3e} s \
                     (floating node or voltage-source loop)"
                )
            }
            Self::NonConvergence {
                analysis,
                time,
                iterations,
            } => write!(
                f,
                "newton iteration did not converge during {analysis} analysis at \
                 t = {time:.3e} s after {iterations} iterations"
            ),
            Self::UnknownNode { device } => {
                write!(f, "device {device} references a node not in this circuit")
            }
            Self::DuplicateDevice { name } => {
                write!(f, "device name {name} is already in use")
            }
            Self::UnknownTrace { name } => {
                write!(f, "no trace named {name} in the result set")
            }
            Self::InvalidAnalysis { reason } => {
                write!(f, "invalid analysis parameters: {reason}")
            }
            Self::InvalidDevice { device, reason } => {
                write!(f, "invalid device {device}: {reason}")
            }
            Self::DeckSyntax { line, reason } => {
                write!(f, "deck syntax error at line {line}: {reason}")
            }
        }
    }
}

impl Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_offender() {
        let e = SpiceError::UnknownNode {
            device: "M1".into(),
        };
        assert!(e.to_string().contains("M1"));
        let e = SpiceError::NonConvergence {
            analysis: "tran",
            time: 1e-9,
            iterations: 100,
        };
        assert!(e.to_string().contains("tran"));
        assert!(e.to_string().contains("100"));
        let e = SpiceError::UnknownTrace { name: "out".into() };
        assert!(e.to_string().contains("out"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SpiceError>();
    }
}
