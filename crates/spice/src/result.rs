//! Transient result storage, trace views and energy accounting.

use mtj::MtjState;
use units::{Energy, Time};

use crate::analysis::SolverStats;
use crate::circuit::Circuit;
use crate::device::Device;
use crate::error::SpiceError;
use crate::measure::{self, Edge};

/// A recorded MTJ magnetisation reversal.
#[derive(Debug, Clone, PartialEq)]
pub struct MtjEvent {
    /// Simulation time of the reversal.
    pub time: Time,
    /// Device instance name.
    pub device: String,
    /// The state the device reversed *to*.
    pub state: MtjState,
}

/// Sampled output of a transient analysis: every node voltage, every
/// voltage-source branch current, and the MTJ reversal events.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    times: Vec<f64>,
    node_names: Vec<String>,
    node_values: Vec<Vec<f64>>,
    branch_names: Vec<String>,
    branch_values: Vec<Vec<f64>>,
    /// `(source name, pos node table index, neg node table index)`;
    /// index 0 is ground.
    vsource_terminals: Vec<(String, usize, usize)>,
    events: Vec<MtjEvent>,
    stats: SolverStats,
}

/// Incremental builder used by the transient engine.
#[derive(Debug)]
pub(crate) struct TransientRecorder {
    result: TransientResult,
    n_nodes: usize,
}

impl TransientResult {
    pub(crate) fn recorder(ckt: &Circuit) -> TransientRecorder {
        let n_nodes = ckt.node_count() - 1;
        let node_names: Vec<String> = (1..ckt.node_count())
            .map(|i| ckt.node_name(crate::device::NodeId(i)).to_owned())
            .collect();
        let mut branch_names = Vec::new();
        let mut vsource_terminals = Vec::new();
        for dev in ckt.devices() {
            if let Device::VoltageSource { name, pos, neg, .. } = dev {
                branch_names.push(name.clone());
                vsource_terminals.push((name.clone(), pos.index(), neg.index()));
            }
        }
        let n_branches = branch_names.len();
        TransientRecorder {
            result: TransientResult {
                times: Vec::new(),
                node_names,
                node_values: vec![Vec::new(); n_nodes],
                branch_names,
                branch_values: vec![Vec::new(); n_branches],
                vsource_terminals,
                events: Vec::new(),
                stats: SolverStats::default(),
            },
            n_nodes,
        }
    }

    /// Sample times in seconds.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.times.len()
    }

    /// Names of all recorded node traces (ground is not recorded).
    pub fn node_names(&self) -> impl Iterator<Item = &str> {
        self.node_names.iter().map(String::as_str)
    }

    /// The MTJ reversal events observed during the run, in time order.
    #[must_use]
    pub fn mtj_events(&self) -> &[MtjEvent] {
        &self.events
    }

    /// Solver work spent producing this transient (zeroed for results
    /// from the [`reference`](crate::analysis::reference) engine).
    #[must_use]
    pub fn solver_stats(&self) -> SolverStats {
        self.stats
    }

    /// Names of all recorded voltage-source branch traces.
    pub fn branch_names(&self) -> impl Iterator<Item = &str> {
        self.branch_names.iter().map(String::as_str)
    }

    /// Total energy delivered by *all* voltage sources over `[from, to]`
    /// — the whole-circuit active energy of an operation (supply plus
    /// every control-signal driver), which is what Table II's energy
    /// columns account.
    ///
    /// # Panics
    ///
    /// Never panics: every recorded source is known by construction.
    #[must_use]
    pub fn total_source_energy(&self, from: Time, to: Time) -> Energy {
        self.branch_names
            .clone()
            .iter()
            .map(|name| {
                self.supply_energy(name, from, to)
                    .expect("recorded sources are always known")
            })
            .sum()
    }

    /// Voltage trace of the named node.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownTrace`] if the node does not exist (ground is
    /// not recorded — it is identically zero).
    pub fn node(&self, name: &str) -> Result<Trace<'_>, SpiceError> {
        let idx = self
            .node_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| SpiceError::UnknownTrace { name: name.into() })?;
        Ok(Trace {
            name: &self.node_names[idx],
            times: &self.times,
            values: &self.node_values[idx],
        })
    }

    /// Branch-current trace of the named voltage source. Positive current
    /// flows from the positive terminal *into* the source, so a supply
    /// delivering power shows a negative branch current.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownTrace`] if no voltage source has that name.
    pub fn branch(&self, source: &str) -> Result<Trace<'_>, SpiceError> {
        let idx = self
            .branch_names
            .iter()
            .position(|n| n == source)
            .ok_or_else(|| SpiceError::UnknownTrace {
                name: source.into(),
            })?;
        Ok(Trace {
            name: &self.branch_names[idx],
            times: &self.times,
            values: &self.branch_values[idx],
        })
    }

    /// Energy delivered *by* the named voltage source over `[from, to]`:
    /// `∫ v_src(t) · (−i_branch(t)) dt`.
    ///
    /// This is the quantity Table II's "read energy" columns report — the
    /// charge drawn from the supply (or a control signal's driver) during
    /// an operation, weighted by its voltage.
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownTrace`] if no voltage source has that name.
    pub fn supply_energy(&self, source: &str, from: Time, to: Time) -> Result<Energy, SpiceError> {
        let (name_idx, &(_, pos, neg)) = self
            .vsource_terminals
            .iter()
            .enumerate()
            .find(|(_, (n, _, _))| n == source)
            .ok_or_else(|| SpiceError::UnknownTrace {
                name: source.into(),
            })?;
        let i_trace = &self.branch_values[name_idx];
        // Reconstruct the source voltage from the node traces; ground
        // contributes zero.
        let zeros;
        let v_pos: &[f64] = if pos == 0 {
            zeros = vec![0.0; self.times.len()];
            &zeros
        } else {
            &self.node_values[pos - 1]
        };
        let power: Vec<f64> = if neg == 0 {
            v_pos
                .iter()
                .zip(i_trace.iter())
                .map(|(v, i)| v * -i)
                .collect()
        } else {
            let v_neg = &self.node_values[neg - 1];
            v_pos
                .iter()
                .zip(v_neg.iter())
                .zip(i_trace.iter())
                .map(|((vp, vn), i)| (vp - vn) * -i)
                .collect()
        };
        let joules = measure::integrate(&self.times, &power, from.seconds(), to.seconds());
        Ok(Energy::from_joules(joules))
    }

    /// Average power delivered by the named source over `[from, to]` —
    /// used for the leakage rows of Table II (steady-state supply power).
    ///
    /// # Errors
    ///
    /// [`SpiceError::UnknownTrace`] if no voltage source has that name.
    pub fn average_supply_power(
        &self,
        source: &str,
        from: Time,
        to: Time,
    ) -> Result<units::Power, SpiceError> {
        let e = self.supply_energy(source, from, to)?;
        let window = to - from;
        if window.seconds() <= 0.0 {
            return Ok(units::Power::ZERO);
        }
        Ok(e / window)
    }
}

impl TransientRecorder {
    pub(crate) fn push(&mut self, t: f64, x: &[f64], ckt: &Circuit) {
        self.result.times.push(t);
        for (i, values) in self.result.node_values.iter_mut().enumerate() {
            values.push(x[i]);
        }
        for (b, values) in self.result.branch_values.iter_mut().enumerate() {
            values.push(x[self.n_nodes + b]);
        }
        debug_assert_eq!(ckt.node_count() - 1, self.n_nodes);
    }

    pub(crate) fn finish(mut self, events: Vec<MtjEvent>, stats: SolverStats) -> TransientResult {
        self.result.events = events;
        self.result.stats = stats;
        self.result
    }
}

/// Borrowed view of one sampled waveform with measurement helpers.
#[derive(Debug, Clone, Copy)]
pub struct Trace<'a> {
    name: &'a str,
    times: &'a [f64],
    values: &'a [f64],
}

impl<'a> Trace<'a> {
    /// Trace name (node or source).
    #[must_use]
    pub fn name(&self) -> &'a str {
        self.name
    }

    /// Sample times, seconds.
    #[must_use]
    pub fn times(&self) -> &'a [f64] {
        self.times
    }

    /// Sample values (volts or amperes).
    #[must_use]
    pub fn values(&self) -> &'a [f64] {
        self.values
    }

    /// Linear interpolation at time `t` (seconds), clamped to the record.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        measure::interpolate(self.times, self.values, t)
    }

    /// The final sample.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn last_value(&self) -> f64 {
        *self.values.last().expect("empty trace")
    }

    /// Largest sample value.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest sample value.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// First crossing of `threshold` in direction `edge` at or after
    /// `after`, as a [`Time`], if any.
    #[must_use]
    pub fn first_crossing(&self, threshold: f64, edge: Edge, after: Time) -> Option<Time> {
        measure::first_crossing_after(self.times, self.values, threshold, edge, after.seconds())
            .map(Time::from_seconds)
    }

    /// Time-average over `[from, to]`.
    #[must_use]
    pub fn average(&self, from: Time, to: Time) -> f64 {
        measure::average(self.times, self.values, from.seconds(), to.seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;
    use units::{Resistance, Voltage};

    fn simple_result() -> TransientResult {
        // 1 V source across 1 kΩ: branch current −1 mA throughout.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::dc(Voltage::from_volts(1.0)),
        )
        .expect("V1");
        ckt.add_resistor("R1", a, Circuit::GROUND, Resistance::from_kilo_ohms(1.0))
            .expect("R1");
        crate::analysis::transient(
            &mut ckt,
            Time::from_nano_seconds(1.0),
            Time::from_pico_seconds(100.0),
        )
        .expect("transient")
    }

    #[test]
    fn traces_resolve_by_name() {
        let res = simple_result();
        assert!(res.node("a").is_ok());
        assert!(res.branch("V1").is_ok());
        assert!(matches!(
            res.node("zzz"),
            Err(SpiceError::UnknownTrace { .. })
        ));
        assert!(matches!(
            res.branch("zzz"),
            Err(SpiceError::UnknownTrace { .. })
        ));
        assert_eq!(res.node_names().collect::<Vec<_>>(), vec!["a"]);
        assert!(res.sample_count() >= 10);
    }

    #[test]
    fn trace_measurements() {
        let res = simple_result();
        let a = res.node("a").expect("a");
        assert_eq!(a.name(), "a");
        assert!((a.last_value() - 1.0).abs() < 1e-9);
        assert!((a.max() - 1.0).abs() < 1e-9);
        assert!(a.min() > 0.99);
        assert!((a.value_at(0.5e-9) - 1.0).abs() < 1e-9);
        assert!((a.average(Time::ZERO, Time::from_nano_seconds(1.0)) - 1.0).abs() < 1e-9);
        assert_eq!(a.times().len(), a.values().len());
    }

    #[test]
    fn supply_energy_of_resistive_load() {
        let res = simple_result();
        // P = V²/R = 1 mW over 1 ns → 1 pJ.
        let e = res
            .supply_energy("V1", Time::ZERO, Time::from_nano_seconds(1.0))
            .expect("energy");
        assert!((e.pico_joules() - 1.0).abs() < 0.01, "E = {e}");
        let p = res
            .average_supply_power("V1", Time::ZERO, Time::from_nano_seconds(1.0))
            .expect("power");
        assert!((p.milli_watts() - 1.0).abs() < 0.01, "P = {p}");
        assert!(res
            .supply_energy("zzz", Time::ZERO, Time::from_nano_seconds(1.0))
            .is_err());
    }

    #[test]
    fn zero_window_average_power_is_zero() {
        let res = simple_result();
        let p = res
            .average_supply_power(
                "V1",
                Time::from_nano_seconds(1.0),
                Time::from_nano_seconds(1.0),
            )
            .expect("power");
        assert_eq!(p, units::Power::ZERO);
    }

    #[test]
    fn branch_current_sign_convention() {
        let res = simple_result();
        let i = res.branch("V1").expect("V1");
        // Battery delivering 1 mA: branch current is −1 mA.
        assert!((i.last_value() + 1e-3).abs() < 1e-9);
    }
}
