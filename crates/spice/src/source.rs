//! Independent source waveforms.

use units::{Time, Voltage};

/// Time-dependent value of an independent voltage or current source.
///
/// Values are in the source's natural unit (volts or amperes); the
/// constructors taking [`Voltage`] are sugar for the common case.
///
/// # Examples
///
/// A 1.1 V supply and an active-high control pulse:
///
/// ```
/// use spice::SourceWaveform;
/// use units::{Time, Voltage};
///
/// let vdd = SourceWaveform::dc(Voltage::from_volts(1.1));
/// assert_eq!(vdd.value_at(0.0), 1.1);
///
/// let pc = SourceWaveform::pulse(
///     Voltage::ZERO,
///     Voltage::from_volts(1.1),
///     Time::from_pico_seconds(100.0), // delay
///     Time::from_pico_seconds(10.0),  // rise
///     Time::from_pico_seconds(10.0),  // fall
///     Time::from_pico_seconds(200.0), // width
/// );
/// assert_eq!(pc.value_at(0.0), 0.0);
/// assert_eq!(pc.value_at(150e-12), 1.1);
/// assert_eq!(pc.value_at(400e-12), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWaveform {
    /// A constant value.
    Dc(f64),
    /// A single trapezoidal pulse: `v0` until `delay`, linear rise over
    /// `rise`, hold `v1` for `width`, linear fall over `fall`, then `v0`.
    Pulse {
        /// Initial (and final) level.
        v0: f64,
        /// Pulsed level.
        v1: f64,
        /// Time the rise starts, seconds.
        delay: f64,
        /// Rise duration, seconds.
        rise: f64,
        /// Fall duration, seconds.
        fall: f64,
        /// Hold duration at `v1`, seconds.
        width: f64,
    },
    /// Piecewise-linear waveform through `(time, value)` points, held
    /// constant before the first and after the last point. Points must be
    /// sorted by time.
    Pwl(Vec<(f64, f64)>),
}

impl SourceWaveform {
    /// A constant (DC) voltage.
    #[must_use]
    pub fn dc(v: Voltage) -> Self {
        Self::Dc(v.volts())
    }

    /// A single trapezoidal voltage pulse (see the type-level example).
    #[must_use]
    pub fn pulse(
        v0: Voltage,
        v1: Voltage,
        delay: Time,
        rise: Time,
        fall: Time,
        width: Time,
    ) -> Self {
        Self::Pulse {
            v0: v0.volts(),
            v1: v1.volts(),
            delay: delay.seconds(),
            rise: rise.seconds(),
            fall: fall.seconds(),
            width: width.seconds(),
        }
    }

    /// A piecewise-linear voltage waveform from `(time, level)` points.
    ///
    /// # Panics
    ///
    /// Panics if the points are not sorted by strictly increasing time —
    /// an unsorted PWL is always a construction bug.
    #[must_use]
    pub fn pwl<I>(points: I) -> Self
    where
        I: IntoIterator<Item = (Time, Voltage)>,
    {
        let pts: Vec<(f64, f64)> = points
            .into_iter()
            .map(|(t, v)| (t.seconds(), v.volts()))
            .collect();
        assert!(
            pts.windows(2).all(|w| w[0].0 < w[1].0),
            "PWL points must have strictly increasing times"
        );
        Self::Pwl(pts)
    }

    /// The source value at simulation time `t` (seconds).
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Self::Dc(v) => *v,
            Self::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
            } => {
                let rise_end = delay + rise;
                let fall_start = rise_end + width;
                let fall_end = fall_start + fall;
                if t <= *delay || t >= fall_end {
                    *v0
                } else if t < rise_end {
                    // Zero-duration edges snap straight to v1.
                    if *rise == 0.0 {
                        *v1
                    } else {
                        v0 + (v1 - v0) * (t - delay) / rise
                    }
                } else if t <= fall_start {
                    *v1
                } else if *fall == 0.0 {
                    *v0
                } else {
                    v1 + (v0 - v1) * (t - fall_start) / fall
                }
            }
            Self::Pwl(points) => match points.len() {
                0 => 0.0,
                1 => points[0].1,
                _ => {
                    if t <= points[0].0 {
                        return points[0].1;
                    }
                    if t >= points[points.len() - 1].0 {
                        return points[points.len() - 1].1;
                    }
                    let idx = points.partition_point(|&(pt, _)| pt <= t);
                    let (t0, v0) = points[idx - 1];
                    let (t1, v1) = points[idx];
                    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                }
            },
        }
    }

    /// The earliest time at or after `t` where the waveform has a
    /// breakpoint (corner). Transient analysis aligns steps to these so a
    /// sharp control edge is never stepped over.
    #[must_use]
    pub fn next_breakpoint(&self, t: f64) -> Option<f64> {
        const EPS: f64 = 1e-18;
        match self {
            Self::Dc(_) => None,
            Self::Pulse {
                delay,
                rise,
                fall,
                width,
                ..
            } => {
                let corners = [
                    *delay,
                    delay + rise,
                    delay + rise + width,
                    delay + rise + width + fall,
                ];
                corners.iter().copied().find(|&c| c > t + EPS)
            }
            Self::Pwl(points) => points.iter().map(|&(pt, _)| pt).find(|&pt| pt > t + EPS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_flat() {
        let w = SourceWaveform::dc(Voltage::from_volts(1.1));
        assert_eq!(w.value_at(0.0), 1.1);
        assert_eq!(w.value_at(1.0), 1.1);
        assert_eq!(w.next_breakpoint(0.0), None);
    }

    fn pulse() -> SourceWaveform {
        SourceWaveform::pulse(
            Voltage::ZERO,
            Voltage::from_volts(1.0),
            Time::from_nano_seconds(1.0),
            Time::from_pico_seconds(100.0),
            Time::from_pico_seconds(100.0),
            Time::from_nano_seconds(2.0),
        )
    }

    #[test]
    fn pulse_piecewise_values() {
        let w = pulse();
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(1e-9), 0.0);
        // Mid-rise at 1.05 ns → 0.5 V.
        assert!((w.value_at(1.05e-9) - 0.5).abs() < 1e-12);
        assert_eq!(w.value_at(2e-9), 1.0);
        // Mid-fall at 3.15 ns → 0.5 V.
        assert!((w.value_at(3.15e-9) - 0.5).abs() < 1e-9);
        assert_eq!(w.value_at(4e-9), 0.0);
    }

    #[test]
    fn pulse_breakpoints_in_order() {
        let w = pulse();
        let mut t = 0.0;
        let mut corners = Vec::new();
        while let Some(c) = w.next_breakpoint(t) {
            corners.push(c);
            t = c;
        }
        let expected = [1e-9, 1.1e-9, 3.1e-9, 3.2e-9];
        assert_eq!(corners.len(), expected.len());
        for (c, e) in corners.iter().zip(expected.iter()) {
            assert!((c - e).abs() < 1e-15);
        }
    }

    #[test]
    fn zero_duration_edges_are_steps() {
        let w = SourceWaveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1e-9,
            rise: 0.0,
            fall: 0.0,
            width: 1e-9,
        };
        assert_eq!(w.value_at(1e-9), 0.0); // boundary belongs to v0
        assert_eq!(w.value_at(1.5e-9), 1.0);
        assert_eq!(w.value_at(2.5e-9), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = SourceWaveform::pwl([
            (Time::from_nano_seconds(1.0), Voltage::ZERO),
            (Time::from_nano_seconds(2.0), Voltage::from_volts(1.0)),
            (Time::from_nano_seconds(3.0), Voltage::from_volts(0.25)),
        ]);
        assert_eq!(w.value_at(0.0), 0.0); // clamp before
        assert!((w.value_at(1.5e-9) - 0.5).abs() < 1e-12);
        assert!((w.value_at(2.5e-9) - 0.625).abs() < 1e-12);
        assert_eq!(w.value_at(5e-9), 0.25); // clamp after
        assert_eq!(w.next_breakpoint(1.5e-9), Some(2e-9));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_pwl_panics() {
        let _ = SourceWaveform::pwl([
            (Time::from_nano_seconds(2.0), Voltage::ZERO),
            (Time::from_nano_seconds(1.0), Voltage::ZERO),
        ]);
    }

    #[test]
    fn degenerate_pwl() {
        assert_eq!(SourceWaveform::Pwl(vec![]).value_at(1.0), 0.0);
        assert_eq!(SourceWaveform::Pwl(vec![(0.0, 2.0)]).value_at(5.0), 2.0);
    }
}
