//! All-region EKV-style MOSFET compact model.
//!
//! The simulator needs a transistor model that is (a) smooth in all
//! operating regions so Newton converges on regenerative circuits like
//! sense amplifiers, and (b) first-order accurate for the three quantities
//! Table II depends on: saturation current (read delay), gate/junction
//! charge (read energy) and subthreshold current (leakage). The simplified
//! EKV formulation delivers all three with six parameters:
//!
//! ```text
//! Id = Is · (F(u_f) − F(u_r)) · (1 + λ·v_ds)
//! Is = 2·n·β·v_t²,  β = k'·W/L
//! u_f = (v_p)/v_t,  u_r = (v_p − v_ds)/v_t,  v_p = (v_gs − V_th)/n
//! F(u) = ln(1 + e^{u/2})²
//! ```
//!
//! which reduces to the square law in strong inversion/saturation and to
//! the exponential subthreshold law below threshold, with no region
//! boundaries. Drain–source symmetry (`v_ds < 0`) and PMOS polarity are
//! handled by terminal reflection.
//!
//! [`Technology::tsmc40lp`] provides parameters calibrated to public
//! 40 nm low-power CMOS characteristics, with SS/TT/FF corners
//! ([`CmosCorner`]) implemented as threshold-voltage and gain shifts —
//! the dominant first-order corner effects on both delay and leakage.

use core::fmt;

/// Thermal voltage kT/q at the paper's fixed 27 °C operating point.
pub const THERMAL_VOLTAGE: f64 = 0.025_852;

/// Channel polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosfetKind {
    /// N-channel device (conducts with positive `v_gs`).
    Nmos,
    /// P-channel device (conducts with negative `v_gs`).
    Pmos,
}

impl fmt::Display for MosfetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Nmos => "nmos",
            Self::Pmos => "pmos",
        })
    }
}

/// Compact-model parameters for one device polarity.
///
/// All voltages are magnitudes (the PMOS threshold is stored positive);
/// polarity is handled by [`MosfetModel::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetModel {
    /// Channel polarity.
    pub kind: MosfetKind,
    /// Threshold voltage magnitude, volts.
    pub vth: f64,
    /// Process transconductance `k' = µ·C_ox`, A/V².
    pub kp: f64,
    /// Subthreshold slope factor `n` (≈ 1.3–1.5 for a 40 nm LP process).
    pub n_slope: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
    /// Gate-oxide capacitance per area, F/m².
    pub cox_per_area: f64,
    /// Gate-drain/source overlap capacitance per width, F/m.
    pub cov_per_width: f64,
    /// Junction (drain/source to bulk) capacitance per width, F/m.
    pub cj_per_width: f64,
}

/// Evaluated large-signal operating point of a device: the channel
/// current and its derivatives w.r.t. the three terminal voltages,
/// exactly what the Newton stamp needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetOperatingPoint {
    /// Channel current flowing drain → source, amperes.
    pub id: f64,
    /// `∂id/∂v_g`.
    pub di_dvg: f64,
    /// `∂id/∂v_d`.
    pub di_dvd: f64,
    /// `∂id/∂v_s`.
    pub di_dvs: f64,
}

impl MosfetModel {
    /// Evaluates the channel current and derivatives at absolute terminal
    /// voltages `(vg, vd, vs)` for a device of aspect ratio `w/l`.
    ///
    /// The returned current is the drain→source channel current with its
    /// true sign; PMOS devices therefore return negative `id` when
    /// conducting in their normal orientation (current flows source →
    /// drain).
    #[must_use]
    pub fn evaluate(&self, vg: f64, vd: f64, vs: f64, w: f64, l: f64) -> MosfetOperatingPoint {
        match self.kind {
            MosfetKind::Nmos => self.evaluate_nmos_oriented(vg, vd, vs, w, l),
            MosfetKind::Pmos => {
                // A PMOS is an NMOS with every terminal voltage reflected:
                // Isd = f(v_sg, v_sd). Channel current d→s is −Isd.
                let p = self.evaluate_nmos_oriented(-vg, -vd, -vs, w, l);
                MosfetOperatingPoint {
                    id: -p.id,
                    di_dvg: p.di_dvg,
                    di_dvd: p.di_dvd,
                    di_dvs: p.di_dvs,
                }
            }
        }
    }

    /// NMOS-oriented evaluation with drain–source symmetry handling.
    fn evaluate_nmos_oriented(
        &self,
        vg: f64,
        vd: f64,
        vs: f64,
        w: f64,
        l: f64,
    ) -> MosfetOperatingPoint {
        if vd >= vs {
            let (id, gm, gds) = self.ids_forward(vg - vs, vd - vs, w, l);
            MosfetOperatingPoint {
                id,
                di_dvg: gm,
                di_dvd: gds,
                di_dvs: -gm - gds,
            }
        } else {
            // Swap drain and source: Id(vg,vd,vs) = −f(vg−vd, vs−vd).
            let (id, gm, gds) = self.ids_forward(vg - vd, vs - vd, w, l);
            MosfetOperatingPoint {
                id: -id,
                di_dvg: -gm,
                di_dvd: gm + gds,
                di_dvs: -gds,
            }
        }
    }

    /// Source-referenced current for `v_ds ≥ 0`: returns `(id, gm, gds)`.
    fn ids_forward(&self, vgs: f64, vds: f64, w: f64, l: f64) -> (f64, f64, f64) {
        let vt = THERMAL_VOLTAGE;
        let n = self.n_slope;
        let beta = self.kp * w / l;
        let is = 2.0 * n * beta * vt * vt;
        let vp = (vgs - self.vth) / n;
        let uf = vp / vt;
        let ur = (vp - vds) / vt;
        let (ff, dff) = big_f(uf);
        let (fr, dfr) = big_f(ur);
        let clm = 1.0 + self.lambda * vds;
        let id = is * (ff - fr) * clm;
        let gm = is * clm * (dff - dfr) / (n * vt);
        let gds = is * clm * dfr / vt + is * self.lambda * (ff - fr);
        (id, gm, gds)
    }

    /// Total gate–source (= gate–drain) capacitance for a `w × l` device:
    /// half the channel oxide capacitance plus the overlap term.
    #[must_use]
    pub fn cgs(&self, w: f64, l: f64) -> f64 {
        0.5 * self.cox_per_area * w * l + self.cov_per_width * w
    }

    /// Drain (= source) junction capacitance to ground for width `w`.
    #[must_use]
    pub fn cjunction(&self, w: f64) -> f64 {
        self.cj_per_width * w
    }
}

/// `F(u) = softplus(u/2)²` and its derivative `F'(u) = softplus(u/2) ·
/// sigmoid(u/2)`, computed overflow-safely.
fn big_f(u: f64) -> (f64, f64) {
    let x = 0.5 * u;
    let (sp, sg) = if x > 30.0 {
        (x, 1.0)
    } else if x < -30.0 {
        let e = x.exp();
        (e, e)
    } else {
        let e = x.exp();
        ((1.0 + e).ln(), e / (1.0 + e))
    };
    (sp * sp, sp * sg)
}

/// A CMOS process corner.
///
/// Corners shift the threshold voltage and the process transconductance in
/// the slow/fast direction; subthreshold leakage responds exponentially to
/// the V_th shift, which reproduces the order-of-magnitude leakage spread
/// of Table II's worst/typical/best columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CmosCorner {
    /// Slow-slow: +ΔV_th, −10 % gain. Lowest leakage, slowest switching.
    SlowSlow,
    /// Typical-typical: nominal parameters.
    #[default]
    TypicalTypical,
    /// Fast-fast: −ΔV_th, +10 % gain. Highest leakage, fastest switching.
    FastFast,
}

impl CmosCorner {
    /// All corners in SS → TT → FF order.
    pub const ALL: [Self; 3] = [Self::SlowSlow, Self::TypicalTypical, Self::FastFast];

    /// Signed threshold shift in volts and gain multiplier.
    #[must_use]
    pub fn shifts(self) -> (f64, f64) {
        match self {
            Self::SlowSlow => (0.045, 0.9),
            Self::TypicalTypical => (0.0, 1.0),
            Self::FastFast => (-0.045, 1.1),
        }
    }
}

impl fmt::Display for CmosCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::SlowSlow => "SS",
            Self::TypicalTypical => "TT",
            Self::FastFast => "FF",
        })
    }
}

/// A CMOS technology: device models for both polarities plus the supply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// N-channel model.
    pub nmos: MosfetModel,
    /// P-channel model.
    pub pmos: MosfetModel,
    /// Nominal supply voltage, volts.
    pub vdd: f64,
    /// Minimum drawn channel length, metres.
    pub l_min: f64,
}

impl Technology {
    /// 40 nm low-power CMOS calibrated to public characteristics of the
    /// process the paper simulates with (V_th ≈ ±0.46 V, LP-oxide gate
    /// stack, 1.1 V supply).
    #[must_use]
    pub fn tsmc40lp() -> Self {
        Self {
            nmos: MosfetModel {
                kind: MosfetKind::Nmos,
                vth: 0.42,
                kp: 320e-6,
                n_slope: 1.35,
                lambda: 0.12,
                cox_per_area: 0.018,    // 18 fF/µm² (LP oxide)
                cov_per_width: 0.25e-9, // 0.25 fF/µm
                cj_per_width: 0.25e-9,  // 0.25 fF/µm (raised S/D)
            },
            pmos: MosfetModel {
                kind: MosfetKind::Pmos,
                vth: 0.43,
                kp: 140e-6,
                n_slope: 1.38,
                lambda: 0.14,
                cox_per_area: 0.018,
                cov_per_width: 0.25e-9,
                cj_per_width: 0.25e-9,
            },
            vdd: 1.1,
            l_min: 40e-9,
        }
    }

    /// The technology shifted to a process corner.
    #[must_use]
    pub fn at_corner(&self, corner: CmosCorner) -> Self {
        let (dvth, kmul) = corner.shifts();
        let mut t = *self;
        t.nmos.vth += dvth;
        t.nmos.kp *= kmul;
        t.pmos.vth += dvth;
        t.pmos.kp *= kmul;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::tsmc40lp()
    }

    const W: f64 = 200e-9;
    const L: f64 = 40e-9;

    #[test]
    fn nmos_off_when_gate_low() {
        let m = tech().nmos;
        let op = m.evaluate(0.0, 1.1, 0.0, W, L);
        // Subthreshold leakage: picoamp scale, far below µA drive.
        assert!(op.id > 0.0);
        assert!(op.id < 1e-9, "ioff = {}", op.id);
    }

    #[test]
    fn nmos_drives_when_gate_high() {
        let m = tech().nmos;
        let op = m.evaluate(1.1, 1.1, 0.0, W, L);
        // Saturation drive: tens to hundreds of µA for W/L = 5.
        assert!(op.id > 50e-6 && op.id < 1e-3, "ion = {}", op.id);
    }

    #[test]
    fn on_off_ratio_is_large() {
        let m = tech().nmos;
        let ion = m.evaluate(1.1, 1.1, 0.0, W, L).id;
        let ioff = m.evaluate(0.0, 1.1, 0.0, W, L).id;
        assert!(ion / ioff > 1e5, "ratio = {}", ion / ioff);
    }

    #[test]
    fn pmos_mirrors_nmos_behaviour() {
        let m = tech().pmos;
        // PMOS with source at VDD, gate at 0: strongly on, current flows
        // source→drain, i.e. channel d→s current is negative.
        let on = m.evaluate(0.0, 0.0, 1.1, W, L);
        assert!(on.id < -20e-6, "id = {}", on.id);
        // Gate at VDD: off.
        let off = m.evaluate(1.1, 0.0, 1.1, W, L);
        assert!(off.id.abs() < 1e-9);
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let m = tech().nmos;
        let op = m.evaluate(1.1, 0.5, 0.5, W, L);
        assert!(op.id.abs() < 1e-12);
    }

    #[test]
    fn current_is_antisymmetric_in_vds() {
        let m = tech().nmos;
        let fwd = m.evaluate(0.9, 0.3, 0.1, W, L);
        let rev = m.evaluate(0.9 - 0.0, 0.1, 0.3, W, L);
        // Same |vds| and mirrored terminals, but vgs differs between the
        // two orientations for a grounded-bulk EKV model referenced to the
        // source; exact antisymmetry holds when vg is reflected too.
        assert!(fwd.id > 0.0 && rev.id < 0.0);
    }

    #[test]
    fn reverse_conduction_matches_swapped_terminals() {
        // Id(vg, vd, vs) with vd < vs must equal −Id(vg, vs, vd).
        let m = tech().nmos;
        let a = m.evaluate(1.0, 0.2, 0.7, W, L);
        let b = m.evaluate(1.0, 0.7, 0.2, W, L);
        assert!((a.id + b.id).abs() < 1e-12 * b.id.abs().max(1e-12));
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let m = tech().nmos;
        let (vg, vd, vs) = (0.8, 0.4, 0.1);
        let h = 1e-7;
        let base = m.evaluate(vg, vd, vs, W, L);
        let dg = (m.evaluate(vg + h, vd, vs, W, L).id - base.id) / h;
        let dd = (m.evaluate(vg, vd + h, vs, W, L).id - base.id) / h;
        let ds = (m.evaluate(vg, vd, vs + h, W, L).id - base.id) / h;
        assert!((dg - base.di_dvg).abs() / dg.abs().max(1e-12) < 1e-4);
        assert!((dd - base.di_dvd).abs() / dd.abs().max(1e-12) < 1e-4);
        assert!((ds - base.di_dvs).abs() / ds.abs().max(1e-12) < 1e-4);
    }

    #[test]
    fn pmos_derivatives_match_finite_differences() {
        let m = tech().pmos;
        let (vg, vd, vs) = (0.3, 0.5, 1.1);
        let h = 1e-7;
        let base = m.evaluate(vg, vd, vs, W, L);
        let dg = (m.evaluate(vg + h, vd, vs, W, L).id - base.id) / h;
        let dd = (m.evaluate(vg, vd + h, vs, W, L).id - base.id) / h;
        let ds = (m.evaluate(vg, vd, vs + h, W, L).id - base.id) / h;
        assert!((dg - base.di_dvg).abs() / dg.abs().max(1e-12) < 1e-4);
        assert!((dd - base.di_dvd).abs() / dd.abs().max(1e-12) < 1e-4);
        assert!((ds - base.di_dvs).abs() / ds.abs().max(1e-12) < 1e-4);
    }

    #[test]
    fn current_is_continuous_across_vds_zero() {
        let m = tech().nmos;
        let a = m.evaluate(0.9, 1e-9, 0.0, W, L);
        let b = m.evaluate(0.9, -1e-9, 0.0, W, L);
        assert!((a.id - b.id).abs() < 1e-9);
    }

    #[test]
    fn subthreshold_slope_is_exponential() {
        let m = tech().nmos;
        let i1 = m.evaluate(0.10, 1.1, 0.0, W, L).id;
        let i2 = m.evaluate(0.20, 1.1, 0.0, W, L).id;
        // 100 mV of gate drive in subthreshold: expect e^{0.1/(n·vt)} ≈ 17×.
        let expected = (0.1 / (m.n_slope * THERMAL_VOLTAGE)).exp();
        let ratio = i2 / i1;
        assert!((ratio / expected - 1.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn corners_order_leakage_and_drive() {
        let t = tech();
        let leak = |c: CmosCorner| t.at_corner(c).nmos.evaluate(0.0, 1.1, 0.0, W, L).id;
        let drive = |c: CmosCorner| t.at_corner(c).nmos.evaluate(1.1, 1.1, 0.0, W, L).id;
        assert!(leak(CmosCorner::FastFast) > leak(CmosCorner::TypicalTypical));
        assert!(leak(CmosCorner::TypicalTypical) > leak(CmosCorner::SlowSlow));
        assert!(drive(CmosCorner::FastFast) > drive(CmosCorner::SlowSlow));
        // Leakage corner spread is roughly an order of magnitude.
        let spread = leak(CmosCorner::FastFast) / leak(CmosCorner::SlowSlow);
        assert!(spread > 5.0 && spread < 50.0, "spread = {spread}");
    }

    #[test]
    fn capacitances_scale_with_geometry() {
        let m = tech().nmos;
        assert!(m.cgs(2.0 * W, L) > m.cgs(W, L));
        assert!((m.cgs(2.0 * W, L) / m.cgs(W, L) - 2.0).abs() < 1e-9);
        assert!(m.cjunction(W) > 0.0);
        // Sub-femtofarad for a minimum device — sanity of magnitude.
        assert!(m.cgs(W, L) < 1e-15);
    }

    #[test]
    fn display_names() {
        assert_eq!(MosfetKind::Nmos.to_string(), "nmos");
        assert_eq!(CmosCorner::SlowSlow.to_string(), "SS");
        assert_eq!(CmosCorner::ALL.len(), 3);
    }
}
