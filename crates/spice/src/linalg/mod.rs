//! Linear algebra for the MNA system: a dense LU and a static-pattern
//! sparse LU.
//!
//! Latch-scale circuits produce systems of a few dozen unknowns, where a
//! dense LU factorization with partial pivoting is both the simplest and
//! a fast option (no fill-in bookkeeping, cache-friendly row access).
//! MNA matrices are nonetheless *structurally* sparse — a handful of
//! entries per row — so the dense elimination skips updates whose
//! operands are exactly zero: those are value-level no-ops, and dropping
//! them leaves every computed result unchanged while cutting most of the
//! O(n³) work.
//!
//! The sparse path ([`SparsePattern`] + [`SymbolicLu`]) goes one step
//! further: the structural nonzero pattern of the assembled matrix is
//! fixed by the analysis layer's stamp plan, so the symbolic work —
//! pivot order, fill-in prediction, CSR layout of `L+U` — is done once
//! and every subsequent Newton iteration runs a left-looking
//! refactorization *in the frozen pattern* with no pivot search at all.
//! A guard compares each refactored pivot against its magnitude at
//! freeze time and transparently re-pivots from scratch when values have
//! drifted enough to make the frozen order unsafe.
//!
//! The [`lanes`] submodule replicates the sparse path across `LANES`
//! value sets sharing one pattern — one symbolic factorization, `LANES`
//! lockstep numeric factorizations — for batched Monte-Carlo solves.

pub mod lanes;

/// A dense, row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

/// Reusable working storage for [`DenseMatrix::solve_into`] and
/// [`DenseMatrix::solve_in_place`].
///
/// Holds the factorization's working copy of the matrix and the pivot
/// row's nonzero-column index list, so repeated solves (one per Newton
/// iteration, thousands per transient) perform no heap allocation after
/// the first call.
#[derive(Debug, Clone, Default)]
pub struct LuScratch {
    lu: Vec<f64>,
    nonzero_cols: Vec<u32>,
}

impl LuScratch {
    /// Creates an empty scratch buffer; it grows on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch buffer pre-sized for an `n × n` system.
    #[must_use]
    pub fn for_dim(n: usize) -> Self {
        Self {
            lu: Vec::with_capacity(n * n),
            nonzero_cols: Vec::with_capacity(n),
        }
    }
}

impl DenseMatrix {
    /// Creates an `n × n` zero matrix.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Returns the entry at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col]
    }

    /// Sets the entry at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col] = value;
    }

    /// Adds `value` to the entry at (`row`, `col`) — the *stamp*
    /// operation every MNA device contribution uses.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col] += value;
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Borrows the raw row-major entries.
    ///
    /// Crate-internal: lets the reference engine copy the matrix at the
    /// same cost the seed solver paid (`data.clone()`), keeping it an
    /// honest baseline.
    #[must_use]
    pub(crate) fn data(&self) -> &[f64] {
        &self.data
    }

    /// Solves `A·x = b` via LU with partial pivoting without destroying
    /// `self`.
    ///
    /// Returns `None` if the matrix is numerically singular.
    ///
    /// This is the allocating convenience wrapper over
    /// [`DenseMatrix::solve_into`]; solver loops should hold a
    /// [`LuScratch`] and call `solve_into` (or [`DenseMatrix::solve_in_place`])
    /// instead.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        let mut scratch = LuScratch::new();
        let mut x = Vec::new();
        self.solve_into(b, &mut scratch, &mut x).then_some(x)
    }

    /// Solves `A·x = b` into `x`, reusing `scratch` for the factorization
    /// working copy — no allocation once the scratch buffers have grown
    /// to the system size.
    ///
    /// Returns `false` if the matrix is numerically singular (in which
    /// case the contents of `x` are unspecified). Every arithmetic
    /// operation that is actually performed — pivot selection,
    /// elimination, back substitution — matches the original allocating
    /// solver; the only difference is that updates whose pivot-row
    /// operand is exactly zero are skipped, which leaves all values
    /// unchanged (up to the sign of zero), so results are reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve_into(&self, b: &[f64], scratch: &mut LuScratch, x: &mut Vec<f64>) -> bool {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        scratch.lu.clear();
        scratch.lu.extend_from_slice(&self.data);
        x.clear();
        x.extend_from_slice(b);
        lu_solve_core(&mut scratch.lu, self.n, &mut scratch.nonzero_cols, x)
    }

    /// Solves `A·x = b` into `x`, factoring `self` **in place** — on
    /// return the matrix holds the (partially pivoted) elimination
    /// residue and must be re-stamped before the next use.
    ///
    /// This is the hot-loop entry point: it skips the `n²` working-copy
    /// memcpy that [`DenseMatrix::solve_into`] pays per call, which
    /// matters when the matrix is re-assembled from scratch every Newton
    /// iteration anyway. Arithmetic is identical to `solve_into`.
    ///
    /// Returns `false` if the matrix is numerically singular (in which
    /// case the contents of `x` are unspecified).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve_in_place(&mut self, b: &[f64], scratch: &mut LuScratch, x: &mut Vec<f64>) -> bool {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        x.clear();
        x.extend_from_slice(b);
        lu_solve_core(&mut self.data, self.n, &mut scratch.nonzero_cols, x)
    }

    /// Computes `A·x` (used by tests and residual checks).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the matrix dimension.
    #[must_use]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "vector length mismatch");
        (0..self.n)
            .map(|r| (0..self.n).map(|c| self.data[r * self.n + c] * x[c]).sum())
            .collect()
    }
}

/// LU-with-partial-pivoting factorization and solve, operating directly
/// on a row-major `n × n` buffer with the RHS pre-loaded into `x`.
///
/// MNA matrices carry only a handful of nonzeros per row, so before
/// eliminating below each pivot the core records the pivot row's
/// nonzero columns (right of the diagonal) in `nz` and restricts the
/// update loop to them. A skipped update would have computed
/// `a[r][j] -= factor * 0.0`, a value-level no-op, so every surviving
/// operation — and therefore every result — matches the textbook dense
/// loop. The subdiagonal residue `a[r][k]` is likewise never read again
/// (pivot searches only look at columns > k) and is left unwritten.
///
/// Back substitution stays dense: it is O(n²) and keeps non-finite
/// values flowing into the final singularity check exactly as before.
///
/// Returns `false` if the matrix is numerically singular.
fn lu_solve_core(lu: &mut [f64], n: usize, nz: &mut Vec<u32>, x: &mut [f64]) -> bool {
    debug_assert_eq!(lu.len(), n * n);
    debug_assert_eq!(x.len(), n);
    for k in 0..n {
        // Pivot selection.
        let mut pivot_row = k;
        let mut pivot_val = lu[k * n + k].abs();
        for (off, row) in lu[(k + 1) * n..].chunks_exact(n).enumerate() {
            let v = row[k].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = k + 1 + off;
            }
        }
        if pivot_val < PIVOT_EPS {
            return false;
        }
        if pivot_row != k {
            for j in 0..n {
                lu.swap(k * n + j, pivot_row * n + j);
            }
            x.swap(k, pivot_row);
        }
        // Elimination of rows below k, RHS folded in, restricted to the
        // pivot row's nonzero columns.
        let (upper, lower) = lu.split_at_mut((k + 1) * n);
        let row_k = &upper[k * n..(k + 1) * n];
        let pivot = row_k[k];
        nz.clear();
        for (j, &v) in row_k.iter().enumerate().skip(k + 1) {
            if v != 0.0 {
                nz.push(j as u32);
            }
        }
        let (x_upper, x_lower) = x.split_at_mut(k + 1);
        let x_k = x_upper[k];
        for (row_r, x_r) in lower.chunks_exact_mut(n).zip(x_lower.iter_mut()) {
            let factor = row_r[k] / pivot;
            if factor == 0.0 {
                continue;
            }
            for &j in nz.iter() {
                let j = j as usize;
                row_r[j] -= factor * row_k[j];
            }
            *x_r -= factor * x_k;
        }
    }
    // Back substitution.
    for k in (0..n).rev() {
        let row_k = &lu[k * n..(k + 1) * n];
        let mut acc = x[k];
        for (&aj, &xj) in row_k[k + 1..].iter().zip(x[k + 1..].iter()) {
            acc -= aj * xj;
        }
        x[k] = acc / row_k[k];
    }
    x.iter().all(|v| v.is_finite())
}

/// Numeric singularity threshold shared by the dense and sparse paths.
const PIVOT_EPS: f64 = 1e-30;

/// Relative decay of a frozen pivot (against its magnitude when the
/// pivot order was frozen) that triggers an automatic re-pivot. Partial
/// pivoting bounds element growth only for the ordering it chose; once a
/// pivot shrinks by many orders of magnitude relative to freeze time,
/// the frozen order may no longer be that ordering, so the factorization
/// is redone from scratch with a fresh pivot search.
const PIVOT_DECAY: f64 = 1e-6;

/// Frozen structural nonzero pattern of an assembled MNA matrix, in CSR
/// form, with a dense `(row, col) → slot` map for O(1) stamping.
///
/// Built once per stamp plan from a structure-probing assembly pass; the
/// value array it indexes lives in the solver workspace and is re-filled
/// every Newton iteration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparsePattern {
    n: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    /// Dense `n × n` map from `(row, col)` to the CSR slot index, with
    /// `u32::MAX` marking structural zeros. ~4n² bytes — trivial at MNA
    /// scale and the reason a stamp costs one load and one add.
    slot_of: Vec<u32>,
}

impl SparsePattern {
    const NO_SLOT: u32 = u32::MAX;

    /// Builds the pattern from the structural entries captured by a
    /// probe assembly pass. Duplicates are allowed and merged.
    ///
    /// # Panics
    ///
    /// Panics if an entry is out of bounds for an `n × n` system.
    #[must_use]
    pub fn from_entries(n: usize, mut entries: Vec<(u32, u32)>) -> Self {
        entries.sort_unstable();
        entries.dedup();
        let mut row_ptr = vec![0u32; n + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut slot_of = vec![Self::NO_SLOT; n * n];
        for &(r, c) in &entries {
            let (r, c) = (r as usize, c as usize);
            assert!(r < n && c < n, "pattern entry out of bounds");
            slot_of[r * n + c] = col_idx.len() as u32;
            col_idx.push(c as u32);
            row_ptr[r + 1] += 1;
        }
        for r in 0..n {
            row_ptr[r + 1] += row_ptr[r];
        }
        Self {
            n,
            row_ptr,
            col_idx,
            slot_of,
        }
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Adds `value` to the CSR slot backing `(row, col)` — the sparse
    /// counterpart of [`DenseMatrix::add`].
    ///
    /// # Panics
    ///
    /// Panics if `(row, col)` is a structural zero of the pattern, which
    /// means the values were assembled against a stale pattern.
    #[inline]
    pub fn add_into(&self, values: &mut [f64], row: usize, col: usize, value: f64) {
        let slot = self.slot_of[row * self.n + col];
        assert!(
            slot != Self::NO_SLOT,
            "stamp at ({row}, {col}) outside the frozen pattern"
        );
        values[slot as usize] += value;
    }

    /// The column indices of `row`, ascending, and the CSR slot of the
    /// row's first entry.
    #[inline]
    fn row(&self, row: usize) -> (&[u32], usize) {
        let lo = self.row_ptr[row] as usize;
        let hi = self.row_ptr[row + 1] as usize;
        (&self.col_idx[lo..hi], lo)
    }
}

/// Outcome of a successful [`SymbolicLu::factor_and_solve`] call,
/// reported so the solver can account for symbolic work separately from
/// the steady-state pattern-reusing path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseSolveOutcome {
    /// The frozen pivot order and fill pattern were reused as-is — the
    /// steady-state fast path.
    ReusedPattern,
    /// First solve against this pattern: pivot order frozen and the
    /// symbolic factorization built.
    Built,
    /// A frozen pivot decayed below threshold mid-refactor; the pivot
    /// order and symbolic factorization were rebuilt from the current
    /// values, then the solve completed.
    Repivoted,
}

/// Static symbolic LU: pivot order and `L+U` fill pattern frozen from
/// the first partial-pivoted factorization, then reused by a
/// left-looking refactorization for every subsequent solve.
///
/// The numeric contract is deliberate: for an unchanged pivot order the
/// refactorization performs the *same multiply/subtract/divide sequence*
/// as the dense partial-pivoted elimination (structurally absent
/// operands are exact zeros, whose updates are value-level no-ops), so
/// the sparse path reproduces the dense solver's results to the last bit
/// whenever both would choose the same pivots — which is exactly the
/// regime the freeze guard keeps it in.
///
/// All buffers are retained across calls; after the first build a
/// refactor-and-solve performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct SymbolicLu {
    n: usize,
    built: bool,
    /// Permuted row `i` of the factorization is original row `perm[i]`.
    perm: Vec<u32>,
    /// CSR layout of `L + U` (unit-diagonal L implicit; factors stored
    /// in the L slots, U on and right of the diagonal), rows in pivot
    /// order, columns ascending.
    lu_row_ptr: Vec<u32>,
    lu_col: Vec<u32>,
    lu_val: Vec<f64>,
    /// Slot of the diagonal entry of each permuted row.
    lu_diag: Vec<u32>,
    /// |pivot| recorded when the order was frozen — the reference for
    /// the decay guard.
    ref_pivot: Vec<f64>,
    /// Dense scratch row for the left-looking scatter/gather.
    w: Vec<f64>,
    /// Dense n × n scratch for the pivot-freezing factorization.
    dense: Vec<f64>,
    /// Column-presence marks for the symbolic row merge.
    mark: Vec<bool>,
    nz: Vec<u32>,
}

impl SymbolicLu {
    /// Creates an empty symbolic object; it builds itself on the first
    /// [`SymbolicLu::factor_and_solve`] call.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a pivot order is currently frozen.
    #[must_use]
    pub fn is_built(&self) -> bool {
        self.built
    }

    /// Structural nonzeros of `L + U` including fill-in (0 before the
    /// first build).
    #[must_use]
    pub fn lu_nnz(&self) -> usize {
        self.lu_col.len()
    }

    /// Drops the frozen pivot order, forcing a rebuild on the next
    /// solve. Called when the pattern itself changes (plan rebuild).
    pub fn invalidate(&mut self) {
        self.built = false;
    }

    /// Factors `values` (laid out per `pattern`) and solves for `b`,
    /// writing the solution into `x`. Freezes the pivot order on first
    /// use, reuses it afterwards, and re-pivots automatically when a
    /// frozen pivot decays below threshold.
    ///
    /// Returns `None` if the matrix is numerically singular or the
    /// solution is non-finite (matching the dense solver's contract).
    ///
    /// # Panics
    ///
    /// Panics if `values`, `b` or the pattern dimensions disagree.
    pub fn factor_and_solve(
        &mut self,
        pattern: &SparsePattern,
        values: &[f64],
        b: &[f64],
        x: &mut Vec<f64>,
    ) -> Option<SparseSolveOutcome> {
        assert_eq!(values.len(), pattern.nnz(), "value/pattern mismatch");
        assert_eq!(b.len(), pattern.dim(), "rhs length mismatch");
        let mut outcome = SparseSolveOutcome::ReusedPattern;
        if !self.built || self.n != pattern.dim() {
            if !self.rebuild(pattern, values) {
                return None;
            }
            outcome = SparseSolveOutcome::Built;
        }
        if !self.refactor(pattern, values) {
            // A frozen pivot decayed (or vanished): re-pivot from the
            // current values. A fresh build's refactor reproduces the
            // build's own elimination, so a second failure means the
            // matrix is genuinely singular.
            if !self.rebuild(pattern, values) || !self.refactor(pattern, values) {
                return None;
            }
            outcome = SparseSolveOutcome::Repivoted;
        }
        self.solve_rhs(b, x).then_some(outcome)
    }

    /// Freezes the pivot order by running a dense partial-pivoted
    /// elimination over the current values (mirroring `lu_solve_core`'s
    /// pivot choices exactly), then builds the symbolic `L+U` pattern
    /// with fill-in for that order. Returns `false` on singularity.
    fn rebuild(&mut self, pattern: &SparsePattern, values: &[f64]) -> bool {
        let n = pattern.dim();
        self.n = n;
        self.built = false;
        self.perm.clear();
        self.perm.extend(0..n as u32);
        self.ref_pivot.clear();
        self.ref_pivot.resize(n, 0.0);
        // Scatter the CSR values into the dense scratch.
        self.dense.clear();
        self.dense.resize(n * n, 0.0);
        for r in 0..n {
            let (cols, first) = pattern.row(r);
            for (k, &c) in cols.iter().enumerate() {
                self.dense[r * n + c as usize] = values[first + k];
            }
        }
        // Partial-pivoted elimination, identical pivot choices to
        // `lu_solve_core`, recording the row order it settles on.
        let lu = &mut self.dense;
        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_val = lu[k * n + k].abs();
            for (off, row) in lu[(k + 1) * n..].chunks_exact(n).enumerate() {
                let v = row[k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = k + 1 + off;
                }
            }
            if pivot_val < PIVOT_EPS {
                return false;
            }
            if pivot_row != k {
                for j in 0..n {
                    lu.swap(k * n + j, pivot_row * n + j);
                }
                self.perm.swap(k, pivot_row);
            }
            self.ref_pivot[k] = pivot_val;
            let (upper, lower) = lu.split_at_mut((k + 1) * n);
            let row_k = &upper[k * n..(k + 1) * n];
            let pivot = row_k[k];
            self.nz.clear();
            for (j, &v) in row_k.iter().enumerate().skip(k + 1) {
                if v != 0.0 {
                    self.nz.push(j as u32);
                }
            }
            for row_r in lower.chunks_exact_mut(n) {
                let factor = row_r[k] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for &j in &self.nz {
                    let j = j as usize;
                    row_r[j] -= factor * row_k[j];
                }
            }
        }
        self.symbolic(pattern);
        self.built = true;
        true
    }

    /// Left-looking symbolic factorization for the frozen row order:
    /// permuted row `i`'s pattern is the union of A-row `perm[i]` with
    /// the U-patterns of every L-column it touches (in ascending column
    /// order), plus the forced diagonal. Classic Gilbert–Peierls
    /// reachability, specialised to a static order.
    fn symbolic(&mut self, pattern: &SparsePattern) {
        let n = self.n;
        self.lu_row_ptr.clear();
        self.lu_row_ptr.push(0);
        self.lu_col.clear();
        self.lu_diag.clear();
        self.mark.clear();
        self.mark.resize(n, false);
        for i in 0..n {
            let row_start = self.lu_col.len();
            let (cols, _) = pattern.row(self.perm[i] as usize);
            for &c in cols {
                self.mark[c as usize] = true;
            }
            self.mark[i] = true;
            // Closure: an entry in L-column k pulls in U-row k's columns
            // (all > k), which the ascending scan then revisits, so every
            // transitive fill column is reached in one pass.
            for k in 0..i {
                if self.mark[k] {
                    let k_hi = self.lu_row_ptr[k + 1] as usize;
                    for s in (self.lu_diag[k] as usize + 1)..k_hi {
                        self.mark[self.lu_col[s] as usize] = true;
                    }
                }
            }
            // Gather in ascending column order (required by the numeric
            // refactor's update sequence), clearing marks as we go.
            let mut diag = 0u32;
            for c in 0..n {
                if self.mark[c] {
                    self.mark[c] = false;
                    if c == i {
                        diag = self.lu_col.len() as u32;
                    }
                    self.lu_col.push(c as u32);
                }
            }
            debug_assert!(diag as usize >= row_start);
            self.lu_diag.push(diag);
            self.lu_row_ptr.push(self.lu_col.len() as u32);
        }
        self.lu_val.clear();
        self.lu_val.resize(self.lu_col.len(), 0.0);
        self.w.clear();
        self.w.resize(n, 0.0);
    }

    /// Numeric refactorization in the frozen pattern: for each permuted
    /// row, scatter the A-row into the dense scratch, apply the U-rows
    /// of its L-columns in ascending order (the same update sequence,
    /// element for element, as the dense right-looking elimination),
    /// then gather back. No pivot search; the decay guard compares each
    /// pivot against its freeze-time magnitude. Returns `false` on a
    /// decayed or vanishing pivot.
    fn refactor(&mut self, pattern: &SparsePattern, values: &[f64]) -> bool {
        let n = self.n;
        for i in 0..n {
            let (lo, hi) = (self.lu_row_ptr[i] as usize, self.lu_row_ptr[i + 1] as usize);
            for &c in &self.lu_col[lo..hi] {
                self.w[c as usize] = 0.0;
            }
            let (cols, first) = pattern.row(self.perm[i] as usize);
            for (k, &c) in cols.iter().enumerate() {
                self.w[c as usize] = values[first + k];
            }
            for s in lo..hi {
                let k = self.lu_col[s] as usize;
                if k >= i {
                    break;
                }
                let factor = self.w[k] / self.lu_val[self.lu_diag[k] as usize];
                self.w[k] = factor;
                if factor == 0.0 {
                    continue;
                }
                let k_hi = self.lu_row_ptr[k + 1] as usize;
                for t in (self.lu_diag[k] as usize + 1)..k_hi {
                    self.w[self.lu_col[t] as usize] -= factor * self.lu_val[t];
                }
            }
            let pivot = self.w[i].abs();
            if pivot < PIVOT_EPS || pivot < PIVOT_DECAY * self.ref_pivot[i] {
                return false;
            }
            for s in lo..hi {
                self.lu_val[s] = self.w[self.lu_col[s] as usize];
            }
        }
        true
    }

    /// Forward substitution over unit-diagonal L (with the frozen row
    /// permutation applied to `b`), then back substitution over U.
    /// Returns `false` if the solution is non-finite.
    fn solve_rhs(&self, b: &[f64], x: &mut Vec<f64>) -> bool {
        let n = self.n;
        x.clear();
        x.resize(n, 0.0);
        for i in 0..n {
            let mut acc = b[self.perm[i] as usize];
            let lo = self.lu_row_ptr[i] as usize;
            let diag = self.lu_diag[i] as usize;
            for s in lo..diag {
                acc -= self.lu_val[s] * x[self.lu_col[s] as usize];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let diag = self.lu_diag[i] as usize;
            let hi = self.lu_row_ptr[i + 1] as usize;
            let mut acc = x[i];
            for s in (diag + 1)..hi {
                acc -= self.lu_val[s] * x[self.lu_col[s] as usize];
            }
            x[i] = acc / self.lu_val[diag];
        }
        x.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_rows(rows: &[&[f64]]) -> DenseMatrix {
        let n = rows.len();
        let mut m = DenseMatrix::zeros(n);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n);
            for (c, &v) in row.iter().enumerate() {
                m.set(r, c, v);
            }
        }
        m
    }

    #[test]
    fn identity_solve() {
        let m = from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = m.solve(&[3.0, 4.0]).expect("nonsingular");
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_a_known_system() {
        let m = from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = m.solve(&[8.0, -11.0, -3.0]).expect("nonsingular");
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expected.iter()) {
            assert!((xi - ei).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let m = from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = m.solve(&[5.0, 7.0]).expect("nonsingular with pivoting");
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let m = from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(m.solve(&[1.0, 2.0]).is_none());
        let z = DenseMatrix::zeros(3);
        assert!(z.solve(&[0.0; 3]).is_none());
    }

    #[test]
    fn solve_does_not_mutate_matrix() {
        let m = from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let copy = m.clone();
        let _ = m.solve(&[10.0, 12.0]);
        assert_eq!(m, copy);
    }

    #[test]
    fn residual_is_tiny_for_ill_conditioned_scaling() {
        // Conductances in a real MNA system span ~1e-12 .. 1e-2 S.
        let m = from_rows(&[
            &[1e-2, -1e-2, 0.0],
            &[-1e-2, 1e-2 + 1e-12, -1e-12],
            &[0.0, -1e-12, 2e-12],
        ]);
        let b = [1e-3, 0.0, 1e-15];
        let x = m.solve(&b).expect("solvable");
        let r = m.mul_vec(&x);
        // The system's condition number is ~1e10; accept residuals small
        // relative to the RHS scale rather than entry-exact.
        let scale = b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (ri, bi) in r.iter().zip(b.iter()) {
            assert!((ri - bi).abs() < 1e-5 * scale, "{r:?}");
        }
    }

    #[test]
    fn stamp_add_accumulates() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 0, 2.5);
        assert_eq!(m.get(0, 0), 3.5);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.dim(), 2);
    }

    #[test]
    #[should_panic(expected = "rhs length mismatch")]
    fn wrong_rhs_length_panics() {
        let m = DenseMatrix::zeros(2);
        let _ = m.solve(&[1.0]);
    }

    #[test]
    fn solve_into_matches_solve_bit_for_bit() {
        // An awkwardly scaled system that forces pivoting and a zero
        // fill-in skip, exercising every branch of the elimination.
        let m = from_rows(&[
            &[0.0, 2.0, 1.0, 0.0],
            &[1e-6, -1.0, 0.5, 0.0],
            &[3.0, 0.25, -2.0, 1e-9],
            &[0.0, 0.0, 1e3, 4.0],
        ]);
        let b = [1.0, -2.5, 3e-3, 0.7];
        let via_alloc = m.solve(&b).expect("nonsingular");
        let mut scratch = LuScratch::for_dim(4);
        let mut x = Vec::new();
        assert!(m.solve_into(&b, &mut scratch, &mut x));
        assert_eq!(via_alloc, x, "solve and solve_into must agree exactly");
        // Reuse the same scratch for a second system of the same size.
        let b2 = [0.0, 1.0, 0.0, -1.0];
        let mut x2 = Vec::new();
        assert!(m.solve_into(&b2, &mut scratch, &mut x2));
        assert_eq!(m.solve(&b2).expect("nonsingular"), x2);
    }

    #[test]
    fn solve_in_place_matches_solve_and_consumes_matrix() {
        let rows: &[&[f64]] = &[
            &[0.0, 2.0, 1.0, 0.0],
            &[1e-6, -1.0, 0.5, 0.0],
            &[3.0, 0.25, -2.0, 1e-9],
            &[0.0, 0.0, 1e3, 4.0],
        ];
        let b = [1.0, -2.5, 3e-3, 0.7];
        let pristine = from_rows(rows);
        let via_alloc = pristine.solve(&b).expect("nonsingular");
        let mut m = from_rows(rows);
        let mut scratch = LuScratch::for_dim(4);
        let mut x = Vec::new();
        assert!(m.solve_in_place(&b, &mut scratch, &mut x));
        assert_eq!(via_alloc, x, "solve and solve_in_place must agree exactly");
        // The matrix now holds elimination residue, not A.
        assert_ne!(m, pristine);
        // Singular systems are still detected.
        let mut s = from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(!s.solve_in_place(&[1.0, 2.0], &mut scratch, &mut x));
    }

    #[test]
    fn solve_into_reports_singularity() {
        let m = from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut scratch = LuScratch::new();
        let mut x = Vec::new();
        assert!(!m.solve_into(&[1.0, 2.0], &mut scratch, &mut x));
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_bounds_panics() {
        let m = DenseMatrix::zeros(2);
        let _ = m.get(2, 0);
    }

    /// Builds a pattern + CSR values from a dense row specification,
    /// treating exact zeros as structural zeros.
    fn sparse_from_rows(rows: &[&[f64]]) -> (SparsePattern, Vec<f64>) {
        let n = rows.len();
        let mut entries = Vec::new();
        for (r, row) in rows.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    entries.push((r as u32, c as u32));
                }
            }
        }
        let pattern = SparsePattern::from_entries(n, entries);
        let mut values = vec![0.0; pattern.nnz()];
        for (r, row) in rows.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    pattern.add_into(&mut values, r, c, v);
                }
            }
        }
        (pattern, values)
    }

    #[test]
    fn sparse_pattern_layout_and_stamping() {
        let pattern = SparsePattern::from_entries(3, vec![(2, 0), (0, 0), (0, 2), (1, 1), (0, 0)]);
        assert_eq!(pattern.dim(), 3);
        assert_eq!(pattern.nnz(), 4, "duplicates merge");
        let mut values = vec![0.0; pattern.nnz()];
        pattern.add_into(&mut values, 0, 0, 1.5);
        pattern.add_into(&mut values, 0, 0, 0.5);
        pattern.add_into(&mut values, 2, 0, -1.0);
        assert_eq!(values, vec![2.0, 0.0, 0.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "outside the frozen pattern")]
    fn sparse_stamp_outside_pattern_panics() {
        let pattern = SparsePattern::from_entries(2, vec![(0, 0), (1, 1)]);
        let mut values = vec![0.0; 2];
        pattern.add_into(&mut values, 0, 1, 1.0);
    }

    #[test]
    fn sparse_first_solve_matches_dense_bit_for_bit() {
        // The same awkward system the dense tests use: forces pivoting,
        // fill-in, and zero-skip branches.
        let rows: &[&[f64]] = &[
            &[0.0, 2.0, 1.0, 0.0],
            &[1e-6, -1.0, 0.5, 0.0],
            &[3.0, 0.25, -2.0, 1e-9],
            &[0.0, 0.0, 1e3, 4.0],
        ];
        let b = [1.0, -2.5, 3e-3, 0.7];
        let dense = from_rows(rows).solve(&b).expect("nonsingular");
        let (pattern, values) = sparse_from_rows(rows);
        let mut sym = SymbolicLu::new();
        let mut x = Vec::new();
        let outcome = sym
            .factor_and_solve(&pattern, &values, &b, &mut x)
            .expect("nonsingular");
        assert_eq!(outcome, SparseSolveOutcome::Built);
        assert!(sym.lu_nnz() >= pattern.nnz());
        for (s, d) in x.iter().zip(dense.iter()) {
            assert_eq!(s.to_bits(), d.to_bits(), "sparse {x:?} vs dense {dense:?}");
        }
    }

    #[test]
    fn sparse_refactor_in_pattern_matches_dense() {
        let rows: &[&[f64]] = &[
            &[4.0, -1.0, 0.0, -1.0],
            &[-1.0, 4.0, -1.0, 0.0],
            &[0.0, -1.0, 4.0, -1.0],
            &[-1.0, 0.0, -1.0, 4.0],
        ];
        let (pattern, mut values) = sparse_from_rows(rows);
        let mut sym = SymbolicLu::new();
        let mut x = Vec::new();
        let b = [1.0, 0.0, -2.0, 0.5];
        assert_eq!(
            sym.factor_and_solve(&pattern, &values, &b, &mut x),
            Some(SparseSolveOutcome::Built)
        );
        // Perturb values (same structure, same diagonal dominance) and
        // solve again: the pattern is reused and the result matches a
        // from-scratch dense solve bit for bit.
        for (k, v) in values.iter_mut().enumerate() {
            *v *= 1.0 + 0.01 * (k as f64 + 1.0);
        }
        let mut dense = DenseMatrix::zeros(4);
        for r in 0..4 {
            let (cols, first) = pattern.row(r);
            for (k, &c) in cols.iter().enumerate() {
                dense.set(r, c as usize, values[first + k]);
            }
        }
        let want = dense.solve(&b).expect("nonsingular");
        assert_eq!(
            sym.factor_and_solve(&pattern, &values, &b, &mut x),
            Some(SparseSolveOutcome::ReusedPattern)
        );
        for (s, d) in x.iter().zip(want.iter()) {
            assert_eq!(s.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn sparse_repivots_when_frozen_pivot_decays() {
        // Freeze the order on a matrix where row 0 dominates column 0,
        // then collapse that entry by 12 orders of magnitude so the
        // frozen pivot fails the decay guard and a re-pivot kicks in.
        let rows: &[&[f64]] = &[&[1.0, 1.0], &[2e-2, 1.0]];
        let (pattern, mut values) = sparse_from_rows(rows);
        let mut sym = SymbolicLu::new();
        let mut x = Vec::new();
        let b = [1.0, 3.0];
        assert_eq!(
            sym.factor_and_solve(&pattern, &values, &b, &mut x),
            Some(SparseSolveOutcome::Built)
        );
        pattern.add_into(&mut values, 0, 0, 1e-12 - 1.0);
        let outcome = sym
            .factor_and_solve(&pattern, &values, &b, &mut x)
            .expect("still nonsingular");
        assert_eq!(outcome, SparseSolveOutcome::Repivoted);
        // Verify against a dense solve of the perturbed system.
        let mut dense = DenseMatrix::zeros(2);
        dense.set(0, 0, 1e-12);
        dense.set(0, 1, 1.0);
        dense.set(1, 0, 2e-2);
        dense.set(1, 1, 1.0);
        let want = dense.solve(&b).expect("nonsingular");
        for (s, d) in x.iter().zip(want.iter()) {
            assert!(
                (s - d).abs() <= 1e-9 * d.abs().max(1.0),
                "{x:?} vs {want:?}"
            );
        }
    }

    #[test]
    fn sparse_detects_singularity() {
        let rows: &[&[f64]] = &[&[1.0, 2.0], &[2.0, 4.0]];
        let (pattern, values) = sparse_from_rows(rows);
        let mut sym = SymbolicLu::new();
        let mut x = Vec::new();
        assert!(sym
            .factor_and_solve(&pattern, &values, &[1.0, 2.0], &mut x)
            .is_none());
        // A singular matrix handed to an already-built symbolic object
        // (structure reused, values degenerate) is also caught: the
        // refactor fails the decay guard, the re-pivot build fails too.
        let rows_ok: &[&[f64]] = &[&[1.0, 2.0], &[2.0, 1.0]];
        let (p2, mut v2) = sparse_from_rows(rows_ok);
        assert!(sym
            .factor_and_solve(&p2, &v2, &[1.0, 2.0], &mut x)
            .is_some());
        p2.add_into(&mut v2, 1, 1, 3.0); // rows become [1,2],[2,4]
        assert!(sym
            .factor_and_solve(&p2, &v2, &[1.0, 2.0], &mut x)
            .is_none());
    }

    #[test]
    fn sparse_handles_empty_system() {
        let pattern = SparsePattern::from_entries(0, Vec::new());
        let mut sym = SymbolicLu::new();
        let mut x = vec![1.0];
        assert!(sym.factor_and_solve(&pattern, &[], &[], &mut x).is_some());
        assert!(x.is_empty());
    }

    #[test]
    fn sparse_invalidate_forces_rebuild() {
        let rows: &[&[f64]] = &[&[2.0, 1.0], &[1.0, 3.0]];
        let (pattern, values) = sparse_from_rows(rows);
        let mut sym = SymbolicLu::new();
        let mut x = Vec::new();
        let b = [1.0, 1.0];
        assert_eq!(
            sym.factor_and_solve(&pattern, &values, &b, &mut x),
            Some(SparseSolveOutcome::Built)
        );
        assert!(sym.is_built());
        sym.invalidate();
        assert_eq!(
            sym.factor_and_solve(&pattern, &values, &b, &mut x),
            Some(SparseSolveOutcome::Built)
        );
    }
}
