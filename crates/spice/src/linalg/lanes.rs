//! Lane-replicated sparse LU: one symbolic factorization, `LANES`
//! numeric factorizations advancing in lockstep.
//!
//! A batched Monte-Carlo or corner sweep solves many systems that share
//! one structural pattern and differ only in values. The symbolic work —
//! pivot order, fill-in, CSR layout of `L+U` — is identical across the
//! batch, so [`SymbolicLuLanes`] freezes it **once** from a reference
//! lane (lane 0) and then runs the left-looking refactorization over
//! `[f64; LANES]` value blocks: every nonzero of `L+U` holds one value
//! per lane, the inner update loops are straight-line arithmetic over
//! the lane arrays, and the compiler autovectorizes them.
//!
//! # Numeric contract
//!
//! For each lane `k`, the factorization and solve perform the same
//! arithmetic sequence as a scalar [`SymbolicLu`] whose pivot order was
//! frozen from the reference lane's values and then refactored in
//! pattern with lane `k`'s values — bit for bit (up to the sign of
//! zero, which the lane kernel reproduces exactly by turning the scalar
//! path's `factor == 0` skip into a subtract-of-exact-zero). The
//! differential tests below pin that equivalence.
//!
//! # Per-lane failure
//!
//! The frozen order can be safe for some lanes and stale for others.
//! Failure is therefore **per lane**: a lane whose pivot decays below
//! the freeze-time guard, or whose solution comes out non-finite, is
//! dropped from the returned [`LaneSolveReport::ok`] mask while the
//! remaining lanes complete normally. Only when *every* lane fails does
//! the engine re-freeze the pivot order from the current reference lane
//! and retry once — the lane analogue of the scalar auto-re-pivot.

use super::{SparsePattern, SparseSolveOutcome, SymbolicLu, PIVOT_DECAY, PIVOT_EPS};

/// Bitmask with the low `lanes` bits set — the "every lane ok" value of
/// a [`LaneSolveReport::ok`] mask.
///
/// # Examples
///
/// ```
/// assert_eq!(spice::linalg::lanes::all_lanes(4), 0b1111);
/// assert_eq!(spice::linalg::lanes::all_lanes(64), u64::MAX);
/// ```
#[must_use]
pub fn all_lanes(lanes: usize) -> u64 {
    if lanes >= 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Extracts one lane of a lane-replicated value array — the bridge from
/// batched storage to any scalar API (and to the differential tests).
#[must_use]
pub fn lane_values<const LANES: usize>(values: &[[f64; LANES]], lane: usize) -> Vec<f64> {
    values.iter().map(|v| v[lane]).collect()
}

/// Broadcasts a scalar value array to every lane — the starting point
/// for sweeps that perturb individual lanes afterwards.
#[must_use]
pub fn splat_values<const LANES: usize>(values: &[f64]) -> Vec<[f64; LANES]> {
    values.iter().map(|&v| [v; LANES]).collect()
}

impl SparsePattern {
    /// Adds `value` to lane `lane` of the CSR slot backing
    /// `(row, col)` — the lane-replicated counterpart of
    /// [`SparsePattern::add_into`].
    ///
    /// # Panics
    ///
    /// Panics if `(row, col)` is a structural zero of the pattern.
    #[inline]
    pub fn add_into_lane<const LANES: usize>(
        &self,
        values: &mut [[f64; LANES]],
        row: usize,
        col: usize,
        lane: usize,
        value: f64,
    ) {
        let slot = self.slot_of[row * self.n + col];
        assert!(
            slot != Self::NO_SLOT,
            "stamp at ({row}, {col}) outside the frozen pattern"
        );
        values[slot as usize][lane] += value;
    }

    /// Adds `value` to **every** lane of the CSR slot backing
    /// `(row, col)` — for stamps shared by the whole batch (the fixed
    /// circuit topology around the varying devices).
    ///
    /// # Panics
    ///
    /// Panics if `(row, col)` is a structural zero of the pattern.
    #[inline]
    pub fn add_into_all<const LANES: usize>(
        &self,
        values: &mut [[f64; LANES]],
        row: usize,
        col: usize,
        value: f64,
    ) {
        let slot = self.slot_of[row * self.n + col];
        assert!(
            slot != Self::NO_SLOT,
            "stamp at ({row}, {col}) outside the frozen pattern"
        );
        for v in &mut values[slot as usize] {
            *v += value;
        }
    }
}

/// Outcome of a [`SymbolicLuLanes::factor_and_solve`] call: which
/// symbolic path ran, and which lanes produced a trustworthy solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneSolveReport {
    /// The symbolic path taken, shared by all lanes (the pivot order is
    /// frozen once per batch, from the reference lane).
    pub outcome: SparseSolveOutcome,
    /// Bit `l` set ⇔ lane `l`'s pivots stayed inside the decay guard
    /// and its solution is finite. Masked-out lanes hold unspecified
    /// values in `x` and must be retried scalar (or retired) by the
    /// caller.
    pub ok: u64,
}

impl LaneSolveReport {
    /// Whether lane `lane` solved successfully.
    #[must_use]
    pub fn lane_ok(&self, lane: usize) -> bool {
        (self.ok >> lane) & 1 == 1
    }

    /// Whether every one of the first `lanes` lanes solved successfully.
    #[must_use]
    pub fn all_ok(&self, lanes: usize) -> bool {
        self.ok & all_lanes(lanes) == all_lanes(lanes)
    }
}

/// Static symbolic LU over `LANES` value sets sharing one structural
/// pattern: the lane-batched counterpart of [`SymbolicLu`].
///
/// The pivot order, fill pattern and decay references are frozen from
/// the **reference lane** (lane 0); the numeric refactorization and the
/// triangular solves then run all lanes in lockstep over `[f64; LANES]`
/// blocks. See the module docs for the per-lane numeric contract.
#[derive(Debug, Clone, Default)]
pub struct SymbolicLuLanes<const LANES: usize> {
    /// Frozen pivot order, `L+U` pattern and decay references — built
    /// from the reference lane by the scalar engine, so the lane and
    /// scalar paths cannot disagree about the symbolic step.
    sym: SymbolicLu,
    /// `L+U` values, one per lane per structural nonzero of the frozen
    /// factorization (the lane-replicated `SymbolicLu::lu_val`).
    lu_val: Vec<[f64; LANES]>,
    /// Dense scratch row for the left-looking scatter/gather.
    w: Vec<[f64; LANES]>,
    /// Scratch: the reference lane's values, gathered for (re)builds.
    ref_vals: Vec<f64>,
}

impl<const LANES: usize> SymbolicLuLanes<LANES> {
    /// Creates an empty lane engine; it builds itself on the first
    /// [`SymbolicLuLanes::factor_and_solve`] call.
    ///
    /// # Panics
    ///
    /// Panics if `LANES` is 0 or exceeds 64 (the `ok` mask is a `u64`).
    #[must_use]
    pub fn new() -> Self {
        assert!(
            (1..=64).contains(&LANES),
            "lane count {LANES} outside 1..=64"
        );
        Self::default()
    }

    /// Whether a pivot order is currently frozen.
    #[must_use]
    pub fn is_built(&self) -> bool {
        self.sym.is_built()
    }

    /// Structural nonzeros of `L + U` including fill-in (0 before the
    /// first build). Each holds `LANES` values.
    #[must_use]
    pub fn lu_nnz(&self) -> usize {
        self.sym.lu_nnz()
    }

    /// Drops the frozen pivot order, forcing a rebuild on the next
    /// solve. Called when the pattern itself changes.
    pub fn invalidate(&mut self) {
        self.sym.invalidate();
    }

    /// Factors the lane-replicated `values` (laid out per `pattern`)
    /// and solves for the lane-replicated `b`, writing one solution per
    /// lane into `x`.
    ///
    /// Freezes the pivot order from the reference lane on first use and
    /// reuses it afterwards. Lanes fail *individually* — see
    /// [`LaneSolveReport::ok`]; only when all lanes fail the frozen
    /// order at once does the engine re-freeze from the current
    /// reference values and retry.
    ///
    /// Returns `None` when no lane can be solved at all (reference lane
    /// singular at build time, or every lane still failing after the
    /// re-freeze) — the lane analogue of the scalar engine's `None`.
    ///
    /// # Panics
    ///
    /// Panics if `values`, `b` or the pattern dimensions disagree.
    pub fn factor_and_solve(
        &mut self,
        pattern: &SparsePattern,
        values: &[[f64; LANES]],
        b: &[[f64; LANES]],
        x: &mut Vec<[f64; LANES]>,
    ) -> Option<LaneSolveReport> {
        assert_eq!(values.len(), pattern.nnz(), "value/pattern mismatch");
        assert_eq!(b.len(), pattern.dim(), "rhs length mismatch");
        let mut outcome = SparseSolveOutcome::ReusedPattern;
        if !self.sym.built || self.sym.n != pattern.dim() {
            if !self.rebuild_reference(pattern, values) {
                return None;
            }
            outcome = SparseSolveOutcome::Built;
        }
        let mut ok = self.refactor_lanes(pattern, values);
        if ok == 0 {
            // Every lane failed the frozen order — stale across the
            // whole batch. Re-freeze from the current reference lane
            // and retry once, mirroring the scalar auto-re-pivot.
            if !self.rebuild_reference(pattern, values) {
                return None;
            }
            ok = self.refactor_lanes(pattern, values);
            if ok == 0 {
                return None;
            }
            outcome = SparseSolveOutcome::Repivoted;
        }
        let finite = self.solve_rhs_lanes(b, x);
        Some(LaneSolveReport {
            outcome,
            ok: ok & finite,
        })
    }

    /// Freezes pivot order, fill pattern and decay references from the
    /// reference lane via the scalar engine, then sizes the lane value
    /// storage for the resulting `L+U` layout.
    fn rebuild_reference(&mut self, pattern: &SparsePattern, values: &[[f64; LANES]]) -> bool {
        self.ref_vals.clear();
        self.ref_vals.extend(values.iter().map(|v| v[0]));
        if !self.sym.rebuild(pattern, &self.ref_vals) {
            return false;
        }
        self.lu_val.clear();
        self.lu_val.resize(self.sym.lu_col.len(), [0.0; LANES]);
        self.w.clear();
        self.w.resize(self.sym.n, [0.0; LANES]);
        true
    }

    /// Left-looking numeric refactorization in the frozen pattern, all
    /// lanes in lockstep. Returns the mask of lanes whose every pivot
    /// passed the freeze-time decay guard.
    ///
    /// Arithmetic per lane matches [`SymbolicLu::refactor`] bit for
    /// bit: the scalar path skips the inner update when a factor is
    /// exactly zero, which the lane path reproduces by subtracting an
    /// exact zero instead (`v - 0.0` is an identity for every finite
    /// `v`, including `-0.0`), keeping the loop branch-free over lanes.
    /// A failed lane keeps computing — its garbage stays in its lane —
    /// so healthy lanes are unaffected.
    fn refactor_lanes(&mut self, pattern: &SparsePattern, values: &[[f64; LANES]]) -> u64 {
        let n = self.sym.n;
        let mut ok = all_lanes(LANES);
        for i in 0..n {
            let (lo, hi) = (
                self.sym.lu_row_ptr[i] as usize,
                self.sym.lu_row_ptr[i + 1] as usize,
            );
            for &c in &self.sym.lu_col[lo..hi] {
                self.w[c as usize] = [0.0; LANES];
            }
            let (cols, first) = pattern.row(self.sym.perm[i] as usize);
            for (k, &c) in cols.iter().enumerate() {
                self.w[c as usize] = values[first + k];
            }
            for s in lo..hi {
                let k = self.sym.lu_col[s] as usize;
                if k >= i {
                    break;
                }
                let diag = self.lu_val[self.sym.lu_diag[k] as usize];
                let mut factor = [0.0; LANES];
                for l in 0..LANES {
                    factor[l] = self.w[k][l] / diag[l];
                }
                self.w[k] = factor;
                let k_hi = self.sym.lu_row_ptr[k + 1] as usize;
                for t in (self.sym.lu_diag[k] as usize + 1)..k_hi {
                    let lu_t = self.lu_val[t];
                    let wc = &mut self.w[self.sym.lu_col[t] as usize];
                    for l in 0..LANES {
                        let delta = if factor[l] == 0.0 {
                            0.0
                        } else {
                            factor[l] * lu_t[l]
                        };
                        wc[l] -= delta;
                    }
                }
            }
            let ref_pivot = self.sym.ref_pivot[i];
            for l in 0..LANES {
                let pivot = self.w[i][l].abs();
                if pivot < PIVOT_EPS || pivot < PIVOT_DECAY * ref_pivot {
                    ok &= !(1u64 << l);
                }
            }
            for s in lo..hi {
                self.lu_val[s] = self.w[self.sym.lu_col[s] as usize];
            }
        }
        ok
    }

    /// Forward substitution over unit-diagonal `L` (frozen permutation
    /// applied to `b`), then back substitution over `U`, all lanes in
    /// lockstep. Returns the mask of lanes with a finite solution.
    fn solve_rhs_lanes(&self, b: &[[f64; LANES]], x: &mut Vec<[f64; LANES]>) -> u64 {
        let n = self.sym.n;
        x.clear();
        x.resize(n, [0.0; LANES]);
        for i in 0..n {
            let mut acc = b[self.sym.perm[i] as usize];
            let lo = self.sym.lu_row_ptr[i] as usize;
            let diag = self.sym.lu_diag[i] as usize;
            for s in lo..diag {
                let xc = x[self.sym.lu_col[s] as usize];
                let lu_s = self.lu_val[s];
                for l in 0..LANES {
                    acc[l] -= lu_s[l] * xc[l];
                }
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let diag = self.sym.lu_diag[i] as usize;
            let hi = self.sym.lu_row_ptr[i + 1] as usize;
            let mut acc = x[i];
            for s in (diag + 1)..hi {
                let xc = x[self.sym.lu_col[s] as usize];
                let lu_s = self.lu_val[s];
                for l in 0..LANES {
                    acc[l] -= lu_s[l] * xc[l];
                }
            }
            let d = self.lu_val[diag];
            for l in 0..LANES {
                acc[l] /= d[l];
            }
            x[i] = acc;
        }
        let mut finite = all_lanes(LANES);
        for xi in x.iter() {
            for (l, v) in xi.iter().enumerate() {
                if !v.is_finite() {
                    finite &= !(1u64 << l);
                }
            }
        }
        finite
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a pattern + lane-replicated values from per-lane dense row
    /// specifications (exact zeros are structural zeros; the structure
    /// must agree across lanes).
    fn sparse_lanes_from_rows<const LANES: usize>(
        per_lane: &[&[&[f64]]],
    ) -> (SparsePattern, Vec<[f64; LANES]>) {
        assert_eq!(per_lane.len(), LANES);
        let n = per_lane[0].len();
        let mut entries = Vec::new();
        for (r, row) in per_lane[0].iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    entries.push((r as u32, c as u32));
                }
            }
        }
        let pattern = SparsePattern::from_entries(n, entries);
        let mut values = vec![[0.0; LANES]; pattern.nnz()];
        for (lane, rows) in per_lane.iter().enumerate() {
            for (r, row) in rows.iter().enumerate() {
                for (c, &v) in row.iter().enumerate() {
                    if v != 0.0 {
                        pattern.add_into_lane(&mut values, r, c, lane, v);
                    }
                }
            }
        }
        (pattern, values)
    }

    /// Scalar reference for lane `k`: a `SymbolicLu` frozen on the
    /// reference lane's values, then refactored in pattern on lane
    /// `k`'s values — the exact contract the lane engine promises.
    fn scalar_reference(
        pattern: &SparsePattern,
        values: &[Vec<f64>],
        b: &[Vec<f64>],
    ) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        for (lane, vals) in values.iter().enumerate() {
            let mut sym = SymbolicLu::new();
            let mut x = Vec::new();
            assert_eq!(
                sym.factor_and_solve(pattern, &values[0], &b[0], &mut x),
                Some(SparseSolveOutcome::Built)
            );
            if lane > 0 {
                assert_eq!(
                    sym.factor_and_solve(pattern, vals, &b[lane], &mut x),
                    Some(SparseSolveOutcome::ReusedPattern)
                );
            }
            out.push(x);
        }
        out
    }

    const AWKWARD: &[&[f64]] = &[
        &[0.0, 2.0, 1.0, 0.0],
        &[1e-6, -1.0, 0.5, 0.0],
        &[3.0, 0.25, -2.0, 1e-9],
        &[0.0, 0.0, 1e3, 4.0],
    ];

    /// What [`awkward_lanes`] hands back: the pattern, lane-packed
    /// values and RHS, and the same values/RHS as per-lane scalar rows.
    type AwkwardLanes<const LANES: usize> = (
        SparsePattern,
        Vec<[f64; LANES]>,
        Vec<[f64; LANES]>,
        Vec<Vec<f64>>,
        Vec<Vec<f64>>,
    );

    /// Per-lane value/rhs sets over the awkward system: lane 0 is the
    /// base, later lanes perturb values and RHS without changing the
    /// structure or the safe pivot order.
    fn awkward_lanes<const LANES: usize>() -> AwkwardLanes<LANES> {
        let mut entries = Vec::new();
        for (r, row) in AWKWARD.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    entries.push((r as u32, c as u32));
                }
            }
        }
        let pattern = SparsePattern::from_entries(4, entries);
        let mut values = vec![[0.0; LANES]; pattern.nnz()];
        let mut b = vec![[0.0; LANES]; 4];
        let mut scalar_vals = Vec::new();
        let mut scalar_b = Vec::new();
        for lane in 0..LANES {
            let scale = 1.0 + 0.03 * lane as f64;
            for (r, row) in AWKWARD.iter().enumerate() {
                for (c, &v) in row.iter().enumerate() {
                    if v != 0.0 {
                        pattern.add_into_lane(&mut values, r, c, lane, v * scale);
                    }
                }
            }
            for (r, bl) in b.iter_mut().enumerate() {
                bl[lane] = 1.0 + r as f64 - 0.1 * lane as f64;
            }
            scalar_vals.push(lane_values(&values, lane));
            scalar_b.push(b.iter().map(|row| row[lane]).collect());
        }
        (pattern, values, b, scalar_vals, scalar_b)
    }

    #[test]
    fn every_lane_matches_its_scalar_reference_bit_for_bit() {
        const LANES: usize = 4;
        let (pattern, values, b, scalar_vals, scalar_b) = awkward_lanes::<LANES>();
        let want = scalar_reference(&pattern, &scalar_vals, &scalar_b);

        let mut engine = SymbolicLuLanes::<LANES>::new();
        let mut x = Vec::new();
        let report = engine
            .factor_and_solve(&pattern, &values, &b, &mut x)
            .expect("solvable");
        assert_eq!(report.outcome, SparseSolveOutcome::Built);
        assert!(report.all_ok(LANES), "ok mask {:b}", report.ok);
        for lane in 0..LANES {
            for (xi, wi) in x.iter().zip(want[lane].iter()) {
                assert_eq!(
                    xi[lane].to_bits(),
                    wi.to_bits(),
                    "lane {lane}: {} vs {wi}",
                    xi[lane]
                );
            }
        }

        // Second call reuses the frozen order and still matches.
        let report = engine
            .factor_and_solve(&pattern, &values, &b, &mut x)
            .expect("solvable");
        assert_eq!(report.outcome, SparseSolveOutcome::ReusedPattern);
        for lane in 0..LANES {
            for (xi, wi) in x.iter().zip(want[lane].iter()) {
                assert_eq!(xi[lane].to_bits(), wi.to_bits());
            }
        }
    }

    #[test]
    fn a_decayed_lane_is_masked_while_the_rest_complete() {
        // Freeze on values where row 0 dominates column 0, then collapse
        // that entry in lane 1 only: lane 1 fails the decay guard, lane
        // 0 must keep its bit-exact result.
        const LANES: usize = 2;
        let base: &[&[f64]] = &[&[1.0, 1.0], &[2e-2, 1.0]];
        let (pattern, mut values) = sparse_lanes_from_rows::<LANES>(&[base, base]);
        let b = [[1.0, 1.0], [3.0, 3.0]];
        let mut engine = SymbolicLuLanes::<LANES>::new();
        let mut x = Vec::new();
        let report = engine
            .factor_and_solve(&pattern, &values, &b, &mut x)
            .expect("solvable");
        assert!(report.all_ok(LANES));

        pattern.add_into_lane(&mut values, 0, 0, 1, 1e-12 - 1.0);
        let report = engine
            .factor_and_solve(&pattern, &values, &b, &mut x)
            .expect("lane 0 still solvable");
        assert_eq!(report.outcome, SparseSolveOutcome::ReusedPattern);
        assert!(report.lane_ok(0));
        assert!(!report.lane_ok(1), "decayed lane must be masked");

        let mut scalar = SymbolicLu::new();
        let mut want = Vec::new();
        assert!(scalar
            .factor_and_solve(&pattern, &lane_values(&values, 0), &[1.0, 3.0], &mut want)
            .is_some());
        for (xi, wi) in x.iter().zip(want.iter()) {
            assert_eq!(xi[0].to_bits(), wi.to_bits());
        }
    }

    #[test]
    fn when_every_lane_decays_the_engine_repivots_once() {
        const LANES: usize = 2;
        let base: &[&[f64]] = &[&[1.0, 1.0], &[2e-2, 1.0]];
        let (pattern, mut values) = sparse_lanes_from_rows::<LANES>(&[base, base]);
        let b = [[1.0, 1.0], [3.0, 3.0]];
        let mut engine = SymbolicLuLanes::<LANES>::new();
        let mut x = Vec::new();
        assert!(engine
            .factor_and_solve(&pattern, &values, &b, &mut x)
            .is_some());

        // Collapse (0, 0) in *both* lanes: the frozen order is stale for
        // the whole batch, so one re-freeze from the (new) reference
        // values rescues every lane.
        pattern.add_into_all(&mut values, 0, 0, 1e-12 - 1.0);
        let report = engine
            .factor_and_solve(&pattern, &values, &b, &mut x)
            .expect("solvable after re-pivot");
        assert_eq!(report.outcome, SparseSolveOutcome::Repivoted);
        assert!(report.all_ok(LANES), "ok mask {:b}", report.ok);
        // x ≈ [2e-12-ish, 1] per lane; check against the scalar engine
        // driven through the same collapse (which also re-pivots).
        let mut scalar = SymbolicLu::new();
        let mut want = Vec::new();
        let base_vals = lane_values(&values, 0);
        let mut fresh = base_vals.clone();
        // Rebuild scalar from pre-collapse values, then hand it the
        // collapsed ones so it takes the same Repivoted path.
        fresh[0] = 1.0;
        assert!(scalar
            .factor_and_solve(&pattern, &fresh, &[1.0, 3.0], &mut want)
            .is_some());
        assert_eq!(
            scalar.factor_and_solve(&pattern, &base_vals, &[1.0, 3.0], &mut want),
            Some(SparseSolveOutcome::Repivoted)
        );
        for (xi, wi) in x.iter().zip(want.iter()) {
            assert_eq!(xi[0].to_bits(), wi.to_bits());
            assert_eq!(xi[1].to_bits(), wi.to_bits());
        }
    }

    #[test]
    fn singular_reference_lane_fails_the_batch() {
        const LANES: usize = 2;
        let singular: &[&[f64]] = &[&[1.0, 2.0], &[2.0, 4.0]];
        let healthy: &[&[f64]] = &[&[1.0, 2.0], &[2.0, 1.0]];
        let (pattern, values) = sparse_lanes_from_rows::<LANES>(&[singular, healthy]);
        let mut engine = SymbolicLuLanes::<LANES>::new();
        let mut x = Vec::new();
        // Lane 0 is the reference; its singularity blocks the freeze.
        assert!(engine
            .factor_and_solve(&pattern, &values, &[[1.0; LANES]; 2], &mut x)
            .is_none());
    }

    #[test]
    fn empty_system_solves_trivially() {
        let pattern = SparsePattern::from_entries(0, Vec::new());
        let mut engine = SymbolicLuLanes::<4>::new();
        let mut x = vec![[1.0; 4]];
        let report = engine
            .factor_and_solve(&pattern, &[], &[], &mut x)
            .expect("empty is solvable");
        assert!(report.all_ok(4));
        assert!(x.is_empty());
    }

    #[test]
    fn lane_stamps_accumulate_per_lane_and_broadcast() {
        let pattern = SparsePattern::from_entries(2, vec![(0, 0), (1, 1)]);
        let mut values = vec![[0.0f64; 4]; 2];
        pattern.add_into_all(&mut values, 0, 0, 1.0);
        pattern.add_into_lane(&mut values, 0, 0, 2, 0.5);
        assert_eq!(values[0], [1.0, 1.0, 1.5, 1.0]);
        assert_eq!(lane_values(&values, 2), vec![1.5, 0.0]);
        let splat = splat_values::<4>(&[3.0, -1.0]);
        assert_eq!(splat, vec![[3.0; 4], [-1.0; 4]]);
    }

    #[test]
    #[should_panic(expected = "outside the frozen pattern")]
    fn lane_stamp_outside_pattern_panics() {
        let pattern = SparsePattern::from_entries(2, vec![(0, 0), (1, 1)]);
        let mut values = vec![[0.0f64; 2]; 2];
        pattern.add_into_lane(&mut values, 0, 1, 0, 1.0);
    }

    #[test]
    fn mask_helpers() {
        assert_eq!(all_lanes(1), 1);
        assert_eq!(all_lanes(8), 0xFF);
        assert_eq!(all_lanes(64), u64::MAX);
        let r = LaneSolveReport {
            outcome: SparseSolveOutcome::Built,
            ok: 0b101,
        };
        assert!(r.lane_ok(0) && !r.lane_ok(1) && r.lane_ok(2));
        assert!(!r.all_ok(3));
        assert!(r.all_ok(1));
    }
}
