//! A SPICE-class analog circuit simulator.
//!
//! This crate is the simulation substrate the flip-flop reproduction runs
//! on — the role Cadence Spectre plays in the paper. It implements the
//! textbook formulation used by SPICE-family tools:
//!
//! * **Modified nodal analysis** (MNA): unknowns are node voltages plus
//!   one branch current per voltage source; every device *stamps* its
//!   linearized contribution into a dense system solved by LU with
//!   partial pivoting ([`linalg`]).
//! * **Newton–Raphson** for nonlinear devices, with `gmin` stepping for
//!   the operating point and voltage-step damping for robustness
//!   ([`analysis`]).
//! * **Transient analysis** with backward-Euler or trapezoidal companion
//!   models for capacitors and adaptive step halving on non-convergence.
//! * An all-region **EKV-style MOSFET** compact model calibrated to a
//!   40 nm low-power CMOS process with SS/TT/FF corners ([`mosfet`]).
//! * A stateful **MTJ device** bridging to the [`mtj`] compact model:
//!   its resistance follows the magnetisation state and the transient
//!   loop integrates switching progress from the solved branch current.
//!
//! Circuits are built programmatically with [`Circuit`], simulated with
//! [`analysis::op`], [`analysis::dc_sweep`] or [`analysis::transient`],
//! and interrogated through [`TransientResult`] and the measurement
//! helpers in [`measure`] (threshold crossings, delays, supply energy).
//!
//! Repeated simulation of one circuit — corner sweeps, margin scans,
//! restore/store characterization — should go through a
//! [`SimulationSession`], which keeps the solver workspace (MNA matrix,
//! LU scratch, device stamp plan, capacitor histories) alive between
//! runs and reports the work done via [`SolverStats`]. Use
//! [`Circuit::snapshot`] / [`Circuit::restore`] to rewind MTJ state and
//! source waveforms between runs.
//!
//! # Examples
//!
//! An RC low-pass step response, checked against the analytic solution:
//!
//! ```
//! use spice::{Circuit, SourceWaveform, analysis};
//! use units::{Capacitance, Resistance, Time, Voltage};
//!
//! # fn main() -> Result<(), spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let inp = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.add_voltage_source("VIN", inp, Circuit::GROUND, SourceWaveform::dc(Voltage::from_volts(1.0)));
//! ckt.add_resistor("R1", inp, out, Resistance::from_kilo_ohms(1.0));
//! ckt.add_capacitor("C1", out, Circuit::GROUND, Capacitance::from_pico_farads(1.0));
//!
//! let result = analysis::transient(
//!     &mut ckt,
//!     Time::from_nano_seconds(5.0),
//!     Time::from_pico_seconds(10.0),
//! )?;
//! let v_end = result.node("out")?.last_value();
//! assert!((v_end - 1.0).abs() < 1e-3); // fully charged after 5τ
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod circuit;
pub mod deck;
pub mod device;
pub mod error;
pub mod linalg;
pub mod measure;
pub mod mosfet;
pub mod result;
pub mod source;
pub mod subckt;
pub mod vcd;

pub use analysis::{SimulationSession, SolverKind, SolverStats, StepControl, TransientOptions};
pub use circuit::{Circuit, CircuitSnapshot, NodeId};
pub use device::Device;
pub use error::SpiceError;
pub use mosfet::{CmosCorner, MosfetKind, MosfetModel, Technology};
pub use result::{Trace, TransientResult};
pub use source::SourceWaveform;
pub use subckt::{join_path, Subckt};
