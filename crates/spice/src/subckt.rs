//! Hierarchical subcircuits: reusable definitions flattened into a
//! [`Circuit`] with canonical dotted instance paths.
//!
//! A [`Subckt`] is a named definition with an ordered port list, a body
//! of ordinary devices (built with the same builder methods as
//! [`Circuit`]) and optionally nested child instances of other
//! definitions. [`Circuit::instantiate`] stamps a definition into a flat
//! circuit: every internal node and device of the definition appears
//! under the instance prefix, joined with [`join_path`] (instance `X0`,
//! internal node `q` → `X0.q`; a nested instance `X0` → `I1` → device
//! `MP` flattens to `X0.I1.MP`).
//!
//! # Plan sharing
//!
//! Flattening does not walk the definition tree per instance. The first
//! instantiation of a definition compiles a *flatten plan* — the fully
//! recursive device list with node references resolved to "port k /
//! internal path / ground" — and every further instantiation of that
//! definition replays the plan. One plan per subcircuit topology, shared
//! across all its instances; the downstream solver then builds one
//! `StampPlan` for the flattened circuit as usual. Plan compilation and
//! reuse are visible in telemetry as `spice.subckt.plan_builds`,
//! `spice.subckt.plan_reuses` and `spice.subckt.instances`.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use spice::{Circuit, SourceWaveform, analysis, subckt::Subckt};
//! use units::{Resistance, Voltage};
//!
//! # fn main() -> Result<(), spice::SpiceError> {
//! // A 2:1 resistive divider as a reusable definition.
//! let mut div = Subckt::new("DIV2", &["in", "out"])?;
//! let (i, o) = (div.body_mut().node("in"), div.body_mut().node("out"));
//! div.body_mut().add_resistor("R1", i, o, Resistance::from_kilo_ohms(1.0))?;
//! div.body_mut().add_resistor("R2", o, Circuit::GROUND, Resistance::from_kilo_ohms(1.0))?;
//!
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("vin");
//! let mid = ckt.node("mid");
//! ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(Voltage::from_volts(2.0)))?;
//! ckt.instantiate("X0", &div, &[vin, mid])?;
//! let op = analysis::op(&mut ckt)?;
//! assert!((op.voltage(mid) - 1.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

use std::sync::{Arc, OnceLock};

use mtj::Mtj;
use units::{Capacitance, Length, Resistance};

use crate::circuit::Circuit;
use crate::device::{Device, NodeId};
use crate::error::SpiceError;
use crate::mosfet::MosfetModel;
use crate::source::SourceWaveform;

/// Joins a hierarchical instance prefix and a leaf segment with the
/// canonical `.` separator; an empty prefix yields the leaf unchanged.
///
/// All hierarchical names in the workspace — flattened subcircuit
/// devices, internal nodes of composite gates — must be built with this
/// joiner so nested paths stay unambiguous.
#[must_use]
pub fn join_path(prefix: &str, leaf: &str) -> String {
    debug_assert!(!leaf.is_empty(), "path leaf must be non-empty");
    if prefix.is_empty() {
        leaf.to_owned()
    } else {
        format!("{prefix}.{leaf}")
    }
}

/// Where a flattened device terminal connects, relative to one instance.
#[derive(Debug, Clone)]
enum PlanNode {
    /// The shared ground node.
    Ground,
    /// The k-th port of the definition (bound at instantiation).
    Port(usize),
    /// An internal node, named by its dotted path below the instance.
    Internal(String),
}

/// Device parameters with the terminals abstracted away.
#[derive(Debug, Clone)]
enum PlanPayload {
    Resistor { ohms: f64 },
    Capacitor { farads: f64 },
    VoltageSource { wave: SourceWaveform },
    CurrentSource { wave: SourceWaveform },
    Mosfet { model: MosfetModel, w: f64, l: f64 },
    Mtj { device: Mtj },
}

#[derive(Debug, Clone)]
struct PlanDevice {
    /// Dotted name below the instance prefix.
    name: String,
    /// Terminals in the order the payload consumes them.
    nodes: Vec<PlanNode>,
    payload: PlanPayload,
}

/// Pre-compiled flattening of one definition: the recursive device list
/// with every terminal resolved to port / internal-path / ground.
/// Built once per [`Subckt`] and replayed by every instantiation.
#[derive(Debug)]
struct FlattenPlan {
    /// Internal node paths in body-creation order (children's internals
    /// follow the body's, prefixed with the child instance name).
    internal_nodes: Vec<String>,
    devices: Vec<PlanDevice>,
}

impl FlattenPlan {
    fn build(def: &Subckt) -> Self {
        let body = &def.body;
        // Classify every body node: ground, port, or internal.
        let mut map: Vec<PlanNode> = Vec::with_capacity(body.node_count());
        let mut internal_nodes = Vec::new();
        map.push(PlanNode::Ground);
        for idx in 1..body.node_count() {
            let name = body.node_name(NodeId(idx));
            if let Some(p) = def.ports.iter().position(|pn| pn == name) {
                map.push(PlanNode::Port(p));
            } else {
                map.push(PlanNode::Internal(name.to_owned()));
                internal_nodes.push(name.to_owned());
            }
        }
        let at = |n: NodeId| map[n.index()].clone();

        let mut devices = Vec::new();
        for dev in body.devices() {
            let (name, nodes, payload) = match dev {
                Device::Resistor { name, a, b, ohms } => (
                    name,
                    vec![at(*a), at(*b)],
                    PlanPayload::Resistor { ohms: *ohms },
                ),
                Device::Capacitor { name, a, b, farads } => (
                    name,
                    vec![at(*a), at(*b)],
                    PlanPayload::Capacitor { farads: *farads },
                ),
                Device::VoltageSource {
                    name,
                    pos,
                    neg,
                    wave,
                    ..
                } => (
                    name,
                    vec![at(*pos), at(*neg)],
                    PlanPayload::VoltageSource { wave: wave.clone() },
                ),
                Device::CurrentSource {
                    name,
                    pos,
                    neg,
                    wave,
                } => (
                    name,
                    vec![at(*pos), at(*neg)],
                    PlanPayload::CurrentSource { wave: wave.clone() },
                ),
                Device::Mosfet {
                    name,
                    d,
                    g,
                    s,
                    model,
                    w,
                    l,
                } => (
                    name,
                    vec![at(*d), at(*g), at(*s)],
                    PlanPayload::Mosfet {
                        model: *model,
                        w: *w,
                        l: *l,
                    },
                ),
                Device::Mtj { name, a, b, device } => (
                    name,
                    vec![at(*a), at(*b)],
                    PlanPayload::Mtj {
                        device: device.clone(),
                    },
                ),
            };
            devices.push(PlanDevice {
                name: name.clone(),
                nodes,
                payload,
            });
        }

        // Splice in each child's (already compiled) plan under the child
        // instance prefix, rebinding its ports to this body's nodes.
        for child in &def.children {
            let cplan = child.def.plan();
            for n in &cplan.internal_nodes {
                internal_nodes.push(join_path(&child.inst, n));
            }
            for d in &cplan.devices {
                let nodes = d
                    .nodes
                    .iter()
                    .map(|pn| match pn {
                        PlanNode::Ground => PlanNode::Ground,
                        PlanNode::Port(i) => at(child.bindings[*i]),
                        PlanNode::Internal(p) => PlanNode::Internal(join_path(&child.inst, p)),
                    })
                    .collect();
                devices.push(PlanDevice {
                    name: join_path(&child.inst, &d.name),
                    nodes,
                    payload: d.payload.clone(),
                });
            }
        }

        Self {
            internal_nodes,
            devices,
        }
    }
}

/// A nested instance of another definition inside a [`Subckt`] body.
#[derive(Debug, Clone)]
pub struct ChildInstance {
    inst: String,
    def: Arc<Subckt>,
    bindings: Vec<NodeId>,
}

impl ChildInstance {
    /// Instance name within the parent definition.
    #[must_use]
    pub fn inst(&self) -> &str {
        &self.inst
    }

    /// The instantiated definition.
    #[must_use]
    pub fn def(&self) -> &Arc<Subckt> {
        &self.def
    }

    /// Parent-body nodes bound to the child's ports, in port order.
    #[must_use]
    pub fn bindings(&self) -> &[NodeId] {
        &self.bindings
    }
}

/// A subcircuit definition: ports, a device body and nested children.
///
/// Build the body through [`Subckt::body_mut`] with the ordinary
/// [`Circuit`] builder methods (ports are pre-interned as body nodes),
/// nest other definitions with [`Subckt::add_instance`], then stamp the
/// whole thing into a top-level circuit with [`Circuit::instantiate`].
///
/// Flattening order: body devices first, in insertion order, then child
/// instances in declaration order — each child's own devices in the same
/// recursive order.
#[derive(Debug, Clone)]
pub struct Subckt {
    name: String,
    ports: Vec<String>,
    body: Circuit,
    children: Vec<ChildInstance>,
    plan: OnceLock<Arc<FlattenPlan>>,
}

impl Subckt {
    /// Creates an empty definition with the given ordered port list.
    /// Every port is interned as a body node up front.
    ///
    /// # Errors
    ///
    /// Rejects an empty definition name, duplicate port names, and
    /// ports that alias ground (`0` / `gnd`).
    pub fn new(name: &str, ports: &[&str]) -> Result<Self, SpiceError> {
        if name.is_empty() {
            return Err(SpiceError::InvalidAnalysis {
                reason: "subckt name must be non-empty".into(),
            });
        }
        let mut body = Circuit::new();
        let mut seen: Vec<&str> = Vec::with_capacity(ports.len());
        for port in ports {
            if port.is_empty() || *port == "0" || port.eq_ignore_ascii_case("gnd") {
                return Err(SpiceError::InvalidAnalysis {
                    reason: format!("subckt {name}: port `{port}` may not alias ground"),
                });
            }
            if seen.contains(port) {
                return Err(SpiceError::InvalidAnalysis {
                    reason: format!("subckt {name}: duplicate port `{port}`"),
                });
            }
            seen.push(port);
            body.node(port);
        }
        Ok(Self {
            name: name.to_owned(),
            ports: ports.iter().map(|p| (*p).to_owned()).collect(),
            body,
            children: Vec::new(),
            plan: OnceLock::new(),
        })
    }

    /// Definition name (the `.subckt` header name).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered port names.
    #[must_use]
    pub fn ports(&self) -> &[String] {
        &self.ports
    }

    /// Read access to the body circuit.
    #[must_use]
    pub fn body(&self) -> &Circuit {
        &self.body
    }

    /// Mutable access to the body circuit for building; invalidates any
    /// cached flatten plan.
    pub fn body_mut(&mut self) -> &mut Circuit {
        self.plan = OnceLock::new();
        &mut self.body
    }

    /// Nested instances, in declaration order.
    #[must_use]
    pub fn child_instances(&self) -> &[ChildInstance] {
        &self.children
    }

    /// Nests an instance of another definition, binding `bindings` (body
    /// nodes of *this* definition, in the child's port order) to the
    /// child's ports.
    ///
    /// Definitions are referenced through [`Arc`], so a child must be
    /// finished before its parent references it — reference cycles are
    /// unrepresentable.
    ///
    /// # Errors
    ///
    /// Rejects binding-count mismatches, instance names already used by
    /// a sibling instance or body device, and foreign body nodes.
    pub fn add_instance(
        &mut self,
        inst: &str,
        def: &Arc<Subckt>,
        bindings: &[NodeId],
    ) -> Result<(), SpiceError> {
        if inst.is_empty() {
            return Err(SpiceError::InvalidAnalysis {
                reason: format!("subckt {}: instance name must be non-empty", self.name),
            });
        }
        if bindings.len() != def.ports.len() {
            return Err(SpiceError::InvalidAnalysis {
                reason: format!(
                    "instance {inst}: subckt {} has {} ports, {} bindings given",
                    def.name,
                    def.ports.len(),
                    bindings.len()
                ),
            });
        }
        if self.children.iter().any(|c| c.inst == inst)
            || self.body.devices().iter().any(|d| d.name() == inst)
        {
            return Err(SpiceError::DuplicateDevice { name: inst.into() });
        }
        for &b in bindings {
            if b.index() >= self.body.node_count() {
                return Err(SpiceError::UnknownNode {
                    device: format!("{inst} ({})", def.name),
                });
            }
        }
        self.plan = OnceLock::new();
        self.children.push(ChildInstance {
            inst: inst.to_owned(),
            def: Arc::clone(def),
            bindings: bindings.to_vec(),
        });
        Ok(())
    }

    /// Number of primitive devices one instantiation stamps (recursive
    /// through nested children).
    #[must_use]
    pub fn flattened_device_count(&self) -> usize {
        self.plan().devices.len()
    }

    /// Number of internal (non-port) nodes one instantiation creates
    /// (recursive through nested children).
    #[must_use]
    pub fn flattened_internal_count(&self) -> usize {
        self.plan().internal_nodes.len()
    }

    /// The shared flatten plan, compiled on first use.
    fn plan(&self) -> Arc<FlattenPlan> {
        if let Some(p) = self.plan.get() {
            telemetry::counter("spice.subckt.plan_reuses", 1);
            return Arc::clone(p);
        }
        let p = self.plan.get_or_init(|| {
            telemetry::counter("spice.subckt.plan_builds", 1);
            Arc::new(FlattenPlan::build(self))
        });
        Arc::clone(p)
    }
}

impl Circuit {
    /// Stamps an instance of `def` into this circuit.
    ///
    /// `ports` binds the definition's ports, in order, to existing nodes
    /// of this circuit. Internal nodes and devices of the definition are
    /// created under the `inst` prefix with [`join_path`] (so instance
    /// `X0` of a definition with internal node `q` creates `X0.q`).
    /// Flattening replays the definition's shared plan — see the
    /// [module docs](self) for the sharing model.
    ///
    /// # Errors
    ///
    /// Rejects an empty or whitespace-containing instance name, a port
    /// count mismatch, and foreign port nodes; propagates device
    /// construction errors (e.g. [`SpiceError::DuplicateDevice`] when
    /// the same instance name is used twice). On error the circuit may
    /// already contain part of the instance.
    pub fn instantiate(
        &mut self,
        inst: &str,
        def: &Subckt,
        ports: &[NodeId],
    ) -> Result<(), SpiceError> {
        if inst.is_empty() || inst.chars().any(char::is_whitespace) {
            return Err(SpiceError::InvalidAnalysis {
                reason: format!("instance name `{inst}` must be non-empty without whitespace"),
            });
        }
        if ports.len() != def.ports.len() {
            return Err(SpiceError::InvalidAnalysis {
                reason: format!(
                    "instance {inst}: subckt {} has {} ports, {} bindings given",
                    def.name,
                    def.ports.len(),
                    ports.len()
                ),
            });
        }
        for &p in ports {
            if p.index() >= self.node_count() {
                return Err(SpiceError::UnknownNode {
                    device: format!("{inst} ({})", def.name),
                });
            }
        }
        let plan = def.plan();
        telemetry::counter("spice.subckt.instances", 1);

        // Internal nodes first, in the definition's creation order, so
        // repeated instantiations of one topology produce congruent
        // node numberings.
        for n in &plan.internal_nodes {
            self.node(&join_path(inst, n));
        }
        for dev in &plan.devices {
            let name = join_path(inst, &dev.name);
            let mut nodes = Vec::with_capacity(dev.nodes.len());
            for pn in &dev.nodes {
                nodes.push(match pn {
                    PlanNode::Ground => Self::GROUND,
                    PlanNode::Port(i) => ports[*i],
                    PlanNode::Internal(p) => self.node(&join_path(inst, p)),
                });
            }
            match &dev.payload {
                PlanPayload::Resistor { ohms } => {
                    self.add_resistor(&name, nodes[0], nodes[1], Resistance::from_ohms(*ohms))?;
                }
                PlanPayload::Capacitor { farads } => {
                    self.add_capacitor(
                        &name,
                        nodes[0],
                        nodes[1],
                        Capacitance::from_farads(*farads),
                    )?;
                }
                PlanPayload::VoltageSource { wave } => {
                    self.add_voltage_source(&name, nodes[0], nodes[1], wave.clone())?;
                }
                PlanPayload::CurrentSource { wave } => {
                    self.add_current_source(&name, nodes[0], nodes[1], wave.clone())?;
                }
                PlanPayload::Mosfet { model, w, l } => {
                    self.add_mosfet(
                        &name,
                        nodes[0],
                        nodes[1],
                        nodes[2],
                        *model,
                        Length::from_meters(*w),
                        Length::from_meters(*l),
                    )?;
                }
                PlanPayload::Mtj { device } => {
                    self.add_mtj(&name, nodes[0], nodes[1], device.clone())?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::mosfet::Technology;
    use units::Voltage;

    fn divider() -> Subckt {
        let mut div = Subckt::new("DIV2", &["in", "out"]).expect("def");
        let i = div.body_mut().node("in");
        let o = div.body_mut().node("out");
        div.body_mut()
            .add_resistor("R1", i, o, Resistance::from_kilo_ohms(1.0))
            .expect("R1");
        div.body_mut()
            .add_resistor("R2", o, Circuit::GROUND, Resistance::from_kilo_ohms(1.0))
            .expect("R2");
        div
    }

    #[test]
    fn join_path_rules() {
        assert_eq!(join_path("", "MP"), "MP");
        assert_eq!(join_path("X0", "MP"), "X0.MP");
        assert_eq!(join_path("X0.I1", "MP"), "X0.I1.MP");
    }

    #[test]
    fn ports_are_validated() {
        assert!(Subckt::new("", &["a"]).is_err());
        assert!(Subckt::new("S", &["a", "a"]).is_err());
        assert!(Subckt::new("S", &["gnd"]).is_err());
        assert!(Subckt::new("S", &["0"]).is_err());
        assert!(Subckt::new("S", &["a", "b"]).is_ok());
    }

    #[test]
    fn flat_instantiation_matches_hand_built() {
        let div = divider();
        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let mid = ckt.node("mid");
        ckt.add_voltage_source(
            "V1",
            vin,
            Circuit::GROUND,
            SourceWaveform::dc(Voltage::from_volts(2.0)),
        )
        .expect("V1");
        ckt.instantiate("X0", &div, &[vin, mid]).expect("X0");
        assert_eq!(ckt.devices().len(), 3);
        assert!(ckt.devices().iter().any(|d| d.name() == "X0.R1"));
        let op = analysis::op(&mut ckt).expect("op");
        assert!((op.voltage(mid) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn internal_nodes_get_dotted_paths() {
        let mut sub = Subckt::new("S", &["a"]).expect("def");
        let a = sub.body_mut().node("a");
        let m = sub.body_mut().node("m");
        sub.body_mut()
            .add_resistor("R1", a, m, Resistance::from_ohms(10.0))
            .expect("R1");
        sub.body_mut()
            .add_resistor("R2", m, Circuit::GROUND, Resistance::from_ohms(10.0))
            .expect("R2");
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        ckt.instantiate("X7", &sub, &[top]).expect("X7");
        assert!(ckt.find_node("X7.m").is_some());
        assert!(ckt.find_node("m").is_none());
    }

    #[test]
    fn nested_children_flatten_recursively() {
        let div = Arc::new(divider());
        // A definition wrapping two stacked dividers: out = in / 4.
        let mut quarter = Subckt::new("DIV4", &["in", "out"]).expect("def");
        let i = quarter.body_mut().node("in");
        let o = quarter.body_mut().node("out");
        let m = quarter.body_mut().node("m");
        quarter.add_instance("A", &div, &[i, m]).expect("A");
        quarter.add_instance("B", &div, &[m, o]).expect("B");
        assert_eq!(quarter.flattened_device_count(), 4);

        let mut ckt = Circuit::new();
        let vin = ckt.node("vin");
        let out = ckt.node("out");
        ckt.add_voltage_source(
            "V1",
            vin,
            Circuit::GROUND,
            SourceWaveform::dc(Voltage::from_volts(2.0)),
        )
        .expect("V1");
        ckt.instantiate("X0", &quarter, &[vin, out]).expect("X0");
        assert!(ckt.devices().iter().any(|d| d.name() == "X0.A.R1"));
        assert!(ckt.find_node("X0.m").is_some());
        // Loaded voltage division: B loads A's output, so out is not
        // exactly in/4 — solve and check against the analytic value.
        let op = analysis::op(&mut ckt).expect("op");
        // A: 1k into (1k || 2k) = 1k || (1k+1k): v(m) = 2 * (2/3k)/(1k+2/3k)
        let vm = 2.0 * (2.0 / 3.0) / (1.0 + 2.0 / 3.0);
        assert!((op.voltage(ckt.find_node("X0.m").unwrap()) - vm).abs() < 1e-9);
        assert!((op.voltage(out) - vm / 2.0).abs() < 1e-9);
    }

    #[test]
    fn plan_is_shared_across_instances() {
        let div = divider();
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let c = ckt.node("c");
        ckt.instantiate("X0", &div, &[a, b]).expect("X0");
        ckt.instantiate("X1", &div, &[b, c]).expect("X1");
        ckt.instantiate("X2", &div, &[c, a]).expect("X2");
        // Same Subckt object: the OnceLock plan was compiled once; the
        // telemetry counters (plan_builds=1, plan_reuses≥2) record it
        // when a collector is installed.
        assert_eq!(ckt.devices().len(), 6);
    }

    #[test]
    fn instantiation_errors_are_reported() {
        let div = divider();
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert!(matches!(
            ckt.instantiate("", &div, &[a, a]),
            Err(SpiceError::InvalidAnalysis { .. })
        ));
        assert!(matches!(
            ckt.instantiate("X0", &div, &[a]),
            Err(SpiceError::InvalidAnalysis { .. })
        ));
        assert!(matches!(
            ckt.instantiate("X0", &div, &[a, NodeId(99)]),
            Err(SpiceError::UnknownNode { .. })
        ));
        ckt.instantiate("X0", &div, &[a, a]).expect("first X0");
        assert!(matches!(
            ckt.instantiate("X0", &div, &[a, a]),
            Err(SpiceError::DuplicateDevice { .. })
        ));
    }

    #[test]
    fn add_instance_validates_bindings_and_names() {
        let div = Arc::new(divider());
        let mut parent = Subckt::new("P", &["p"]).expect("def");
        let p = parent.body_mut().node("p");
        assert!(parent.add_instance("", &div, &[p, p]).is_err());
        assert!(parent.add_instance("A", &div, &[p]).is_err());
        assert!(parent.add_instance("A", &div, &[p, NodeId(42)]).is_err());
        parent.add_instance("A", &div, &[p, p]).expect("A");
        assert!(matches!(
            parent.add_instance("A", &div, &[p, p]),
            Err(SpiceError::DuplicateDevice { .. })
        ));
    }

    #[test]
    fn body_edits_invalidate_the_plan() {
        let mut div = divider();
        assert_eq!(div.flattened_device_count(), 2);
        let o = div.body_mut().node("out");
        div.body_mut()
            .add_capacitor(
                "CL",
                o,
                Circuit::GROUND,
                Capacitance::from_femto_farads(1.0),
            )
            .expect("CL");
        assert_eq!(div.flattened_device_count(), 3);
    }

    #[test]
    fn sources_inside_subckts_gain_branches() {
        let mut bias = Subckt::new("BIAS", &["out"]).expect("def");
        let o = bias.body_mut().node("out");
        bias.body_mut()
            .add_voltage_source("VB", o, Circuit::GROUND, SourceWaveform::Dc(0.5))
            .expect("VB");
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.instantiate("X0", &bias, &[a]).expect("X0");
        ckt.instantiate("X1", &bias, &[b]).expect("X1");
        assert_eq!(ckt.vsource_count(), 2);
        let op = analysis::op(&mut ckt).expect("op");
        assert!((op.voltage(a) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mosfets_and_mtjs_flatten() {
        use mtj::{Mtj, MtjParams, MtjState, WritePolarity};
        let tech = Technology::tsmc40lp();
        let mut inv = Subckt::new("INV", &["vdd", "in", "out"]).expect("def");
        let vdd = inv.body_mut().node("vdd");
        let i = inv.body_mut().node("in");
        let o = inv.body_mut().node("out");
        inv.body_mut()
            .add_pmos("MP", o, i, vdd, &tech, Length::from_nano_meters(400.0))
            .expect("MP");
        inv.body_mut()
            .add_nmos(
                "MN",
                o,
                i,
                Circuit::GROUND,
                &tech,
                Length::from_nano_meters(200.0),
            )
            .expect("MN");
        inv.body_mut()
            .add_mtj(
                "MJ",
                o,
                Circuit::GROUND,
                Mtj::new(
                    MtjParams::date2018(),
                    MtjState::AntiParallel,
                    WritePolarity::PositiveSetsParallel,
                ),
            )
            .expect("MJ");
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let y = ckt.node("y");
        ckt.instantiate("U1", &inv, &[vdd, a, y]).expect("U1");
        assert_eq!(ckt.transistor_count(), 2);
        assert_eq!(ckt.mtj_state("U1.MJ"), Some(MtjState::AntiParallel));
        ckt.set_mtj_state("U1.MJ", MtjState::Parallel).expect("set");
        assert_eq!(ckt.mtj_state("U1.MJ"), Some(MtjState::Parallel));
    }
}
