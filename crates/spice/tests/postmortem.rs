//! End-to-end flight-recorder post-mortem: a forced non-convergent
//! transient must leave a parseable JSON dump holding the last ≥64
//! solver events, the open span path and the session's work counters.

use spice::{Circuit, SimulationSession, SourceWaveform, Technology, TransientOptions};
use telemetry::JsonValue;
use units::{Capacitance, Length, Time, Voltage};

/// The MOSFET inverter fixture: nonlinear enough that Newton needs more
/// than one iteration per step around the input edge, so capping the
/// iteration budget at 1 with no step halving is guaranteed to surface
/// `NonConvergence`.
fn inverter() -> Circuit {
    let tech = Technology::tsmc40lp();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_voltage_source(
        "VDD",
        vdd,
        Circuit::GROUND,
        SourceWaveform::dc(Voltage::from_volts(1.1)),
    )
    .expect("VDD");
    ckt.add_voltage_source(
        "VIN",
        vin,
        Circuit::GROUND,
        SourceWaveform::Pulse {
            v0: 0.0,
            v1: 1.1,
            delay: 100e-12,
            rise: 50e-12,
            fall: 50e-12,
            width: 1e-9,
        },
    )
    .expect("VIN");
    ckt.add_pmos("MP", out, vin, vdd, &tech, Length::from_nano_meters(400.0))
        .expect("MP");
    ckt.add_nmos(
        "MN",
        out,
        vin,
        Circuit::GROUND,
        &tech,
        Length::from_nano_meters(200.0),
    )
    .expect("MN");
    ckt.add_capacitor(
        "CL",
        out,
        Circuit::GROUND,
        Capacitance::from_femto_farads(5.0),
    )
    .expect("CL");
    ckt
}

#[test]
fn forced_nonconvergence_dumps_a_postmortem() {
    let dir = std::env::temp_dir().join(format!("nvff-postmortem-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    telemetry::flight::set_postmortem_dir(Some(dir.clone()));
    telemetry::init(telemetry::TraceMode::Collect);
    let _run = telemetry::span("postmortem_test");

    let mut session = SimulationSession::new(inverter()).with_label("inverter_corner");
    assert_eq!(session.label(), "inverter_corner");
    let stop = Time::from_nano_seconds(2.0);
    let step = Time::from_pico_seconds(10.0);

    // A healthy run first: fills the flight ring with the recent-history
    // window (hundreds of Newton deltas and step accepts) a real
    // failure would have behind it.
    session.transient(stop, step).expect("healthy transient");
    assert!(
        telemetry::flight::events_recorded() >= 64,
        "warm-up should have filled the ring, got {}",
        telemetry::flight::events_recorded()
    );

    // Then the forced corner: one Newton iteration, no halving.
    let strangled = TransientOptions {
        max_newton_iterations: 1,
        max_step_halvings: 0,
        ..TransientOptions::fixed()
    };
    let counters_before = postmortem_counter();
    let err = session
        .transient_with_options(stop, step, strangled)
        .expect_err("1-iteration budget must not converge");
    let msg = err.to_string();
    assert!(msg.contains("converge"), "unexpected error: {msg}");
    assert_eq!(
        postmortem_counter(),
        counters_before + 1,
        "exactly one post-mortem per surfaced failure"
    );

    // Find and validate the dump.
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("dump dir exists")
        .filter_map(Result::ok)
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("postmortem-") && n.ends_with(".json"))
        })
        .collect();
    assert_eq!(dumps.len(), 1, "expected one dump, got {dumps:?}");
    let text = std::fs::read_to_string(dumps[0].path()).expect("dump readable");
    let doc = JsonValue::parse(&text).expect("dump parses with the telemetry parser");

    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some(telemetry::flight::POSTMORTEM_SCHEMA)
    );
    assert_eq!(
        doc.get("circuit").and_then(JsonValue::as_str),
        Some("inverter_corner")
    );
    assert_eq!(
        doc.get("analysis").and_then(JsonValue::as_str),
        Some("tran")
    );
    assert_eq!(
        doc.get("span_path").and_then(JsonValue::as_str),
        Some("postmortem_test"),
        "the open span's path must land in the dump"
    );
    assert!(doc
        .get("error")
        .and_then(JsonValue::as_str)
        .is_some_and(|e| e.contains("converge")));

    // The recent-history window: at least 64 events, the acceptance
    // floor, ending in the non-convergence that surfaced.
    let events = doc
        .get("events")
        .and_then(JsonValue::as_array)
        .expect("events array");
    assert!(events.len() >= 64, "only {} events in dump", events.len());
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("kind").and_then(JsonValue::as_str))
        .collect();
    assert!(kinds.contains(&"newton_delta"), "{kinds:?}");
    assert_eq!(kinds.last(), Some(&"non_convergence"), "{kinds:?}");

    // Solver stats ride along, reflecting real cumulative work.
    let stats = doc.get("stats").expect("stats object");
    let newton = stats
        .get("newton_iterations")
        .and_then(JsonValue::as_i64)
        .expect("newton_iterations stat");
    assert!(newton >= 64, "implausible iteration count {newton}");
    for key in [
        "lu_factorizations",
        "accepted_steps",
        "rejected_steps",
        "step_halvings",
        "pattern_reuses",
        "lte_rejections",
        "source_steps",
    ] {
        assert!(stats.get(key).is_some(), "missing stat {key}");
    }

    drop(_run);
    let _ = std::fs::remove_dir_all(&dir);
    telemetry::flight::set_postmortem_dir(None);
    telemetry::init(telemetry::TraceMode::Off);
}

fn postmortem_counter() -> u64 {
    telemetry::snapshot()
        .counters
        .iter()
        .find(|(name, _)| name == "spice.postmortems")
        .map_or(0, |&(_, v)| v)
}
