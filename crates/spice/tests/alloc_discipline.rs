//! Allocation discipline of the session engine.
//!
//! The workspace-reuse rearchitecture promises that a warmed-up
//! [`SimulationSession`] performs no per-Newton-iteration and no
//! per-time-step allocation: the MNA matrix, RHS, iterate vectors, LU
//! scratch and capacitor histories are all reused, and the old per-step
//! `caps.clone()` is gone. This test pins that down with a counting
//! global allocator: the allocations of a warmed-up run must be bounded
//! by result-recording (which grows amortized), not by solver work.
//!
//! The spice *library* forbids `unsafe`; this integration test is a
//! separate crate, and the allocator shim below is the one place unsafe
//! is warranted.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use spice::{Circuit, SimulationSession, SourceWaveform, Technology, TransientOptions};
use units::{Capacitance, Length, Time, Voltage};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// A nonlinear fixture with MOSFET junction capacitors: the circuit the
/// old engine cloned its flattened capacitor list for on every step.
fn inverter() -> Circuit {
    let tech = Technology::tsmc40lp();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_voltage_source(
        "VDD",
        vdd,
        Circuit::GROUND,
        SourceWaveform::dc(Voltage::from_volts(1.1)),
    )
    .expect("VDD");
    ckt.add_voltage_source(
        "VIN",
        vin,
        Circuit::GROUND,
        SourceWaveform::Pulse {
            v0: 0.0,
            v1: 1.1,
            delay: 100e-12,
            rise: 50e-12,
            fall: 50e-12,
            width: 1e-9,
        },
    )
    .expect("VIN");
    ckt.add_pmos("MP", out, vin, vdd, &tech, Length::from_nano_meters(400.0))
        .expect("MP");
    ckt.add_nmos(
        "MN",
        out,
        vin,
        Circuit::GROUND,
        &tech,
        Length::from_nano_meters(200.0),
    )
    .expect("MN");
    ckt.add_capacitor(
        "CL",
        out,
        Circuit::GROUND,
        Capacitance::from_femto_farads(5.0),
    )
    .expect("CL");
    ckt
}

// One test function only: the counter is process-global, and a single
// test keeps the harness from running other allocating threads
// concurrently with the measured sections.
#[test]
fn warmed_up_session_does_not_allocate_per_iteration_or_per_step() {
    let mut session = SimulationSession::new(inverter());
    let stop = Time::from_nano_seconds(2.0);
    let step = Time::from_pico_seconds(10.0);

    // Warm up: first run sizes every buffer (including the recorder's
    // initial vectors) and settles lazy one-time allocations. The first
    // telemetry::enabled() call inside the solver also applies
    // NVFF_TRACE here (std::env::var allocates), so the measured
    // sections below see only the steady-state atomic-load path.
    session.transient(stop, step).expect("warm-up transient");
    session.op().expect("warm-up op");
    assert!(
        !telemetry::enabled(),
        "this test must run with tracing disabled (unset NVFF_TRACE)"
    );

    // Telemetry disabled path: spans, counters, histograms,
    // stopwatches and flight-recorder hooks must be pure no-ops on the
    // heap — the observability layer is compiled into the solver hot
    // loop unconditionally, so a single stray allocation here would tax
    // every Newton iteration. The first flight::active() call reads
    // NVFF_POSTMORTEM (std::env::var allocates), so warm it up first
    // like telemetry::enabled() above.
    assert!(
        !telemetry::flight::active(),
        "this test must run without a post-mortem directory (unset NVFF_POSTMORTEM)"
    );
    let telemetry_allocs = count_allocs(|| {
        for _ in 0..1000 {
            let _span = telemetry::span("alloc_test.span");
            telemetry::counter("alloc_test.counter", 1);
            telemetry::histogram("alloc_test.hist", 1e-12);
            let _watch = telemetry::stopwatch("alloc_test.watch");
            telemetry::flight::record(telemetry::flight::EventKind::NewtonDelta, 1e-9, 1e-6);
        }
    });
    assert_eq!(
        telemetry_allocs, 0,
        "disabled telemetry hot path allocated {telemetry_allocs} times in 5000 calls"
    );

    // Operating point: the gmin ladder performs dozens of Newton
    // iterations. The only allocations allowed are the returned
    // OpResult's vectors and branch-name strings — a handful, far fewer
    // than one per iteration.
    session.reset_stats();
    let op_allocs = count_allocs(|| {
        session.op().expect("measured op");
    });
    let op_stats = session.stats();
    assert!(
        op_stats.newton_iterations >= 20,
        "expected a real gmin ladder, got {} iterations",
        op_stats.newton_iterations
    );
    assert!(
        op_allocs < op_stats.newton_iterations,
        "op allocated {op_allocs} times over {} Newton iterations — \
         the solver core must not allocate per iteration",
        op_stats.newton_iterations,
    );
    assert!(
        op_allocs <= 16,
        "op allocated {op_allocs} times; only the OpResult assembly may allocate"
    );

    // Transient, fixed grid: result recording grows amortized (doubling
    // vectors per trace), so the budget is logarithmic in samples per
    // trace — far below one allocation per accepted step, and
    // incompatible with any per-step capacitor-list clone.
    session.reset_stats();
    let transient_allocs = count_allocs(|| {
        session
            .transient_with_options(stop, step, TransientOptions::fixed())
            .expect("measured fixed transient");
    });
    let tr_stats = session.stats();
    assert!(
        tr_stats.accepted_steps >= 150,
        "expected a real transient, got {} steps",
        tr_stats.accepted_steps
    );
    assert!(
        transient_allocs < tr_stats.accepted_steps / 2,
        "transient allocated {transient_allocs} times over {} accepted steps \
         ({} Newton iterations) — per-step cloning or per-iteration \
         allocation has crept back in",
        tr_stats.accepted_steps,
        tr_stats.newton_iterations,
    );

    // Transient, adaptive LTE control: the predictor history
    // (`x_prev`/`x_prev2`/`x_prev3`) lives in preallocated workspace
    // buffers rotated by pointer swap, so the controller must not add a
    // single per-step or per-rejection allocation over the fixed-grid
    // engine.
    session.reset_stats();
    let adaptive_allocs = count_allocs(|| {
        session
            .transient_with_options(stop, step, TransientOptions::adaptive())
            .expect("measured adaptive transient");
    });
    let ad_stats = session.stats();
    assert!(
        ad_stats.accepted_steps >= 40,
        "expected a real adaptive transient, got {} steps",
        ad_stats.accepted_steps
    );
    // Relative bound: the run shares the recorder's fixed base cost
    // (fresh trace vectors per analysis) with the fixed-grid run above,
    // and records *fewer* samples — so any excess over the fixed run's
    // count is per-step controller allocation.
    assert!(
        adaptive_allocs <= transient_allocs,
        "adaptive transient allocated {adaptive_allocs} times vs {transient_allocs} \
         for the fixed grid over {} accepted steps ({} LTE rejections) — the \
         step controller must run in the preallocated history buffers",
        ad_stats.accepted_steps,
        ad_stats.lte_rejections,
    );
}
