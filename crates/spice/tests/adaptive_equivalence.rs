//! Differential pinning of the adaptive step controller.
//!
//! Every generated netlist is simulated four ways — dense fixed-grid,
//! sparse fixed-grid, dense adaptive and sparse adaptive — and the
//! waveforms must agree pairwise within `10·reltol` of the local signal
//! scale at interpolated sample times. Where a closed form exists (the
//! single-pole RC), all four engines are additionally held to the
//! analytic solution. The fixed grids are the frozen legacy engine
//! (backward Euler, uniform `dt`); the adaptive runs are the new
//! default (trapezoidal corrector under LTE control), so these tests
//! pin the claim that the controller trades steps, not accuracy.

use proptest::prelude::*;
use spice::{Circuit, SimulationSession, SolverKind, SourceWaveform, Technology, TransientOptions};
use units::{Capacitance, Length, Resistance, Time};

/// Pairwise agreement budget: 10× the per-step error the controller is
/// allowed to accept. An accepted adaptive step may carry estimated LTE
/// up to `trtol · (reltol·|x| + abstol)` (the divided-difference
/// estimate over-states the true error by roughly `trtol`, per SPICE
/// practice), so accumulated drift between two valid engines is bounded
/// by a small multiple of that — not of bare `reltol`. The analytic
/// property below separately pins absolute accuracy at 1 % of the
/// drive, so this looser pairwise band cannot hide a broken integrator.
const AGREE_RELTOL: f64 = 10.0 * spice::analysis::LTE_TRTOL * spice::analysis::LTE_RELTOL;
const AGREE_ABSTOL: f64 = 10.0 * spice::analysis::LTE_ABSTOL;

/// Runs `ckt` under the given options/solver and returns the result.
fn run(
    ckt: &Circuit,
    solver: SolverKind,
    options: TransientOptions,
    stop: Time,
    step: Time,
) -> spice::TransientResult {
    let mut session = SimulationSession::with_solver(ckt.clone(), solver);
    session
        .transient_with_options(stop, step, options)
        .expect("transient")
}

/// Asserts two results agree on `nodes` within the pairwise budget, at
/// 101 uniformly spaced interpolation times (both engines place their
/// own sample grids, so comparison happens through [`Trace::value_at`]).
///
/// Tolerance is taken against the waveform *swing*, not the local
/// value — during an edge the local value sweeps through zero and any
/// relative criterion there would demand sub-LSB agreement. A ±2·`step`
/// time tube additionally absorbs the first-order phase lag backward
/// Euler exhibits on fast ramps: a point matches if the other waveform
/// passes through the same level anywhere inside the tube.
fn assert_agree(
    a: &spice::TransientResult,
    b: &spice::TransientResult,
    nodes: &[String],
    stop: Time,
    step: Time,
    label: &str,
) -> Result<(), String> {
    let sample_times: Vec<f64> = (0..=100)
        .map(|k| stop.seconds() * f64::from(k) / 100.0)
        .collect();
    let tube = 2.0 * step.seconds();
    for name in nodes {
        let ta = a.node(name).expect("node in a");
        let tb = b.node(name).expect("node in b");
        let swing = sample_times
            .iter()
            .map(|&t| ta.value_at(t).abs().max(tb.value_at(t).abs()))
            .fold(0.0f64, f64::max);
        let tol = AGREE_ABSTOL + AGREE_RELTOL * swing;
        for &t in &sample_times {
            let va = ta.value_at(t);
            // Range check: `va` must fall inside the envelope `b` sweeps
            // through anywhere in the tube, padded by `tol`.
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for j in -10i32..=10 {
                let ts = (t + f64::from(j) * 0.1 * tube).clamp(0.0, stop.seconds());
                let vb = tb.value_at(ts);
                lo = lo.min(vb);
                hi = hi.max(vb);
            }
            if va < lo - tol || va > hi + tol {
                return Err(format!(
                    "{label}: node {name} diverges at t = {t:.3e}: {va} vs {} (tol {tol:.2e})",
                    tb.value_at(t)
                ));
            }
        }
    }
    Ok(())
}

/// The four-way matrix for one netlist: every engine × step-policy
/// combination agrees with every other within the budget.
fn check_four_ways(ckt: &Circuit, nodes: &[String], stop: Time, step: Time) -> Result<(), String> {
    let fixed = TransientOptions::fixed();
    let adaptive = TransientOptions::adaptive();
    let runs = [
        (
            "dense/fixed",
            run(ckt, SolverKind::Dense, fixed, stop, step),
        ),
        (
            "sparse/fixed",
            run(ckt, SolverKind::Sparse, fixed, stop, step),
        ),
        (
            "dense/adaptive",
            run(ckt, SolverKind::Dense, adaptive, stop, step),
        ),
        (
            "sparse/adaptive",
            run(ckt, SolverKind::Sparse, adaptive, stop, step),
        ),
    ];
    for (i, (name_a, a)) in runs.iter().enumerate() {
        for (name_b, b) in runs.iter().skip(i + 1) {
            assert_agree(a, b, nodes, stop, step, &format!("{name_a} vs {name_b}"))?;
        }
    }
    // The adaptive runs may not take more steps than the uniform grid:
    // the controller only coarsens beyond the nominal step.
    let fixed_steps = runs[0].1.solver_stats().accepted_steps;
    let adaptive_steps = runs[3].1.solver_stats().accepted_steps;
    if adaptive_steps > fixed_steps {
        return Err(format!(
            "adaptive took {adaptive_steps} steps, fixed {fixed_steps}"
        ));
    }
    Ok(())
}

/// A chain of R–C low-pass stages driven by a pulse source.
fn rc_ladder(stages: &[(f64, f64)], pulse_v: f64, rise: f64) -> (Circuit, Vec<String>) {
    let mut ckt = Circuit::new();
    let input = ckt.node("in");
    ckt.add_voltage_source(
        "VIN",
        input,
        Circuit::GROUND,
        SourceWaveform::Pulse {
            v0: 0.0,
            v1: pulse_v,
            delay: rise,
            rise,
            fall: rise,
            width: 1.0, // wider than any window: a single rising edge
        },
    )
    .expect("VIN");
    let mut prev = input;
    let mut nodes = Vec::new();
    for (k, &(r_ohms, c_farads)) in stages.iter().enumerate() {
        let node = ckt.node(&format!("s{k}"));
        ckt.add_resistor(&format!("R{k}"), prev, node, Resistance::from_ohms(r_ohms))
            .expect("R");
        ckt.add_capacitor(
            &format!("C{k}"),
            node,
            Circuit::GROUND,
            Capacitance::from_farads(c_farads),
        )
        .expect("C");
        nodes.push(format!("s{k}"));
        prev = node;
    }
    (ckt, nodes)
}

/// An inverter chain with per-stage load capacitors, driven by a pulse.
fn inverter_chain(widths_nm: &[f64], load_ff: f64) -> (Circuit, Vec<String>) {
    let tech = Technology::tsmc40lp();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let input = ckt.node("in");
    ckt.add_voltage_source("VDD", vdd, Circuit::GROUND, SourceWaveform::Dc(tech.vdd))
        .expect("VDD");
    ckt.add_voltage_source(
        "VIN",
        input,
        Circuit::GROUND,
        SourceWaveform::Pulse {
            v0: 0.0,
            v1: tech.vdd,
            delay: 50e-12,
            rise: 20e-12,
            fall: 20e-12,
            width: 400e-12,
        },
    )
    .expect("VIN");
    let mut prev = input;
    let mut nodes = Vec::new();
    for (k, &w) in widths_nm.iter().enumerate() {
        let out = ckt.node(&format!("o{k}"));
        ckt.add_pmos(
            &format!("MP{k}"),
            out,
            prev,
            vdd,
            &tech,
            Length::from_nano_meters(2.0 * w),
        )
        .expect("MP");
        ckt.add_nmos(
            &format!("MN{k}"),
            out,
            prev,
            Circuit::GROUND,
            &tech,
            Length::from_nano_meters(w),
        )
        .expect("MN");
        ckt.add_capacitor(
            &format!("CL{k}"),
            out,
            Circuit::GROUND,
            Capacitance::from_femto_farads(load_ff),
        )
        .expect("CL");
        nodes.push(format!("o{k}"));
        prev = out;
    }
    (ckt, nodes)
}

proptest! {
    /// Single-pole RC: all four engine × policy combinations match the
    /// analytic step response within 1 % of the drive, and each other
    /// within the pairwise budget.
    #[test]
    fn rc_matches_analytic_four_ways(
        r_kohm in 1.0f64..50.0,
        c_ff in 20.0f64..400.0,
        v_drive in 0.4f64..2.0,
    ) {
        let r = r_kohm * 1e3;
        let c = c_ff * 1e-15;
        let tau = r * c;
        let stop = Time::from_seconds(3.0 * tau);
        let step = Time::from_seconds(tau / 200.0);

        let mut ckt = Circuit::new();
        let input = ckt.node("in");
        let out = ckt.node("s0");
        ckt.add_voltage_source("VIN", input, Circuit::GROUND, SourceWaveform::Dc(v_drive))
            .expect("VIN");
        ckt.add_resistor("R0", input, out, Resistance::from_ohms(r)).expect("R0");
        ckt.add_capacitor("C0", out, Circuit::GROUND, Capacitance::from_farads(c))
            .expect("C0");

        let nodes = vec!["s0".to_string()];
        // From a zero start the output follows v·(1 − e^{−t/τ}) exactly.
        let from_zero = |options: TransientOptions| TransientOptions {
            start: spice::analysis::StartCondition::Zero,
            ..options
        };
        for (label, solver, options) in [
            ("dense/fixed", SolverKind::Dense, from_zero(TransientOptions::fixed())),
            ("sparse/fixed", SolverKind::Sparse, from_zero(TransientOptions::fixed())),
            ("dense/adaptive", SolverKind::Dense, from_zero(TransientOptions::adaptive())),
            ("sparse/adaptive", SolverKind::Sparse, from_zero(TransientOptions::adaptive())),
        ] {
            let result = run(&ckt, solver, options, stop, step);
            let trace = result.node("s0").expect("s0");
            for k in 1..=20 {
                let t = stop.seconds() * f64::from(k) / 20.0;
                let analytic = v_drive * (1.0 - (-t / tau).exp());
                let got = trace.value_at(t);
                prop_assert!(
                    (got - analytic).abs() < 0.01 * v_drive,
                    "{label}: |{got} - {analytic}| at t/τ = {:.2}", t / tau
                );
            }
        }
        check_four_ways(&ckt, &nodes, stop, step)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Random RC ladders: the four-way matrix agrees within the budget.
    #[test]
    fn rc_ladders_agree_four_ways(
        stages in prop::collection::vec((2.0f64..30.0, 20.0f64..200.0), 1..4),
        v_drive in 0.5f64..1.5,
    ) {
        // Scale to seconds/farads; τ per stage spans ~40 ps..6 ns.
        let stages: Vec<(f64, f64)> = stages
            .iter()
            .map(|&(r_kohm, c_ff)| (r_kohm * 1e3, c_ff * 1e-15))
            .collect();
        // The window must cover the slowest dynamics (sum of stage τ)
        // while the uniform grid resolves the fastest pole — otherwise
        // the fixed-grid backward-Euler runs are themselves inaccurate
        // and the comparison would measure their error, not agreement.
        let total: f64 = stages.iter().map(|&(r, c)| r * c).sum();
        let fastest = stages
            .iter()
            .map(|&(r, c)| r * c)
            .fold(f64::INFINITY, f64::min);
        let stop = Time::from_seconds(2.0 * total);
        let step = Time::from_seconds(fastest / 50.0);
        let (ckt, nodes) = rc_ladder(&stages, v_drive, total / 20.0);
        check_four_ways(&ckt, &nodes, stop, step).expect("four-way agreement");
    }

    /// Random MOSFET inverter chains: the four-way matrix agrees within
    /// the budget through strongly nonlinear switching.
    #[test]
    fn inverter_chains_agree_four_ways(
        widths in prop::collection::vec(150.0f64..500.0, 1..4),
        load_ff in 2.0f64..10.0,
    ) {
        let stop = Time::from_pico_seconds(600.0);
        let step = Time::from_pico_seconds(0.5);
        let (ckt, nodes) = inverter_chain(&widths, load_ff);
        check_four_ways(&ckt, &nodes, stop, step).expect("four-way agreement");
    }
}
